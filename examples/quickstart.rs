//! Quickstart: is it worth reusing an old phone instead of buying a server?
//!
//! Builds CCI calculators for a reused Pixel 3A and a new PowerEdge R740,
//! compares their carbon-per-operation over a five-year horizon and prints
//! the crossover analysis.
//!
//! Run with: `cargo run --example quickstart`

use junkyard::carbon::cci::crossover_months;
use junkyard::carbon::units::{CarbonIntensity, TimeSpan};
use junkyard::core::single_device::device_calculator;
use junkyard::devices::benchmark::Benchmark;
use junkyard::devices::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = CarbonIntensity::from_grams_per_kwh(257.0); // California mix
    let pixel = catalog::pixel_3a();
    let server = catalog::poweredge_r740();

    println!("Junkyard Computing quickstart — carbon per unit of work\n");
    for benchmark in [Benchmark::Sgemm, Benchmark::PdfRender, Benchmark::Dijkstra] {
        let reused_phone = device_calculator(&pixel, benchmark, grid, true);
        let new_server = device_calculator(&server, benchmark, grid, false);
        println!("{benchmark} ({} per second):", benchmark.op_unit());
        for months in [6.0, 12.0, 36.0, 60.0] {
            let life = TimeSpan::from_months(months);
            let phone_cci = reused_phone.cci_at(life)?;
            let server_cci = new_server.cci_at(life)?;
            println!(
                "  {months:>4.0} months: reused Pixel 3A {:>10.4}   new PowerEdge {:>10.4}   (server/phone = {:.1}x)",
                phone_cci,
                server_cci,
                server_cci.ratio_to(phone_cci)
            );
        }
        match crossover_months(&reused_phone, &new_server, 120)? {
            Some(m) => println!("  -> the new server catches up after {m} months\n"),
            None => println!("  -> the reused phone stays ahead for the whole 10-year horizon\n"),
        }
    }
    Ok(())
}
