//! Smart charging: shift a phone cluster's wall-power draw to the hours
//! when the California grid is greenest.
//!
//! Reproduces the Figure 4 experiment on a synthetic CAISO month and prints
//! the per-device savings plus a representative day's charging windows.
//!
//! Run with: `cargo run --example smart_charging`

use junkyard::core::charging_study::ChargingStudy;

fn main() {
    let result = ChargingStudy::new(2021).run();

    println!("{}", result.summary_table());
    println!(
        "synthetic CAISO month: mean {:.0}, min {:.0}, max {:.0}\n",
        result.trace().mean(),
        result.trace().min(),
        result.trace().max()
    );

    for (index, outcome) in result.outcomes().iter().enumerate() {
        println!("{outcome}");
        let chart = result.representative_day_chart(index);
        let charging_hours: Vec<String> = chart
            .line("when to charge")
            .expect("chart has a charging line")
            .points()
            .iter()
            .filter(|(_, on)| *on > 0.0)
            .map(|(h, _)| format!("{h:.1}h"))
            .collect();
        println!(
            "  charges during {} five-minute slots: {}{}",
            charging_hours.len(),
            charging_hours
                .iter()
                .take(12)
                .cloned()
                .collect::<Vec<_>>()
                .join(", "),
            if charging_hours.len() > 12 {
                ", ..."
            } else {
                ""
            }
        );
    }
}
