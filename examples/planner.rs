//! Ask the planner what a junkyard-cloudlet operator should deploy.
//!
//! The lifecycle study hand-picks a deployment (six Pixel 3A + four
//! Nexus 4 per cloudlet across two CAISO-like regions); this example
//! hands the same demand, grids, device catalog and SLO to the planner
//! and lets it search: cohort recipes per region, static versus
//! carbon-aware routing, the smart-charging battery floor, the junkyard
//! refill lag, and an optional leased c5.9xlarge fallback share. The
//! search pre-screens undersized candidates against their saturation
//! knees, races the rest through successive-halving fidelity rungs, and
//! polishes the elites with seeded mutations — every step deterministic
//! at any worker count. The output is an SLO-feasible Pareto frontier
//! (carbon per request vs p99 latency vs fleet size) and the argmin,
//! compared against the hand-built baseline scored under identical
//! conditions.
//!
//! Run with: `cargo run --release --example planner`

use junkyard::core::planner_study::PlannerStudy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let study = PlannerStudy::quick();
    let slo = study.slo_bounds();
    println!(
        "searching under SLO: median <= {} ms, tail <= {} ms, shed <= {}%\n",
        slo.median_limit_ms(),
        slo.tail_limit_ms(),
        slo.max_shed_fraction() * 100.0
    );

    let result = study.run()?;
    println!("{}", result.frontier_table());

    let outcome = result.outcome();
    println!(
        "searched {} candidates ({} pre-screened away, rung populations {:?})",
        outcome.candidates_enumerated(),
        outcome.screened_out(),
        outcome.rung_populations(),
    );
    println!(
        "ran {} lifecycle simulations; {} of {} cache lookups were free hits ({:.0}%)",
        outcome.fresh_evaluations(),
        outcome.cache_hits(),
        outcome.cache_hits() + outcome.cache_misses(),
        outcome.cache_hit_rate() * 100.0,
    );

    let best = outcome.best().expect("the space has feasible deployments");
    let baseline = result.baseline();
    println!(
        "\nplanner's pick:   {} — {:.4} mgCO2e/request",
        best.label(),
        best.evaluation().grams_per_request().unwrap_or(0.0) * 1_000.0,
    );
    println!(
        "hand-built pick:  {} — {:.4} mgCO2e/request",
        baseline.label(),
        baseline.evaluation().grams_per_request().unwrap_or(0.0) * 1_000.0,
    );
    println!(
        "the planner {} the hand-built deployment ({:+.2}% carbon per request)",
        if result.improvement_percent() > 0.01 {
            "beats"
        } else {
            "matches"
        },
        -result.improvement_percent(),
    );
    Ok(())
}
