//! Run a carbon-aware fleet of junk-phone cloudlets across two grids.
//!
//! Builds the two-region fleet study — a CAISO-like grid, its antipodal
//! twin twelve hours out of phase, and a gas-heavy datacenter backend —
//! drives a diurnal compose-post load through the compiled microsim
//! engine, and compares the paper's static placement against carbon-aware
//! routing on grams of CO2e per request.
//!
//! Run with: `cargo run --release --example fleet_serving`

use junkyard::core::fleet_study::FleetStudy;
use junkyard::fleet::routing::RoutingPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let study = FleetStudy::quick();

    // Peek at the routing plan before running anything: the carbon-aware
    // policy's assignments depend only on the schedule, the capacities and
    // the intensity traces.
    let fleet = study.build_fleet(RoutingPolicy::carbon_aware())?;
    println!("Carbon-aware plan (mean qps per window):");
    println!(
        "  {:>8} {:>14} {:>14} {:>12}",
        "window", "cloudlet-west", "cloudlet-east", "datacenter"
    );
    for (w, assignment) in fleet.assignments().iter().enumerate() {
        println!(
            "  {w:>8} {:>14.0} {:>14.0} {:>12.0}",
            assignment.site_mean_qps(0),
            assignment.site_mean_qps(1),
            assignment.site_mean_qps(2),
        );
    }

    println!("\nSimulating both policies (every window x site cell runs the compiled engine)...\n");
    let result = study.run()?;
    println!("{}", result.chart());
    println!("{}", result.table());

    let base = result
        .baseline()
        .grams_per_request()
        .expect("traffic offered");
    let aware = result
        .carbon_aware()
        .grams_per_request()
        .expect("traffic offered");
    println!("static placement:     {:.4} mgCO2e/request", base * 1_000.0);
    println!(
        "carbon-aware routing: {:.4} mgCO2e/request",
        aware * 1_000.0
    );
    println!(
        "carbon-aware saves {:.1}% carbon per request",
        result.savings_percent()
    );
    Ok(())
}
