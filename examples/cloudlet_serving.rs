//! Serve a cloud microservice application from a box of old phones.
//!
//! Deploys the DeathStarBench HotelReservation application on the simulated
//! ten-phone junkyard cloudlet and on a c5.9xlarge, sweeps the offered load,
//! and reports latency, saturation and carbon per request.
//!
//! Run with: `cargo run --release --example cloudlet_serving`

use junkyard::carbon::units::TimeSpan;
use junkyard::core::cloudlet_study::{figure9_advantage, CloudletWorkload, Figure7Study};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = CloudletWorkload::HotelReservation;
    println!(
        "Sweeping {} on the phone cloudlet and EC2 baselines...\n",
        workload.label()
    );

    let result = Figure7Study::quick()
        .qps_points(vec![1_000.0, 2_000.0, 3_000.0, 4_000.0, 5_000.0])
        .run(workload)?;

    println!("{}", result.chart(false));
    println!("{}", result.chart(true));

    println!("Max sustainable throughput (median <= 100 ms, tail <= 200 ms):");
    for (deployment, qps) in result.saturation_points() {
        match qps {
            Some(q) => println!("  {deployment:12} {q:>6.0} requests/sec"),
            None => println!("  {deployment:12} saturated below the first load point"),
        }
    }

    let advantage = figure9_advantage(workload, TimeSpan::from_years(3.0))?;
    println!(
        "\nAfter three years of continuous service the phone cloudlet is {advantage:.1}x more \
         carbon-efficient per request than the c5.9xlarge."
    );
    Ok(())
}
