//! Walk a junk-phone cloudlet deployment through five years of service.
//!
//! Two heterogeneous cloudlets (Pixel 3A + Nexus 4 cohorts) serve a
//! diurnal compose-post demand under carbon-aware routing, while a rented
//! c5.9xlarge serves the same demand as the comparison. Day by day the
//! simulation wears each device's battery under the smart-charging
//! schedule, replaces spent packs (charging their embodied carbon the day
//! it happens), fails devices stochastically and refills the slots from
//! junkyard stock at their Reuse-Factor embodied share. The punchline is
//! the paper's: the cloudlet *starts* more carbon-intensive per request —
//! its install bill lands on day 0 — and amortises below the datacenter
//! within months, staying there for the rest of the decade.
//!
//! Run with: `cargo run --release --example lifecycle`

use junkyard::core::lifecycle_study::LifecycleStudy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let study = LifecycleStudy::quick(); // five years, four windows/day
    let result = study.run()?;

    println!("{}", result.trajectory_chart());
    println!("{}", result.summary_table());

    // The early days, where the install embodied dominates the cloudlet.
    println!("cumulative mgCO2e/request over the first weeks:");
    println!("  {:>6} {:>12} {:>12}", "day", "cloudlets", "c5.9xlarge");
    for day in [0, 6, 13, 27, 55, 89, 179, 364] {
        let cloudlet = result.cloudlet().grams_per_request_through_day(day);
        let datacenter = result.datacenter().grams_per_request_through_day(day);
        println!(
            "  {day:>6} {:>12.4} {:>12.4}",
            cloudlet.unwrap_or(f64::NAN) * 1_000.0,
            datacenter.unwrap_or(f64::NAN) * 1_000.0,
        );
    }

    match result.crossover_day() {
        Some(day) => println!(
            "\nthe cloudlet's lifetime CCI crosses below the datacenter's on day {day} \
             ({:.1} months in)",
            day as f64 / 30.4
        ),
        None => println!("\nno crossover within the horizon"),
    }
    println!(
        "after {} years the cloudlets hold a {:.1}x carbon-per-request advantage,",
        result.cloudlet().years(),
        result.lifetime_advantage()
    );
    println!(
        "having replaced {} battery packs and refilled {} failed devices from the junkyard",
        result.cloudlet().total_battery_replacements(),
        result.cloudlet().total_devices_replaced(),
    );
    Ok(())
}
