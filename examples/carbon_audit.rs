//! Carbon audit of a cloudlet design: build your own junkyard cluster and
//! see where its lifetime carbon goes.
//!
//! This example designs a 54-phone Pixel 3A cloudlet (the paper's
//! server-equivalent configuration), itemises its embodied carbon, applies
//! smart charging, and prints the lifetime carbon breakdown and CCI against
//! the new-server baseline.
//!
//! Run with: `cargo run --example carbon_audit`

use junkyard::carbon::units::TimeSpan;
use junkyard::cluster::presets;
use junkyard::core::cluster_cci::cloudlet_calculator;
use junkyard::devices::benchmark::Benchmark;
use junkyard::devices::power::LoadProfile;
use junkyard::grid::regime::PowerRegime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = LoadProfile::light_medium();
    let pixel_cloudlet = presets::pixel_cloudlet();
    let baseline = presets::poweredge_baseline();

    println!("== Cloudlet design ==");
    println!("{pixel_cloudlet}");
    println!(
        "  average power: {:.1}",
        pixel_cloudlet.average_power(&profile)
    );
    println!("  network: {}", pixel_cloudlet.network());
    println!("  management nodes: {}", pixel_cloudlet.management_count());
    println!(
        "  purchase cost: ${:.0}",
        pixel_cloudlet.purchase_cost_usd().unwrap_or(0.0)
    );
    println!("\n== Embodied carbon bill (added hardware only; phones are reused) ==");
    for item in pixel_cloudlet.embodied_bill().iter() {
        println!("  {item}");
    }
    if let Some((per_round, pack_life)) = pixel_cloudlet.battery_schedule(&profile) {
        println!(
            "  battery replacements: {:.0} kgCO2e every {:.1} years",
            per_round.kilograms(),
            pack_life.years()
        );
    }

    println!("\n== Lifetime CCI vs a new PowerEdge R740 (Dijkstra, California grid) ==");
    let cloudlet_calc = cloudlet_calculator(
        &pixel_cloudlet,
        Benchmark::Dijkstra,
        PowerRegime::CaliforniaMix,
    );
    let server_calc =
        cloudlet_calculator(&baseline, Benchmark::Dijkstra, PowerRegime::CaliforniaMix);
    for years in [1.0, 2.0, 3.0, 5.0] {
        let life = TimeSpan::from_years(years);
        let cloudlet = cloudlet_calc.cci_at(life)?;
        let server = server_calc.cci_at(life)?;
        let breakdown = cloudlet_calc.breakdown_at(life);
        println!(
            "  {years:.0} years: cloudlet {cloudlet}   server {server}   ({:.1}x better; cloudlet carbon: {breakdown})",
            server.ratio_to(cloudlet)
        );
    }
    Ok(())
}
