//! # Junkyard Computing — reproduction library
//!
//! A Rust reproduction of *"Junkyard Computing: Repurposing Discarded
//! Smartphones to Minimize Carbon"* (ASPLOS 2023). This facade crate
//! re-exports the workspace's crates:
//!
//! * [`carbon`] — the Computational Carbon Intensity (CCI) metric and typed
//!   units.
//! * [`devices`] — the device catalog (phones, laptops, servers, EC2
//!   instances) with performance, power, battery and embodied-carbon data.
//! * [`grid`] — grid carbon-intensity traces and power regimes.
//! * [`battery`] — battery state and the smart-charging heuristic.
//! * [`thermal`] — phone/enclosure thermal simulation and cooling sizing.
//! * [`cluster`] — cloudlet and datacenter design (sizing, topology,
//!   peripherals, PUE).
//! * [`microsim`] — the discrete-event microservice cloudlet simulator that
//!   stands in for the paper's physical DeathStarBench testbed.
//! * [`fleet`] — the carbon-aware cloudlet fleet layer: diurnal load
//!   schedules, grid-region mapping, static versus carbon-aware routing
//!   and fleet-wide gCO2e-per-request accounting.
//! * [`planner`] — the SLO-constrained provisioning optimizer: a
//!   deterministic successive-halving + local search over candidate
//!   deployments, driving the fleet/lifecycle stack as a black-box
//!   evaluator and reporting a carbon/latency/fleet-size Pareto
//!   frontier.
//! * [`obs`] — the observability layer: deterministic sim-time tracing
//!   (`Recorder`/`TraceRecorder` shards, the self-checking
//!   `ConservedLedger`) and the wall-clock `Profiler` boundary.
//! * [`core`] — the high-level studies that regenerate each table and
//!   figure of the paper.
//!
//! # Quickstart
//!
//! ```
//! use junkyard::core::single_device::SingleDeviceStudy;
//! use junkyard::devices::benchmark::Benchmark;
//!
//! // Figure 2: lifetime carbon-per-op of reused devices vs a new server.
//! let chart = SingleDeviceStudy::new(Benchmark::Dijkstra).run_paper_devices();
//! for line in chart.lines() {
//!     println!("{}: {:.3} mgCO2e/MTE after 5 years", line.label(), line.final_value().unwrap());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use junkyard_battery as battery;
pub use junkyard_carbon as carbon;
pub use junkyard_cluster as cluster;
pub use junkyard_core as core;
pub use junkyard_devices as devices;
pub use junkyard_fleet as fleet;
pub use junkyard_grid as grid;
pub use junkyard_microsim as microsim;
pub use junkyard_obs as obs;
pub use junkyard_planner as planner;
pub use junkyard_thermal as thermal;

/// The crate version of the reproduction library.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
