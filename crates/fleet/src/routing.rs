//! Per-window traffic assignment across fleet sites.
//!
//! Two policies bracket the design space:
//!
//! * [`RoutingPolicy::Static`] — the paper's static placement: every site
//!   takes a fixed share of the traffic proportional to its capacity,
//!   whatever the grids are doing.
//! * [`RoutingPolicy::CarbonAware`] — per window, sites are filled
//!   greedily in ascending order of their grid's *current* (window-mean)
//!   carbon intensity, each up to a configurable utilisation cap. Load
//!   follows the sun: a solar-heavy region absorbs the fleet at midday
//!   and hands it back at dusk.
//!
//! Both policies are capacity-safe: no site is ever assigned more than its
//! declared capacity, and demand beyond the fleet's aggregate cap is
//! recorded as *declined* rather than silently overloading a site.
//!
//! # Shed semantics
//!
//! Two distinct mechanisms can lose a request, and the fleet layers report
//! them separately:
//!
//! * **Router declined** — demand the planner could not place anywhere
//!   because the fleet's aggregate (capped) capacity was exhausted. This
//!   is decided here, per window, before any simulation runs, and is
//!   reported by [`WindowAssignment::declined_mean_qps`].
//! * **Queue dropped** — requests a site *accepted* but then lost at a
//!   bounded application queue inside the microsim (see
//!   `junkyard_microsim::ServerModel::with_queue_size`). The router never
//!   sees these; the fleet and lifecycle simulators measure them per cell
//!   and surface them as `queue_dropped_requests`.
//!
//! Fleet-level *shed* is the sum of the two. The historical
//! [`WindowAssignment::shed_mean_qps`] accessor is kept as an alias for
//! the declined component only, because at this layer nothing has been
//! simulated yet.

use serde::{Deserialize, Serialize};

use junkyard_carbon::units::CarbonIntensity;

use crate::schedule::LoadWindow;
use crate::site::FleetSite;

/// A traffic-assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RoutingPolicy {
    /// Capacity-proportional fixed shares (the paper's static placement).
    Static,
    /// Fill the cleanest region first, each site up to
    /// `utilization_cap * capacity`.
    CarbonAware {
        /// Fraction of each site's capacity the router may use, in
        /// `(0, 1]`. Headroom below 1.0 keeps latency off the knee.
        utilization_cap: f64,
    },
}

impl RoutingPolicy {
    /// The carbon-aware policy at full capacity usage.
    #[must_use]
    pub fn carbon_aware() -> Self {
        RoutingPolicy::CarbonAware {
            utilization_cap: 1.0,
        }
    }

    /// Display label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::Static => "static",
            RoutingPolicy::CarbonAware { .. } => "carbon-aware",
        }
    }
}

/// The per-site split of one window's traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowAssignment {
    window: usize,
    /// Per-site `(qps_start, qps_end)`, same order as the fleet's sites.
    shares: Vec<(f64, f64)>,
    declined_mean_qps: f64,
}

impl WindowAssignment {
    /// Index of the window this assignment covers.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Per-site `(qps_start, qps_end)` pairs, in fleet site order.
    #[must_use]
    pub fn shares(&self) -> &[(f64, f64)] {
        &self.shares
    }

    /// Mean offered load the *router* could not place (demand beyond the
    /// aggregate capacity cap), requests per second.
    ///
    /// This is only the router-declined component of shed — sites may
    /// additionally drop accepted requests at bounded queues (see the
    /// module docs on shed semantics).
    #[must_use]
    pub fn declined_mean_qps(&self) -> f64 {
        self.declined_mean_qps
    }

    /// Alias for [`Self::declined_mean_qps`], kept for callers that
    /// predate the declined/dropped split. At the routing layer nothing
    /// has been simulated yet, so "shed" here means router-declined only.
    #[must_use]
    pub fn shed_mean_qps(&self) -> f64 {
        self.declined_mean_qps
    }

    /// Time-averaged rate assigned to site `site`.
    #[must_use]
    pub fn site_mean_qps(&self, site: usize) -> f64 {
        let (start, end) = self.shares[site];
        (start + end) / 2.0
    }
}

/// The per-site facts a routing policy needs to split one window: how
/// much the site can take and how dirty its grid is over the window. The
/// lifecycle simulator re-plans every window from these as cohort
/// capacity shrinks and recovers, without rebuilding [`FleetSite`]s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteWindowInput {
    /// Highest offered load the router may assign, requests/second.
    pub capacity_qps: f64,
    /// Window-mean carbon intensity of the site's grid region.
    pub intensity: CarbonIntensity,
}

/// Plans one window's assignment under `policy`.
///
/// The split is computed against the window's *peak* rate, so the
/// per-site assignment respects the capacity cap at every instant of the
/// window, not just on average.
///
/// # Panics
///
/// Panics if a carbon-aware policy's utilisation cap is outside `(0, 1]`.
#[must_use]
pub fn plan_window(
    policy: RoutingPolicy,
    sites: &[FleetSite],
    window: &LoadWindow,
) -> WindowAssignment {
    let inputs: Vec<SiteWindowInput> = sites
        .iter()
        .map(|s| SiteWindowInput {
            capacity_qps: s.capacity_qps(),
            intensity: s
                .region()
                .mean_intensity_between(window.start(), window.end()),
        })
        .collect();
    plan_window_inputs(policy, &inputs, window)
}

/// Plans one window's assignment from pre-computed per-site inputs (see
/// [`plan_window`] for the capacity semantics).
///
/// # Panics
///
/// Panics if a carbon-aware policy's utilisation cap is outside `(0, 1]`.
#[must_use]
pub fn plan_window_inputs(
    policy: RoutingPolicy,
    sites: &[SiteWindowInput],
    window: &LoadWindow,
) -> WindowAssignment {
    let peak = window.peak_qps();
    if peak <= 0.0 {
        return WindowAssignment {
            window: window.index(),
            shares: vec![(0.0, 0.0); sites.len()],
            declined_mean_qps: 0.0,
        };
    }
    // `fractions[i]` is the share of the window's demand routed to site i;
    // the policies differ only in how these are chosen.
    let fractions: Vec<f64> = match policy {
        RoutingPolicy::Static => {
            let total_cap: f64 = sites.iter().map(|s| s.capacity_qps).sum();
            if total_cap <= 0.0 {
                // Nothing can serve: everything sheds.
                vec![0.0; sites.len()]
            } else {
                // Proportional shares saturate all sites simultaneously, so
                // a single scale factor keeps every site within capacity.
                let scale = (total_cap / peak).min(1.0);
                sites
                    .iter()
                    .map(|s| s.capacity_qps / total_cap * scale)
                    .collect()
            }
        }
        RoutingPolicy::CarbonAware { utilization_cap } => {
            assert!(
                utilization_cap > 0.0 && utilization_cap <= 1.0,
                "utilisation cap must be in (0, 1]"
            );
            // Order sites by their grid's window-mean intensity; fill the
            // cleanest first. Ties break on site index, so the plan is
            // deterministic.
            let mut order: Vec<(usize, f64)> = sites
                .iter()
                .enumerate()
                .map(|(i, s)| (i, s.intensity.grams_per_kwh()))
                .collect();
            order.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            let mut fractions = vec![0.0; sites.len()];
            let mut remaining = peak;
            for (index, _) in order {
                if remaining <= 0.0 {
                    break;
                }
                let cap = sites[index].capacity_qps * utilization_cap;
                let take = remaining.min(cap);
                fractions[index] = take / peak;
                remaining -= take;
            }
            fractions
        }
    };
    let placed: f64 = fractions.iter().sum();
    WindowAssignment {
        window: window.index(),
        shares: fractions
            .iter()
            .map(|f| (f * window.qps_start(), f * window.qps_end()))
            .collect(),
        declined_mean_qps: (1.0 - placed).max(0.0) * window.mean_qps(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::DiurnalSchedule;
    use crate::testutil::{flat_region, tiny_sim};

    fn site(name: &str, grams: f64, capacity: f64) -> FleetSite {
        FleetSite::new(name, &tiny_sim(), flat_region(grams), capacity)
    }

    fn one_window(qps: f64) -> LoadWindow {
        DiurnalSchedule::flat(qps).windows(1)[0]
    }

    #[test]
    fn static_shares_are_capacity_proportional() {
        let sites = vec![site("a", 300.0, 600.0), site("b", 200.0, 200.0)];
        let plan = plan_window(RoutingPolicy::Static, &sites, &one_window(400.0));
        assert!((plan.site_mean_qps(0) - 300.0).abs() < 1e-9);
        assert!((plan.site_mean_qps(1) - 100.0).abs() < 1e-9);
        assert_eq!(plan.shed_mean_qps(), 0.0);
    }

    #[test]
    fn carbon_aware_fills_the_cleanest_region_first() {
        let sites = vec![site("dirty", 400.0, 600.0), site("clean", 100.0, 600.0)];
        let plan = plan_window(RoutingPolicy::carbon_aware(), &sites, &one_window(500.0));
        // The clean site absorbs everything it can before the dirty one.
        assert!((plan.site_mean_qps(1) - 500.0).abs() < 1e-9);
        assert_eq!(plan.site_mean_qps(0), 0.0);
        // With more demand than the clean site's cap, the overflow spills.
        let plan = plan_window(RoutingPolicy::carbon_aware(), &sites, &one_window(900.0));
        assert!((plan.site_mean_qps(1) - 600.0).abs() < 1e-9);
        assert!((plan.site_mean_qps(0) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn both_policies_respect_capacity_and_record_shed() {
        let sites = vec![site("a", 300.0, 400.0), site("b", 200.0, 100.0)];
        for policy in [RoutingPolicy::Static, RoutingPolicy::carbon_aware()] {
            let plan = plan_window(policy, &sites, &one_window(1_000.0));
            for (i, s) in sites.iter().enumerate() {
                let (start, end) = plan.shares()[i];
                assert!(start <= s.capacity_qps() + 1e-9);
                assert!(end <= s.capacity_qps() + 1e-9);
            }
            let placed: f64 = (0..sites.len()).map(|i| plan.site_mean_qps(i)).sum();
            assert!((placed + plan.declined_mean_qps() - 1_000.0).abs() < 1e-9);
            assert!(
                (plan.declined_mean_qps() - 500.0).abs() < 1e-9,
                "{policy:?}"
            );
            // The legacy name is an exact alias for the declined component.
            assert_eq!(plan.shed_mean_qps(), plan.declined_mean_qps());
        }
    }

    #[test]
    fn utilization_cap_holds_traffic_back() {
        let sites = vec![site("a", 100.0, 1_000.0)];
        let plan = plan_window(
            RoutingPolicy::CarbonAware {
                utilization_cap: 0.5,
            },
            &sites,
            &one_window(800.0),
        );
        assert!((plan.site_mean_qps(0) - 500.0).abs() < 1e-9);
        assert!((plan.shed_mean_qps() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn idle_windows_assign_nothing() {
        let sites = vec![site("a", 100.0, 1_000.0)];
        let plan = plan_window(RoutingPolicy::Static, &sites, &one_window(0.0));
        assert_eq!(plan.shares(), &[(0.0, 0.0)]);
        assert_eq!(plan.shed_mean_qps(), 0.0);
    }

    #[test]
    #[should_panic(expected = "utilisation cap")]
    fn out_of_range_cap_panics() {
        let sites = vec![site("a", 100.0, 1_000.0)];
        let _ = plan_window(
            RoutingPolicy::CarbonAware {
                utilization_cap: 1.5,
            },
            &sites,
            &one_window(10.0),
        );
    }
}
