//! Diurnal load schedules: fleet-wide offered load as a function of the
//! hour of day, compiled into the microsim's ramp phases.
//!
//! The paper drives its cloudlet at flat QPS phases; real serving traffic
//! follows a day curve (quiet nights, office-hours plateau, an evening
//! peak). A [`DiurnalSchedule`] models that curve as 24 hourly multipliers
//! of a base rate, linearly interpolated between hours and periodic by
//! day, and slices it into [`LoadWindow`]s — the accounting granularity of
//! the fleet simulation.

use serde::{Deserialize, Serialize};

use junkyard_carbon::convert::{count_f64, floor_index};
use junkyard_carbon::units::TimeSpan;

/// Hourly multipliers of a typical consumer-facing service: a 3 am trough
/// around a third of the base rate, an office-hours plateau and an evening
/// peak slightly above it.
pub const OFFICE_DAY_SHAPE: [f64; 24] = [
    0.40, 0.33, 0.29, 0.27, 0.28, 0.33, 0.45, 0.62, 0.80, 0.93, 1.00, 1.00, 0.97, 0.95, 0.93, 0.92,
    0.94, 1.00, 1.08, 1.15, 1.08, 0.90, 0.68, 0.50,
];

/// A periodic, piecewise-linear daily load curve repeated over `days` days.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalSchedule {
    base_qps: f64,
    hourly: [f64; 24],
    days: usize,
}

impl DiurnalSchedule {
    /// A flat schedule at `base_qps` for one day.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative.
    #[must_use]
    pub fn flat(base_qps: f64) -> Self {
        assert!(base_qps >= 0.0, "offered load cannot be negative");
        Self {
            base_qps,
            hourly: [1.0; 24],
            days: 1,
        }
    }

    /// The canonical consumer-service day ([`OFFICE_DAY_SHAPE`]) scaled to
    /// a peak-hour rate of `base_qps`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative.
    #[must_use]
    pub fn office_day(base_qps: f64) -> Self {
        Self::flat(base_qps).hourly(OFFICE_DAY_SHAPE)
    }

    /// Overrides the 24 hourly multipliers.
    ///
    /// # Panics
    ///
    /// Panics if any multiplier is negative.
    #[must_use]
    pub fn hourly(mut self, hourly: [f64; 24]) -> Self {
        assert!(
            hourly.iter().all(|m| *m >= 0.0),
            "hourly multipliers cannot be negative"
        );
        self.hourly = hourly;
        self
    }

    /// Repeats the day curve over `days` days.
    ///
    /// # Panics
    ///
    /// Panics if `days` is zero.
    #[must_use]
    pub fn days(mut self, days: usize) -> Self {
        assert!(days > 0, "a schedule needs at least one day");
        self.days = days;
        self
    }

    /// The base (multiplier 1.0) rate, requests per second.
    #[must_use]
    pub fn base_qps(&self) -> f64 {
        self.base_qps
    }

    /// Number of days the schedule covers.
    #[must_use]
    pub fn day_count(&self) -> usize {
        self.days
    }

    /// Total schedule duration.
    #[must_use]
    pub fn total_duration(&self) -> TimeSpan {
        TimeSpan::from_days(count_f64(self.days))
    }

    /// Offered load at offset `t` from the schedule start: the base rate
    /// times the hourly multiplier, linearly interpolated between hour
    /// marks and periodic by day. Negative offsets clamp to the start.
    #[must_use]
    pub fn qps_at(&self, t: TimeSpan) -> f64 {
        let hours = (t.hours().max(0.0)) % 24.0;
        let index = floor_index(hours) % 24;
        let next = (index + 1) % 24;
        let frac_of_hour = hours - hours.floor();
        self.base_qps
            * (self.hourly[index] * (1.0 - frac_of_hour) + self.hourly[next] * frac_of_hour)
    }

    /// Slices the schedule into `windows_per_day` equal windows per day,
    /// each carrying the (linearised) start and end rates of its span.
    /// Window boundaries land on the schedule's piecewise-linear curve, so
    /// consecutive windows share their boundary rate and the windows of a
    /// whole day reproduce the curve exactly when `windows_per_day` is a
    /// multiple of 24 — and a chord approximation of it otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `windows_per_day` is zero.
    #[must_use]
    pub fn windows(&self, windows_per_day: usize) -> Vec<LoadWindow> {
        assert!(windows_per_day > 0, "need at least one window per day");
        let duration = TimeSpan::from_hours(24.0 / count_f64(windows_per_day));
        let count = self.days * windows_per_day;
        (0..count)
            .map(|index| {
                let start = TimeSpan::from_secs(duration.seconds() * count_f64(index));
                LoadWindow {
                    index,
                    start,
                    duration,
                    qps_start: self.qps_at(start),
                    qps_end: self.qps_at(start + duration),
                }
            })
            .collect()
    }
}

/// One accounting window of a schedule: a span of wall-clock time with the
/// fleet-wide offered load linearised between its endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadWindow {
    index: usize,
    start: TimeSpan,
    duration: TimeSpan,
    qps_start: f64,
    qps_end: f64,
}

impl LoadWindow {
    /// Position of the window in the schedule.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Offset of the window start from the schedule start.
    #[must_use]
    pub fn start(&self) -> TimeSpan {
        self.start
    }

    /// Window length.
    #[must_use]
    pub fn duration(&self) -> TimeSpan {
        self.duration
    }

    /// Offset of the window end from the schedule start.
    #[must_use]
    pub fn end(&self) -> TimeSpan {
        self.start + self.duration
    }

    /// Fleet-wide offered load at the window start, requests per second.
    #[must_use]
    pub fn qps_start(&self) -> f64 {
        self.qps_start
    }

    /// Fleet-wide offered load at the window end, requests per second.
    #[must_use]
    pub fn qps_end(&self) -> f64 {
        self.qps_end
    }

    /// Time-averaged offered load across the window.
    #[must_use]
    pub fn mean_qps(&self) -> f64 {
        (self.qps_start + self.qps_end) / 2.0
    }

    /// The highest instantaneous rate of the window.
    #[must_use]
    pub fn peak_qps(&self) -> f64 {
        self.qps_start.max(self.qps_end)
    }

    /// Requests offered over the whole window.
    #[must_use]
    pub fn requests(&self) -> f64 {
        self.mean_qps() * self.duration.seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_schedule_is_constant() {
        let schedule = DiurnalSchedule::flat(500.0);
        for h in [0.0, 3.5, 12.0, 23.9] {
            assert!((schedule.qps_at(TimeSpan::from_hours(h)) - 500.0).abs() < 1e-9);
        }
        let windows = schedule.windows(6);
        assert_eq!(windows.len(), 6);
        for w in &windows {
            assert_eq!(w.qps_start(), 500.0);
            assert_eq!(w.qps_end(), 500.0);
            assert!((w.duration().hours() - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn office_day_has_a_night_trough_and_evening_peak() {
        let schedule = DiurnalSchedule::office_day(1_000.0);
        let night = schedule.qps_at(TimeSpan::from_hours(3.0));
        let noon = schedule.qps_at(TimeSpan::from_hours(12.0));
        let evening = schedule.qps_at(TimeSpan::from_hours(19.0));
        assert!(night < noon * 0.4, "night {night} vs noon {noon}");
        assert!(evening > noon, "evening {evening} vs noon {noon}");
        assert_eq!(evening, 1_150.0);
    }

    #[test]
    fn qps_interpolates_between_hours_and_wraps_by_day() {
        let schedule = DiurnalSchedule::flat(100.0)
            .hourly({
                let mut h = [1.0; 24];
                h[0] = 0.0;
                h[1] = 1.0;
                h
            })
            .days(2);
        assert!((schedule.qps_at(TimeSpan::from_minutes(30.0)) - 50.0).abs() < 1e-9);
        // Day two replays day one.
        let a = schedule.qps_at(TimeSpan::from_hours(5.25));
        let b = schedule.qps_at(TimeSpan::from_hours(29.25));
        assert!((a - b).abs() < 1e-9);
        // Hour 23 interpolates towards hour 0 of the next day.
        let before_midnight = schedule.qps_at(TimeSpan::from_hours(23.5));
        assert!((before_midnight - 50.0).abs() < 1e-9);
    }

    #[test]
    fn windows_tile_the_schedule_and_share_boundaries() {
        let schedule = DiurnalSchedule::office_day(2_000.0).days(2);
        let windows = schedule.windows(8);
        assert_eq!(windows.len(), 16);
        for pair in windows.windows(2) {
            assert!((pair[0].end().seconds() - pair[1].start().seconds()).abs() < 1e-9);
            assert!((pair[0].qps_end() - pair[1].qps_start()).abs() < 1e-9);
        }
        let covered: f64 = windows.iter().map(|w| w.duration().seconds()).sum();
        assert!((covered - schedule.total_duration().seconds()).abs() < 1e-6);
        // Every window's load stays within the day curve's envelope.
        for w in &windows {
            assert!(w.peak_qps() <= 2_000.0 * 1.15 + 1e-9);
            assert!(w.mean_qps() > 0.0);
            assert!((w.requests() - w.mean_qps() * w.duration().seconds()).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_windows_panics() {
        let _ = DiurnalSchedule::flat(10.0).windows(0);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_base_rate_panics() {
        let _ = DiurnalSchedule::flat(-1.0);
    }
}
