//! The fleet simulation: every (window, site) cell of the schedule driven
//! through the compiled microsim engine, with operational and embodied
//! carbon integrated per window.
//!
//! Cells are independent simulations, so [`FleetSim::run`] fans them out
//! across `std::thread::scope` workers with the same order-preserving slot
//! pattern as the sweep layer: workers write into pre-assigned slots and
//! totals are accumulated in cell order after the join, so the result is
//! identical whatever the worker count. Per-cell workload seeds come from
//! [`decorrelate_seed`], so neighbouring cells replay independent arrival
//! sequences.

use std::thread;

use serde::{Deserialize, Serialize};

use junkyard_carbon::convert::{count_f64, floor_index, index_u64};
use junkyard_carbon::units::{CarbonIntensity, GramsCo2e, Joules, Millis, Qps, TimeSpan};
use junkyard_microsim::sim::{Phase, SimError, Workload};
use junkyard_microsim::sweep::decorrelate_seed;
use junkyard_obs::{EventKind, NoopRecorder, Recorder, TraceEvent};

use crate::routing::{plan_window, RoutingPolicy, WindowAssignment};
use crate::schedule::{DiurnalSchedule, LoadWindow};
use crate::site::FleetSite;

/// Tunables of a fleet run: accounting granularity, the length of the
/// representative microsim slice per cell, seeding and threading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    windows_per_day: usize,
    sim_slice_s: f64,
    warmup_s: f64,
    seed: u64,
    parallelism: Option<usize>,
}

impl FleetConfig {
    /// Defaults: 24 one-hour windows per day, a 2-second measured slice
    /// after a 1-second warm-up, seed 42, machine parallelism.
    #[must_use]
    pub fn new() -> Self {
        Self {
            windows_per_day: 24,
            sim_slice_s: 2.0,
            warmup_s: 1.0,
            seed: 42,
            parallelism: None,
        }
    }

    /// Sets the number of accounting windows per day.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn windows_per_day(mut self, windows_per_day: usize) -> Self {
        assert!(windows_per_day > 0, "need at least one window per day");
        self.windows_per_day = windows_per_day;
        self
    }

    /// Sets the measured length of each cell's representative microsim
    /// slice. Latency and utilisation measured over this slice are
    /// extrapolated to the whole window.
    ///
    /// The engine accumulates utilisation in one-second buckets, so the
    /// slice must be a whole number of seconds — a fractional trailing
    /// bucket would be divided by a full second and bias utilisation
    /// (and therefore energy and operational carbon) low.
    ///
    /// # Panics
    ///
    /// Panics if not a strictly positive whole number of seconds.
    #[must_use]
    pub fn sim_slice_s(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "slice duration must be positive");
        assert!(
            seconds.fract() == 0.0,
            "slice duration must be a whole number of seconds (1-second utilisation buckets)"
        );
        self.sim_slice_s = seconds;
        self
    }

    /// Sets the warm-up excluded from each slice's measurements.
    ///
    /// Like the slice, the warm-up must be a whole number of seconds so
    /// the measurement window aligns with the engine's one-second
    /// utilisation buckets and no warm-up work leaks into it.
    ///
    /// # Panics
    ///
    /// Panics if negative or not a whole number of seconds.
    #[must_use]
    pub fn warmup_s(mut self, seconds: f64) -> Self {
        assert!(seconds >= 0.0, "warm-up cannot be negative");
        assert!(
            seconds.fract() == 0.0,
            "warm-up must be a whole number of seconds (1-second utilisation buckets)"
        );
        self.warmup_s = seconds;
        self
    }

    /// Sets the root seed; per-cell seeds are mixed from it.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of worker threads; `1` forces a serial run.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn parallelism(mut self, workers: usize) -> Self {
        assert!(workers > 0, "a fleet run needs at least one worker");
        self.parallelism = Some(workers);
        self
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One (window, site) cell of the accounting grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetCell {
    window: usize,
    site: usize,
    qps_start: Qps,
    qps_end: Qps,
    requests: f64,
    #[serde(default)]
    dropped_requests: f64,
    utilization: f64,
    median_ms: Millis,
    tail_ms: Millis,
    energy: Joules,
    intensity: CarbonIntensity,
    operational: GramsCo2e,
    embodied: GramsCo2e,
}

impl FleetCell {
    /// Window index of the cell.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Site index of the cell.
    #[must_use]
    pub fn site(&self) -> usize {
        self.site
    }

    /// Assigned offered load at the window start, requests/second.
    #[must_use]
    pub fn qps_start(&self) -> f64 {
        self.qps_start.per_second()
    }

    /// Assigned offered load at the window end, requests/second.
    #[must_use]
    pub fn qps_end(&self) -> f64 {
        self.qps_end.per_second()
    }

    /// Requests *served* by the site over the window: the assigned demand
    /// (mean rate × window) minus the slice-measured queue-drop share.
    #[must_use]
    pub fn requests(&self) -> f64 {
        self.requests
    }

    /// Requests the site accepted but dropped at bounded application
    /// queues over the window (zero under the default unbounded
    /// `ServerModel`).
    #[must_use]
    pub fn dropped_requests(&self) -> f64 {
        self.dropped_requests
    }

    /// Demand the router assigned to the site over the window, served or
    /// not.
    #[must_use]
    pub fn offered_requests(&self) -> f64 {
        self.requests + self.dropped_requests
    }

    /// Mean CPU utilisation (0–1) measured across the site's nodes.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Median request latency of the cell's slice, ms (0 when idle).
    #[must_use]
    pub fn median_ms(&self) -> f64 {
        self.median_ms.millis()
    }

    /// Tail (90th percentile) latency of the cell's slice, ms (0 when
    /// idle).
    #[must_use]
    pub fn tail_ms(&self) -> f64 {
        self.tail_ms.millis()
    }

    /// Electrical energy drawn over the window.
    #[must_use]
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Window-mean grid carbon intensity of the site's region.
    #[must_use]
    pub fn intensity(&self) -> CarbonIntensity {
        self.intensity
    }

    /// Operational carbon of the window (grid intensity × energy, scaled).
    #[must_use]
    pub fn operational(&self) -> GramsCo2e {
        self.operational
    }

    /// Amortised embodied carbon charged to the window.
    #[must_use]
    pub fn embodied(&self) -> GramsCo2e {
        self.embodied
    }

    /// Total carbon of the cell.
    #[must_use]
    pub fn carbon(&self) -> GramsCo2e {
        self.operational + self.embodied
    }
}

/// Result of a fleet run: the full accounting grid plus totals.
///
/// lint: conserved — every numeric field below must be pinned by a test
/// under `tests/` (the conservation audit fails otherwise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetResult {
    policy: RoutingPolicy,
    site_names: Vec<String>,
    windows: usize,
    window_duration: TimeSpan,
    /// Window-major: `cells[window * sites + site]`.
    cells: Vec<FleetCell>,
    declined_requests: f64,
    #[serde(default)]
    dropped_requests: f64,
    total_requests: f64,
    total_operational: GramsCo2e,
    total_embodied: GramsCo2e,
}

impl FleetResult {
    /// The routing policy the run used.
    #[must_use]
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Site names, in cell order.
    #[must_use]
    pub fn site_names(&self) -> &[String] {
        &self.site_names
    }

    /// Number of accounting windows.
    #[must_use]
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Length of one accounting window.
    #[must_use]
    pub fn window_duration(&self) -> TimeSpan {
        self.window_duration
    }

    /// The full accounting grid, window-major.
    #[must_use]
    pub fn cells(&self) -> &[FleetCell] {
        &self.cells
    }

    /// The cell of one (window, site) pair.
    #[must_use]
    pub fn cell(&self, window: usize, site: usize) -> &FleetCell {
        &self.cells[window * self.site_names.len() + site]
    }

    /// Requests the router could not place anywhere (demand beyond the
    /// fleet's aggregate capacity cap).
    #[must_use]
    pub fn router_declined_requests(&self) -> f64 {
        self.declined_requests
    }

    /// Requests sites accepted but dropped at bounded application queues
    /// (zero under the default unbounded `ServerModel`).
    #[must_use]
    pub fn queue_dropped_requests(&self) -> f64 {
        self.dropped_requests
    }

    /// Requests lost anywhere: router-declined plus queue-dropped. The
    /// two components are reported separately by
    /// [`Self::router_declined_requests`] and
    /// [`Self::queue_dropped_requests`]; this sum is the historical
    /// "shed" total and satisfies
    /// `offered == total_requests + shed_requests` within float noise.
    #[must_use]
    pub fn shed_requests(&self) -> f64 {
        self.declined_requests + self.dropped_requests
    }

    /// Requests served across the fleet and the schedule.
    #[must_use]
    pub fn total_requests(&self) -> f64 {
        self.total_requests
    }

    /// Fleet-wide operational carbon.
    #[must_use]
    pub fn total_operational(&self) -> GramsCo2e {
        self.total_operational
    }

    /// Fleet-wide amortised embodied carbon.
    #[must_use]
    pub fn total_embodied(&self) -> GramsCo2e {
        self.total_embodied
    }

    /// Fleet-wide total carbon.
    #[must_use]
    pub fn total_carbon(&self) -> GramsCo2e {
        self.total_operational + self.total_embodied
    }

    /// The headline metric: grams of CO2e per served request, or `None`
    /// when the schedule offered no traffic.
    #[must_use]
    pub fn grams_per_request(&self) -> Option<f64> {
        if self.total_requests > 0.0 {
            Some(self.total_carbon().grams() / self.total_requests)
        } else {
            None
        }
    }

    /// Carbon per request within one window, or `None` for an idle window.
    #[must_use]
    pub fn window_grams_per_request(&self, window: usize) -> Option<f64> {
        let sites = self.site_names.len();
        let cells = &self.cells[window * sites..(window + 1) * sites];
        let requests: f64 = cells.iter().map(FleetCell::requests).sum();
        if requests > 0.0 {
            Some(cells.iter().map(|c| c.carbon().grams()).sum::<f64>() / requests)
        } else {
            None
        }
    }

    /// Total requests served by one site across the schedule.
    #[must_use]
    pub fn site_requests(&self, site: usize) -> f64 {
        self.site_cells(site).map(FleetCell::requests).sum()
    }

    /// Total carbon attributed to one site across the schedule.
    #[must_use]
    pub fn site_carbon(&self, site: usize) -> GramsCo2e {
        self.site_cells(site).map(FleetCell::carbon).sum()
    }

    /// The worst tail latency any cell of a site saw, ms.
    #[must_use]
    pub fn site_worst_tail_ms(&self, site: usize) -> f64 {
        self.site_cells(site)
            .map(FleetCell::tail_ms)
            .fold(0.0, f64::max)
    }

    fn site_cells(&self, site: usize) -> impl Iterator<Item = &FleetCell> {
        self.cells.iter().filter(move |c| c.site == site)
    }
}

/// A carbon-aware cloudlet fleet: sites, a schedule, a routing policy and
/// the run configuration.
#[derive(Debug, Clone)]
pub struct FleetSim {
    sites: Vec<FleetSite>,
    schedule: DiurnalSchedule,
    policy: RoutingPolicy,
    config: FleetConfig,
}

impl FleetSim {
    /// Assembles a fleet.
    ///
    /// # Panics
    ///
    /// Panics if there are no sites.
    #[must_use]
    pub fn new(
        sites: Vec<FleetSite>,
        schedule: DiurnalSchedule,
        policy: RoutingPolicy,
        config: FleetConfig,
    ) -> Self {
        assert!(!sites.is_empty(), "a fleet needs at least one site");
        Self {
            sites,
            schedule,
            policy,
            config,
        }
    }

    /// The same fleet under a different routing policy — sites (with
    /// their compiled simulations), schedule and configuration are kept,
    /// so policy comparisons do not repeat the setup work.
    #[must_use]
    pub fn with_policy(mut self, policy: RoutingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The fleet's sites.
    #[must_use]
    pub fn sites(&self) -> &[FleetSite] {
        &self.sites
    }

    /// The load schedule.
    #[must_use]
    pub fn schedule(&self) -> &DiurnalSchedule {
        &self.schedule
    }

    /// The routing plan for every window of the schedule. Assignments
    /// depend only on the schedule, the capacities and the intensity
    /// traces — never on measured results — so they are computed once, up
    /// front, and every cell simulation is independent.
    #[must_use]
    pub fn assignments(&self) -> Vec<WindowAssignment> {
        self.schedule
            .windows(self.config.windows_per_day)
            .iter()
            .map(|w| plan_window(self.policy, &self.sites, w))
            .collect()
    }

    /// Runs the fleet and returns the accounting grid.
    ///
    /// Cells fan out across scoped worker threads, strided so expensive
    /// peak-hour cells spread over workers; every worker writes its cells
    /// into pre-assigned slots and the totals are accumulated in cell
    /// order afterwards, so the result is bit-identical to a serial run.
    ///
    /// # Errors
    ///
    /// Propagates microsim errors (for example a request-type restriction
    /// the site's application does not define); with multiple failures the
    /// lowest-index cell's error wins.
    pub fn run(&self) -> Result<FleetResult, SimError> {
        self.run_with(&mut NoopRecorder)
    }

    /// [`FleetSim::run`] with routing tracing: one `route` event per
    /// (window, site) share the planner assigned traffic to, plus one
    /// per window for declined load, recorded into `recorder` on the
    /// serial side before the cell fan-out. The returned
    /// [`FleetResult`] is bit-identical to [`FleetSim::run`] for any
    /// recorder.
    ///
    /// # Errors
    ///
    /// Propagates microsim errors; with multiple failures the
    /// lowest-index cell's error wins.
    pub fn run_with<R: Recorder>(&self, recorder: &mut R) -> Result<FleetResult, SimError> {
        let windows = self.schedule.windows(self.config.windows_per_day);
        let assignments = self.assignments();
        if recorder.enabled() {
            for (w, assignment) in assignments.iter().enumerate() {
                let t = windows[w].start().seconds();
                for (s, site) in self.sites.iter().enumerate() {
                    let qps = assignment.site_mean_qps(s);
                    if qps > 0.0 {
                        recorder.event(
                            TraceEvent::new(EventKind::Route, t, site.name(), qps)
                                .with_detail(&format!("w{w}")),
                        );
                    }
                }
                let declined = assignment.declined_mean_qps();
                if declined > 0.0 {
                    recorder.event(
                        TraceEvent::new(EventKind::Route, t, "declined", declined)
                            .with_detail(&format!("w{w}")),
                    );
                }
            }
        }
        let sites = self.sites.len();
        let n = windows.len() * sites;
        let workers = self
            .config
            .parallelism
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, std::num::NonZero::get))
            .min(n)
            .max(1);

        let cell_inputs: Vec<(usize, usize)> = (0..n).map(|i| (i / sites, i % sites)).collect();
        let mut slots: Vec<Option<Result<FleetCell, SimError>>> = (0..n).map(|_| None).collect();
        if workers == 1 {
            for (slot, &(w, s)) in slots.iter_mut().zip(&cell_inputs) {
                *slot = Some(self.measure_cell(w, s, &windows[w], &assignments[w]));
            }
        } else {
            type CellSlot<'s> = (usize, usize, &'s mut Option<Result<FleetCell, SimError>>);
            let mut shares: Vec<Vec<CellSlot<'_>>> = (0..workers).map(|_| Vec::new()).collect();
            for (index, (slot, &(w, s))) in slots.iter_mut().zip(&cell_inputs).enumerate() {
                shares[index % workers].push((w, s, slot));
            }
            thread::scope(|scope| {
                for share in shares {
                    let windows = &windows;
                    let assignments = &assignments;
                    scope.spawn(move || {
                        for (w, s, slot) in share {
                            *slot = Some(self.measure_cell(w, s, &windows[w], &assignments[w]));
                        }
                    });
                }
            });
        }

        let mut cells = Vec::with_capacity(n);
        for slot in slots {
            cells.push(slot.ok_or(SimError::WorkerLost)??);
        }
        let mut total_requests = 0.0;
        let mut dropped_requests = 0.0;
        let mut total_operational = GramsCo2e::ZERO;
        let mut total_embodied = GramsCo2e::ZERO;
        for cell in &cells {
            total_requests += cell.requests;
            dropped_requests += cell.dropped_requests;
            total_operational += cell.operational;
            total_embodied += cell.embodied;
        }
        let window_duration = windows[0].duration();
        let declined_requests = assignments
            .iter()
            .map(|a| a.declined_mean_qps() * window_duration.seconds())
            .sum();
        Ok(FleetResult {
            policy: self.policy,
            site_names: self.sites.iter().map(|s| s.name().to_owned()).collect(),
            windows: windows.len(),
            window_duration,
            cells,
            declined_requests,
            dropped_requests,
            total_requests,
            total_operational,
            total_embodied,
        })
    }

    /// Simulates and accounts one (window, site) cell.
    ///
    /// Loaded cells run a representative microsim slice (warm-up at the
    /// window's start rate, then a ramp to its end rate) whose measured
    /// utilisation and latency are extrapolated to the window; idle cells
    /// skip the simulation but still pay idle power and amortised embodied
    /// carbon.
    fn measure_cell(
        &self,
        window_idx: usize,
        site_idx: usize,
        window: &LoadWindow,
        assignment: &WindowAssignment,
    ) -> Result<FleetCell, SimError> {
        let site = &self.sites[site_idx];
        let (qps_start, qps_end) = assignment.shares()[site_idx];
        let mean_qps = (qps_start + qps_end) / 2.0;
        let cell_index = index_u64(window_idx * self.sites.len() + site_idx);

        let (utilization, median_ms, tail_ms, drop_fraction) = if mean_qps > 0.0 {
            let warm = self.config.warmup_s;
            let slice = self.config.sim_slice_s;
            let request_type = site.request_type_name();
            let mut phases = Vec::with_capacity(2);
            if warm > 0.0 {
                phases.push(Phase::new(qps_start, warm, request_type));
            }
            phases.push(Phase::ramp(qps_start, qps_end, slice, request_type));
            let workload = Workload::phased(phases, decorrelate_seed(self.config.seed, cell_index));
            let metrics = site.sim().run(&workload)?;
            let stats = metrics.latency_stats_between(warm, warm + slice);
            // Whole-second boundaries (enforced by `FleetConfig`), so the
            // bucket range covers exactly the measured slice: no warm-up
            // work leaks in and no partial trailing bucket dilutes it.
            let from_bucket = floor_index(warm);
            let to_bucket = floor_index(warm + slice);
            let nodes = metrics.node_utilization();
            let utilization = nodes
                .iter()
                .map(|u| u.mean_percent_between(from_bucket, to_bucket))
                .sum::<f64>()
                / count_f64(nodes.len())
                / 100.0;
            // The slice's drop share extrapolates to the window the same
            // way latency and utilisation do (0.0 for zero-offered slices).
            let drop_fraction = metrics.drop_fraction_between(warm, warm + slice);
            (
                utilization,
                stats.median_ms().unwrap_or(0.0),
                stats.tail_ms().unwrap_or(0.0),
                drop_fraction,
            )
        } else {
            (0.0, 0.0, 0.0, 0.0)
        };

        let energy = site.power_at(utilization) * window.duration();
        let intensity = site
            .region()
            .mean_intensity_between(window.start(), window.end());
        let operational = intensity.emissions_for(energy) * site.operational_scale_factor();
        let embodied = site.embodied_over(window.duration());
        let offered = mean_qps * window.duration().seconds();
        Ok(FleetCell {
            window: window_idx,
            site: site_idx,
            qps_start: Qps::from_per_second(qps_start),
            qps_end: Qps::from_per_second(qps_end),
            requests: offered * (1.0 - drop_fraction),
            dropped_requests: offered * drop_fraction,
            utilization,
            median_ms: Millis::from_millis(median_ms),
            tail_ms: Millis::from_millis(tail_ms),
            energy,
            intensity,
            operational,
            embodied,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{flat_region, tiny_sim};
    use junkyard_carbon::units::Watts;

    fn site(name: &str, grams: f64, capacity: f64) -> FleetSite {
        FleetSite::new(name, &tiny_sim(), flat_region(grams), capacity)
            .power(Watts::new(2.0), Watts::new(14.0))
            .embodied(GramsCo2e::from_kilograms(3.0), TimeSpan::from_years(3.0))
    }

    fn quick_config() -> FleetConfig {
        FleetConfig::new()
            .windows_per_day(4)
            .sim_slice_s(1.0)
            .warmup_s(1.0)
    }

    #[test]
    fn fleet_run_accounts_every_cell() {
        let fleet = FleetSim::new(
            vec![site("clean", 100.0, 600.0), site("dirty", 400.0, 600.0)],
            DiurnalSchedule::office_day(500.0),
            RoutingPolicy::Static,
            quick_config(),
        );
        let result = fleet.run().unwrap();
        assert_eq!(result.windows(), 4);
        assert_eq!(result.cells().len(), 8);
        assert!(result.total_requests() > 0.0);
        assert!(result.grams_per_request().unwrap() > 0.0);
        // Loaded cells record utilisation and latency.
        let busy = result.cell(1, 0);
        assert!(busy.utilization() > 0.0);
        assert!(busy.median_ms() > 0.0);
        assert!(busy.tail_ms() >= busy.median_ms());
        // Energy never drops below idle for any cell.
        for cell in result.cells() {
            assert!(
                cell.energy().value()
                    >= (Watts::new(2.0) * result.window_duration()).value() - 1e-9
            );
        }
    }

    #[test]
    fn carbon_aware_beats_static_on_unequal_grids() {
        let sites = || vec![site("clean", 100.0, 900.0), site("dirty", 400.0, 900.0)];
        let schedule = DiurnalSchedule::office_day(700.0);
        let baseline = FleetSim::new(
            sites(),
            schedule.clone(),
            RoutingPolicy::Static,
            quick_config(),
        )
        .run()
        .unwrap();
        let aware = FleetSim::new(
            sites(),
            schedule,
            RoutingPolicy::carbon_aware(),
            quick_config(),
        )
        .run()
        .unwrap();
        assert!(
            aware.grams_per_request().unwrap() < baseline.grams_per_request().unwrap(),
            "aware {:?} vs static {:?}",
            aware.grams_per_request(),
            baseline.grams_per_request()
        );
        // Both policies served the same demand.
        assert!((aware.total_requests() - baseline.total_requests()).abs() < 1e-6);
    }

    #[test]
    fn threaded_run_is_identical_to_serial() {
        let fleet = |workers: usize| {
            FleetSim::new(
                vec![site("a", 150.0, 700.0), site("b", 350.0, 700.0)],
                DiurnalSchedule::office_day(600.0),
                RoutingPolicy::carbon_aware(),
                quick_config().parallelism(workers),
            )
            .run()
            .unwrap()
        };
        let serial = fleet(1);
        let threaded = fleet(4);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn idle_fleet_still_pays_idle_power_and_embodied() {
        let fleet = FleetSim::new(
            vec![site("a", 200.0, 500.0)],
            DiurnalSchedule::flat(0.0),
            RoutingPolicy::Static,
            quick_config(),
        );
        let result = fleet.run().unwrap();
        assert_eq!(result.total_requests(), 0.0);
        assert!(result.grams_per_request().is_none());
        assert!(result.total_operational().grams() > 0.0);
        assert!(result.total_embodied().grams() > 0.0);
        for cell in result.cells() {
            assert_eq!(cell.utilization(), 0.0);
            assert_eq!(cell.requests(), 0.0);
        }
    }

    #[test]
    fn bounded_queues_split_shed_into_declined_and_dropped() {
        use crate::site::FleetSite;
        use junkyard_microsim::sim::ServerModel;
        // Capacity cap far above the two-phone site's real knee: the
        // router assigns everything and the site drops the excess at its
        // bounded application queues.
        let bounded = tiny_sim().with_server_model(ServerModel::new().with_queue_size(Some(2)));
        let fleet = FleetSim::new(
            vec![FleetSite::new("hot", &bounded, flat_region(200.0), 5_000.0)
                .power(Watts::new(2.0), Watts::new(14.0))],
            DiurnalSchedule::flat(4_000.0),
            RoutingPolicy::Static,
            quick_config(),
        );
        let result = fleet.run().unwrap();
        assert_eq!(result.router_declined_requests(), 0.0);
        assert!(result.queue_dropped_requests() > 0.0);
        assert!(
            (result.shed_requests()
                - result.router_declined_requests()
                - result.queue_dropped_requests())
            .abs()
                < 1e-9 * result.shed_requests().max(1.0)
        );
        for cell in result.cells() {
            // Relative tolerance: these totals are ~1e8, where one ulp is
            // already ~1.5e-8.
            assert!(
                (cell.offered_requests() - cell.requests() - cell.dropped_requests()).abs()
                    < 1e-9 * cell.offered_requests().max(1.0)
            );
        }
        // The default unbounded model never queue-drops.
        let unbounded = FleetSim::new(
            vec![
                FleetSite::new("hot", &tiny_sim(), flat_region(200.0), 5_000.0)
                    .power(Watts::new(2.0), Watts::new(14.0)),
            ],
            DiurnalSchedule::flat(4_000.0),
            RoutingPolicy::Static,
            quick_config(),
        )
        .run()
        .unwrap();
        assert_eq!(unbounded.queue_dropped_requests(), 0.0);
        assert_eq!(
            unbounded.shed_requests(),
            unbounded.router_declined_requests()
        );
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn empty_fleet_panics() {
        let _ = FleetSim::new(
            vec![],
            DiurnalSchedule::flat(10.0),
            RoutingPolicy::Static,
            FleetConfig::new(),
        );
    }

    #[test]
    fn unknown_request_type_surfaces_as_an_error() {
        let bad = site("a", 200.0, 500.0).request_type("no-such-request");
        let fleet = FleetSim::new(
            vec![bad],
            DiurnalSchedule::flat(100.0),
            RoutingPolicy::Static,
            quick_config(),
        );
        assert!(matches!(
            fleet.run().unwrap_err(),
            SimError::UnknownRequestType(_)
        ));
    }
}
