//! Multi-year, day-stepped fleet lifecycle simulation.
//!
//! The paper's headline claim rests on *amortisation over time*: a
//! junk-phone cloudlet only beats a cloud instance on lifetime carbon if
//! the phones survive years of service, absorbing battery replacements
//! and device churn along the way (Sections 5–6). The other layers of
//! this crate each model one slice of that story — a day of smart
//! charging, one routing window of serving — and this module couples
//! them over a deployment lifetime:
//!
//! * every cohort site carries per-device [`BatteryState`]s whose wear is
//!   integrated day by day from the *simulated* smart-charging/discharge
//!   schedule (not a static replacement constant); worn packs are
//!   replaced and charged their embodied carbon on the day it happens;
//! * devices fail stochastically (seeded through [`decorrelate_seed`],
//!   so runs are deterministic at any worker count) and are replaced from
//!   junkyard stock after a configurable lag, each replacement charging
//!   its Reuse-Factor embodied share;
//! * grid traces extend periodically over the horizon
//!   ([`IntensityTrace::day_periodic`] tiling), and routing is re-planned
//!   every window from the cohort capacity actually alive that day;
//! * accounting cells are one *(year, site)* pair, fanned across scoped
//!   worker threads with the same order-preserving slot pattern as the
//!   sweep and fleet layers, so results are bit-identical serial or
//!   threaded.
//!
//! The serving measurements reuse the compiled microsim: within a cell,
//! identical `(start, end)` load windows share one measured slice (the
//! schedule repeats daily and capacities are piecewise-constant between
//! failure events, so the memo keeps multi-year horizons tractable).
//! While part of a cohort is down the full-strength compiled topology
//! still serves the slice and the measured utilisation is scaled by the
//! inverse alive fraction — latency during outages is therefore slightly
//! optimistic, which is acceptable for carbon accounting.

use std::collections::HashMap;
use std::thread;

use serde::{Deserialize, Serialize};

use junkyard_battery::charging::SmartChargePolicy;
use junkyard_battery::sim::simulate_day;
use junkyard_battery::state::BatteryState;
use junkyard_battery::trace_ext::DayStats;
use junkyard_carbon::convert::{count_f64, counts_ratio, floor_index, index_u64, unit_draw};
use junkyard_carbon::units::{CarbonIntensity, GramsCo2e, Millis, TimeSpan, Watts};
use junkyard_devices::battery::BatterySpec;
use junkyard_grid::trace::IntensityTrace;
use junkyard_microsim::compiled::CompiledSim;
use junkyard_microsim::sim::{Phase, SimError, Simulation, Workload};
use junkyard_microsim::sweep::decorrelate_seed;
use junkyard_obs::{ConservedLedger, EventKind, NoopRecorder, Recorder, TraceEvent};

use crate::faults::{resolve_window, FaultConfig, FaultPlan, ResiliencePolicy, WindowResolution};
use crate::routing::{plan_window_inputs, RoutingPolicy, SiteWindowInput, WindowAssignment};
use crate::schedule::{DiurnalSchedule, LoadWindow};
use crate::site::GridRegion;

/// Days per simulated year (the lifecycle steps whole days; leap days are
/// ignored like the paper's month-granular accounting).
pub const DAYS_PER_YEAR: usize = 365;

/// A site-builder configuration error: the requested option does not
/// apply to the site's backend kind, or a parameter is out of range. The
/// message says what to do instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteConfigError {
    message: String,
}

impl SiteConfigError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The actionable error message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for SiteConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SiteConfigError {}

/// One device slot of a cohort site: the phone model occupying it, its
/// battery, what a junkyard replacement costs in embodied carbon and what
/// the slot contributes to serving capacity and power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortDevice {
    model: String,
    serving_power: Watts,
    battery: BatterySpec,
    replacement_embodied: GramsCo2e,
    capacity_qps: f64,
    idle_power: Watts,
    dynamic_power: Watts,
}

impl CohortDevice {
    /// Creates a device slot. `serving_power` is the average draw the
    /// smart-charging schedule plans against; `replacement_embodied` is
    /// the second-life (Reuse-Factor) share charged each time this slot is
    /// refilled from junkyard stock; `capacity_qps` is the slot's share of
    /// the site's serving capacity.
    ///
    /// # Panics
    ///
    /// Panics if `serving_power` or `capacity_qps` is not strictly
    /// positive.
    #[must_use]
    pub fn new(
        model: impl Into<String>,
        serving_power: Watts,
        battery: BatterySpec,
        replacement_embodied: GramsCo2e,
        capacity_qps: f64,
    ) -> Self {
        assert!(
            serving_power.value() > 0.0,
            "serving power must be positive"
        );
        assert!(capacity_qps > 0.0, "device capacity must be positive");
        Self {
            model: model.into(),
            serving_power,
            battery,
            replacement_embodied,
            capacity_qps,
            idle_power: Watts::ZERO,
            dynamic_power: Watts::ZERO,
        }
    }

    /// Sets the slot's electrical power model: `idle` always drawn while
    /// the device is alive, `dynamic` added at 100 % utilisation.
    #[must_use]
    pub fn power(mut self, idle: Watts, dynamic: Watts) -> Self {
        self.idle_power = idle;
        self.dynamic_power = dynamic;
        self
    }

    /// The phone model occupying the slot.
    #[must_use]
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The slot's battery pack specification.
    #[must_use]
    pub fn battery(&self) -> BatterySpec {
        self.battery
    }

    /// The slot's share of the site's serving capacity, requests/second.
    #[must_use]
    pub fn capacity_qps(&self) -> f64 {
        self.capacity_qps
    }

    /// Embodied carbon charged when the slot is refilled from stock.
    #[must_use]
    pub fn replacement_embodied(&self) -> GramsCo2e {
        self.replacement_embodied
    }
}

/// How one lifecycle site is provisioned.
#[derive(Debug, Clone)]
enum Backend {
    /// A cohort of repurposed phones: per-device batteries, wear,
    /// failures and junkyard replacements.
    Cohort {
        devices: Vec<CohortDevice>,
        install_embodied: GramsCo2e,
        overhead_power: Watts,
        policy: SmartChargePolicy,
        mean_days_between_failures: f64,
        replacement_lag_days: usize,
    },
    /// Rented capacity (the cloud backend): fixed capacity, a fixed power
    /// model and embodied carbon amortised linearly over a lease lifetime.
    Leased {
        capacity_qps: f64,
        idle_power: Watts,
        dynamic_power: Watts,
        embodied: GramsCo2e,
        amortization: TimeSpan,
    },
}

/// One site of a lifecycle fleet: a compiled serving simulation, a grid
/// region (extended periodically over the horizon) and either a device
/// cohort or leased capacity.
#[derive(Debug, Clone)]
pub struct LifecycleSite {
    name: String,
    sim: CompiledSim,
    request_type: Option<String>,
    region: GridRegion,
    backend: Backend,
}

impl LifecycleSite {
    /// Creates a cohort site: `devices` drawn from the junkyard catalog
    /// serve `sim`'s traffic from `region`'s grid. `install_embodied` is
    /// charged on day 0 (the Reuse-Factor share of the initial cohort plus
    /// any new peripherals); batteries wear under the default
    /// smart-charging policy and failures are disabled until
    /// [`LifecycleSite::failures`] turns them on.
    ///
    /// # Panics
    ///
    /// Panics if the cohort is empty or the region's trace does not cover
    /// a whole number of days (at least one): periodic day tiling and the
    /// sample-level wrap-around of window means must agree over a
    /// multi-year horizon.
    #[must_use]
    pub fn cohort(
        name: impl Into<String>,
        sim: &Simulation,
        region: GridRegion,
        devices: Vec<CohortDevice>,
        install_embodied: GramsCo2e,
    ) -> Self {
        match Self::try_cohort(name, sim, region, devices, install_embodied) {
            Ok(site) => site,
            // lint:allow(panic-in-library): the documented panicking
            // facade over `try_cohort`, kept for tests and examples.
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`LifecycleSite::cohort`]: returns a typed
    /// [`SiteConfigError`] instead of panicking, for user-reachable
    /// configuration paths (study configs, the planner's search space).
    ///
    /// # Errors
    ///
    /// Returns an error if the cohort is empty, the region's trace does
    /// not cover a whole number of days (at least one), or the trace
    /// contains a non-finite intensity sample.
    pub fn try_cohort(
        name: impl Into<String>,
        sim: &Simulation,
        region: GridRegion,
        devices: Vec<CohortDevice>,
        install_embodied: GramsCo2e,
    ) -> Result<Self, SiteConfigError> {
        if devices.is_empty() {
            return Err(SiteConfigError::new(
                "a cohort needs at least one device — add CohortDevice entries or use a \
                 leased site",
            ));
        }
        Self::check_region(&region)?;
        Ok(Self {
            name: name.into(),
            sim: sim.compile(),
            request_type: None,
            region,
            backend: Backend::Cohort {
                devices,
                install_embodied,
                overhead_power: Watts::ZERO,
                policy: SmartChargePolicy::paper_default(),
                mean_days_between_failures: 0.0,
                replacement_lag_days: 0,
            },
        })
    }

    /// Creates a leased site (the datacenter backend): fixed
    /// `capacity_qps`, no power draw and no embodied carbon until the
    /// builders set them.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not strictly positive or the region's
    /// trace does not cover a whole number of days.
    #[must_use]
    pub fn leased(
        name: impl Into<String>,
        sim: &Simulation,
        region: GridRegion,
        capacity_qps: f64,
    ) -> Self {
        match Self::try_leased(name, sim, region, capacity_qps) {
            Ok(site) => site,
            // lint:allow(panic-in-library): the documented panicking
            // facade over `try_leased`, kept for tests and examples.
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`LifecycleSite::leased`]: returns a typed
    /// [`SiteConfigError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns an error if the capacity is not strictly positive and
    /// finite, the region's trace does not cover a whole number of days,
    /// or the trace contains a non-finite intensity sample.
    pub fn try_leased(
        name: impl Into<String>,
        sim: &Simulation,
        region: GridRegion,
        capacity_qps: f64,
    ) -> Result<Self, SiteConfigError> {
        if !(capacity_qps > 0.0 && capacity_qps.is_finite()) {
            return Err(SiteConfigError::new(format!(
                "site capacity must be positive and finite, got {capacity_qps}"
            )));
        }
        Self::check_region(&region)?;
        Ok(Self {
            name: name.into(),
            sim: sim.compile(),
            request_type: None,
            region,
            backend: Backend::Leased {
                capacity_qps,
                idle_power: Watts::ZERO,
                dynamic_power: Watts::ZERO,
                embodied: GramsCo2e::ZERO,
                amortization: TimeSpan::from_years(3.0),
            },
        })
    }

    /// Shared `try_*` validation: whole-day trace coverage (periodic day
    /// tiling and sample-level wrap-around of window means must agree
    /// over a multi-year horizon) and finite intensity samples.
    fn check_region(region: &GridRegion) -> Result<(), SiteConfigError> {
        let days = region.trace().duration().days();
        if !(days >= 1.0 - 1e-9 && (days - days.round()).abs() < 1e-9) {
            return Err(SiteConfigError::new(format!(
                "a lifecycle region trace must cover a whole number of days, got {days}"
            )));
        }
        if let Some(pos) = region
            .trace()
            .values()
            .iter()
            .position(|v| !v.grams_per_kwh().is_finite())
        {
            return Err(SiteConfigError::new(format!(
                "region trace sample {pos} is not finite — carbon accounting would poison \
                 every window mean"
            )));
        }
        Ok(())
    }

    /// Restricts the site's workload to a single request type.
    #[must_use]
    pub fn request_type(mut self, name: impl Into<String>) -> Self {
        self.request_type = Some(name.into());
        self
    }

    /// Sets a cohort site's always-on overhead draw (server fan, switch).
    ///
    /// # Panics
    ///
    /// Panics on a leased site.
    #[must_use]
    pub fn overhead_power(mut self, power: Watts) -> Self {
        match &mut self.backend {
            Backend::Cohort { overhead_power, .. } => *overhead_power = power,
            Backend::Leased { .. } => panic!("overhead power applies to cohort sites"),
        }
        self
    }

    /// Overrides a cohort site's smart-charging policy.
    ///
    /// # Panics
    ///
    /// Panics on a leased site.
    #[must_use]
    pub fn charge_policy(mut self, new_policy: SmartChargePolicy) -> Self {
        match &mut self.backend {
            Backend::Cohort { policy, .. } => *policy = new_policy,
            Backend::Leased { .. } => panic!("charging policy applies to cohort sites"),
        }
        self
    }

    /// Enables stochastic device failures on a cohort site: each alive
    /// device fails with daily hazard `1 - exp(-1 / mean_days)` and its
    /// slot stays empty for `lag_days` whole days before a junkyard
    /// replacement (fresh pack included free with the donor) takes over,
    /// charging the slot's Reuse-Factor embodied share.
    ///
    /// # Errors
    ///
    /// Returns a [`SiteConfigError`] on a leased site (leased backends
    /// have no device slots to fail — model their unavailability with a
    /// [`crate::faults::FaultConfig`] grid outage instead) or when
    /// `mean_days` is not strictly positive.
    pub fn failures(mut self, mean_days: f64, lag_days: usize) -> Result<Self, SiteConfigError> {
        if mean_days <= 0.0 || !mean_days.is_finite() {
            return Err(SiteConfigError::new(format!(
                "failures({mean_days}, {lag_days}) on site '{}': the mean days \
                 between failures must be a positive finite number",
                self.name
            )));
        }
        match &mut self.backend {
            Backend::Cohort {
                mean_days_between_failures,
                replacement_lag_days,
                ..
            } => {
                *mean_days_between_failures = mean_days;
                *replacement_lag_days = lag_days;
            }
            Backend::Leased { .. } => {
                return Err(SiteConfigError::new(format!(
                    "failures({mean_days}, {lag_days}) on site '{}': stochastic \
                     device failures apply to cohort sites only — a leased backend \
                     has no device slots to fail. Model a leased site's \
                     unavailability with a `FaultConfig` grid outage instead",
                    self.name
                )));
            }
        }
        Ok(self)
    }

    /// Sets a leased site's power model.
    ///
    /// # Panics
    ///
    /// Panics on a cohort site (cohort power comes from its devices).
    #[must_use]
    pub fn power(mut self, idle: Watts, dynamic: Watts) -> Self {
        match &mut self.backend {
            Backend::Leased {
                idle_power,
                dynamic_power,
                ..
            } => {
                *idle_power = idle;
                *dynamic_power = dynamic;
            }
            Backend::Cohort { .. } => panic!("cohort power comes from its devices"),
        }
        self
    }

    /// Sets a leased site's embodied carbon and its amortisation lifetime.
    ///
    /// # Panics
    ///
    /// Panics on a cohort site or if the lifetime is not strictly
    /// positive.
    #[must_use]
    pub fn embodied(mut self, total: GramsCo2e, lifetime: TimeSpan) -> Self {
        assert!(
            lifetime.seconds() > 0.0,
            "amortisation lifetime must be positive"
        );
        match &mut self.backend {
            Backend::Leased {
                embodied,
                amortization,
                ..
            } => {
                *embodied = total;
                *amortization = lifetime;
            }
            Backend::Cohort { .. } => panic!("cohort embodied carbon accrues from events"),
        }
        self
    }

    /// Site name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The grid region powering the site.
    #[must_use]
    pub fn region(&self) -> &GridRegion {
        &self.region
    }

    /// Serving capacity with every device alive, requests/second.
    #[must_use]
    pub fn full_capacity_qps(&self) -> f64 {
        match &self.backend {
            Backend::Cohort { devices, .. } => devices.iter().map(CohortDevice::capacity_qps).sum(),
            Backend::Leased { capacity_qps, .. } => *capacity_qps,
        }
    }

    /// Number of device slots (zero for leased sites).
    #[must_use]
    pub fn device_count(&self) -> usize {
        match &self.backend {
            Backend::Cohort { devices, .. } => devices.len(),
            Backend::Leased { .. } => 0,
        }
    }
}

/// Tunables of a lifecycle run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifecycleConfig {
    years: usize,
    horizon_days: Option<usize>,
    windows_per_day: usize,
    sim_slice_s: f64,
    warmup_s: f64,
    seed: u64,
    parallelism: Option<usize>,
}

impl LifecycleConfig {
    /// Defaults for `years` simulated years: six 4-hour routing windows
    /// per day, a 1-second measured slice after a 1-second warm-up, seed
    /// 42, machine parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `years` is zero.
    #[must_use]
    pub fn new(years: usize) -> Self {
        assert!(years > 0, "the lifecycle needs at least one year");
        Self {
            years,
            horizon_days: None,
            windows_per_day: 6,
            sim_slice_s: 1.0,
            warmup_s: 1.0,
            seed: 42,
            parallelism: None,
        }
    }

    /// Overrides the horizon with an exact number of days instead of whole
    /// years — the planner's coarse-fidelity knob: a candidate deployment
    /// can be screened on a few simulated days before the survivors earn a
    /// multi-year run. Accounting cells still cover at most one year each;
    /// the last cell is simply shorter.
    ///
    /// # Panics
    ///
    /// Panics if `days` is zero.
    #[must_use]
    pub fn horizon_days(mut self, days: usize) -> Self {
        assert!(days > 0, "the lifecycle needs at least one day");
        self.horizon_days = Some(days);
        self
    }

    /// Sets the number of routing/accounting windows per day.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn windows_per_day(mut self, windows_per_day: usize) -> Self {
        assert!(windows_per_day > 0, "need at least one window per day");
        self.windows_per_day = windows_per_day;
        self
    }

    /// Sets the measured length of each microsim slice (whole seconds —
    /// the engine buckets utilisation per second).
    ///
    /// # Panics
    ///
    /// Panics if not a strictly positive whole number of seconds.
    #[must_use]
    pub fn sim_slice_s(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "slice duration must be positive");
        assert!(
            seconds.fract() == 0.0,
            "slice duration must be a whole number of seconds (1-second utilisation buckets)"
        );
        self.sim_slice_s = seconds;
        self
    }

    /// Sets the warm-up excluded from each slice's measurements (whole
    /// seconds).
    ///
    /// # Panics
    ///
    /// Panics if negative or not a whole number of seconds.
    #[must_use]
    pub fn warmup_s(mut self, seconds: f64) -> Self {
        assert!(seconds >= 0.0, "warm-up cannot be negative");
        assert!(
            seconds.fract() == 0.0,
            "warm-up must be a whole number of seconds (1-second utilisation buckets)"
        );
        self.warmup_s = seconds;
        self
    }

    /// Sets the root seed; failure draws and workload seeds are mixed
    /// from it with [`decorrelate_seed`].
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of worker threads; `1` forces a serial run.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn parallelism(mut self, workers: usize) -> Self {
        assert!(workers > 0, "a lifecycle run needs at least one worker");
        self.parallelism = Some(workers);
        self
    }

    /// Simulated years.
    #[must_use]
    pub fn years(&self) -> usize {
        self.years
    }

    /// Simulated days of the horizon: the explicit day override when set,
    /// otherwise `years * 365`.
    #[must_use]
    pub fn total_days(&self) -> usize {
        self.horizon_days.unwrap_or(self.years * DAYS_PER_YEAR)
    }
}

/// The per-day state of one site, produced by the serial dynamics pass:
/// who is alive, what the site can serve, what its power model looks like
/// and what embodied carbon the day's events charged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayDynamics {
    alive: usize,
    capacity_qps: f64,
    idle_power: Watts,
    dynamic_power: Watts,
    /// Always-on draw with no battery behind it (fan, switch): billed at
    /// the grid's intensity unscaled, because smart charging cannot
    /// time-shift it.
    overhead_power: Watts,
    utilization_scale: f64,
    operational_scale: f64,
    embodied: GramsCo2e,
    battery_replacements: u32,
    device_failures: u32,
    devices_replaced: u32,
}

impl DayDynamics {
    /// Devices alive at the start of the day (zero for leased sites).
    #[must_use]
    pub fn alive(&self) -> usize {
        self.alive
    }

    /// Serving capacity available to the router that day.
    #[must_use]
    pub fn capacity_qps(&self) -> f64 {
        self.capacity_qps
    }

    /// Operational-carbon scale earned by the day's simulated
    /// smart-charging schedule (1.0 for leased sites and flat grids).
    #[must_use]
    pub fn operational_scale(&self) -> f64 {
        self.operational_scale
    }

    /// Embodied carbon charged to the day (install, battery packs, device
    /// replacements, or the leased amortisation slice).
    #[must_use]
    pub fn embodied(&self) -> GramsCo2e {
        self.embodied
    }

    /// Worn-out battery packs replaced during the day.
    #[must_use]
    pub fn battery_replacements(&self) -> u32 {
        self.battery_replacements
    }

    /// Devices that failed at the end of the day.
    #[must_use]
    pub fn device_failures(&self) -> u32 {
        self.device_failures
    }

    /// Failed slots refilled from junkyard stock at the start of the day.
    #[must_use]
    pub fn devices_replaced(&self) -> u32 {
        self.devices_replaced
    }
}

/// The per-day ledger merged across a fleet: what the day served and
/// emitted, for cumulative (lifetime-amortised) trajectories at day
/// granularity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayLedger {
    requests: f64,
    operational: GramsCo2e,
    embodied: GramsCo2e,
    #[serde(default)]
    retry: GramsCo2e,
}

impl DayLedger {
    /// Requests served during the day.
    #[must_use]
    pub fn requests(&self) -> f64 {
        self.requests
    }

    /// Operational carbon of the day.
    #[must_use]
    pub fn operational(&self) -> GramsCo2e {
        self.operational
    }

    /// Embodied carbon charged to the day.
    #[must_use]
    pub fn embodied(&self) -> GramsCo2e {
        self.embodied
    }

    /// Network and marginal-compute carbon of the day's retries, hedges
    /// and degraded serving (zero on a fault-free run).
    #[must_use]
    pub fn retry_carbon(&self) -> GramsCo2e {
        self.retry
    }

    /// Total carbon of the day.
    #[must_use]
    pub fn carbon(&self) -> GramsCo2e {
        self.operational + self.embodied + self.retry
    }
}

/// One (year, site) cell of the lifecycle accounting grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleCell {
    year: usize,
    site: usize,
    requests: f64,
    #[serde(default)]
    dropped_requests: f64,
    operational: GramsCo2e,
    embodied: GramsCo2e,
    #[serde(default)]
    retry_carbon: GramsCo2e,
    battery_replacements: u32,
    device_failures: u32,
    devices_replaced: u32,
    mean_alive: f64,
    worst_median_ms: Millis,
    worst_tail_ms: Millis,
    worst_p99_ms: Millis,
    daily: Vec<DayLedger>,
}

impl LifecycleCell {
    /// Year index of the cell (0-based).
    #[must_use]
    pub fn year(&self) -> usize {
        self.year
    }

    /// Site index of the cell.
    #[must_use]
    pub fn site(&self) -> usize {
        self.site
    }

    /// Requests the site served during the year (assigned demand minus
    /// the slice-measured queue-drop share).
    #[must_use]
    pub fn requests(&self) -> f64 {
        self.requests
    }

    /// Requests the site accepted but dropped at bounded application
    /// queues during the year (zero under the default unbounded
    /// `ServerModel`).
    #[must_use]
    pub fn dropped_requests(&self) -> f64 {
        self.dropped_requests
    }

    /// Operational carbon of the year.
    #[must_use]
    pub fn operational(&self) -> GramsCo2e {
        self.operational
    }

    /// Embodied carbon charged during the year (install on day 0, battery
    /// packs, device replacements, leased amortisation slices).
    #[must_use]
    pub fn embodied(&self) -> GramsCo2e {
        self.embodied
    }

    /// Network and marginal-compute carbon of retries, hedges and
    /// degraded serving charged to the site during the year (zero on a
    /// fault-free run).
    #[must_use]
    pub fn retry_carbon(&self) -> GramsCo2e {
        self.retry_carbon
    }

    /// Total carbon of the cell.
    #[must_use]
    pub fn carbon(&self) -> GramsCo2e {
        self.operational + self.embodied + self.retry_carbon
    }

    /// Battery packs replaced during the year.
    #[must_use]
    pub fn battery_replacements(&self) -> u32 {
        self.battery_replacements
    }

    /// Device failures during the year.
    #[must_use]
    pub fn device_failures(&self) -> u32 {
        self.device_failures
    }

    /// Failed slots refilled from junkyard stock during the year.
    #[must_use]
    pub fn devices_replaced(&self) -> u32 {
        self.devices_replaced
    }

    /// Mean devices alive across the year (zero for leased sites).
    #[must_use]
    pub fn mean_alive(&self) -> f64 {
        self.mean_alive
    }

    /// The worst measured median latency of the year's slices, ms.
    #[must_use]
    pub fn worst_median_ms(&self) -> f64 {
        self.worst_median_ms.millis()
    }

    /// The worst measured tail (90th percentile) latency of the year's
    /// slices, ms.
    #[must_use]
    pub fn worst_tail_ms(&self) -> f64 {
        self.worst_tail_ms.millis()
    }

    /// The worst measured 99th-percentile latency of the year's slices,
    /// ms.
    #[must_use]
    pub fn worst_p99_ms(&self) -> f64 {
        self.worst_p99_ms.millis()
    }

    /// The site's per-day ledger for the year.
    #[must_use]
    pub fn daily(&self) -> &[DayLedger] {
        &self.daily
    }
}

/// The serving health of one routing window: what the router assigned to
/// sites, what was actually delivered (including retries, hedges and
/// degraded serving), and what finally failed. Request counts, not rates;
/// queue drops are accounted separately in the cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowHealth {
    offered: f64,
    served: f64,
    failed: f64,
}

impl WindowHealth {
    /// Requests the router assigned to sites during the window.
    #[must_use]
    pub fn offered(&self) -> f64 {
        self.offered
    }

    /// Requests delivered during the window (first attempts plus
    /// retries, hedges, reroutes and brown-out serving).
    #[must_use]
    pub fn served(&self) -> f64 {
        self.served
    }

    /// Requests that failed during the window after the whole
    /// retry/degradation ladder.
    #[must_use]
    pub fn failed(&self) -> f64 {
        self.failed
    }

    /// The window's success rate: delivered over assigned (1.0 for an
    /// idle window).
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.offered > 0.0 {
            (self.offered - self.failed) / self.offered
        } else {
            1.0
        }
    }
}

/// Result of a lifecycle run: the (year, site) accounting grid, a
/// fleet-wide per-day ledger and lifetime totals.
///
/// lint: conserved — every numeric field below must be pinned by a test
/// under `tests/` (the conservation audit fails otherwise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleResult {
    policy: RoutingPolicy,
    site_names: Vec<String>,
    years: usize,
    /// Year-major: `cells[year * sites + site]`.
    cells: Vec<LifecycleCell>,
    day_ledger: Vec<DayLedger>,
    declined_requests: f64,
    #[serde(default)]
    dropped_requests: f64,
    total_requests: f64,
    total_operational: GramsCo2e,
    total_embodied: GramsCo2e,
    #[serde(default)]
    failed_requests: f64,
    #[serde(default)]
    retried_ok_requests: f64,
    #[serde(default)]
    hedged_requests: f64,
    #[serde(default)]
    rerouted_requests: f64,
    #[serde(default)]
    brownout_requests: f64,
    #[serde(default)]
    low_priority_shed_requests: f64,
    #[serde(default)]
    total_retry_carbon: GramsCo2e,
    #[serde(default)]
    window_health: Vec<WindowHealth>,
    #[serde(default)]
    horizon_seconds: f64,
}

impl LifecycleResult {
    /// The routing policy the run used.
    #[must_use]
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Site names, in cell order.
    #[must_use]
    pub fn site_names(&self) -> &[String] {
        &self.site_names
    }

    /// Simulated years.
    #[must_use]
    pub fn years(&self) -> usize {
        self.years
    }

    /// The full accounting grid, year-major.
    #[must_use]
    pub fn cells(&self) -> &[LifecycleCell] {
        &self.cells
    }

    /// The cell of one (year, site) pair.
    #[must_use]
    pub fn cell(&self, year: usize, site: usize) -> &LifecycleCell {
        &self.cells[year * self.site_names.len() + site]
    }

    /// The fleet-wide per-day ledger (length `years * 365`).
    #[must_use]
    pub fn day_ledger(&self) -> &[DayLedger] {
        &self.day_ledger
    }

    /// Requests the router could not place anywhere over the horizon
    /// (demand beyond the fleet's aggregate capacity cap).
    #[must_use]
    pub fn router_declined_requests(&self) -> f64 {
        self.declined_requests
    }

    /// Requests sites accepted but dropped at bounded application queues
    /// over the horizon (zero under the default unbounded `ServerModel`).
    #[must_use]
    pub fn queue_dropped_requests(&self) -> f64 {
        self.dropped_requests
    }

    /// Requests deliberately lost anywhere: router-declined plus
    /// queue-dropped plus low-priority shed from the degradation ladder
    /// — the historical "shed" total. The components are reported
    /// separately by [`Self::router_declined_requests`],
    /// [`Self::queue_dropped_requests`] and
    /// [`Self::low_priority_shed_requests`]. Requests that *failed*
    /// (landed on dead capacity and exhausted the ladder) are not shed —
    /// see [`Self::failed_requests`].
    #[must_use]
    pub fn shed_requests(&self) -> f64 {
        self.declined_requests + self.dropped_requests + self.low_priority_shed_requests
    }

    /// Requests that failed over the horizon: sent to capacity that was
    /// not actually there (stale health view) and not recovered by
    /// retries, hedging or the degradation ladder. Zero on a fault-free
    /// run.
    #[must_use]
    pub fn failed_requests(&self) -> f64 {
        self.failed_requests
    }

    /// Requests recovered by client retries over the horizon.
    #[must_use]
    pub fn retried_ok_requests(&self) -> f64 {
        self.retried_ok_requests
    }

    /// Requests recovered by hedging to the standby fallback site.
    #[must_use]
    pub fn hedged_requests(&self) -> f64 {
        self.hedged_requests
    }

    /// Requests recovered by the operator reroute rung.
    #[must_use]
    pub fn rerouted_requests(&self) -> f64 {
        self.rerouted_requests
    }

    /// Requests served at degraded quality by the brown-out rung.
    #[must_use]
    pub fn brownout_requests(&self) -> f64 {
        self.brownout_requests
    }

    /// Requests shed as low-priority by the degradation ladder.
    #[must_use]
    pub fn low_priority_shed_requests(&self) -> f64 {
        self.low_priority_shed_requests
    }

    /// Network and marginal-compute carbon of every retry, hedge and
    /// degraded serving attempt over the horizon — the explicit carbon
    /// price of the resilience machinery, kept out of
    /// [`Self::total_operational`] so it is separately attributable.
    #[must_use]
    pub fn total_retry_carbon(&self) -> GramsCo2e {
        self.total_retry_carbon
    }

    /// Everything the schedule offered over the horizon, reconstructed
    /// from the conserved buckets: served + declined + queue-dropped +
    /// low-priority shed + failed.
    #[must_use]
    pub fn offered_requests(&self) -> f64 {
        self.total_requests
            + self.declined_requests
            + self.dropped_requests
            + self.low_priority_shed_requests
            + self.failed_requests
    }

    /// Request availability over the horizon: the fraction of requests
    /// assigned to sites that did not fail (1.0 when nothing was
    /// assigned). Declines are capacity planning, not failures, so they
    /// do not count against availability.
    #[must_use]
    pub fn availability(&self) -> f64 {
        let assigned = self.total_requests
            + self.dropped_requests
            + self.low_priority_shed_requests
            + self.failed_requests;
        if assigned > 0.0 {
            1.0 - self.failed_requests / assigned
        } else {
            1.0
        }
    }

    /// The simulated horizon in seconds (window count times window
    /// duration).
    #[must_use]
    pub fn horizon_seconds(&self) -> f64 {
        self.horizon_seconds
    }

    /// The per-window serving health series (one entry per routing
    /// window; all-healthy on a fault-free run).
    #[must_use]
    pub fn window_health(&self) -> &[WindowHealth] {
        &self.window_health
    }

    /// Per-window success rates, in window order.
    #[must_use]
    pub fn window_success_rates(&self) -> Vec<f64> {
        self.window_health
            .iter()
            .map(WindowHealth::success_rate)
            .collect()
    }

    /// Number of downtime windows: windows whose success rate fell
    /// strictly below `threshold` (e.g. `0.5` for majority-failed).
    #[must_use]
    pub fn downtime_windows(&self, threshold: f64) -> usize {
        self.window_health
            .iter()
            .filter(|h| h.success_rate() < threshold)
            .count()
    }

    /// Goodput: successfully served requests per second of horizon.
    #[must_use]
    pub fn goodput_qps(&self) -> f64 {
        if self.horizon_seconds > 0.0 {
            self.total_requests / self.horizon_seconds
        } else {
            0.0
        }
    }

    /// Requests served across the fleet and the horizon.
    #[must_use]
    pub fn total_requests(&self) -> f64 {
        self.total_requests
    }

    /// Lifetime operational carbon.
    #[must_use]
    pub fn total_operational(&self) -> GramsCo2e {
        self.total_operational
    }

    /// Lifetime embodied carbon.
    #[must_use]
    pub fn total_embodied(&self) -> GramsCo2e {
        self.total_embodied
    }

    /// Lifetime total carbon, the retry/hedge carbon included.
    #[must_use]
    pub fn total_carbon(&self) -> GramsCo2e {
        self.total_operational + self.total_embodied + self.total_retry_carbon
    }

    /// Lifetime-amortised grams of CO2e per served request, or `None` if
    /// nothing was served.
    #[must_use]
    pub fn grams_per_request(&self) -> Option<f64> {
        if self.total_requests > 0.0 {
            Some(self.total_carbon().grams() / self.total_requests)
        } else {
            None
        }
    }

    /// Cumulative (lifetime-amortised) grams per request through the end
    /// of day `day` (0-based), or `None` if nothing was served yet.
    #[must_use]
    pub fn grams_per_request_through_day(&self, day: usize) -> Option<f64> {
        let mut requests = 0.0;
        let mut carbon = 0.0;
        for ledger in &self.day_ledger[..=day.min(self.day_ledger.len() - 1)] {
            requests += ledger.requests();
            carbon += ledger.carbon().grams();
        }
        if requests > 0.0 {
            Some(carbon / requests)
        } else {
            None
        }
    }

    /// The Figure 7-style amortised trajectory: cumulative gCO2e/request
    /// through the end of each year, as `(years_elapsed, grams)` points.
    #[must_use]
    pub fn yearly_trajectory(&self) -> Vec<(f64, f64)> {
        let mut requests = 0.0;
        let mut carbon = 0.0;
        let mut points = Vec::with_capacity(self.years);
        for year in 0..self.years {
            for site in 0..self.site_names.len() {
                let cell = self.cell(year, site);
                requests += cell.requests();
                carbon += cell.carbon().grams();
            }
            if requests > 0.0 {
                points.push((count_f64(year + 1), carbon / requests));
            }
        }
        points
    }

    /// The first day whose cumulative amortised carbon per request is
    /// strictly below `other`'s, or `None` if it never crosses: the
    /// crossover day of a cloudlet-versus-datacenter comparison.
    #[must_use]
    pub fn first_day_cheaper_than(&self, other: &LifecycleResult) -> Option<usize> {
        let days = self.day_ledger.len().min(other.day_ledger.len());
        let (mut req_a, mut co2_a, mut req_b, mut co2_b) = (0.0, 0.0, 0.0, 0.0);
        for day in 0..days {
            req_a += self.day_ledger[day].requests();
            co2_a += self.day_ledger[day].carbon().grams();
            req_b += other.day_ledger[day].requests();
            co2_b += other.day_ledger[day].carbon().grams();
            if req_a > 0.0 && req_b > 0.0 && co2_a / req_a < co2_b / req_b {
                return Some(day);
            }
        }
        None
    }

    /// The worst measured median latency across every cell, ms — the
    /// planner's median-SLO hook.
    ///
    /// Slices are measured on the full-strength topology even on days
    /// when part of a cohort is down (only utilisation is rescaled by
    /// the alive fraction — see the module docs), so outage-day
    /// latencies are optimistic. Capacity-driven effects still register:
    /// routing re-plans against the alive capacity, and overload shows
    /// up as shed. This caveat applies to all three `worst_*` hooks.
    #[must_use]
    pub fn worst_median_ms(&self) -> f64 {
        self.cells
            .iter()
            .map(LifecycleCell::worst_median_ms)
            .fold(0.0, f64::max)
    }

    /// The worst measured tail (90th percentile) latency across every
    /// cell, ms — the planner's tail-SLO hook.
    #[must_use]
    pub fn worst_tail_ms(&self) -> f64 {
        self.cells
            .iter()
            .map(LifecycleCell::worst_tail_ms)
            .fold(0.0, f64::max)
    }

    /// The worst measured 99th-percentile latency across every cell, ms.
    #[must_use]
    pub fn worst_p99_ms(&self) -> f64 {
        self.cells
            .iter()
            .map(LifecycleCell::worst_p99_ms)
            .fold(0.0, f64::max)
    }

    /// Fraction of the offered demand lost anywhere — router-declined or
    /// queue-dropped — out of everything offered (0 when nothing was
    /// offered). The planner's shed-ceiling hook; under the default
    /// unbounded `ServerModel` it reduces to the router-declined fraction.
    #[must_use]
    pub fn shed_fraction(&self) -> f64 {
        let offered = self.total_requests + self.shed_requests();
        if offered > 0.0 {
            self.shed_requests() / offered
        } else {
            0.0
        }
    }

    /// Battery packs replaced across the fleet and the horizon.
    #[must_use]
    pub fn total_battery_replacements(&self) -> u32 {
        self.cells
            .iter()
            .map(LifecycleCell::battery_replacements)
            .sum()
    }

    /// Device failures across the fleet and the horizon.
    #[must_use]
    pub fn total_device_failures(&self) -> u32 {
        self.cells.iter().map(LifecycleCell::device_failures).sum()
    }

    /// Failed slots refilled from junkyard stock across the horizon.
    #[must_use]
    pub fn total_devices_replaced(&self) -> u32 {
        self.cells.iter().map(LifecycleCell::devices_replaced).sum()
    }
}

/// What one memoised microsim slice measured: the utilisation that prices
/// the window's energy, the latency percentiles the SLO hooks track, and
/// the fraction of accepted requests dropped at bounded queues.
#[derive(Debug, Clone, Copy)]
struct SliceMeasure {
    utilization: f64,
    median_ms: f64,
    tail_ms: f64,
    p99_ms: f64,
    drop_fraction: f64,
}

/// The runtime state of one cohort slot during the dynamics pass.
#[derive(Debug, Clone, Copy)]
struct SlotState {
    battery: BatteryState,
    /// `Some(day)` while the slot is down: it refills at the start of
    /// `day`.
    down_until: Option<usize>,
}

/// A multi-year fleet lifecycle simulation.
#[derive(Debug, Clone)]
pub struct LifecycleSim {
    sites: Vec<LifecycleSite>,
    schedule: DiurnalSchedule,
    policy: RoutingPolicy,
    config: LifecycleConfig,
    faults: Option<FaultConfig>,
    resilience: Option<ResiliencePolicy>,
}

impl LifecycleSim {
    /// Assembles a lifecycle run. `schedule`'s day curve is repeated over
    /// the whole horizon (its own day count is overridden).
    ///
    /// # Panics
    ///
    /// Panics if there are no sites.
    #[must_use]
    pub fn new(
        sites: Vec<LifecycleSite>,
        schedule: DiurnalSchedule,
        policy: RoutingPolicy,
        config: LifecycleConfig,
    ) -> Self {
        assert!(!sites.is_empty(), "a lifecycle needs at least one site");
        Self {
            sites,
            schedule,
            policy,
            config,
            faults: None,
            resilience: None,
        }
    }

    /// Injects a correlated fault schedule: a deterministic
    /// [`FaultPlan`] of grid outages, firmware-batch failures and
    /// thermal shutdowns is generated from `config` (seeded from the run
    /// seed) and applied on top of the per-device daily dynamics. A
    /// disabled config is exactly equivalent to no faults at all —
    /// bit-identical results.
    #[must_use]
    pub fn with_faults(mut self, config: FaultConfig) -> Self {
        self.faults = Some(config);
        self
    }

    /// Installs the failure-aware serving policy: health-view detection
    /// lag, client retries/hedging and the operator degradation ladder.
    /// Without faults and without a standby fallback site this changes
    /// nothing — results stay bit-identical to the plain run.
    ///
    /// # Panics
    ///
    /// Panics if the policy names a fallback site index out of range.
    #[must_use]
    pub fn with_resilience(mut self, policy: ResiliencePolicy) -> Self {
        if let Some(site) = policy.fallback() {
            assert!(
                site < self.sites.len(),
                "fallback site index {site} out of range ({} sites)",
                self.sites.len()
            );
        }
        self.resilience = Some(policy);
        self
    }

    /// The fleet's sites.
    #[must_use]
    pub fn sites(&self) -> &[LifecycleSite] {
        &self.sites
    }

    /// The run configuration.
    #[must_use]
    pub fn config(&self) -> &LifecycleConfig {
        &self.config
    }

    /// The serial dynamics pass for one site: day-stepped battery wear
    /// under the smart-charging schedule, pack replacements, stochastic
    /// failures and junkyard refills. Deterministic for a given seed —
    /// worker threads never touch this state.
    fn simulate_dynamics(&self, site_index: usize, days: usize) -> Vec<DayDynamics> {
        let site = &self.sites[site_index];
        match &site.backend {
            Backend::Leased {
                capacity_qps,
                idle_power,
                dynamic_power,
                embodied,
                amortization,
            } => {
                let daily_embodied =
                    *embodied * (TimeSpan::from_days(1.0).seconds() / amortization.seconds());
                (0..days)
                    .map(|_| DayDynamics {
                        alive: 0,
                        capacity_qps: *capacity_qps,
                        idle_power: *idle_power,
                        dynamic_power: *dynamic_power,
                        overhead_power: Watts::ZERO,
                        utilization_scale: 1.0,
                        operational_scale: 1.0,
                        embodied: daily_embodied,
                        battery_replacements: 0,
                        device_failures: 0,
                        devices_replaced: 0,
                    })
                    .collect()
            }
            Backend::Cohort {
                devices,
                install_embodied,
                overhead_power,
                policy,
                mean_days_between_failures,
                replacement_lag_days,
            } => {
                let trace = site.region().trace();
                let trace_days = trace.day_count();
                let day_traces: Vec<IntensityTrace> =
                    (0..trace_days).filter_map(|d| trace.day(d)).collect();
                let day_stats: Vec<DayStats> =
                    day_traces.iter().map(DayStats::from_trace).collect();

                let site_seed = decorrelate_seed(self.config.seed, index_u64(site_index) + 1);
                let daily_hazard = if *mean_days_between_failures > 0.0 {
                    1.0 - (-1.0 / mean_days_between_failures).exp()
                } else {
                    0.0
                };

                let mut slots: Vec<SlotState> = devices
                    .iter()
                    .map(|d| SlotState {
                        battery: BatteryState::new_full(d.battery),
                        down_until: None,
                    })
                    .collect();
                let mut dynamics = Vec::with_capacity(days);

                for day in 0..days {
                    let mut embodied_today = GramsCo2e::ZERO;
                    let mut devices_replaced = 0;
                    if day == 0 {
                        embodied_today += *install_embodied;
                    }
                    // Junkyard refills due today: a fresh donor device with
                    // its own (free) pack fills the slot.
                    for (slot, device) in slots.iter_mut().zip(devices) {
                        if slot.down_until == Some(day) {
                            slot.battery = BatteryState::new_full(device.battery);
                            slot.down_until = None;
                            devices_replaced += 1;
                            embodied_today += device.replacement_embodied();
                        }
                    }

                    let mut alive = 0;
                    let mut capacity = 0.0;
                    let mut idle = Watts::ZERO;
                    let mut dynamic = Watts::ZERO;
                    let mut baseline = GramsCo2e::ZERO;
                    let mut smart = GramsCo2e::ZERO;
                    let mut battery_replacements = 0;
                    let day_trace = &day_traces[day % trace_days];
                    let previous = if day == 0 {
                        None
                    } else {
                        Some(&day_stats[(day + trace_days - 1) % trace_days])
                    };
                    for (slot, device) in slots.iter_mut().zip(devices) {
                        if slot.down_until.is_some() {
                            continue;
                        }
                        alive += 1;
                        capacity += device.capacity_qps();
                        idle += device.idle_power;
                        dynamic += device.dynamic_power;
                        let run = simulate_day(
                            *policy,
                            device.serving_power,
                            &mut slot.battery,
                            day_trace,
                            previous,
                            None,
                        );
                        baseline += run.baseline_carbon();
                        smart += run.smart_carbon();
                        battery_replacements += run.packs_replaced();
                        embodied_today +=
                            device.battery.embodied() * f64::from(run.packs_replaced());
                    }

                    // Failures strike at the end of the day; the slot is
                    // down for `lag` whole days starting tomorrow.
                    let mut device_failures = 0;
                    if daily_hazard > 0.0 {
                        for (index, slot) in slots.iter_mut().enumerate() {
                            if slot.down_until.is_some() {
                                continue;
                            }
                            let draw = decorrelate_seed(
                                site_seed,
                                index_u64(day * devices.len() + index) + 1,
                            );
                            let unit = unit_draw(draw);
                            if unit < daily_hazard {
                                slot.down_until = Some(day + 1 + replacement_lag_days);
                                device_failures += 1;
                            }
                        }
                    }

                    dynamics.push(DayDynamics {
                        alive,
                        capacity_qps: capacity,
                        idle_power: idle,
                        dynamic_power: dynamic,
                        overhead_power: *overhead_power,
                        utilization_scale: if alive > 0 {
                            counts_ratio(devices.len(), alive)
                        } else {
                            1.0
                        },
                        operational_scale: if baseline.grams() > 0.0 {
                            smart.grams() / baseline.grams()
                        } else {
                            1.0
                        },
                        embodied: embodied_today,
                        battery_replacements,
                        device_failures,
                        devices_replaced,
                    });
                }
                dynamics
            }
        }
    }

    /// Runs the lifecycle and returns the accounting grid.
    ///
    /// The serial passes (per-site daily dynamics, per-window routing
    /// plans) run first; the (year, site) measurement cells then fan out
    /// across scoped worker threads into pre-assigned slots, so the
    /// result is bit-identical at any worker count.
    ///
    /// # Errors
    ///
    /// Propagates microsim errors; with multiple failures the
    /// lowest-index cell's error wins.
    pub fn run(&self) -> Result<LifecycleResult, SimError> {
        self.run_with(&mut NoopRecorder)
    }

    /// [`LifecycleSim::run`] with lifecycle tracing: per-(window, site)
    /// routing decisions, fault/retry/hedge/degradation transitions,
    /// and the conservation ledger (per-window request identity,
    /// per-day carbon identity) are recorded into `recorder`.
    ///
    /// Every hook fires on the **serial driver side**, from state the
    /// plain run already computes — the (year, site) fan-out is
    /// untouched and the returned [`LifecycleResult`] is bit-identical
    /// to [`LifecycleSim::run`] for any recorder.
    ///
    /// # Errors
    ///
    /// Propagates microsim errors; with multiple failures the
    /// lowest-index cell's error wins. A violated conservation identity
    /// is not an error here — it is recorded as a `ledger` event with
    /// `"violation"` as its key, so the trace stays a faithful witness.
    pub fn run_with<R: Recorder>(&self, recorder: &mut R) -> Result<LifecycleResult, SimError> {
        let days = self.config.total_days();
        let years_spanned = days.div_ceil(DAYS_PER_YEAR);
        let wpd = self.config.windows_per_day;
        let sites = self.sites.len();
        let schedule = self.schedule.clone().days(days);
        let windows = schedule.windows(wpd);

        // Serial pass 1: per-site daily dynamics.
        let dynamics: Vec<Vec<DayDynamics>> = (0..sites)
            .map(|s| self.simulate_dynamics(s, days))
            .collect();

        // The correlated fault schedule and its serving consequences.
        // With a disabled/absent fault config and no standby fallback,
        // `resolutions` stays `None` and every downstream expression
        // reduces to the plain path — fault-free runs are bit-identical
        // to runs that never constructed the fault layer at all.
        let fault_plan = match &self.faults {
            Some(config) => FaultPlan::generate(
                config,
                windows.len(),
                sites,
                wpd,
                decorrelate_seed(self.config.seed, 1 << 32),
            ),
            None => FaultPlan::none(windows.len(), sites),
        };
        let fallback = self
            .resilience
            .as_ref()
            .and_then(ResiliencePolicy::fallback);
        let active = !fault_plan.is_fault_free() || fallback.is_some();
        let lag = self
            .resilience
            .as_ref()
            .map_or(0, ResiliencePolicy::lag_windows);
        // The router's (possibly stale) health view: window `w` is
        // planned from the availability that was true `lag` windows ago;
        // before anything could be observed, everything looks healthy.
        let observed_avail = |w: usize, s: usize| {
            if w >= lag {
                fault_plan.availability(w - lag, s)
            } else {
                1.0
            }
        };

        // Serial pass 2: per-window routing plans against the capacity
        // the router *believes* is alive that day (true capacity times
        // the lagged availability; a standby fallback site is planned at
        // zero so it takes no primary traffic), plus the window-mean
        // intensities the cells will charge energy at.
        let mut intensities: Vec<Vec<CarbonIntensity>> = Vec::with_capacity(windows.len());
        let mut plans: Vec<WindowAssignment> = Vec::with_capacity(windows.len());
        for window in &windows {
            let day = window.index() / wpd;
            let w = window.index();
            let window_intensities: Vec<CarbonIntensity> = self
                .sites
                .iter()
                .map(|site| {
                    site.region()
                        .mean_intensity_between(window.start(), window.end())
                })
                .collect();
            let inputs: Vec<SiteWindowInput> = (0..sites)
                .map(|s| SiteWindowInput {
                    capacity_qps: if !active {
                        dynamics[s][day].capacity_qps
                    } else if Some(s) == fallback {
                        0.0
                    } else {
                        dynamics[s][day].capacity_qps * observed_avail(w, s)
                    },
                    intensity: window_intensities[s],
                })
                .collect();
            plans.push(plan_window_inputs(self.policy, &inputs, window));
            intensities.push(window_intensities);
            if recorder.enabled() {
                let plan = &plans[w];
                let t = window.start().seconds();
                for (s, site) in self.sites.iter().enumerate() {
                    let qps = plan.site_mean_qps(s);
                    if qps > 0.0 {
                        recorder.event(
                            TraceEvent::new(EventKind::Route, t, site.name(), qps)
                                .with_detail(&format!("w{w}")),
                        );
                    }
                }
                let declined = plan.declined_mean_qps();
                if declined > 0.0 {
                    recorder.event(
                        TraceEvent::new(EventKind::Route, t, "declined", declined)
                            .with_detail(&format!("w{w}")),
                    );
                }
            }
        }

        // Serial pass 3 (faulty runs only): resolve each window's serving
        // outcome — first attempts against *true* capacity, then the
        // retry rounds aimed by the stale view, the hedge, and the
        // degradation ladder.
        let resolutions: Option<Vec<WindowResolution>> = if active {
            let policy = self.resilience.as_ref();
            Some(
                windows
                    .iter()
                    .map(|window| {
                        let w = window.index();
                        let day = w / wpd;
                        let assigned: Vec<f64> =
                            (0..sites).map(|s| plans[w].site_mean_qps(s)).collect();
                        let true_cap: Vec<f64> = (0..sites)
                            .map(|s| dynamics[s][day].capacity_qps * fault_plan.availability(w, s))
                            .collect();
                        let observed_cap: Vec<f64> = (0..sites)
                            .map(|s| dynamics[s][day].capacity_qps * observed_avail(w, s))
                            .collect();
                        let avail: Vec<f64> =
                            (0..sites).map(|s| fault_plan.availability(w, s)).collect();
                        resolve_window(&assigned, &true_cap, &observed_cap, &avail, policy)
                    })
                    .collect(),
            )
        } else {
            None
        };
        let resolutions = resolutions.as_deref();
        if recorder.enabled() {
            if let Some(res) = resolutions {
                for window in &windows {
                    let w = window.index();
                    let t = window.start().seconds();
                    for (s, site) in self.sites.iter().enumerate() {
                        let avail = fault_plan.availability(w, s);
                        if avail < 1.0 {
                            recorder.event(
                                TraceEvent::new(EventKind::Fault, t, site.name(), avail)
                                    .with_detail(&format!("w{w}")),
                            );
                        }
                    }
                    let r = &res[w];
                    if r.retried_ok_mean > 0.0 {
                        recorder.event(
                            TraceEvent::new(EventKind::Retry, t, "retried-ok", r.retried_ok_mean)
                                .with_detail(&format!("w{w}")),
                        );
                    }
                    if r.hedged_mean > 0.0 {
                        recorder.event(
                            TraceEvent::new(EventKind::Hedge, t, "hedged", r.hedged_mean)
                                .with_detail(&format!("w{w}")),
                        );
                    }
                    if r.rerouted_mean > 0.0 {
                        recorder.event(
                            TraceEvent::new(EventKind::Route, t, "rerouted", r.rerouted_mean)
                                .with_detail(&format!("w{w} reroute")),
                        );
                    }
                    let degraded = r.brownout_mean + r.lp_shed_mean;
                    if degraded > 0.0 {
                        recorder.event(
                            TraceEvent::new(EventKind::Degrade, t, "degraded", degraded)
                                .with_detail(&format!(
                                    "w{w} brownout={} lp-shed={}",
                                    r.brownout_mean, r.lp_shed_mean
                                )),
                        );
                    }
                }
            }
        }
        let retry_grams = self
            .resilience
            .as_ref()
            .and_then(ResiliencePolicy::retry_policy)
            .map_or(0.0, crate::faults::RetryPolicy::attempt_grams);

        // Parallel pass: (year, site) cells into order-preserving slots.
        let n = years_spanned * sites;
        let workers = self
            .config
            .parallelism
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, std::num::NonZero::get))
            .min(n)
            .max(1);
        let cell_inputs: Vec<(usize, usize)> = (0..n).map(|i| (i / sites, i % sites)).collect();
        let mut slots: Vec<Option<Result<LifecycleCell, SimError>>> =
            (0..n).map(|_| None).collect();
        if workers == 1 {
            for (slot, &(year, site)) in slots.iter_mut().zip(&cell_inputs) {
                *slot = Some(self.measure_cell(
                    year,
                    site,
                    days,
                    &windows,
                    &plans,
                    &intensities,
                    &dynamics,
                    resolutions,
                    retry_grams,
                ));
            }
        } else {
            type CellSlot<'s> = (
                usize,
                usize,
                &'s mut Option<Result<LifecycleCell, SimError>>,
            );
            let mut shares: Vec<Vec<CellSlot<'_>>> = (0..workers).map(|_| Vec::new()).collect();
            for (index, (slot, &(year, site))) in slots.iter_mut().zip(&cell_inputs).enumerate() {
                shares[index % workers].push((year, site, slot));
            }
            thread::scope(|scope| {
                for share in shares {
                    let windows = &windows;
                    let plans = &plans;
                    let intensities = &intensities;
                    let dynamics = &dynamics;
                    scope.spawn(move || {
                        for (year, site, slot) in share {
                            *slot = Some(self.measure_cell(
                                year,
                                site,
                                days,
                                windows,
                                plans,
                                intensities,
                                dynamics,
                                resolutions,
                                retry_grams,
                            ));
                        }
                    });
                }
            });
        }

        let mut cells = Vec::with_capacity(n);
        for slot in slots {
            cells.push(slot.ok_or(SimError::WorkerLost)??);
        }

        let mut day_ledger = vec![
            DayLedger {
                requests: 0.0,
                operational: GramsCo2e::ZERO,
                embodied: GramsCo2e::ZERO,
                retry: GramsCo2e::ZERO,
            };
            days
        ];
        let mut total_requests = 0.0;
        let mut dropped_requests = 0.0;
        let mut total_operational = GramsCo2e::ZERO;
        let mut total_embodied = GramsCo2e::ZERO;
        let mut total_retry_carbon = GramsCo2e::ZERO;
        for cell in &cells {
            total_requests += cell.requests;
            dropped_requests += cell.dropped_requests;
            total_operational += cell.operational;
            total_embodied += cell.embodied;
            total_retry_carbon += cell.retry_carbon;
            for (offset, ledger) in cell.daily.iter().enumerate() {
                let merged = &mut day_ledger[cell.year * DAYS_PER_YEAR + offset];
                merged.requests += ledger.requests;
                merged.operational += ledger.operational;
                merged.embodied += ledger.embodied;
                merged.retry += ledger.retry;
            }
        }
        let window_s = windows[0].duration().seconds();
        let declined_requests = plans.iter().map(|p| p.declined_mean_qps() * window_s).sum();

        // Availability accounting: the resolved fault outcomes rolled up
        // into horizon totals and the per-window health series (synthesised
        // all-healthy on a fault-free run).
        let mut failed_requests = 0.0;
        let mut retried_ok_requests = 0.0;
        let mut hedged_requests = 0.0;
        let mut rerouted_requests = 0.0;
        let mut brownout_requests = 0.0;
        let mut low_priority_shed_requests = 0.0;
        let mut window_health = Vec::with_capacity(windows.len());
        for window in &windows {
            let w = window.index();
            let offered: f64 =
                (0..sites).map(|s| plans[w].site_mean_qps(s)).sum::<f64>() * window_s;
            if let Some(res) = resolutions {
                let r = &res[w];
                let failed = r.failed_mean * window_s;
                let lp_shed = r.lp_shed_mean * window_s;
                failed_requests += failed;
                retried_ok_requests += r.retried_ok_mean * window_s;
                hedged_requests += r.hedged_mean * window_s;
                rerouted_requests += r.rerouted_mean * window_s;
                brownout_requests += r.brownout_mean * window_s;
                low_priority_shed_requests += lp_shed;
                window_health.push(WindowHealth {
                    offered,
                    served: offered - failed - lp_shed,
                    failed,
                });
            } else {
                window_health.push(WindowHealth {
                    offered,
                    served: offered,
                    failed: 0.0,
                });
            }
        }

        // The live conservation ledger: every window's request identity
        // and every day's carbon identity re-checked at record time. A
        // violation becomes a `ledger` event keyed `"violation"` — the
        // trace witnesses the leak instead of silently absorbing it.
        if recorder.enabled() {
            let mut ledger = ConservedLedger::new();
            for window in &windows {
                let w = window.index();
                let health = &window_health[w];
                let declined = plans[w].declined_mean_qps() * window_s;
                let shed = health.offered - health.served - health.failed;
                if let Err(err) = ledger.record_requests(
                    health.offered + declined,
                    health.served,
                    declined,
                    0.0,
                    shed,
                    health.failed,
                ) {
                    recorder.event(
                        TraceEvent::new(
                            EventKind::Ledger,
                            window.start().seconds(),
                            "violation",
                            health.offered,
                        )
                        .with_detail(&err.to_string()),
                    );
                }
            }
            for (day, entry) in day_ledger.iter().enumerate() {
                let operational = entry.operational.grams();
                let embodied = entry.embodied.grams();
                let retry = entry.retry.grams();
                let total = operational + embodied + retry;
                let t = count_f64(day) * 24.0 * 3600.0;
                if let Err(err) = ledger.record_carbon(total, operational, embodied, retry) {
                    recorder.event(
                        TraceEvent::new(EventKind::Ledger, t, "violation", total)
                            .with_detail(&err.to_string()),
                    );
                }
            }
            recorder.event(ledger.snapshot(count_f64(windows.len()) * window_s));
        }

        Ok(LifecycleResult {
            policy: self.policy,
            site_names: self.sites.iter().map(|s| s.name().to_owned()).collect(),
            years: years_spanned,
            cells,
            day_ledger,
            declined_requests,
            dropped_requests,
            total_requests,
            total_operational,
            total_embodied,
            failed_requests,
            retried_ok_requests,
            hedged_requests,
            rerouted_requests,
            brownout_requests,
            low_priority_shed_requests,
            total_retry_carbon,
            window_health,
            horizon_seconds: count_f64(windows.len()) * window_s,
        })
    }

    /// Aggregates one (year, site) cell: every window of the year at this
    /// site, with microsim slices memoised by their `(start, end)` load
    /// pair — the schedule repeats daily and capacity is
    /// piecewise-constant between failure events, so only a handful of
    /// distinct slices are actually simulated.
    #[allow(clippy::too_many_arguments)] // the cell's full serial context, passed by reference
    fn measure_cell(
        &self,
        year: usize,
        site_idx: usize,
        total_days: usize,
        windows: &[LoadWindow],
        plans: &[WindowAssignment],
        intensities: &[Vec<CarbonIntensity>],
        dynamics: &[Vec<DayDynamics>],
        resolutions: Option<&[WindowResolution]>,
        retry_grams: f64,
    ) -> Result<LifecycleCell, SimError> {
        let site = &self.sites[site_idx];
        let wpd = self.config.windows_per_day;
        let sites = self.sites.len();
        // Slices are memoised by exact (start, end) bit pattern and
        // never iterated; window order drives the accumulation.
        let mut memo: HashMap<(u64, u64), SliceMeasure> = HashMap::new();

        let mut requests = 0.0;
        let mut dropped_requests = 0.0;
        let mut retry_carbon = GramsCo2e::ZERO;
        let mut operational = GramsCo2e::ZERO;
        let mut embodied = GramsCo2e::ZERO;
        let mut battery_replacements = 0;
        let mut device_failures = 0;
        let mut devices_replaced = 0;
        let mut alive_sum = 0usize;
        let mut worst_median_ms: f64 = 0.0;
        let mut worst_tail_ms: f64 = 0.0;
        let mut worst_p99_ms: f64 = 0.0;

        // The cell covers at most one year; a day-capped horizon leaves
        // the last cell short.
        let cell_start = year * DAYS_PER_YEAR;
        let cell_end = ((year + 1) * DAYS_PER_YEAR).min(total_days);
        let year_days = &dynamics[site_idx][cell_start..cell_end];
        let mut daily = Vec::with_capacity(year_days.len());
        for (offset, state) in year_days.iter().enumerate() {
            let day = cell_start + offset;
            alive_sum += state.alive;
            battery_replacements += state.battery_replacements;
            device_failures += state.device_failures;
            devices_replaced += state.devices_replaced;
            let mut day_requests = 0.0;
            let mut day_operational = GramsCo2e::ZERO;
            let mut day_retry = GramsCo2e::ZERO;
            for k in 0..wpd {
                let w = day * wpd + k;
                let window = &windows[w];
                let (qps_start, qps_end) = plans[w].shares()[site_idx];
                let mean_qps = (qps_start + qps_end) / 2.0;
                // The window's resolved fault outcome at this site:
                // delivered first-attempt ratio, true availability, and
                // the retry/hedge/degradation traffic landed here. The
                // fault-free defaults reduce every expression below to
                // the plain path bit-for-bit.
                let (ratio, avail, extra_mean, attempt_mean) = match resolutions {
                    Some(res) => {
                        let r = &res[w];
                        (
                            r.delivered_ratio[site_idx],
                            r.avail[site_idx],
                            r.extra_served_mean[site_idx],
                            r.retry_attempt_mean[site_idx],
                        )
                    }
                    None => (1.0, 1.0, 0.0, 0.0),
                };
                // The measured slice replays only the traffic actually
                // delivered on first attempt: `ratio < 1.0` scales the
                // endpoints (and thereby the memo key); the healthy
                // branch leaves the original bits untouched.
                let (eff_start, eff_end) = if ratio < 1.0 {
                    (qps_start * ratio, qps_end * ratio)
                } else {
                    (qps_start, qps_end)
                };
                let eff_mean = (eff_start + eff_end) / 2.0;
                let (utilization, median_ms, tail_ms, p99_ms, drop_fraction) = if eff_mean > 0.0 {
                    let key = (eff_start.to_bits(), eff_end.to_bits());
                    let measured = if let Some(cached) = memo.get(&key) {
                        *cached
                    } else {
                        let seed =
                            decorrelate_seed(self.config.seed, index_u64(w * sites + site_idx) + 1);
                        let measured = self.measure_slice(site, eff_start, eff_end, seed)?;
                        memo.insert(key, measured);
                        measured
                    };
                    // The alive *and available* devices do all the work:
                    // the independent-failure scale is further inflated
                    // by the fault availability (strictly positive here,
                    // or nothing would have been delivered to measure).
                    (
                        (measured.utilization * (state.utilization_scale / avail)).min(1.0),
                        measured.median_ms,
                        measured.tail_ms,
                        measured.p99_ms,
                        measured.drop_fraction,
                    )
                } else {
                    (0.0, 0.0, 0.0, 0.0, 0.0)
                };
                worst_median_ms = worst_median_ms.max(median_ms);
                worst_tail_ms = worst_tail_ms.max(tail_ms);
                worst_p99_ms = worst_p99_ms.max(p99_ms);
                // Battery-backed device energy earns the smart-charging
                // scale; the overhead draw (fan, switch) has no battery
                // to time-shift it and is billed at face value. During a
                // fault, only the surviving fraction of devices draws
                // power; a fully dark site loses its overhead draw too.
                let idle_effective = if avail < 1.0 {
                    state.idle_power * avail
                } else {
                    state.idle_power
                };
                let dynamic_effective = if avail < 1.0 {
                    state.dynamic_power * avail
                } else {
                    state.dynamic_power
                };
                let device_energy =
                    (idle_effective + dynamic_effective * utilization) * window.duration();
                let overhead_energy = state.overhead_power * window.duration();
                let intensity = intensities[w][site_idx];
                let op = intensity.emissions_for(device_energy) * state.operational_scale
                    + if avail > 0.0 {
                        intensity.emissions_for(overhead_energy)
                    } else {
                        GramsCo2e::ZERO
                    };
                day_operational += op;
                // The day ledger and cell totals count *served* requests;
                // the queue-dropped share is accumulated separately. Only
                // the delivered first-attempt share passes through the
                // site's queues; retry/degradation traffic landed here is
                // added on top (its queueing is folded into the marginal
                // retry-carbon charge below).
                let offered = mean_qps * window.duration().seconds();
                if ratio < 1.0 {
                    day_requests += offered * ratio * (1.0 - drop_fraction);
                    dropped_requests += offered * ratio * drop_fraction;
                } else {
                    day_requests += offered * (1.0 - drop_fraction);
                    dropped_requests += offered * drop_fraction;
                }
                if extra_mean > 0.0 {
                    day_requests += extra_mean * window.duration().seconds();
                }
                // Every retry/hedge attempt aimed here is charged its
                // network carbon whether it landed or not; the extras
                // that did land are charged the marginal compute of the
                // surviving devices serving them.
                if attempt_mean > 0.0 || extra_mean > 0.0 {
                    let network =
                        GramsCo2e::new(attempt_mean * window.duration().seconds() * retry_grams);
                    let available_capacity = state.capacity_qps * avail;
                    let extra_util = if available_capacity > 0.0 {
                        (extra_mean / available_capacity).min(1.0)
                    } else {
                        0.0
                    };
                    let marginal = dynamic_effective * extra_util * window.duration();
                    day_retry +=
                        network + intensity.emissions_for(marginal) * state.operational_scale;
                }
            }
            requests += day_requests;
            operational += day_operational;
            retry_carbon += day_retry;
            embodied += state.embodied;
            daily.push(DayLedger {
                requests: day_requests,
                operational: day_operational,
                embodied: state.embodied,
                retry: day_retry,
            });
        }

        Ok(LifecycleCell {
            year,
            site: site_idx,
            requests,
            dropped_requests,
            operational,
            embodied,
            retry_carbon,
            battery_replacements,
            device_failures,
            devices_replaced,
            mean_alive: counts_ratio(alive_sum, year_days.len()),
            worst_median_ms: Millis::from_millis(worst_median_ms),
            worst_tail_ms: Millis::from_millis(worst_tail_ms),
            worst_p99_ms: Millis::from_millis(worst_p99_ms),
            daily,
        })
    }

    /// Runs one representative microsim slice (warm-up at the start rate,
    /// then a ramp to the end rate) and returns its [`SliceMeasure`] over
    /// the measured window.
    fn measure_slice(
        &self,
        site: &LifecycleSite,
        qps_start: f64,
        qps_end: f64,
        seed: u64,
    ) -> Result<SliceMeasure, SimError> {
        let warm = self.config.warmup_s;
        let slice = self.config.sim_slice_s;
        let request_type = site.request_type.as_deref();
        let mut phases = Vec::with_capacity(2);
        if warm > 0.0 {
            phases.push(Phase::new(qps_start, warm, request_type));
        }
        phases.push(Phase::ramp(qps_start, qps_end, slice, request_type));
        let workload = Workload::phased(phases, seed);
        let metrics = site.sim.run(&workload)?;
        let stats = metrics.latency_stats_between(warm, warm + slice);
        // Whole-second boundaries (enforced by `LifecycleConfig`), so the
        // bucket range covers exactly the measured slice.
        let from_bucket = floor_index(warm);
        let to_bucket = floor_index(warm + slice);
        let nodes = metrics.node_utilization();
        let utilization = nodes
            .iter()
            .map(|u| u.mean_percent_between(from_bucket, to_bucket))
            .sum::<f64>()
            / count_f64(nodes.len())
            / 100.0;
        Ok(SliceMeasure {
            utilization,
            median_ms: stats.median_ms().unwrap_or(0.0),
            tail_ms: stats.tail_ms().unwrap_or(0.0),
            p99_ms: stats.p99_ms().unwrap_or(0.0),
            drop_fraction: metrics.drop_fraction_between(warm, warm + slice),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::DegradationLadder;
    use crate::testutil::{flat_region, tiny_sim};
    use junkyard_grid::synth::CaisoSynthesizer;

    fn phone_slot(capacity: f64) -> CohortDevice {
        CohortDevice::new(
            "Pixel 3A",
            Watts::new(1.7),
            BatterySpec::pixel_3a(),
            GramsCo2e::from_kilograms(5.5),
            capacity,
        )
        .power(Watts::new(0.8), Watts::new(1.7))
    }

    fn diurnal_region(seed: u64) -> GridRegion {
        GridRegion::new(
            "caiso",
            CaisoSynthesizer::new(seed, 3)
                .step(TimeSpan::from_minutes(30.0))
                .intensity_trace(),
        )
    }

    fn cohort_site(seed: u64, devices: usize) -> LifecycleSite {
        LifecycleSite::cohort(
            "cloudlet",
            &tiny_sim(),
            diurnal_region(seed),
            (0..devices).map(|_| phone_slot(300.0)).collect(),
            GramsCo2e::from_kilograms(20.0),
        )
        .overhead_power(Watts::new(4.0))
        .failures(400.0, 5)
        .unwrap()
    }

    fn leased_site(capacity: f64) -> LifecycleSite {
        LifecycleSite::leased("datacenter", &tiny_sim(), flat_region(420.0), capacity)
            .power(Watts::new(120.0), Watts::new(90.0))
            .embodied(
                GramsCo2e::from_kilograms(1_344.0),
                TimeSpan::from_years(4.0),
            )
    }

    fn quick_config(years: usize) -> LifecycleConfig {
        LifecycleConfig::new(years)
            .windows_per_day(2)
            .sim_slice_s(1.0)
            .warmup_s(0.0)
    }

    #[test]
    fn lifecycle_accrues_wear_failures_and_embodied_events() {
        let sim = LifecycleSim::new(
            vec![cohort_site(9, 4), leased_site(800.0)],
            DiurnalSchedule::office_day(500.0),
            RoutingPolicy::carbon_aware(),
            quick_config(3),
        );
        let result = sim.run().unwrap();
        assert_eq!(result.cells().len(), 6);
        assert_eq!(result.day_ledger().len(), 3 * DAYS_PER_YEAR);
        assert!(result.total_requests() > 0.0);
        // Pixel packs at ~1.7 W wear out in ~2.1 years: three years of
        // service must replace batteries, driven by simulated wear.
        assert!(result.total_battery_replacements() > 0);
        // A 400-day MTBF across 4 devices over 3 years virtually
        // guarantees failures — and every failure is eventually refilled.
        assert!(result.total_device_failures() > 0);
        assert!(result.total_devices_replaced() > 0);
        // Day 0 carries the cloudlet's install embodied.
        let first_day = result.cell(0, 0).daily()[0];
        assert!(first_day.embodied().kilograms() >= 20.0);
    }

    #[test]
    fn capacity_shrinks_during_outages_and_routing_responds() {
        let sim = LifecycleSim::new(
            vec![cohort_site(9, 4), leased_site(800.0)],
            DiurnalSchedule::office_day(900.0),
            RoutingPolicy::carbon_aware(),
            quick_config(2),
        );
        let dynamics = sim.simulate_dynamics(0, 2 * DAYS_PER_YEAR);
        let full = dynamics[0].capacity_qps();
        assert!((full - 1_200.0).abs() < 1e-9);
        // Outage days exist and carry reduced capacity.
        let shrunk: Vec<&DayDynamics> = dynamics.iter().filter(|d| d.alive() < 4).collect();
        assert!(!shrunk.is_empty(), "no outages in two years");
        assert!(shrunk.iter().all(|d| d.capacity_qps() < full));
        // And capacity recovers after the lag.
        assert!(dynamics.last().unwrap().capacity_qps() > 0.0);
        // The run itself stays capacity-safe while capacity moves.
        let result = sim.run().unwrap();
        assert!(result.total_requests() > 0.0);
        assert!(result.shed_requests() >= 0.0);
    }

    #[test]
    fn threaded_lifecycle_is_bit_identical_to_serial() {
        let run = |workers: usize| {
            LifecycleSim::new(
                vec![cohort_site(5, 3), leased_site(700.0)],
                DiurnalSchedule::office_day(600.0),
                RoutingPolicy::carbon_aware(),
                quick_config(2).parallelism(workers),
            )
            .run()
            .unwrap()
        };
        let serial = run(1);
        for workers in [2, 4, 7] {
            assert_eq!(serial, run(workers), "worker count {workers}");
        }
    }

    #[test]
    fn smart_charging_scales_operational_carbon_on_diurnal_grids() {
        // A full synthetic month at the calibrated 5-minute step: coarse
        // steps blunt the policy (one 30-minute charge quantum nearly
        // fills a phone pack), so the savings assertion runs at the
        // fidelity the paper's Figure 4 uses.
        let region = GridRegion::new(
            "caiso-month",
            CaisoSynthesizer::april_2021_like(3).intensity_trace(),
        );
        let site = LifecycleSite::cohort(
            "cloudlet",
            &tiny_sim(),
            region,
            vec![phone_slot(300.0), phone_slot(300.0)],
            GramsCo2e::ZERO,
        );
        let sim = LifecycleSim::new(
            vec![site],
            DiurnalSchedule::flat(100.0),
            RoutingPolicy::Static,
            quick_config(1),
        );
        let dynamics = sim.simulate_dynamics(0, 30);
        // Warm-up day 0 has no history; later days shift charging into the
        // solar trough and beat the always-on-wall baseline.
        let scales: Vec<f64> = dynamics
            .iter()
            .skip(1)
            .map(DayDynamics::operational_scale)
            .collect();
        let mean = scales.iter().sum::<f64>() / scales.len() as f64;
        assert!(mean < 1.0, "mean scale {mean}");
        assert!(mean > 0.7, "mean scale {mean}");
    }

    #[test]
    fn leased_sites_amortise_embodied_linearly() {
        let sim = LifecycleSim::new(
            vec![leased_site(500.0)],
            DiurnalSchedule::flat(100.0),
            RoutingPolicy::Static,
            quick_config(1),
        );
        let result = sim.run().unwrap();
        let expected_daily = 1_344.0 / (4.0 * 365.25);
        let total = result.total_embodied().kilograms();
        assert!(
            (total - expected_daily * 365.0).abs() < 1e-6,
            "got {total} kg"
        );
        assert_eq!(result.total_battery_replacements(), 0);
    }

    #[test]
    fn trajectory_amortises_the_install_over_years() {
        let sim = LifecycleSim::new(
            vec![cohort_site(11, 3)],
            DiurnalSchedule::flat(200.0),
            RoutingPolicy::Static,
            quick_config(3),
        );
        let result = sim.run().unwrap();
        let trajectory = result.yearly_trajectory();
        assert_eq!(trajectory.len(), 3);
        // Cumulative carbon per request falls as the install amortises
        // (battery replacements notwithstanding at this light load).
        assert!(trajectory[0].1 > trajectory[2].1);
        let through_first_year = result
            .grams_per_request_through_day(DAYS_PER_YEAR - 1)
            .unwrap();
        assert!((through_first_year - trajectory[0].1).abs() < 1e-12);
    }

    #[test]
    fn day_capped_horizon_shortens_the_last_cell() {
        let sim = |config: LifecycleConfig| {
            LifecycleSim::new(
                vec![cohort_site(9, 2)],
                DiurnalSchedule::office_day(400.0),
                RoutingPolicy::Static,
                config,
            )
        };
        // Three days fit inside one (short) year cell.
        let short = sim(quick_config(1).horizon_days(3)).run().unwrap();
        assert_eq!(short.cells().len(), 1);
        assert_eq!(short.day_ledger().len(), 3);
        assert_eq!(short.cell(0, 0).daily().len(), 3);
        assert!(short.total_requests() > 0.0);
        // 400 days span two cells: a full year and a 35-day remainder.
        let spanning = sim(quick_config(1).horizon_days(400)).run().unwrap();
        assert_eq!(spanning.years(), 2);
        assert_eq!(spanning.cells().len(), 2);
        assert_eq!(spanning.cell(0, 0).daily().len(), DAYS_PER_YEAR);
        assert_eq!(spanning.cell(1, 0).daily().len(), 35);
        assert_eq!(spanning.day_ledger().len(), 400);
        // The day-capped prefix agrees with the plain run's first days.
        let full = sim(quick_config(1)).run().unwrap();
        assert_eq!(full.day_ledger()[..3], *short.day_ledger());
    }

    #[test]
    fn latency_percentile_hooks_order_sensibly_under_load() {
        let result = LifecycleSim::new(
            vec![cohort_site(9, 2)],
            DiurnalSchedule::office_day(500.0),
            RoutingPolicy::Static,
            quick_config(1).horizon_days(2),
        )
        .run()
        .unwrap();
        assert!(result.worst_median_ms() > 0.0);
        assert!(result.worst_tail_ms() >= result.worst_median_ms());
        assert!(result.worst_p99_ms() >= result.worst_tail_ms());
        assert!((0.0..=1.0).contains(&result.shed_fraction()));
    }

    #[test]
    #[should_panic(expected = "whole number of days")]
    fn partial_day_region_panics() {
        let trace = IntensityTrace::constant(
            CarbonIntensity::from_grams_per_kwh(300.0),
            TimeSpan::from_hours(1.0),
            TimeSpan::from_hours(30.0),
        );
        let _ = LifecycleSite::cohort(
            "bad",
            &tiny_sim(),
            GridRegion::new("bad", trace),
            vec![phone_slot(100.0)],
            GramsCo2e::ZERO,
        );
    }

    #[test]
    #[should_panic(expected = "cohort power comes from its devices")]
    fn cohort_rejects_leased_builders() {
        let _ = cohort_site(1, 1).power(Watts::new(1.0), Watts::new(1.0));
    }

    #[test]
    fn leased_failures_return_an_actionable_error_instead_of_panicking() {
        let err = leased_site(500.0).failures(300.0, 4).unwrap_err();
        assert!(
            err.message().contains("cohort sites only"),
            "unexpected message: {err}"
        );
        assert!(
            err.message().contains("FaultConfig"),
            "the error should point at the fault layer: {err}"
        );
        // Out-of-range parameters error too, on any backend.
        let err = cohort_site(1, 2).failures(0.0, 4).unwrap_err();
        assert!(err.message().contains("positive"), "got: {err}");
        let err = cohort_site(1, 2).failures(f64::NAN, 4).unwrap_err();
        assert!(err.message().contains("finite"), "got: {err}");
    }

    #[test]
    fn disabled_faults_and_plain_resilience_are_bit_identical_to_baseline() {
        let build = || {
            LifecycleSim::new(
                vec![cohort_site(9, 3), leased_site(700.0)],
                DiurnalSchedule::office_day(700.0),
                RoutingPolicy::carbon_aware(),
                quick_config(1).horizon_days(30),
            )
        };
        let baseline = build().run().unwrap();
        let disabled = build().with_faults(FaultConfig::disabled()).run().unwrap();
        assert_eq!(baseline, disabled);
        // A resilience policy without faults and without a fallback site
        // changes nothing either: lag and retries only matter once
        // capacity can actually die.
        let idle_policy = build()
            .with_resilience(
                ResiliencePolicy::new()
                    .detection_lag_windows(2)
                    .retry(crate::faults::RetryPolicy::new(2)),
            )
            .run()
            .unwrap();
        assert_eq!(baseline, idle_policy);
        assert_eq!(baseline.failed_requests(), 0.0);
        assert!((baseline.availability() - 1.0).abs() < 1e-12);
        assert_eq!(baseline.downtime_windows(0.999), 0);
        assert_eq!(baseline.total_retry_carbon(), GramsCo2e::ZERO);
    }

    #[test]
    fn stale_outages_fail_requests_and_an_omniscient_router_avoids_them() {
        let faults = FaultConfig::disabled().grid_outages(5.0, 3);
        let build = |lag: usize| {
            LifecycleSim::new(
                vec![cohort_site(9, 3), leased_site(700.0)],
                DiurnalSchedule::office_day(900.0),
                RoutingPolicy::carbon_aware(),
                quick_config(1).horizon_days(40),
            )
            .with_faults(faults)
            .with_resilience(ResiliencePolicy::new().detection_lag_windows(lag))
        };
        let stale = build(2).run().unwrap();
        assert!(
            stale.failed_requests() > 0.0,
            "a 5-day outage MTBF over 40 days with a stale router must fail requests"
        );
        assert!(stale.availability() < 1.0);
        assert!(!stale.window_success_rates().iter().all(|&r| r >= 1.0));
        // Detection lag zero: the router sees the truth every window, so
        // nothing lands on dead capacity and nothing fails.
        let omniscient = build(0).run().unwrap();
        assert_eq!(omniscient.failed_requests(), 0.0);
        assert!((omniscient.availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn retries_recover_requests_and_are_charged_their_carbon() {
        let faults = FaultConfig::disabled().firmware_batches(4.0, 0.5, 2);
        let build = |policy: ResiliencePolicy| {
            LifecycleSim::new(
                vec![cohort_site(9, 4), leased_site(900.0)],
                DiurnalSchedule::office_day(1_000.0),
                RoutingPolicy::carbon_aware(),
                quick_config(1).horizon_days(40),
            )
            .with_faults(faults)
            .with_resilience(policy)
        };
        let bare = build(ResiliencePolicy::new().detection_lag_windows(1))
            .run()
            .unwrap();
        let retrying = build(
            ResiliencePolicy::new()
                .detection_lag_windows(1)
                .retry(crate::faults::RetryPolicy::new(3)),
        )
        .run()
        .unwrap();
        assert!(bare.failed_requests() > 0.0);
        assert!(
            retrying.failed_requests() < bare.failed_requests(),
            "retries must recover some failures: {} vs {}",
            retrying.failed_requests(),
            bare.failed_requests()
        );
        assert!(retrying.retried_ok_requests() > 0.0);
        assert!(
            retrying.total_retry_carbon().grams() > 0.0,
            "every retry attempt must be charged"
        );
        assert_eq!(bare.total_retry_carbon(), GramsCo2e::ZERO);
    }

    #[test]
    fn degradation_ladder_trades_failures_for_shed_and_brownout() {
        let faults = FaultConfig::disabled().thermal_shutdowns(6.0, 2);
        let build = |policy: ResiliencePolicy| {
            LifecycleSim::new(
                vec![cohort_site(9, 4), leased_site(400.0)],
                DiurnalSchedule::office_day(1_100.0),
                RoutingPolicy::carbon_aware(),
                quick_config(1).horizon_days(40),
            )
            .with_faults(faults)
            .with_resilience(policy)
        };
        let bare = build(ResiliencePolicy::new().detection_lag_windows(1))
            .run()
            .unwrap();
        let degraded = build(
            ResiliencePolicy::new()
                .detection_lag_windows(1)
                .degradation(
                    DegradationLadder::new()
                        .shed_low_priority(0.5)
                        .brownout(1.3),
                ),
        )
        .run()
        .unwrap();
        assert!(bare.failed_requests() > 0.0);
        assert!(degraded.failed_requests() < bare.failed_requests());
        assert!(
            degraded.low_priority_shed_requests() > 0.0
                || degraded.brownout_requests() > 0.0
                || degraded.rerouted_requests() > 0.0,
            "the ladder must have done something"
        );
    }

    #[test]
    fn faulty_runs_conserve_offered_demand_and_stay_deterministic() {
        let faults = FaultConfig::disabled()
            .grid_outages(7.0, 2)
            .firmware_batches(5.0, 0.4, 3);
        let build = |workers: usize| {
            LifecycleSim::new(
                vec![cohort_site(9, 3), leased_site(600.0)],
                DiurnalSchedule::office_day(800.0),
                RoutingPolicy::carbon_aware(),
                quick_config(1).horizon_days(35).parallelism(workers),
            )
            .with_faults(faults)
            .with_resilience(
                ResiliencePolicy::new()
                    .detection_lag_windows(1)
                    .retry(crate::faults::RetryPolicy::new(2).hedge_to_fallback())
                    .degradation(DegradationLadder::new().shed_low_priority(0.3))
                    .fallback_site(1),
            )
        };
        let serial = build(1).run().unwrap();
        // Conservation: everything the schedule offered lands in exactly
        // one bucket.
        let schedule_offered: f64 = serial
            .window_health()
            .iter()
            .map(WindowHealth::offered)
            .sum::<f64>()
            + serial.router_declined_requests();
        let accounted = serial.offered_requests();
        assert!(
            (schedule_offered - accounted).abs() <= 1e-6 * schedule_offered.max(1.0),
            "conservation: offered {schedule_offered} vs accounted {accounted}"
        );
        assert!(serial.goodput_qps() > 0.0);
        // And the faulty path keeps the slot-pattern determinism.
        for workers in [2, 5] {
            assert_eq!(serial, build(workers).run().unwrap(), "workers {workers}");
        }
    }
}
