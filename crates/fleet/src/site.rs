//! Fleet sites: one serving location (a junk-phone cloudlet or a
//! datacenter backend) with its compiled simulation, grid region, power
//! model and amortised embodied carbon.

use junkyard_battery::sim::SmartChargingConfig;
use junkyard_carbon::reuse::ReuseFactor;
use junkyard_carbon::units::{CarbonIntensity, GramsCo2e, TimeSpan, Watts};
use junkyard_devices::battery::BatterySpec;
use junkyard_grid::trace::IntensityTrace;
use junkyard_microsim::compiled::CompiledSim;
use junkyard_microsim::sim::Simulation;

/// A grid region: a named carbon-intensity trace, treated as periodic (the
/// trace wraps, matching [`IntensityTrace::value_at`] semantics), that a
/// site draws its power from.
#[derive(Debug, Clone, PartialEq)]
pub struct GridRegion {
    name: String,
    trace: IntensityTrace,
}

impl GridRegion {
    /// Creates a region from a name and its intensity trace.
    #[must_use]
    pub fn new(name: impl Into<String>, trace: IntensityTrace) -> Self {
        Self {
            name: name.into(),
            trace,
        }
    }

    /// Region name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The region's intensity trace.
    #[must_use]
    pub fn trace(&self) -> &IntensityTrace {
        &self.trace
    }

    /// Time-weighted mean intensity over the offset window `[from, to)`,
    /// wrapping past the end of the trace.
    #[must_use]
    pub fn mean_intensity_between(&self, from: TimeSpan, to: TimeSpan) -> CarbonIntensity {
        self.trace.mean_between(from, to)
    }
}

/// Embodied carbon attributable to a *reused* device in its second life:
/// the non-reused share `(1 - RF)` of the device's manufacturing bill
/// (Eq. 8). The reused share was already amortised by the first life; the
/// components the new role cannot exercise (display, sensors) are the
/// carbon the deployment must still answer for.
///
/// An empty reuse scenario (undefined factor) charges nothing, matching
/// the paper's `C_M = 0` stipulation for wholly reused devices.
#[must_use]
pub fn second_life_embodied(device_embodied: GramsCo2e, reuse: &ReuseFactor) -> GramsCo2e {
    let factor = reuse.factor().unwrap_or(1.0);
    device_embodied * (1.0 - factor)
}

/// Operational-carbon scale factor earned by running the Section 4.3
/// smart-charging policy against a region's intensity trace: one minus
/// the policy's median daily saving. Battery-backed sites pass the result
/// to [`FleetSite::operational_scale`]; the trace needs at least two days
/// of history (the policy thresholds on the *previous* day).
#[must_use]
pub fn smart_charging_scale(
    device_power: Watts,
    battery: BatterySpec,
    trace: &IntensityTrace,
) -> f64 {
    let savings = SmartChargingConfig::new("fleet-site", device_power, battery)
        .run(trace)
        .median_savings_percent();
    1.0 - savings / 100.0
}

/// One serving site of the fleet.
///
/// The microsim is compiled once at construction ([`Simulation::compile`])
/// and shared by reference across the fleet's worker threads.
#[derive(Debug, Clone)]
pub struct FleetSite {
    name: String,
    sim: CompiledSim,
    request_type: Option<String>,
    region: GridRegion,
    capacity_qps: f64,
    idle_power: Watts,
    dynamic_power: Watts,
    embodied: GramsCo2e,
    amortization: TimeSpan,
    operational_scale: f64,
}

impl FleetSite {
    /// Creates a site serving `sim` from `region`, able to sustain
    /// `capacity_qps` requests per second (the router never assigns more).
    ///
    /// Defaults: no power draw, no embodied carbon (amortised over three
    /// years once set), unscaled operational carbon and the application's
    /// weighted request mix.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not strictly positive.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        sim: &Simulation,
        region: GridRegion,
        capacity_qps: f64,
    ) -> Self {
        assert!(capacity_qps > 0.0, "site capacity must be positive");
        Self {
            name: name.into(),
            sim: sim.compile(),
            request_type: None,
            region,
            capacity_qps,
            idle_power: Watts::ZERO,
            dynamic_power: Watts::ZERO,
            embodied: GramsCo2e::ZERO,
            amortization: TimeSpan::from_years(3.0),
            operational_scale: 1.0,
        }
    }

    /// Restricts the site's workload to a single request type.
    #[must_use]
    pub fn request_type(mut self, name: impl Into<String>) -> Self {
        self.request_type = Some(name.into());
        self
    }

    /// Sets the site's electrical power model: `idle` is drawn always,
    /// `dynamic` is added in proportion to measured CPU utilisation.
    #[must_use]
    pub fn power(mut self, idle: Watts, dynamic: Watts) -> Self {
        self.idle_power = idle;
        self.dynamic_power = dynamic;
        self
    }

    /// Sets the attributable embodied carbon and the lifetime it amortises
    /// over: each accounting window is charged
    /// `embodied * window / amortization`.
    ///
    /// # Panics
    ///
    /// Panics if the amortisation lifetime is not strictly positive.
    #[must_use]
    pub fn embodied(mut self, embodied: GramsCo2e, amortization: TimeSpan) -> Self {
        assert!(
            amortization.seconds() > 0.0,
            "amortisation lifetime must be positive"
        );
        self.embodied = embodied;
        self.amortization = amortization;
        self
    }

    /// Scales the site's operational carbon by a dimensionless factor —
    /// e.g. `1.0 - savings` for the smart-charging policy of Section 4.3.
    ///
    /// # Panics
    ///
    /// Panics if the factor is negative.
    #[must_use]
    pub fn operational_scale(mut self, factor: f64) -> Self {
        assert!(factor >= 0.0, "operational scale cannot be negative");
        self.operational_scale = factor;
        self
    }

    /// Site name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compiled simulation serving this site's share of the traffic.
    #[must_use]
    pub fn sim(&self) -> &CompiledSim {
        &self.sim
    }

    /// The request-type restriction, if any.
    #[must_use]
    pub fn request_type_name(&self) -> Option<&str> {
        self.request_type.as_deref()
    }

    /// The grid region powering the site.
    #[must_use]
    pub fn region(&self) -> &GridRegion {
        &self.region
    }

    /// The highest offered load the router may assign, requests/second.
    #[must_use]
    pub fn capacity_qps(&self) -> f64 {
        self.capacity_qps
    }

    /// Power drawn at zero utilisation.
    #[must_use]
    pub fn idle_power(&self) -> Watts {
        self.idle_power
    }

    /// Additional power drawn at 100 % utilisation.
    #[must_use]
    pub fn dynamic_power(&self) -> Watts {
        self.dynamic_power
    }

    /// Attributable embodied carbon.
    #[must_use]
    pub fn embodied_total(&self) -> GramsCo2e {
        self.embodied
    }

    /// Lifetime the embodied carbon amortises over.
    #[must_use]
    pub fn amortization(&self) -> TimeSpan {
        self.amortization
    }

    /// The operational-carbon scale factor.
    #[must_use]
    pub fn operational_scale_factor(&self) -> f64 {
        self.operational_scale
    }

    /// Electrical power at `utilization` (0–1).
    #[must_use]
    pub fn power_at(&self, utilization: f64) -> Watts {
        self.idle_power + self.dynamic_power * utilization.clamp(0.0, 1.0)
    }

    /// Embodied carbon charged to one window of `duration`.
    #[must_use]
    pub fn embodied_over(&self, duration: TimeSpan) -> GramsCo2e {
        self.embodied * (duration.seconds() / self.amortization.seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{flat_region, tiny_sim};

    #[test]
    fn second_life_embodied_charges_the_non_reused_share() {
        let rf = ReuseFactor::new()
            .with_component("compute", GramsCo2e::from_kilograms(30.0), true)
            .with_component("display", GramsCo2e::from_kilograms(10.0), false);
        let charged = second_life_embodied(GramsCo2e::from_kilograms(40.0), &rf);
        assert!((charged.kilograms() - 10.0).abs() < 1e-9);
        // Fully-reused and undefined scenarios charge nothing.
        let all = ReuseFactor::new().with_component("x", GramsCo2e::new(1.0), true);
        assert_eq!(
            second_life_embodied(GramsCo2e::from_kilograms(40.0), &all),
            GramsCo2e::ZERO
        );
        assert_eq!(
            second_life_embodied(GramsCo2e::from_kilograms(40.0), &ReuseFactor::new()),
            GramsCo2e::ZERO
        );
    }

    #[test]
    fn power_model_interpolates_between_idle_and_full_load() {
        let site = FleetSite::new("s", &tiny_sim(), flat_region(257.0), 500.0)
            .power(Watts::new(7.0), Watts::new(14.0));
        assert!((site.power_at(0.0).value() - 7.0).abs() < 1e-9);
        assert!((site.power_at(0.5).value() - 14.0).abs() < 1e-9);
        assert!((site.power_at(1.0).value() - 21.0).abs() < 1e-9);
        // Utilisation clamps.
        assert!((site.power_at(1.7).value() - 21.0).abs() < 1e-9);
    }

    #[test]
    fn embodied_amortises_linearly_over_the_lifetime() {
        let site = FleetSite::new("s", &tiny_sim(), flat_region(257.0), 500.0)
            .embodied(GramsCo2e::from_kilograms(36.0), TimeSpan::from_years(3.0));
        let per_day = site.embodied_over(TimeSpan::from_days(1.0));
        assert!((per_day.kilograms() - 36.0 / (3.0 * 365.25)).abs() < 1e-9);
        // A whole amortisation period charges the full bill.
        let full = site.embodied_over(TimeSpan::from_years(3.0));
        assert!((full.kilograms() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn smart_charging_scale_saves_on_a_diurnal_grid_but_not_a_flat_one() {
        let diurnal = junkyard_grid::synth::CaisoSynthesizer::new(7, 3).intensity_trace();
        let scale = smart_charging_scale(Watts::new(1.7), BatterySpec::pixel_3a(), &diurnal);
        assert!(scale < 1.0 && scale > 0.8, "scale {scale}");
        // A flat grid offers nothing to shift towards.
        let flat = flat_region(257.0);
        let no_gain = smart_charging_scale(Watts::new(1.7), BatterySpec::pixel_3a(), flat.trace());
        assert!((no_gain - 1.0).abs() < 1e-9, "no_gain {no_gain}");
    }

    #[test]
    fn region_mean_intensity_uses_the_trace_window() {
        let region = flat_region(300.0);
        let mean =
            region.mean_intensity_between(TimeSpan::from_hours(2.0), TimeSpan::from_hours(26.0));
        assert!((mean.grams_per_kwh() - 300.0).abs() < 1e-9);
        assert_eq!(region.name(), "flat");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FleetSite::new("s", &tiny_sim(), flat_region(257.0), 0.0);
    }
}
