//! Shared test fixtures for the fleet crate's unit-test modules.
//!
//! Every layer of this crate (sites, routing, fleet, lifecycle) exercises
//! the same minimal serving topology; building it here once keeps the
//! test modules from drifting apart.

use junkyard_carbon::units::{CarbonIntensity, TimeSpan};
use junkyard_grid::trace::IntensityTrace;
use junkyard_microsim::app::hotel_reservation;
use junkyard_microsim::network::NetworkModel;
use junkyard_microsim::node::NodeSpec;
use junkyard_microsim::placement::Placement;
use junkyard_microsim::sim::Simulation;

use crate::site::GridRegion;

/// A small two-phone simulation, cheap enough to build per test.
pub fn tiny_sim() -> Simulation {
    let app = hotel_reservation();
    let nodes = vec![NodeSpec::pixel_3a(0), NodeSpec::pixel_3a(1)];
    let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
    Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap()
}

/// A one-day constant-intensity grid region at `grams` gCO2e/kWh.
pub fn flat_region(grams: f64) -> GridRegion {
    GridRegion::new(
        "flat",
        IntensityTrace::constant(
            CarbonIntensity::from_grams_per_kwh(grams),
            TimeSpan::from_hours(1.0),
            TimeSpan::from_days(1.0),
        ),
    )
}
