//! Carbon-aware cloudlet fleet simulation — the serving layer that couples
//! the compiled microsim hot path to the grid, battery and carbon crates.
//!
//! The paper's headline result (Figures 7–9) is that cloudlets of junk
//! phones beat cloud VMs on *carbon per request*, but performance, grid
//! intensity and carbon accounting are evaluated in isolation there. This
//! crate answers the coupled question end to end:
//!
//! * [`schedule`] — diurnal, time-varying load schedules compiled into the
//!   microsim's ramp phases (non-homogeneous Poisson arrivals).
//! * [`site`] — a fleet site: one compiled cloudlet (or datacenter
//!   backend) simulation, its grid region, its power model and its
//!   amortised embodied carbon (via the paper's Reuse Factor, Eq. 8).
//! * [`routing`] — per-window traffic assignment: the paper's static
//!   placement as baseline, and a carbon-aware policy that shifts load
//!   towards the region that is cleanest *right now*.
//! * [`sim`] — [`FleetSim`](sim::FleetSim): drives every
//!   (window, site) cell through the compiled engine, integrates
//!   operational carbon from measured utilisation and amortised embodied
//!   carbon per window, and reports fleet-wide gCO2e per request. Cells
//!   fan out across scoped threads with pre-assigned output slots, so
//!   results are identical serial or threaded.
//! * [`faults`] — correlated fault injection and the failure-aware
//!   serving path: deterministic [`FaultPlan`](faults::FaultPlan)s of
//!   grid outages, firmware-batch failures and thermal shutdowns; a
//!   stale health view with detection lag; bounded
//!   [`RetryPolicy`](faults::RetryPolicy) retries and hedging, every
//!   attempt charged its carbon; and a degradation ladder
//!   (reroute → shed low-priority → brown-out) when retries exhaust.
//! * [`lifecycle`] — [`LifecycleSim`](lifecycle::LifecycleSim): the
//!   multi-year coupling of all of the above. Device cohorts wear their
//!   batteries day by day under the simulated smart-charging schedule,
//!   fail stochastically and are refilled from junkyard stock; routing
//!   re-plans every window as capacity shrinks and recovers; (year, site)
//!   cells fan out with the same deterministic slot pattern.
//!
//! # Example
//!
//! ```
//! use junkyard_carbon::units::{CarbonIntensity, TimeSpan, Watts};
//! use junkyard_fleet::routing::RoutingPolicy;
//! use junkyard_fleet::schedule::DiurnalSchedule;
//! use junkyard_fleet::sim::{FleetConfig, FleetSim};
//! use junkyard_fleet::site::{FleetSite, GridRegion};
//! use junkyard_grid::trace::IntensityTrace;
//! use junkyard_microsim::app::hotel_reservation;
//! use junkyard_microsim::network::NetworkModel;
//! use junkyard_microsim::node::NodeSpec;
//! use junkyard_microsim::placement::Placement;
//! use junkyard_microsim::sim::Simulation;
//!
//! let app = hotel_reservation();
//! let nodes = vec![NodeSpec::pixel_3a(0), NodeSpec::pixel_3a(1)];
//! let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
//! let sim = Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap();
//!
//! let region = GridRegion::new(
//!     "flat-grid",
//!     IntensityTrace::constant(
//!         CarbonIntensity::from_grams_per_kwh(257.0),
//!         TimeSpan::from_hours(1.0),
//!         TimeSpan::from_days(1.0),
//!     ),
//! );
//! let site = FleetSite::new("two-phones", &sim, region, 800.0)
//!     .power(Watts::new(1.5), Watts::new(2.8));
//!
//! let fleet = FleetSim::new(
//!     vec![site],
//!     DiurnalSchedule::flat(150.0),
//!     RoutingPolicy::Static,
//!     FleetConfig::new().windows_per_day(4).sim_slice_s(1.0).warmup_s(0.0),
//! );
//! let result = fleet.run().unwrap();
//! assert!(result.grams_per_request().unwrap() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod lifecycle;
pub mod routing;
pub mod schedule;
pub mod sim;
pub mod site;
#[cfg(test)]
pub(crate) mod testutil;

pub use faults::{
    DegradationLadder, FaultConfig, FaultEvent, FaultKind, FaultPlan, ResiliencePolicy, RetryPolicy,
};
pub use lifecycle::{
    CohortDevice, LifecycleCell, LifecycleConfig, LifecycleResult, LifecycleSim, LifecycleSite,
    SiteConfigError, WindowHealth,
};
pub use routing::{RoutingPolicy, SiteWindowInput, WindowAssignment};
pub use schedule::{DiurnalSchedule, LoadWindow};
pub use sim::{FleetCell, FleetConfig, FleetResult, FleetSim};
pub use site::{second_life_embodied, smart_charging_scale, FleetSite, GridRegion};
