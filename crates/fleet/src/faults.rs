//! Correlated fault injection and the failure-aware serving path.
//!
//! The lifecycle layer's stochastic per-device failures are *independent*
//! — one slot at a time, quietly refilled after a lag — and its router is
//! omniscient, re-planning every window from perfectly known alive
//! capacity. Real junkyard fleets fail in correlated ways: a regional
//! grid outage darkens a whole site for hours, a bad firmware batch
//! strikes a correlated fraction of a cohort at once, and thermal
//! mass-shutdowns temporarily zero a site's capacity. This module models
//! those events and what a serving stack does about them:
//!
//! * [`FaultConfig`] → [`FaultPlan`]: a deterministic schedule of
//!   correlated fault events, seeded through `decorrelate_seed` so the
//!   plan is bit-identical at any worker count. The plan reduces to a
//!   per-(window, site) *availability* multiplier in `[0, 1]`.
//! * Health view with detection lag: the router plans window `w` from
//!   the availability that was true at window `w - lag`. With a stale
//!   view, requests land on dead capacity and fail — detection lag is
//!   the knob that converts outages into failed requests.
//! * [`RetryPolicy`]: failed first attempts are re-sent (bounded rounds,
//!   per-attempt timeout and exponential backoff) to sites in proportion
//!   to the *observed* — stale — healthy capacity, so retries can land on
//!   dead capacity again. Every attempt, successful or not, is charged
//!   its network carbon; requests that land are charged marginal compute.
//!   An optional hedge forwards what is left to a standby fallback site.
//! * [`DegradationLadder`]: when retries exhaust, the operator (who sees
//!   the truth) reroutes to any real spare capacity, then sheds a
//!   low-priority fraction, then brown-outs: serves the remainder at
//!   degraded quality by stretching site capacity.
//!
//! [`resolve_window`] runs that pipeline for one window as plain
//! arithmetic on mean rates — no simulation — and the lifecycle layer
//! folds the outcome into its carbon and availability accounting.

use serde::{Deserialize, Serialize};

use junkyard_carbon::convert::{count_f64, index_u64, unit_draw as convert_unit_draw};
use junkyard_microsim::sweep::decorrelate_seed;

/// Converts a 64-bit draw into a unit float in `[0, 1)`, the same way the
/// sweep layer seeds its workloads.
fn unit_draw(draw: u64) -> f64 {
    convert_unit_draw(draw)
}

/// The kind of a correlated fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultKind {
    /// A regional grid outage: the whole site is dark for the duration.
    GridOutage,
    /// A firmware-batch failure: a correlated fraction of the cohort
    /// drops out at once.
    FirmwareBatch,
    /// A thermal mass-shutdown: every device throttles to zero capacity
    /// until the site cools.
    ThermalShutdown,
}

impl FaultKind {
    /// Display label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::GridOutage => "grid-outage",
            FaultKind::FirmwareBatch => "firmware-batch",
            FaultKind::ThermalShutdown => "thermal-shutdown",
        }
    }
}

/// One correlated fault event of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    site: usize,
    kind: FaultKind,
    start_window: usize,
    duration_windows: usize,
    severity: f64,
}

impl FaultEvent {
    /// Index of the struck site.
    #[must_use]
    pub fn site(&self) -> usize {
        self.site
    }

    /// What kind of fault this is.
    #[must_use]
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// First routing window the event covers.
    #[must_use]
    pub fn start_window(&self) -> usize {
        self.start_window
    }

    /// Number of consecutive windows the event lasts.
    #[must_use]
    pub fn duration_windows(&self) -> usize {
        self.duration_windows
    }

    /// Fraction of the site's capacity the event removes, in `(0, 1]`.
    #[must_use]
    pub fn severity(&self) -> f64 {
        self.severity
    }
}

/// Rates and shapes of the correlated fault processes. All three kinds
/// default to disabled; enable each with its builder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    grid_outage_mean_days: f64,
    grid_outage_duration_windows: usize,
    firmware_mean_days: f64,
    firmware_fraction: f64,
    firmware_duration_windows: usize,
    thermal_mean_days: f64,
    thermal_duration_windows: usize,
}

impl FaultConfig {
    /// A configuration with every fault process disabled. The generated
    /// plan is all-ones and the serving path treats it as fault-free.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            grid_outage_mean_days: 0.0,
            grid_outage_duration_windows: 1,
            firmware_mean_days: 0.0,
            firmware_fraction: 0.0,
            firmware_duration_windows: 1,
            thermal_mean_days: 0.0,
            thermal_duration_windows: 1,
        }
    }

    /// Enables regional grid outages: per site, one strikes on average
    /// every `mean_days` days and darkens the whole site for
    /// `duration_windows` routing windows.
    ///
    /// # Panics
    ///
    /// Panics if `mean_days` is not strictly positive or the duration is
    /// zero.
    #[must_use]
    pub fn grid_outages(mut self, mean_days: f64, duration_windows: usize) -> Self {
        assert!(
            mean_days > 0.0,
            "mean days between outages must be positive"
        );
        assert!(duration_windows > 0, "an outage lasts at least one window");
        self.grid_outage_mean_days = mean_days;
        self.grid_outage_duration_windows = duration_windows;
        self
    }

    /// Enables firmware-batch failures: per site, one strikes on average
    /// every `mean_days` days and takes down `fraction` of the cohort's
    /// capacity for `duration_windows` windows.
    ///
    /// # Panics
    ///
    /// Panics if `mean_days` is not strictly positive, `fraction` is
    /// outside `(0, 1]` or the duration is zero.
    #[must_use]
    pub fn firmware_batches(
        mut self,
        mean_days: f64,
        fraction: f64,
        duration_windows: usize,
    ) -> Self {
        assert!(
            mean_days > 0.0,
            "mean days between firmware faults must be positive"
        );
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "the struck cohort fraction must be in (0, 1]"
        );
        assert!(
            duration_windows > 0,
            "a firmware fault lasts at least one window"
        );
        self.firmware_mean_days = mean_days;
        self.firmware_fraction = fraction;
        self.firmware_duration_windows = duration_windows;
        self
    }

    /// Enables thermal mass-shutdowns: per site, one strikes on average
    /// every `mean_days` days and zeroes the site's capacity for
    /// `duration_windows` windows.
    ///
    /// # Panics
    ///
    /// Panics if `mean_days` is not strictly positive or the duration is
    /// zero.
    #[must_use]
    pub fn thermal_shutdowns(mut self, mean_days: f64, duration_windows: usize) -> Self {
        assert!(
            mean_days > 0.0,
            "mean days between thermal shutdowns must be positive"
        );
        assert!(duration_windows > 0, "a shutdown lasts at least one window");
        self.thermal_mean_days = mean_days;
        self.thermal_duration_windows = duration_windows;
        self
    }

    /// `true` when every fault process is disabled.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.grid_outage_mean_days <= 0.0
            && self.firmware_mean_days <= 0.0
            && self.thermal_mean_days <= 0.0
    }

    /// The three processes as `(kind, mean_days, duration, severity)`
    /// rows, disabled ones included with a zero rate.
    fn processes(&self) -> [(FaultKind, f64, usize, f64); 3] {
        [
            (
                FaultKind::GridOutage,
                self.grid_outage_mean_days,
                self.grid_outage_duration_windows,
                1.0,
            ),
            (
                FaultKind::FirmwareBatch,
                self.firmware_mean_days,
                self.firmware_duration_windows,
                self.firmware_fraction,
            ),
            (
                FaultKind::ThermalShutdown,
                self.thermal_mean_days,
                self.thermal_duration_windows,
                1.0,
            ),
        ]
    }
}

/// A deterministic schedule of correlated fault events over a horizon,
/// reduced to a per-(window, site) availability multiplier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    windows: usize,
    sites: usize,
    /// Window-major: `availability[window * sites + site]`, in `[0, 1]`.
    availability: Vec<f64>,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The fault-free plan: availability 1.0 everywhere, no events.
    #[must_use]
    pub fn none(windows: usize, sites: usize) -> Self {
        Self {
            windows,
            sites,
            availability: vec![1.0; windows * sites],
            events: Vec::new(),
        }
    }

    /// Generates the plan for `windows` routing windows over `sites`
    /// sites at `windows_per_day` windows per day. Every draw comes from
    /// a [`decorrelate_seed`] chain indexed by (kind, site, window), so
    /// the plan is a pure function of its arguments — bit-identical at
    /// any worker count and stable when other seeded draws change.
    #[must_use]
    pub fn generate(
        config: &FaultConfig,
        windows: usize,
        sites: usize,
        windows_per_day: usize,
        seed: u64,
    ) -> Self {
        let mut plan = Self::none(windows, sites);
        if config.is_disabled() {
            return plan;
        }
        for (kind_index, (kind, mean_days, duration, severity)) in
            config.processes().into_iter().enumerate()
        {
            if mean_days <= 0.0 {
                continue;
            }
            // Per-window hazard of a process with the given mean
            // inter-arrival time in days.
            let hazard = 1.0 - (-1.0 / (mean_days * count_f64(windows_per_day))).exp();
            let kind_seed = decorrelate_seed(seed, index_u64(kind_index) + 1);
            for site in 0..sites {
                let site_seed = decorrelate_seed(kind_seed, index_u64(site) + 1);
                let mut window = 0;
                while window < windows {
                    let draw = unit_draw(decorrelate_seed(site_seed, index_u64(window) + 1));
                    if draw < hazard {
                        plan.push_event(FaultEvent {
                            site,
                            kind,
                            start_window: window,
                            duration_windows: duration,
                            severity,
                        });
                        // One event of a kind at a time per site: skip to
                        // the end of this event before drawing again.
                        window += duration;
                    } else {
                        window += 1;
                    }
                }
            }
        }
        plan
    }

    fn push_event(&mut self, event: FaultEvent) {
        let end = (event.start_window + event.duration_windows).min(self.windows);
        for window in event.start_window..end {
            let cell = &mut self.availability[window * self.sites + event.site];
            *cell = (*cell * (1.0 - event.severity)).max(0.0);
        }
        self.events.push(event);
    }

    /// Number of routing windows the plan covers.
    #[must_use]
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Number of sites the plan covers.
    #[must_use]
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// The availability multiplier of one (window, site) pair, in
    /// `[0, 1]`: the fraction of the site's capacity the faults leave
    /// standing.
    #[must_use]
    pub fn availability(&self, window: usize, site: usize) -> f64 {
        self.availability[window * self.sites + site]
    }

    /// Every scheduled fault event, in generation order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` when the plan removes no capacity anywhere.
    #[must_use]
    pub fn is_fault_free(&self) -> bool {
        self.events.is_empty()
    }
}

/// What a client does after a request fails: bounded retries with
/// timeout and exponential backoff, each attempt charged its network
/// carbon, with an optional hedge to the standby fallback site once
/// retries exhaust.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    max_retries: usize,
    timeout_s: f64,
    backoff_base_s: f64,
    network_grams_per_attempt: f64,
    hedge_to_fallback: bool,
}

impl RetryPolicy {
    /// A policy with `max_retries` retry rounds, a 250 ms per-attempt
    /// timeout, a 100 ms exponential backoff base and 2 mgCO2e of network
    /// carbon per re-sent attempt; no hedging.
    ///
    /// # Panics
    ///
    /// Panics if `max_retries` is zero — use no policy instead.
    #[must_use]
    pub fn new(max_retries: usize) -> Self {
        assert!(max_retries > 0, "a retry policy needs at least one retry");
        Self {
            max_retries,
            timeout_s: 0.25,
            backoff_base_s: 0.1,
            network_grams_per_attempt: 0.002,
            hedge_to_fallback: false,
        }
    }

    /// Overrides the per-attempt timeout and the exponential backoff
    /// base (seconds).
    ///
    /// # Panics
    ///
    /// Panics if either is negative.
    #[must_use]
    pub fn timing(mut self, timeout_s: f64, backoff_base_s: f64) -> Self {
        assert!(timeout_s >= 0.0, "the timeout cannot be negative");
        assert!(backoff_base_s >= 0.0, "the backoff base cannot be negative");
        self.timeout_s = timeout_s;
        self.backoff_base_s = backoff_base_s;
        self
    }

    /// Overrides the network carbon charged per re-sent attempt, grams
    /// of CO2e (covers the extra radio/WAN transfer of the retry).
    ///
    /// # Panics
    ///
    /// Panics if negative.
    #[must_use]
    pub fn network_grams_per_attempt(mut self, grams: f64) -> Self {
        assert!(grams >= 0.0, "network carbon cannot be negative");
        self.network_grams_per_attempt = grams;
        self
    }

    /// After the retry rounds exhaust, hedge what is left to the
    /// resilience policy's fallback site.
    #[must_use]
    pub fn hedge_to_fallback(mut self) -> Self {
        self.hedge_to_fallback = true;
        self
    }

    /// Number of retry rounds.
    #[must_use]
    pub fn max_retries(&self) -> usize {
        self.max_retries
    }

    /// Whether exhausted retries hedge to the fallback site.
    #[must_use]
    pub fn hedges(&self) -> bool {
        self.hedge_to_fallback
    }

    /// Network carbon charged per re-sent attempt, gCO2e.
    #[must_use]
    pub fn attempt_grams(&self) -> f64 {
        self.network_grams_per_attempt
    }

    /// Worst-case client-side latency penalty of a request that burns
    /// every retry round: the sum of per-round timeout plus exponential
    /// backoff, seconds.
    #[must_use]
    pub fn worst_case_penalty_s(&self) -> f64 {
        (0..self.max_retries)
            .map(|round| self.timeout_s + self.backoff_base_s * count_f64(1 << round))
            .sum()
    }
}

/// What the operator does once client retries exhaust: reroute to real
/// spare capacity, shed a low-priority fraction, then brown-out — serve
/// the remainder at degraded quality by stretching capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationLadder {
    reroute: bool,
    low_priority_fraction: f64,
    brownout_stretch: f64,
}

impl DegradationLadder {
    /// The first rung only: the operator (with a truthful health view)
    /// reroutes unserved traffic to any real spare capacity.
    #[must_use]
    pub fn new() -> Self {
        Self {
            reroute: true,
            low_priority_fraction: 0.0,
            brownout_stretch: 1.0,
        }
    }

    /// Sheds up to `fraction` of the still-unserved traffic as
    /// low-priority before browning out.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn shed_low_priority(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "the low-priority fraction must be in [0, 1]"
        );
        self.low_priority_fraction = fraction;
        self
    }

    /// Serves what remains at degraded quality, stretching each site's
    /// true capacity by `stretch` (≥ 1.0; 1.0 disables the rung).
    ///
    /// # Panics
    ///
    /// Panics if `stretch` is below 1.0.
    #[must_use]
    pub fn brownout(mut self, stretch: f64) -> Self {
        assert!(stretch >= 1.0, "a brown-out stretch cannot shrink capacity");
        self.brownout_stretch = stretch;
        self
    }

    /// Fraction of still-unserved traffic shed as low-priority.
    #[must_use]
    pub fn low_priority_fraction(&self) -> f64 {
        self.low_priority_fraction
    }

    /// The brown-out capacity stretch factor (1.0 = disabled).
    #[must_use]
    pub fn brownout_stretch(&self) -> f64 {
        self.brownout_stretch
    }
}

impl Default for DegradationLadder {
    fn default() -> Self {
        Self::new()
    }
}

/// The failure-aware serving policy of a lifecycle run: how stale the
/// router's health view is, what clients do about failures, what the
/// operator does when retries exhaust, and which site (if any) is held
/// back as a standby fallback.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResiliencePolicy {
    detection_lag_windows: usize,
    retry: Option<RetryPolicy>,
    degradation: Option<DegradationLadder>,
    fallback_site: Option<usize>,
}

impl ResiliencePolicy {
    /// The do-nothing policy: an omniscient router (no detection lag),
    /// no retries, no degradation, no fallback.
    #[must_use]
    pub fn new() -> Self {
        Self {
            detection_lag_windows: 0,
            retry: None,
            degradation: None,
            fallback_site: None,
        }
    }

    /// Sets the health-view detection lag in routing windows: window `w`
    /// is planned from the availability that was true at `w - lag`.
    /// Zero means the router sees the truth.
    #[must_use]
    pub fn detection_lag_windows(mut self, windows: usize) -> Self {
        self.detection_lag_windows = windows;
        self
    }

    /// Installs a client retry policy.
    #[must_use]
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Installs an operator degradation ladder.
    #[must_use]
    pub fn degradation(mut self, ladder: DegradationLadder) -> Self {
        self.degradation = Some(ladder);
        self
    }

    /// Holds site `site` back as a standby fallback: the router assigns
    /// it no primary traffic, and hedged requests (see
    /// [`RetryPolicy::hedge_to_fallback`]) land on it.
    #[must_use]
    pub fn fallback_site(mut self, site: usize) -> Self {
        self.fallback_site = Some(site);
        self
    }

    /// The health-view detection lag, routing windows.
    #[must_use]
    pub fn lag_windows(&self) -> usize {
        self.detection_lag_windows
    }

    /// The client retry policy, if any.
    #[must_use]
    pub fn retry_policy(&self) -> Option<&RetryPolicy> {
        self.retry.as_ref()
    }

    /// The operator degradation ladder, if any.
    #[must_use]
    pub fn degradation_ladder(&self) -> Option<&DegradationLadder> {
        self.degradation.as_ref()
    }

    /// The standby fallback site index, if any.
    #[must_use]
    pub fn fallback(&self) -> Option<usize> {
        self.fallback_site
    }
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        Self::new()
    }
}

/// The resolved serving outcome of one routing window under faults: who
/// served what, what was retried where, and what finally failed. All
/// rates are window-mean requests/second.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResolution {
    /// True availability per site, from the fault plan.
    pub avail: Vec<f64>,
    /// `first_served / assigned` per site — exactly 1.0 when the site
    /// could take everything the router sent (the measured slice then
    /// replays the unscaled load, keeping fault-free windows
    /// bit-identical to the no-fault path).
    pub delivered_ratio: Vec<f64>,
    /// Traffic landed on each site *beyond* its first-attempt share:
    /// successful retries, hedges, reroutes and brown-out serving.
    pub extra_served_mean: Vec<f64>,
    /// Retry/hedge attempts aimed at each site (landed or not); each is
    /// charged the retry policy's network carbon.
    pub retry_attempt_mean: Vec<f64>,
    /// First-attempt failures: traffic sent to capacity that was not
    /// actually there.
    pub failed_first_mean: f64,
    /// Recovered via client retries.
    pub retried_ok_mean: f64,
    /// Recovered via the hedge to the fallback site.
    pub hedged_mean: f64,
    /// Recovered via the operator reroute rung.
    pub rerouted_mean: f64,
    /// Served at degraded quality via the brown-out rung.
    pub brownout_mean: f64,
    /// Shed as low-priority by the degradation ladder.
    pub lp_shed_mean: f64,
    /// Finally failed: nothing on the ladder could place it.
    pub failed_mean: f64,
}

/// Resolves one window's serving outcome: first attempts against true
/// capacity, then the retry rounds (targeted by the *observed*, possibly
/// stale, capacity), the hedge, and the degradation ladder. Pure
/// arithmetic on mean rates; deterministic.
#[must_use]
pub fn resolve_window(
    assigned_mean: &[f64],
    true_cap: &[f64],
    observed_cap: &[f64],
    avail: &[f64],
    policy: Option<&ResiliencePolicy>,
) -> WindowResolution {
    let sites = assigned_mean.len();
    let mut delivered_ratio = vec![1.0; sites];
    let mut extra = vec![0.0; sites];
    let mut attempts = vec![0.0; sites];
    let mut spare = vec![0.0; sites];
    let mut pool = 0.0;
    for s in 0..sites {
        let first = assigned_mean[s].min(true_cap[s]);
        if assigned_mean[s] > 0.0 && first < assigned_mean[s] {
            delivered_ratio[s] = first / assigned_mean[s];
            pool += assigned_mean[s] - first;
        }
        spare[s] = (true_cap[s] - first).max(0.0);
    }
    let failed_first = pool;

    let mut retried_ok = 0.0;
    let mut hedged = 0.0;
    let mut rerouted = 0.0;
    let mut brownout = 0.0;
    let mut lp_shed = 0.0;
    let fallback = policy.and_then(ResiliencePolicy::fallback);

    if let Some(retry) = policy.and_then(ResiliencePolicy::retry_policy) {
        for _round in 0..retry.max_retries() {
            if pool <= 0.0 {
                break;
            }
            // Clients re-send in proportion to the capacity they *believe*
            // is healthy; the standby fallback is invisible to them.
            let total_observed: f64 = (0..sites)
                .filter(|s| Some(*s) != fallback)
                .map(|s| observed_cap[s])
                .sum();
            if total_observed <= 0.0 {
                break;
            }
            let mut round_ok = 0.0;
            for s in 0..sites {
                if Some(s) == fallback || observed_cap[s] <= 0.0 {
                    continue;
                }
                let aimed = pool * observed_cap[s] / total_observed;
                attempts[s] += aimed;
                let landed = aimed.min(spare[s]);
                spare[s] -= landed;
                extra[s] += landed;
                round_ok += landed;
            }
            retried_ok += round_ok;
            pool -= round_ok;
        }
        if retry.hedges() {
            if let Some(f) = fallback {
                if pool > 0.0 {
                    attempts[f] += pool;
                    let landed = pool.min(spare[f]);
                    spare[f] -= landed;
                    extra[f] += landed;
                    hedged = landed;
                    pool -= landed;
                }
            }
        }
    }

    if let Some(ladder) = policy.and_then(ResiliencePolicy::degradation_ladder) {
        // Rung 1: the operator sees true spare capacity and reroutes.
        if pool > 0.0 {
            for s in 0..sites {
                if pool <= 0.0 {
                    break;
                }
                let landed = pool.min(spare[s]);
                spare[s] -= landed;
                extra[s] += landed;
                rerouted += landed;
                pool -= landed;
            }
        }
        // Rung 2: shed the low-priority share of what is still unserved.
        if pool > 0.0 && ladder.low_priority_fraction() > 0.0 {
            lp_shed = pool * ladder.low_priority_fraction();
            pool -= lp_shed;
        }
        // Rung 3: brown-out — stretch true capacity and serve degraded.
        if pool > 0.0 && ladder.brownout_stretch() > 1.0 {
            for s in 0..sites {
                if pool <= 0.0 {
                    break;
                }
                let headroom = true_cap[s] * (ladder.brownout_stretch() - 1.0);
                let landed = pool.min(headroom);
                extra[s] += landed;
                brownout += landed;
                pool -= landed;
            }
        }
    }

    WindowResolution {
        avail: avail.to_vec(),
        delivered_ratio,
        extra_served_mean: extra,
        retry_attempt_mean: attempts,
        failed_first_mean: failed_first,
        retried_ok_mean: retried_ok,
        hedged_mean: hedged,
        rerouted_mean: rerouted,
        brownout_mean: brownout,
        lp_shed_mean: lp_shed,
        failed_mean: pool.max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_generates_the_fault_free_plan() {
        let plan = FaultPlan::generate(&FaultConfig::disabled(), 48, 3, 6, 42);
        assert!(plan.is_fault_free());
        assert_eq!(plan, FaultPlan::none(48, 3));
        for w in 0..48 {
            for s in 0..3 {
                assert_eq!(plan.availability(w, s), 1.0);
            }
        }
    }

    #[test]
    fn generated_plans_are_deterministic_and_seed_sensitive() {
        let config = FaultConfig::disabled()
            .grid_outages(3.0, 2)
            .firmware_batches(2.0, 0.4, 3)
            .thermal_shutdowns(4.0, 1);
        let a = FaultPlan::generate(&config, 240, 2, 6, 7);
        let b = FaultPlan::generate(&config, 240, 2, 6, 7);
        assert_eq!(a, b);
        let c = FaultPlan::generate(&config, 240, 2, 6, 8);
        assert_ne!(a, c, "a different seed should reschedule the faults");
        assert!(!a.is_fault_free(), "these rates strike within 40 days");
        // Availability stays in [0, 1] and every event maps onto it.
        for w in 0..240 {
            for s in 0..2 {
                let avail = a.availability(w, s);
                assert!((0.0..=1.0).contains(&avail));
            }
        }
        for event in a.events() {
            let window = event.start_window();
            assert!(a.availability(window, event.site()) < 1.0);
        }
    }

    #[test]
    fn outages_zero_a_site_and_firmware_takes_a_fraction() {
        let outage = FaultConfig::disabled().grid_outages(1.0e-9, 4);
        let plan = FaultPlan::generate(&outage, 8, 1, 1, 1);
        // A near-certain hazard strikes immediately and repeatedly.
        assert!(plan.availability(0, 0) == 0.0);
        let firmware = FaultConfig::disabled().firmware_batches(1.0e-9, 0.3, 1);
        let plan = FaultPlan::generate(&firmware, 4, 1, 1, 1);
        assert!((plan.availability(0, 0) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn resolution_conserves_the_assigned_traffic() {
        let policy = ResiliencePolicy::new()
            .detection_lag_windows(1)
            .retry(RetryPolicy::new(2).hedge_to_fallback())
            .degradation(
                DegradationLadder::new()
                    .shed_low_priority(0.5)
                    .brownout(1.2),
            )
            .fallback_site(2);
        let assigned = [400.0, 300.0, 0.0];
        let true_cap = [100.0, 300.0, 250.0];
        let observed = [400.0, 300.0, 0.0];
        let avail = [0.25, 1.0, 1.0];
        let res = resolve_window(&assigned, &true_cap, &observed, &avail, Some(&policy));
        let served: f64 = (0..3)
            .map(|s| assigned[s] * res.delivered_ratio[s] + res.extra_served_mean[s])
            .sum();
        let total = served + res.lp_shed_mean + res.failed_mean;
        let offered: f64 = assigned.iter().sum();
        assert!(
            (total - offered).abs() < 1e-9 * offered,
            "conservation: {total} vs {offered}"
        );
        assert!(res.failed_first_mean > 0.0);
        assert!(res.hedged_mean > 0.0, "the fallback has spare capacity");
    }

    #[test]
    fn stale_retries_fail_against_dead_capacity() {
        // One site, fully dark, but the observed view still says healthy:
        // every retry round lands on dead capacity and fails.
        let policy = ResiliencePolicy::new()
            .detection_lag_windows(2)
            .retry(RetryPolicy::new(3));
        let res = resolve_window(&[200.0], &[0.0], &[400.0], &[0.0], Some(&policy));
        assert_eq!(res.retried_ok_mean, 0.0);
        assert_eq!(res.failed_mean, 200.0);
        // Three rounds of 200 qps aimed at the dead site, all charged.
        assert!((res.retry_attempt_mean[0] - 600.0).abs() < 1e-9);
    }

    #[test]
    fn no_policy_means_first_attempt_failures_are_final() {
        let res = resolve_window(&[300.0], &[100.0], &[300.0], &[1.0 / 3.0], None);
        assert!((res.failed_mean - 200.0).abs() < 1e-9);
        assert_eq!(res.retried_ok_mean, 0.0);
        assert_eq!(res.extra_served_mean[0], 0.0);
    }

    #[test]
    fn fault_free_resolution_is_the_identity() {
        let policy = ResiliencePolicy::new()
            .detection_lag_windows(3)
            .retry(RetryPolicy::new(2));
        let res = resolve_window(
            &[250.0, 100.0],
            &[400.0, 200.0],
            &[400.0, 200.0],
            &[1.0, 1.0],
            Some(&policy),
        );
        assert_eq!(res.delivered_ratio, vec![1.0, 1.0]);
        assert_eq!(res.failed_mean, 0.0);
        assert_eq!(res.retry_attempt_mean, vec![0.0, 0.0]);
    }

    #[test]
    fn retry_penalty_sums_timeout_and_exponential_backoff() {
        let retry = RetryPolicy::new(3).timing(0.25, 0.1);
        // 3 rounds: (0.25 + 0.1) + (0.25 + 0.2) + (0.25 + 0.4).
        assert!((retry.worst_case_penalty_s() - 1.45).abs() < 1e-12);
    }
}
