//! Electrical power models: measured power-vs-load curves and duty-cycle
//! (load profile) averaging.
//!
//! Table 2 of the paper reports each device's power draw at 100 %, 50 %,
//! 10 % CPU load and at idle; [`PowerCurve`] stores those anchor points and
//! interpolates between them. [`LoadProfile`] captures the Dell R740 LCA's
//! "light-medium" operating regime (10 % of time at full load, 35 % at half
//! load, 30 % at 10 % load, 25 % idle) and averages power and throughput
//! over it (Eqs. 4 and 6).

use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::ops::Throughput;
use junkyard_carbon::units::Watts;

/// A device's power draw as a function of CPU load.
///
/// The curve is piecewise-linear through the measured anchor points
/// `(0.0, idle)`, `(0.10, p10)`, `(0.50, p50)`, `(1.0, p100)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerCurve {
    idle: Watts,
    p10: Watts,
    p50: Watts,
    p100: Watts,
}

impl PowerCurve {
    /// Creates a power curve from the four measured points of Table 2.
    ///
    /// # Panics
    ///
    /// Panics if any value is negative or the curve is not monotonically
    /// non-decreasing in load.
    #[must_use]
    pub fn from_measurements(idle: Watts, p10: Watts, p50: Watts, p100: Watts) -> Self {
        assert!(idle.value() >= 0.0, "power cannot be negative");
        assert!(
            idle.value() <= p10.value()
                && p10.value() <= p50.value()
                && p50.value() <= p100.value(),
            "power curve must be non-decreasing in load"
        );
        Self {
            idle,
            p10,
            p50,
            p100,
        }
    }

    /// A constant-power device (useful for peripherals such as fans).
    #[must_use]
    pub fn constant(power: Watts) -> Self {
        Self {
            idle: power,
            p10: power,
            p50: power,
            p100: power,
        }
    }

    /// Idle power draw.
    #[must_use]
    pub fn idle(self) -> Watts {
        self.idle
    }

    /// Power at 10 % CPU load.
    #[must_use]
    pub fn at_10_percent(self) -> Watts {
        self.p10
    }

    /// Power at 50 % CPU load.
    #[must_use]
    pub fn at_50_percent(self) -> Watts {
        self.p50
    }

    /// Power at 100 % CPU load.
    #[must_use]
    pub fn at_full_load(self) -> Watts {
        self.p100
    }

    /// Power at an arbitrary load in `[0, 1]`, linearly interpolated between
    /// the measured anchor points. Loads outside the range are clamped.
    #[must_use]
    pub fn power_at(self, load: f64) -> Watts {
        let load = load.clamp(0.0, 1.0);
        let (x0, y0, x1, y1) = if load <= 0.10 {
            (0.0, self.idle, 0.10, self.p10)
        } else if load <= 0.50 {
            (0.10, self.p10, 0.50, self.p50)
        } else {
            (0.50, self.p50, 1.0, self.p100)
        };
        let frac = if x1 > x0 {
            (load - x0) / (x1 - x0)
        } else {
            0.0
        };
        y0 + (y1 - y0) * frac
    }

    /// Dynamic range of the curve (full load minus idle).
    #[must_use]
    pub fn dynamic_range(self) -> Watts {
        self.p100 - self.idle
    }
}

impl fmt::Display for PowerCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1}/{:.1}/{:.1}/{:.1} W (idle/10%/50%/100%)",
            self.idle.value(),
            self.p10.value(),
            self.p50.value(),
            self.p100.value()
        )
    }
}

/// One segment of a duty cycle: a CPU load level held for a fraction of time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadSegment {
    load: f64,
    time_fraction: f64,
}

impl LoadSegment {
    /// Creates a segment at `load` CPU utilisation for `time_fraction` of
    /// the duty cycle.
    ///
    /// # Panics
    ///
    /// Panics if either value lies outside `[0, 1]`.
    #[must_use]
    pub fn new(load: f64, time_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be in [0, 1]");
        assert!(
            (0.0..=1.0).contains(&time_fraction),
            "time fraction must be in [0, 1]"
        );
        Self {
            load,
            time_fraction,
        }
    }

    /// CPU load of this segment, in `[0, 1]`.
    #[must_use]
    pub fn load(self) -> f64 {
        self.load
    }

    /// Fraction of time spent in this segment, in `[0, 1]`.
    #[must_use]
    pub fn time_fraction(self) -> f64 {
        self.time_fraction
    }
}

/// Error returned when a load profile's time fractions do not sum to one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidProfile {
    /// The sum of the supplied time fractions.
    pub total_fraction: f64,
}

impl fmt::Display for InvalidProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "load profile time fractions must sum to 1.0 (got {:.4})",
            self.total_fraction
        )
    }
}

impl std::error::Error for InvalidProfile {}

/// A duty cycle: a set of load levels and the fraction of time spent at each.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    segments: Vec<LoadSegment>,
}

impl LoadProfile {
    /// Creates a profile from segments.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProfile`] if the time fractions do not sum to 1
    /// (within a small tolerance).
    pub fn new(segments: Vec<LoadSegment>) -> Result<Self, InvalidProfile> {
        let total: f64 = segments.iter().map(|s| s.time_fraction()).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(InvalidProfile {
                total_fraction: total,
            });
        }
        Ok(Self { segments })
    }

    /// The "light-medium" operating regime from Dell's PowerEdge R740 LCA
    /// used throughout the paper: 10 % of time at 100 % load, 35 % at 50 %,
    /// 30 % at 10 %, 25 % idle.
    #[must_use]
    pub fn light_medium() -> Self {
        Self::new(vec![
            LoadSegment::new(1.0, 0.10),
            LoadSegment::new(0.50, 0.35),
            LoadSegment::new(0.10, 0.30),
            LoadSegment::new(0.0, 0.25),
        ])
        // lint:allow(panic-in-library): constant segments sum to 1.0
        // exactly, pinned by the duty-cycle unit tests
        .expect("light-medium fractions sum to 1")
    }

    /// A constant 100 % load duty cycle (the paper's CPU stress test).
    #[must_use]
    pub fn full_load() -> Self {
        // lint:allow(panic-in-library): a single full-weight segment
        // always passes validation
        Self::new(vec![LoadSegment::new(1.0, 1.0)]).expect("single segment sums to 1")
    }

    /// A constant-load duty cycle at the given utilisation.
    ///
    /// # Panics
    ///
    /// Panics if `load` lies outside `[0, 1]`.
    #[must_use]
    pub fn constant(load: f64) -> Self {
        // lint:allow(panic-in-library): documented panic — the segment
        // weight is constant 1.0; only an out-of-range `load` can fail
        Self::new(vec![LoadSegment::new(load, 1.0)]).expect("single segment sums to 1")
    }

    /// The profile's segments.
    #[must_use]
    pub fn segments(&self) -> &[LoadSegment] {
        &self.segments
    }

    /// Time-weighted average CPU load of the profile.
    #[must_use]
    pub fn average_load(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.load() * s.time_fraction())
            .sum()
    }

    /// Time-weighted average power of a device with the given power curve
    /// under this profile — the `P_avg` column of Table 2 (Eq. 4).
    ///
    /// Note that, following the paper, each segment uses the power measured
    /// at that anchor load (idle, 10 %, 50 %, 100 %), i.e. the curve is
    /// evaluated at the segment load.
    #[must_use]
    pub fn average_power(&self, curve: PowerCurve) -> Watts {
        self.segments
            .iter()
            .map(|s| curve.power_at(s.load()) * s.time_fraction())
            .sum()
    }

    /// Average useful throughput under this profile assuming throughput
    /// scales linearly with CPU load from the benchmark's full-load
    /// throughput (Eq. 6). The idle segment contributes no work.
    #[must_use]
    pub fn average_throughput(&self, full_load: Throughput) -> Throughput {
        full_load.scaled(self.average_load())
    }
}

impl Default for LoadProfile {
    /// Defaults to the paper's light-medium regime.
    fn default() -> Self {
        Self::light_medium()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use junkyard_carbon::ops::OpUnit;

    fn poweredge_curve() -> PowerCurve {
        PowerCurve::from_measurements(
            Watts::new(201.0),
            Watts::new(261.0),
            Watts::new(369.0),
            Watts::new(510.0),
        )
    }

    fn pixel_curve() -> PowerCurve {
        PowerCurve::from_measurements(
            Watts::new(0.8),
            Watts::new(1.4),
            Watts::new(1.9),
            Watts::new(2.5),
        )
    }

    #[test]
    fn table2_average_power_poweredge() {
        let avg = LoadProfile::light_medium().average_power(poweredge_curve());
        assert!((avg.value() - 308.7).abs() < 0.05, "got {avg}");
    }

    #[test]
    fn table2_average_power_pixel() {
        let avg = LoadProfile::light_medium().average_power(pixel_curve());
        // 0.10*2.5 + 0.35*1.9 + 0.30*1.4 + 0.25*0.8 = 1.535; the paper
        // rounds to 1.54.
        assert!((avg.value() - 1.54).abs() < 0.01, "got {avg}");
    }

    #[test]
    fn table2_average_power_nexus4() {
        let nexus = PowerCurve::from_measurements(
            Watts::new(0.7),
            Watts::new(1.0),
            Watts::new(2.7),
            Watts::new(3.6),
        );
        let avg = LoadProfile::light_medium().average_power(nexus);
        assert!((avg.value() - 1.78).abs() < 0.015, "got {avg}");
    }

    #[test]
    fn interpolation_at_anchor_points() {
        let c = poweredge_curve();
        assert_eq!(c.power_at(0.0), c.idle());
        assert_eq!(c.power_at(0.10), c.at_10_percent());
        assert_eq!(c.power_at(0.50), c.at_50_percent());
        assert_eq!(c.power_at(1.0), c.at_full_load());
    }

    #[test]
    fn interpolation_is_monotonic_and_clamped() {
        let c = pixel_curve();
        let mut prev = c.power_at(0.0);
        for i in 1..=100 {
            let now = c.power_at(f64::from(i) / 100.0);
            assert!(now.value() >= prev.value() - 1e-12);
            prev = now;
        }
        assert_eq!(c.power_at(-0.5), c.idle());
        assert_eq!(c.power_at(2.0), c.at_full_load());
    }

    #[test]
    fn light_medium_average_load() {
        // 0.10*1.0 + 0.35*0.5 + 0.30*0.1 + 0.25*0 = 0.305
        let avg = LoadProfile::light_medium().average_load();
        assert!((avg - 0.305).abs() < 1e-12);
    }

    #[test]
    fn average_throughput_scales_with_load() {
        let full = Throughput::per_second(39.0, OpUnit::Gflop);
        let avg = LoadProfile::light_medium().average_throughput(full);
        assert!((avg.rate() - 39.0 * 0.305).abs() < 1e-9);
        let stress = LoadProfile::full_load().average_throughput(full);
        assert!((stress.rate() - 39.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_profile_rejected() {
        let err = LoadProfile::new(vec![LoadSegment::new(1.0, 0.5)]).unwrap_err();
        assert!((err.total_fraction - 0.5).abs() < 1e-12);
        assert!(err.to_string().contains("sum to 1.0"));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn non_monotonic_curve_panics() {
        let _ = PowerCurve::from_measurements(
            Watts::new(10.0),
            Watts::new(5.0),
            Watts::new(20.0),
            Watts::new(30.0),
        );
    }

    #[test]
    fn constant_curve_and_profile() {
        let fan = PowerCurve::constant(Watts::new(4.0));
        assert_eq!(fan.power_at(0.3), Watts::new(4.0));
        assert_eq!(fan.dynamic_range(), Watts::ZERO);
        let half = LoadProfile::constant(0.5);
        assert!((half.average_load() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_not_empty() {
        assert!(!poweredge_curve().to_string().is_empty());
    }
}
