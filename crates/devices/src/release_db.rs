//! The yearly smartphone-capability dataset behind Figure 1.
//!
//! Figure 1 plots, for the five most popular Android phones released each
//! year from 2013 to 2021, their GeekBench performance (normalised so that
//! 1.0 equals an Intel Core i3), core count and memory, against the
//! capabilities of AWS T4g instances. The original figure draws on the
//! public GeekBench browser; this module carries a representative dataset
//! with the same trend (documented as a synthetic reconstruction in
//! `DESIGN.md`).

use serde::{Deserialize, Serialize};

/// Capability snapshot of one phone model at release.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhoneRelease {
    name: &'static str,
    year: u16,
    /// GeekBench multi-core score normalised to an Intel Core i3 (= 1.0).
    performance: f64,
    cores: u32,
    memory_min_gib: f64,
    memory_max_gib: f64,
}

impl PhoneRelease {
    const fn new(
        name: &'static str,
        year: u16,
        performance: f64,
        cores: u32,
        memory_min_gib: f64,
        memory_max_gib: f64,
    ) -> Self {
        Self {
            name,
            year,
            performance,
            cores,
            memory_min_gib,
            memory_max_gib,
        }
    }

    /// Phone model name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Release year.
    #[must_use]
    pub fn year(&self) -> u16 {
        self.year
    }

    /// Normalised GeekBench performance (1.0 = Intel Core i3).
    #[must_use]
    pub fn performance(&self) -> f64 {
        self.performance
    }

    /// Number of CPU cores.
    #[must_use]
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Smallest memory configuration sold, in GiB.
    #[must_use]
    pub fn memory_min_gib(&self) -> f64 {
        self.memory_min_gib
    }

    /// Largest memory configuration sold, in GiB.
    #[must_use]
    pub fn memory_max_gib(&self) -> f64 {
        self.memory_max_gib
    }
}

/// The five most popular Android phones released each year, 2013–2021.
#[must_use]
pub fn popular_android_phones() -> Vec<PhoneRelease> {
    vec![
        PhoneRelease::new("Galaxy S4", 2013, 0.55, 4, 2.0, 2.0),
        PhoneRelease::new("HTC One", 2013, 0.50, 4, 2.0, 2.0),
        PhoneRelease::new("Nexus 5", 2013, 0.60, 4, 2.0, 2.0),
        PhoneRelease::new("LG G2", 2013, 0.58, 4, 2.0, 2.0),
        PhoneRelease::new("Xperia Z", 2013, 0.48, 4, 2.0, 2.0),
        PhoneRelease::new("Galaxy S5", 2014, 0.72, 4, 2.0, 2.0),
        PhoneRelease::new("Galaxy Note 4", 2014, 0.80, 4, 3.0, 3.0),
        PhoneRelease::new("Nexus 6", 2014, 0.78, 4, 3.0, 3.0),
        PhoneRelease::new("OnePlus One", 2014, 0.74, 4, 3.0, 3.0),
        PhoneRelease::new("LG G3", 2014, 0.70, 4, 2.0, 3.0),
        PhoneRelease::new("Galaxy S6", 2015, 1.05, 8, 3.0, 3.0),
        PhoneRelease::new("Nexus 5X", 2015, 0.88, 6, 2.0, 2.0),
        PhoneRelease::new("Nexus 6P", 2015, 0.98, 8, 3.0, 3.0),
        PhoneRelease::new("LG G4", 2015, 0.85, 6, 3.0, 3.0),
        PhoneRelease::new("OnePlus 2", 2015, 0.95, 8, 3.0, 4.0),
        PhoneRelease::new("Galaxy S7", 2016, 1.25, 8, 4.0, 4.0),
        PhoneRelease::new("Pixel", 2016, 1.30, 4, 4.0, 4.0),
        PhoneRelease::new("OnePlus 3", 2016, 1.28, 4, 6.0, 6.0),
        PhoneRelease::new("LG G5", 2016, 1.15, 4, 4.0, 4.0),
        PhoneRelease::new("Huawei P9", 2016, 1.10, 8, 3.0, 4.0),
        PhoneRelease::new("Galaxy S8", 2017, 1.55, 8, 4.0, 4.0),
        PhoneRelease::new("Pixel 2", 2017, 1.60, 8, 4.0, 4.0),
        PhoneRelease::new("OnePlus 5", 2017, 1.62, 8, 6.0, 8.0),
        PhoneRelease::new("Galaxy Note 8", 2017, 1.58, 8, 6.0, 6.0),
        PhoneRelease::new("Huawei Mate 10", 2017, 1.48, 8, 4.0, 6.0),
        PhoneRelease::new("Galaxy S9", 2018, 1.85, 8, 4.0, 4.0),
        PhoneRelease::new("Pixel 3", 2018, 1.80, 8, 4.0, 4.0),
        PhoneRelease::new("OnePlus 6", 2018, 1.95, 8, 6.0, 8.0),
        PhoneRelease::new("Huawei P20 Pro", 2018, 1.75, 8, 6.0, 6.0),
        PhoneRelease::new("Xiaomi Mi 8", 2018, 1.90, 8, 6.0, 8.0),
        PhoneRelease::new("Galaxy S10", 2019, 2.25, 8, 8.0, 8.0),
        PhoneRelease::new("Pixel 4", 2019, 2.10, 8, 6.0, 6.0),
        PhoneRelease::new("OnePlus 7 Pro", 2019, 2.30, 8, 6.0, 12.0),
        PhoneRelease::new("Huawei P30", 2019, 2.05, 8, 6.0, 8.0),
        PhoneRelease::new("Xiaomi Mi 9", 2019, 2.20, 8, 6.0, 8.0),
        PhoneRelease::new("Galaxy S20", 2020, 2.55, 8, 8.0, 12.0),
        PhoneRelease::new("Pixel 5", 2020, 2.30, 8, 8.0, 8.0),
        PhoneRelease::new("OnePlus 8", 2020, 2.65, 8, 8.0, 12.0),
        PhoneRelease::new("Xiaomi Mi 10", 2020, 2.60, 8, 8.0, 12.0),
        PhoneRelease::new("Galaxy Note 20", 2020, 2.58, 8, 8.0, 8.0),
        PhoneRelease::new("Galaxy S21", 2021, 2.95, 8, 8.0, 8.0),
        PhoneRelease::new("Pixel 6", 2021, 2.85, 8, 8.0, 12.0),
        PhoneRelease::new("OnePlus 9", 2021, 3.05, 8, 8.0, 12.0),
        PhoneRelease::new("Xiaomi Mi 11", 2021, 3.10, 8, 8.0, 12.0),
        PhoneRelease::new("Galaxy Z Flip3", 2021, 2.90, 8, 8.0, 8.0),
    ]
}

/// An AWS T4g instance size, plotted as a reference line in Figure 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct T4gInstance {
    name: &'static str,
    /// Performance normalised to an Intel Core i3 (= 1.0).
    performance: f64,
    vcpus: u32,
    memory_gib: f64,
}

impl T4gInstance {
    const fn new(name: &'static str, performance: f64, vcpus: u32, memory_gib: f64) -> Self {
        Self {
            name,
            performance,
            vcpus,
            memory_gib,
        }
    }

    /// Instance type name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Normalised performance.
    #[must_use]
    pub fn performance(&self) -> f64 {
        self.performance
    }

    /// Number of vCPUs.
    #[must_use]
    pub fn vcpus(&self) -> u32 {
        self.vcpus
    }

    /// Memory in GiB.
    #[must_use]
    pub fn memory_gib(&self) -> f64 {
        self.memory_gib
    }
}

/// The T4g instance sizes shown as horizontal references in Figure 1
/// (as offered in August 2021).
#[must_use]
pub fn t4g_instances() -> Vec<T4gInstance> {
    vec![
        T4gInstance::new("t4g.small", 1.2, 2, 2.0),
        T4gInstance::new("t4g.medium", 1.2, 2, 4.0),
        T4gInstance::new("t4g.large", 1.2, 2, 8.0),
        T4gInstance::new("t4g.xlarge", 2.4, 4, 16.0),
        T4gInstance::new("t4g.2xlarge", 4.8, 8, 32.0),
    ]
}

/// Summary statistics of one release year, as plotted in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YearSummary {
    year: u16,
    performance_mean: f64,
    performance_min: f64,
    performance_max: f64,
    cores_mean: f64,
    cores_min: u32,
    cores_max: u32,
    memory_min_config_mean: f64,
    memory_max_config_mean: f64,
}

impl YearSummary {
    /// Release year.
    #[must_use]
    pub fn year(&self) -> u16 {
        self.year
    }

    /// Mean normalised performance of that year's popular phones.
    #[must_use]
    pub fn performance_mean(&self) -> f64 {
        self.performance_mean
    }

    /// Minimum normalised performance.
    #[must_use]
    pub fn performance_min(&self) -> f64 {
        self.performance_min
    }

    /// Maximum normalised performance.
    #[must_use]
    pub fn performance_max(&self) -> f64 {
        self.performance_max
    }

    /// Mean core count.
    #[must_use]
    pub fn cores_mean(&self) -> f64 {
        self.cores_mean
    }

    /// Minimum core count.
    #[must_use]
    pub fn cores_min(&self) -> u32 {
        self.cores_min
    }

    /// Maximum core count.
    #[must_use]
    pub fn cores_max(&self) -> u32 {
        self.cores_max
    }

    /// Mean memory of the minimum configurations, in GiB.
    #[must_use]
    pub fn memory_min_config_mean(&self) -> f64 {
        self.memory_min_config_mean
    }

    /// Mean memory of the maximum configurations, in GiB.
    #[must_use]
    pub fn memory_max_config_mean(&self) -> f64 {
        self.memory_max_config_mean
    }
}

/// Summarises the phone dataset per release year, in ascending year order.
#[must_use]
pub fn yearly_summaries() -> Vec<YearSummary> {
    let phones = popular_android_phones();
    let mut years: Vec<u16> = phones.iter().map(PhoneRelease::year).collect();
    years.sort_unstable();
    years.dedup();
    years
        .into_iter()
        .map(|year| {
            let of_year: Vec<&PhoneRelease> = phones.iter().filter(|p| p.year() == year).collect();
            let count = of_year.len() as f64;
            let perf: Vec<f64> = of_year.iter().map(|p| p.performance()).collect();
            let cores: Vec<u32> = of_year.iter().map(|p| p.cores()).collect();
            YearSummary {
                year,
                performance_mean: perf.iter().sum::<f64>() / count,
                performance_min: perf.iter().copied().fold(f64::INFINITY, f64::min),
                performance_max: perf.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                cores_mean: cores.iter().map(|c| f64::from(*c)).sum::<f64>() / count,
                cores_min: cores.iter().copied().min().unwrap_or(0),
                cores_max: cores.iter().copied().max().unwrap_or(0),
                memory_min_config_mean: of_year.iter().map(|p| p.memory_min_gib()).sum::<f64>()
                    / count,
                memory_max_config_mean: of_year.iter().map(|p| p.memory_max_gib()).sum::<f64>()
                    / count,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_covers_2013_to_2021() {
        let summaries = yearly_summaries();
        assert_eq!(summaries.first().unwrap().year(), 2013);
        assert_eq!(summaries.last().unwrap().year(), 2021);
        assert_eq!(summaries.len(), 9);
    }

    #[test]
    fn every_year_has_five_phones() {
        let phones = popular_android_phones();
        for year in 2013..=2021u16 {
            let count = phones.iter().filter(|p| p.year() == year).count();
            assert_eq!(count, 5, "year {year}");
        }
    }

    #[test]
    fn performance_trend_is_increasing() {
        let summaries = yearly_summaries();
        let first = summaries.first().unwrap().performance_mean();
        let last = summaries.last().unwrap().performance_mean();
        assert!(last > first * 3.0, "expected strong performance growth");
        // Means should be monotically non-decreasing year over year.
        for pair in summaries.windows(2) {
            assert!(pair[1].performance_mean() >= pair[0].performance_mean());
        }
    }

    #[test]
    fn recent_phones_exceed_t4g_medium() {
        // The paper's headline claim for Figure 1: recent phones meet or
        // exceed the capability of the T4g instances serving microservices.
        let medium = t4g_instances()
            .into_iter()
            .find(|i| i.name() == "t4g.medium")
            .unwrap();
        let last = yearly_summaries().pop().unwrap();
        assert!(last.performance_mean() > medium.performance());
        assert!(last.cores_mean() >= f64::from(medium.vcpus()));
        assert!(last.memory_max_config_mean() >= medium.memory_gib());
    }

    #[test]
    fn bounds_are_consistent() {
        for summary in yearly_summaries() {
            assert!(summary.performance_min() <= summary.performance_mean());
            assert!(summary.performance_mean() <= summary.performance_max());
            assert!(summary.cores_min() <= summary.cores_max());
            assert!(summary.memory_min_config_mean() <= summary.memory_max_config_mean());
        }
    }

    #[test]
    fn t4g_reference_lines_present() {
        let instances = t4g_instances();
        assert_eq!(instances.len(), 5);
        assert!(instances.iter().any(|i| i.name() == "t4g.2xlarge"));
    }
}
