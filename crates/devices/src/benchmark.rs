//! GeekBench-style microbenchmark identities and scores.
//!
//! The paper characterises every device with four GeekBench 4 workloads
//! (Table 1): SGEMM (Gflops), PDF rendering (Mpixels/s), Dijkstra (millions
//! of traversed edges per second) and memory copy (GB/s). Single-core and
//! multi-core throughputs are both recorded; the paper treats the multi-core
//! number as the device's total computational power.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::ops::{OpUnit, Throughput};

/// One of the four microbenchmarks used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Benchmark {
    /// Single-precision dense matrix multiply, measured in Gflops.
    Sgemm,
    /// PDF rasterisation, measured in Mpixels/s.
    PdfRender,
    /// Single-source shortest paths, measured in millions of traversed
    /// edges per second (MTE/s).
    Dijkstra,
    /// Large memory copy, measured in GB/s.
    MemoryCopy,
}

impl Benchmark {
    /// All benchmarks, in the order Table 1 lists them.
    pub const ALL: [Benchmark; 4] = [
        Benchmark::Sgemm,
        Benchmark::PdfRender,
        Benchmark::Dijkstra,
        Benchmark::MemoryCopy,
    ];

    /// The three benchmarks the paper plots CCI curves for (Figures 2 and 5).
    pub const CCI_FIGURES: [Benchmark; 3] =
        [Benchmark::Sgemm, Benchmark::PdfRender, Benchmark::Dijkstra];

    /// The unit of useful work this benchmark measures.
    #[must_use]
    pub fn op_unit(self) -> OpUnit {
        match self {
            Benchmark::Sgemm => OpUnit::Gflop,
            Benchmark::PdfRender => OpUnit::Mpixel,
            Benchmark::Dijkstra => OpUnit::MillionEdges,
            Benchmark::MemoryCopy => OpUnit::Gigabyte,
        }
    }

    /// Human-readable name as used in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Sgemm => "SGEMM",
            Benchmark::PdfRender => "PDF Render",
            Benchmark::Dijkstra => "Dijkstra",
            Benchmark::MemoryCopy => "Memory Copy",
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Single-core and multi-core throughput of a device on one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkScore {
    benchmark: Benchmark,
    single_core: f64,
    multi_core: f64,
}

impl BenchmarkScore {
    /// Creates a score. Values are in the benchmark's natural unit per
    /// second (Gflops, Mpixels/s, MTE/s or GB/s).
    ///
    /// # Panics
    ///
    /// Panics if either value is negative, or if the multi-core score is
    /// lower than the single-core score (a physical impossibility for these
    /// throughput benchmarks).
    #[must_use]
    pub fn new(benchmark: Benchmark, single_core: f64, multi_core: f64) -> Self {
        assert!(
            single_core >= 0.0 && multi_core >= 0.0,
            "benchmark scores cannot be negative"
        );
        assert!(
            multi_core >= single_core,
            "multi-core throughput cannot be below single-core throughput"
        );
        Self {
            benchmark,
            single_core,
            multi_core,
        }
    }

    /// The benchmark this score belongs to.
    #[must_use]
    pub fn benchmark(self) -> Benchmark {
        self.benchmark
    }

    /// Single-core throughput in the benchmark's natural unit per second.
    #[must_use]
    pub fn single_core(self) -> f64 {
        self.single_core
    }

    /// Multi-core throughput in the benchmark's natural unit per second.
    /// The paper uses this as the device's total computational power.
    #[must_use]
    pub fn multi_core(self) -> f64 {
        self.multi_core
    }

    /// Multi-core throughput as a typed [`Throughput`].
    #[must_use]
    pub fn multi_core_throughput(self) -> Throughput {
        Throughput::per_second(self.multi_core, self.benchmark.op_unit())
    }

    /// Single-core throughput as a typed [`Throughput`].
    #[must_use]
    pub fn single_core_throughput(self) -> Throughput {
        Throughput::per_second(self.single_core, self.benchmark.op_unit())
    }

    /// Multi-core speed-up over one core.
    #[must_use]
    pub fn parallel_speedup(self) -> f64 {
        if self.single_core > 0.0 {
            self.multi_core / self.single_core
        } else {
            0.0
        }
    }
}

/// The full set of benchmark scores for one device.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BenchmarkSuite {
    scores: BTreeMap<Benchmark, BenchmarkScore>,
}

impl BenchmarkSuite {
    /// Creates an empty suite.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a score (builder style); replaces any existing score for the
    /// same benchmark.
    #[must_use]
    pub fn with_score(mut self, benchmark: Benchmark, single: f64, multi: f64) -> Self {
        self.insert(BenchmarkScore::new(benchmark, single, multi));
        self
    }

    /// Inserts a score, replacing any existing entry for the same benchmark.
    pub fn insert(&mut self, score: BenchmarkScore) {
        self.scores.insert(score.benchmark(), score);
    }

    /// Looks up the score for a benchmark.
    #[must_use]
    pub fn get(&self, benchmark: Benchmark) -> Option<BenchmarkScore> {
        self.scores.get(&benchmark).copied()
    }

    /// Iterates over scores in [`Benchmark`] order.
    pub fn iter(&self) -> impl Iterator<Item = BenchmarkScore> + '_ {
        self.scores.values().copied()
    }

    /// Number of benchmarks with a recorded score.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// `true` if no scores are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// How many of this device are needed to match `baseline`'s multi-core
    /// throughput on `benchmark` — the `N` column of Table 1.
    ///
    /// Returns `None` when either device lacks a score for the benchmark or
    /// this device's throughput is zero.
    #[must_use]
    pub fn devices_to_match(&self, baseline: &BenchmarkSuite, benchmark: Benchmark) -> Option<u32> {
        let ours = self.get(benchmark)?.multi_core();
        let theirs = baseline.get(benchmark)?.multi_core();
        if ours <= 0.0 {
            return None;
        }
        Some((theirs / ours).ceil().max(1.0) as u32)
    }
}

impl FromIterator<BenchmarkScore> for BenchmarkSuite {
    fn from_iter<T: IntoIterator<Item = BenchmarkScore>>(iter: T) -> Self {
        let mut suite = Self::new();
        for score in iter {
            suite.insert(score);
        }
        suite
    }
}

impl Extend<BenchmarkScore> for BenchmarkSuite {
    fn extend<T: IntoIterator<Item = BenchmarkScore>>(&mut self, iter: T) {
        for score in iter {
            self.insert(score);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poweredge() -> BenchmarkSuite {
        BenchmarkSuite::new()
            .with_score(Benchmark::Sgemm, 77.2, 2070.0)
            .with_score(Benchmark::PdfRender, 109.1, 3140.0)
            .with_score(Benchmark::Dijkstra, 3.58, 80.2)
            .with_score(Benchmark::MemoryCopy, 6.33, 19.5)
    }

    fn pixel_3a() -> BenchmarkSuite {
        BenchmarkSuite::new()
            .with_score(Benchmark::Sgemm, 8.84, 39.0)
            .with_score(Benchmark::PdfRender, 38.9, 147.0)
            .with_score(Benchmark::Dijkstra, 1.08, 4.44)
            .with_score(Benchmark::MemoryCopy, 4.00, 5.45)
    }

    #[test]
    fn op_units_match_paper() {
        assert_eq!(Benchmark::Sgemm.op_unit(), OpUnit::Gflop);
        assert_eq!(Benchmark::PdfRender.op_unit(), OpUnit::Mpixel);
        assert_eq!(Benchmark::Dijkstra.op_unit(), OpUnit::MillionEdges);
        assert_eq!(Benchmark::MemoryCopy.op_unit(), OpUnit::Gigabyte);
    }

    #[test]
    fn table1_n_for_pixel_sgemm_is_54() {
        let n = pixel_3a()
            .devices_to_match(&poweredge(), Benchmark::Sgemm)
            .unwrap();
        assert_eq!(n, 54);
    }

    #[test]
    fn table1_n_for_pixel_pdf_is_22() {
        let n = pixel_3a()
            .devices_to_match(&poweredge(), Benchmark::PdfRender)
            .unwrap();
        assert_eq!(n, 22);
    }

    #[test]
    fn baseline_matches_itself_with_one_device() {
        let n = poweredge()
            .devices_to_match(&poweredge(), Benchmark::Sgemm)
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn missing_score_yields_none() {
        let empty = BenchmarkSuite::new();
        assert!(empty
            .devices_to_match(&poweredge(), Benchmark::Sgemm)
            .is_none());
        assert!(empty.get(Benchmark::Sgemm).is_none());
        assert!(empty.is_empty());
    }

    #[test]
    fn parallel_speedup() {
        let score = BenchmarkScore::new(Benchmark::Sgemm, 10.0, 40.0);
        assert!((score.parallel_speedup() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "multi-core throughput cannot be below single-core")]
    fn multi_below_single_panics() {
        let _ = BenchmarkScore::new(Benchmark::Sgemm, 10.0, 5.0);
    }

    #[test]
    fn suite_collects_and_iterates_in_order() {
        let suite: BenchmarkSuite = [
            BenchmarkScore::new(Benchmark::MemoryCopy, 1.0, 2.0),
            BenchmarkScore::new(Benchmark::Sgemm, 1.0, 2.0),
        ]
        .into_iter()
        .collect();
        let order: Vec<Benchmark> = suite.iter().map(BenchmarkScore::benchmark).collect();
        assert_eq!(order, vec![Benchmark::Sgemm, Benchmark::MemoryCopy]);
        assert_eq!(suite.len(), 2);
    }

    #[test]
    fn throughput_conversion_keeps_unit() {
        let t = pixel_3a()
            .get(Benchmark::Dijkstra)
            .unwrap()
            .multi_core_throughput();
        assert_eq!(t.unit(), OpUnit::MillionEdges);
        assert!((t.rate() - 4.44).abs() < 1e-12);
    }
}
