//! Per-component embodied-carbon breakdowns (Table 3 of the paper).
//!
//! The paper attributes a smartphone's embodied carbon to its subcomponents
//! (compute, network, battery, display, storage, sensors, other) so that a
//! Reuse Factor can be computed for a given second-life role. The fractions
//! are acknowledged to be rough; we store the absolute kgCO2e attributions
//! and derive fractions from them.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::reuse::{ComponentUse, ReuseFactor};
use junkyard_carbon::units::GramsCo2e;

/// Functional subcomponent categories of a consumer device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Component {
    /// SoC and RAM.
    Compute,
    /// Cellular modem, WiFi and Bluetooth radios.
    Network,
    /// Battery pack and power-management ICs.
    Battery,
    /// Screen and touch assembly.
    Display,
    /// Flash storage.
    Storage,
    /// Cameras, microphones, accelerometers, audio codecs.
    Sensors,
    /// PCB, chassis, packaging and remaining ICs.
    Other,
}

impl Component {
    /// All component categories, in Table 3 order.
    pub const ALL: [Component; 7] = [
        Component::Compute,
        Component::Network,
        Component::Battery,
        Component::Display,
        Component::Storage,
        Component::Sensors,
        Component::Other,
    ];

    /// Human-readable category name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Component::Compute => "Compute",
            Component::Network => "Network",
            Component::Battery => "Battery",
            Component::Display => "Display",
            Component::Storage => "Storage",
            Component::Sensors => "Sensors",
            Component::Other => "Other",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Embodied carbon attributed to each subcomponent of a device.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ComponentBreakdown {
    parts: BTreeMap<Component, GramsCo2e>,
}

impl ComponentBreakdown {
    /// Creates an empty breakdown.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or accumulates onto) a component's embodied carbon
    /// (builder style).
    #[must_use]
    pub fn with(mut self, component: Component, carbon: GramsCo2e) -> Self {
        self.add(component, carbon);
        self
    }

    /// Adds (or accumulates onto) a component's embodied carbon in place.
    pub fn add(&mut self, component: Component, carbon: GramsCo2e) {
        let entry = self.parts.entry(component).or_insert(GramsCo2e::ZERO);
        *entry += carbon;
    }

    /// The Nexus 4 breakdown of Table 3 (working estimates).
    #[must_use]
    pub fn nexus_4() -> Self {
        Self::new()
            .with(Component::Compute, GramsCo2e::from_kilograms(12.5))
            .with(Component::Network, GramsCo2e::from_kilograms(7.5))
            .with(Component::Battery, GramsCo2e::from_kilograms(7.5))
            .with(Component::Display, GramsCo2e::from_kilograms(5.0))
            .with(Component::Storage, GramsCo2e::from_kilograms(4.0))
            .with(Component::Sensors, GramsCo2e::from_kilograms(3.0))
            .with(Component::Other, GramsCo2e::from_kilograms(10.0))
    }

    /// Scales the Table 3 Nexus 4 *fractions* to a device with the given
    /// total embodied carbon. Useful for phones without their own published
    /// component-level LCA (for example the Pixel 3A).
    #[must_use]
    pub fn scaled_like_nexus_4(total: GramsCo2e) -> Self {
        let reference = Self::nexus_4();
        let reference_total = reference.total();
        let mut scaled = Self::new();
        for (component, carbon) in reference.iter() {
            let fraction = carbon.grams() / reference_total.grams();
            scaled.add(component, total * fraction);
        }
        scaled
    }

    /// Embodied carbon of one component, zero if absent.
    #[must_use]
    pub fn carbon_of(&self, component: Component) -> GramsCo2e {
        self.parts
            .get(&component)
            .copied()
            .unwrap_or(GramsCo2e::ZERO)
    }

    /// Fraction of the device's total embodied carbon attributed to
    /// `component`. Returns `None` if the breakdown is empty.
    #[must_use]
    pub fn fraction_of(&self, component: Component) -> Option<f64> {
        let total = self.total().grams();
        if total > 0.0 {
            Some(self.carbon_of(component).grams() / total)
        } else {
            None
        }
    }

    /// Total embodied carbon across all components.
    #[must_use]
    pub fn total(&self) -> GramsCo2e {
        self.parts.values().sum()
    }

    /// Iterates over `(component, carbon)` pairs in category order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, GramsCo2e)> + '_ {
        self.parts.iter().map(|(c, g)| (*c, *g))
    }

    /// Builds the Eq. 8 Reuse Factor for a second-life role that exercises
    /// exactly the components in `reused`.
    #[must_use]
    pub fn reuse_factor(&self, reused: &[Component]) -> ReuseFactor {
        self.iter()
            .map(|(component, carbon)| {
                ComponentUse::new(component.name(), carbon, reused.contains(&component))
            })
            .collect()
    }

    /// The component set a headless compute node exercises: everything
    /// except the display and sensors (the paper's cloudlet example,
    /// RF ≈ 0.85).
    #[must_use]
    pub fn compute_node_role() -> Vec<Component> {
        vec![
            Component::Compute,
            Component::Network,
            Component::Battery,
            Component::Storage,
            Component::Other,
        ]
    }
}

impl FromIterator<(Component, GramsCo2e)> for ComponentBreakdown {
    fn from_iter<T: IntoIterator<Item = (Component, GramsCo2e)>>(iter: T) -> Self {
        let mut breakdown = Self::new();
        for (component, carbon) in iter {
            breakdown.add(component, carbon);
        }
        breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nexus4_total_is_about_50_kg() {
        let total = ComponentBreakdown::nexus_4().total();
        assert!((total.kilograms() - 49.5).abs() < 1e-9);
    }

    #[test]
    fn compute_fraction_matches_table3() {
        let b = ComponentBreakdown::nexus_4();
        let frac = b.fraction_of(Component::Compute).unwrap();
        assert!((frac - 0.2525).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn compute_node_reuse_factor_is_about_085() {
        let rf = ComponentBreakdown::nexus_4()
            .reuse_factor(&ComponentBreakdown::compute_node_role())
            .factor()
            .unwrap();
        assert!(rf > 0.80 && rf < 0.90, "got {rf}");
    }

    #[test]
    fn scaling_preserves_fractions() {
        let scaled = ComponentBreakdown::scaled_like_nexus_4(GramsCo2e::from_kilograms(37.0));
        assert!((scaled.total().kilograms() - 37.0).abs() < 1e-9);
        let a = scaled.fraction_of(Component::Display).unwrap();
        let b = ComponentBreakdown::nexus_4()
            .fraction_of(Component::Display)
            .unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn accumulating_same_component_adds() {
        let b = ComponentBreakdown::new()
            .with(Component::Other, GramsCo2e::new(5.0))
            .with(Component::Other, GramsCo2e::new(3.0));
        assert_eq!(b.carbon_of(Component::Other).grams(), 8.0);
    }

    #[test]
    fn empty_breakdown_has_no_fractions() {
        let b = ComponentBreakdown::new();
        assert!(b.fraction_of(Component::Compute).is_none());
        assert_eq!(b.carbon_of(Component::Display), GramsCo2e::ZERO);
    }

    #[test]
    fn collect_from_pairs() {
        let b: ComponentBreakdown = [
            (Component::Compute, GramsCo2e::new(10.0)),
            (Component::Display, GramsCo2e::new(2.0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(b.total().grams(), 12.0);
        assert_eq!(b.iter().count(), 2);
    }

    #[test]
    fn component_names_stable() {
        assert_eq!(Component::Compute.to_string(), "Compute");
        assert_eq!(Component::ALL.len(), 7);
    }
}
