//! Device specifications: everything the carbon and simulation models need
//! to know about one piece of hardware.

use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::ops::Throughput;
use junkyard_carbon::units::{DataRate, GramsCo2e, Watts};

use crate::battery::BatterySpec;
use crate::benchmark::{Benchmark, BenchmarkSuite};
use crate::components::ComponentBreakdown;
use crate::power::{LoadProfile, PowerCurve};

/// Broad class of a device, used to pick defaults and for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DeviceClass {
    /// Rack-mount server hardware.
    Server,
    /// Consumer laptop.
    Laptop,
    /// Smartphone.
    Smartphone,
    /// A rented cloud instance (no embodied carbon paid directly by the user,
    /// but attributed by the provider).
    CloudInstance,
}

impl DeviceClass {
    /// Human-readable class name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DeviceClass::Server => "server",
            DeviceClass::Laptop => "laptop",
            DeviceClass::Smartphone => "smartphone",
            DeviceClass::CloudInstance => "cloud instance",
        }
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Wireless interfaces available on a device.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RadioSpec {
    wifi: Option<DataRate>,
    lte: Option<DataRate>,
}

impl RadioSpec {
    /// A device with no radios (servers, laptops on wired networks).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Creates a radio specification with optional WiFi and LTE link rates.
    #[must_use]
    pub fn new(wifi: Option<DataRate>, lte: Option<DataRate>) -> Self {
        Self { wifi, lte }
    }

    /// WiFi link rate, if the device has WiFi.
    #[must_use]
    pub fn wifi(self) -> Option<DataRate> {
        self.wifi
    }

    /// LTE link rate, if the device has a cellular modem.
    #[must_use]
    pub fn lte(self) -> Option<DataRate> {
        self.lte
    }
}

/// Full specification of a device.
///
/// Use [`DeviceSpec::builder`] to construct one; the catalog module provides
/// ready-made specifications for every device the paper evaluates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    name: String,
    class: DeviceClass,
    release_year: u16,
    cores: u32,
    memory_gib: f64,
    benchmarks: BenchmarkSuite,
    power: PowerCurve,
    battery: Option<BatterySpec>,
    embodied: GramsCo2e,
    components: Option<ComponentBreakdown>,
    radios: RadioSpec,
    purchase_cost_usd: Option<f64>,
    hourly_cost_usd: Option<f64>,
}

impl DeviceSpec {
    /// Starts building a device specification.
    #[must_use]
    pub fn builder(name: impl Into<String>, class: DeviceClass) -> DeviceSpecBuilder {
        DeviceSpecBuilder::new(name, class)
    }

    /// Device model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device class.
    #[must_use]
    pub fn class(&self) -> DeviceClass {
        self.class
    }

    /// Year the device was released.
    #[must_use]
    pub fn release_year(&self) -> u16 {
        self.release_year
    }

    /// Number of CPU cores (vCPUs for cloud instances).
    #[must_use]
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Installed memory in GiB.
    #[must_use]
    pub fn memory_gib(&self) -> f64 {
        self.memory_gib
    }

    /// The device's benchmark scores.
    #[must_use]
    pub fn benchmarks(&self) -> &BenchmarkSuite {
        &self.benchmarks
    }

    /// The device's measured power curve.
    #[must_use]
    pub fn power(&self) -> PowerCurve {
        self.power
    }

    /// The device's battery pack, if it has one.
    #[must_use]
    pub fn battery(&self) -> Option<BatterySpec> {
        self.battery
    }

    /// Embodied (manufacturing) carbon of a *new* unit of this device.
    /// Reuse scenarios zero this out via the CCI embodied bill instead.
    #[must_use]
    pub fn embodied(&self) -> GramsCo2e {
        self.embodied
    }

    /// Per-component embodied-carbon breakdown, if known.
    #[must_use]
    pub fn components(&self) -> Option<&ComponentBreakdown> {
        self.components.as_ref()
    }

    /// Wireless interfaces.
    #[must_use]
    pub fn radios(&self) -> RadioSpec {
        self.radios
    }

    /// Second-hand purchase cost in USD, if applicable.
    #[must_use]
    pub fn purchase_cost_usd(&self) -> Option<f64> {
        self.purchase_cost_usd
    }

    /// Hourly rental cost in USD, for cloud instances.
    #[must_use]
    pub fn hourly_cost_usd(&self) -> Option<f64> {
        self.hourly_cost_usd
    }

    /// Average electrical power under the given duty cycle (Table 2's
    /// `P_avg` column for the light-medium profile).
    #[must_use]
    pub fn average_power(&self, profile: &LoadProfile) -> Watts {
        profile.average_power(self.power)
    }

    /// Full-load multi-core throughput on a benchmark, if measured.
    #[must_use]
    pub fn throughput(&self, benchmark: Benchmark) -> Option<Throughput> {
        self.benchmarks
            .get(benchmark)
            .map(|s| s.multi_core_throughput())
    }

    /// Duty-cycle-averaged throughput on a benchmark (Eq. 6), if measured.
    #[must_use]
    pub fn average_throughput(
        &self,
        benchmark: Benchmark,
        profile: &LoadProfile,
    ) -> Option<Throughput> {
        self.throughput(benchmark)
            .map(|t| profile.average_throughput(t))
    }

    /// Single-core throughput relative to another device on a benchmark.
    /// Used by the microservice simulator to derive per-core speed ratios.
    #[must_use]
    pub fn single_core_ratio(&self, other: &DeviceSpec, benchmark: Benchmark) -> Option<f64> {
        let ours = self.benchmarks.get(benchmark)?.single_core();
        let theirs = other.benchmarks.get(benchmark)?.single_core();
        if theirs > 0.0 {
            Some(ours / theirs)
        } else {
            None
        }
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} {}, {} cores, {:.0} GiB)",
            self.name, self.release_year, self.class, self.cores, self.memory_gib
        )
    }
}

/// Builder for [`DeviceSpec`] (many optional fields).
#[derive(Debug, Clone)]
pub struct DeviceSpecBuilder {
    spec: DeviceSpec,
}

impl DeviceSpecBuilder {
    fn new(name: impl Into<String>, class: DeviceClass) -> Self {
        Self {
            spec: DeviceSpec {
                name: name.into(),
                class,
                release_year: 0,
                cores: 1,
                memory_gib: 0.0,
                benchmarks: BenchmarkSuite::new(),
                power: PowerCurve::constant(Watts::ZERO),
                battery: None,
                embodied: GramsCo2e::ZERO,
                components: None,
                radios: RadioSpec::none(),
                purchase_cost_usd: None,
                hourly_cost_usd: None,
            },
        }
    }

    /// Sets the release year.
    #[must_use]
    pub fn release_year(mut self, year: u16) -> Self {
        self.spec.release_year = year;
        self
    }

    /// Sets core count and memory.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or memory is negative.
    #[must_use]
    pub fn hardware(mut self, cores: u32, memory_gib: f64) -> Self {
        assert!(cores > 0, "a device needs at least one core");
        assert!(memory_gib >= 0.0, "memory cannot be negative");
        self.spec.cores = cores;
        self.spec.memory_gib = memory_gib;
        self
    }

    /// Sets the benchmark suite.
    #[must_use]
    pub fn benchmarks(mut self, benchmarks: BenchmarkSuite) -> Self {
        self.spec.benchmarks = benchmarks;
        self
    }

    /// Sets the measured power curve.
    #[must_use]
    pub fn power(mut self, power: PowerCurve) -> Self {
        self.spec.power = power;
        self
    }

    /// Sets the battery pack.
    #[must_use]
    pub fn battery(mut self, battery: BatterySpec) -> Self {
        self.spec.battery = Some(battery);
        self
    }

    /// Sets the embodied carbon of a new unit.
    #[must_use]
    pub fn embodied(mut self, embodied: GramsCo2e) -> Self {
        self.spec.embodied = embodied;
        self
    }

    /// Sets the per-component embodied breakdown.
    #[must_use]
    pub fn components(mut self, components: ComponentBreakdown) -> Self {
        self.spec.components = Some(components);
        self
    }

    /// Sets the radio interfaces.
    #[must_use]
    pub fn radios(mut self, radios: RadioSpec) -> Self {
        self.spec.radios = radios;
        self
    }

    /// Sets the second-hand purchase cost.
    #[must_use]
    pub fn purchase_cost_usd(mut self, cost: f64) -> Self {
        self.spec.purchase_cost_usd = Some(cost);
        self
    }

    /// Sets the hourly rental cost (cloud instances).
    #[must_use]
    pub fn hourly_cost_usd(mut self, cost: f64) -> Self {
        self.spec.hourly_cost_usd = Some(cost);
        self
    }

    /// Finalises the specification.
    #[must_use]
    pub fn build(self) -> DeviceSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use junkyard_carbon::ops::OpUnit;

    fn sample() -> DeviceSpec {
        DeviceSpec::builder("Testphone", DeviceClass::Smartphone)
            .release_year(2019)
            .hardware(8, 4.0)
            .benchmarks(
                BenchmarkSuite::new()
                    .with_score(Benchmark::Sgemm, 8.84, 39.0)
                    .with_score(Benchmark::Dijkstra, 1.08, 4.44),
            )
            .power(PowerCurve::from_measurements(
                Watts::new(0.8),
                Watts::new(1.4),
                Watts::new(1.9),
                Watts::new(2.5),
            ))
            .battery(BatterySpec::pixel_3a())
            .embodied(GramsCo2e::from_kilograms(37.0))
            .purchase_cost_usd(65.0)
            .build()
    }

    #[test]
    fn builder_populates_fields() {
        let d = sample();
        assert_eq!(d.name(), "Testphone");
        assert_eq!(d.class(), DeviceClass::Smartphone);
        assert_eq!(d.release_year(), 2019);
        assert_eq!(d.cores(), 8);
        assert!((d.memory_gib() - 4.0).abs() < 1e-12);
        assert_eq!(d.purchase_cost_usd(), Some(65.0));
        assert_eq!(d.hourly_cost_usd(), None);
        assert!(d.battery().is_some());
    }

    #[test]
    fn average_power_uses_profile() {
        let d = sample();
        let avg = d.average_power(&LoadProfile::light_medium());
        assert!((avg.value() - 1.54).abs() < 0.01);
    }

    #[test]
    fn throughput_lookup() {
        let d = sample();
        let t = d.throughput(Benchmark::Sgemm).unwrap();
        assert_eq!(t.unit(), OpUnit::Gflop);
        assert!((t.rate() - 39.0).abs() < 1e-12);
        assert!(d.throughput(Benchmark::PdfRender).is_none());
        let avg = d
            .average_throughput(Benchmark::Sgemm, &LoadProfile::light_medium())
            .unwrap();
        assert!((avg.rate() - 39.0 * 0.305).abs() < 1e-9);
    }

    #[test]
    fn single_core_ratio() {
        let a = sample();
        let b = sample();
        assert!((a.single_core_ratio(&b, Benchmark::Sgemm).unwrap() - 1.0).abs() < 1e-12);
        assert!(a.single_core_ratio(&b, Benchmark::MemoryCopy).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = DeviceSpec::builder("x", DeviceClass::Server).hardware(0, 1.0);
    }

    #[test]
    fn display_mentions_name_and_class() {
        let s = sample().to_string();
        assert!(s.contains("Testphone"));
        assert!(s.contains("smartphone"));
    }
}
