//! Ready-made device specifications for every piece of hardware the paper
//! evaluates.
//!
//! The performance (Table 1) and power (Table 2) numbers are the paper's
//! measurements reproduced verbatim. Embodied-carbon totals come from the
//! vendor LCAs the paper cites (Dell R740, Google product environmental
//! reports) or, where no public figure exists, from documented estimates
//! (see `DESIGN.md`). EC2 C5 instance power and embodied carbon follow the
//! public estimates the paper uses in Section 6.3.

use junkyard_carbon::units::{DataRate, GramsCo2e, Watts};

use crate::battery::BatterySpec;
use crate::benchmark::{Benchmark, BenchmarkSuite};
use crate::components::ComponentBreakdown;
use crate::device::{DeviceClass, DeviceSpec, RadioSpec};
use crate::power::PowerCurve;

/// The Dell PowerEdge R740 baseline server (2017).
///
/// Embodied carbon uses the manufacturing share of Dell's published R740
/// LCA (~3.3 tCO2e of a ~9.2 tCO2e lifecycle).
#[must_use]
pub fn poweredge_r740() -> DeviceSpec {
    DeviceSpec::builder("PowerEdge R740", DeviceClass::Server)
        .release_year(2017)
        .hardware(56, 192.0)
        .benchmarks(
            BenchmarkSuite::new()
                .with_score(Benchmark::Sgemm, 77.2, 2_070.0)
                .with_score(Benchmark::PdfRender, 109.1, 3_140.0)
                .with_score(Benchmark::Dijkstra, 3.58, 80.2)
                .with_score(Benchmark::MemoryCopy, 6.33, 19.5),
        )
        .power(PowerCurve::from_measurements(
            Watts::new(201.0),
            Watts::new(261.0),
            Watts::new(369.0),
            Watts::new(510.0),
        ))
        .embodied(GramsCo2e::from_kilograms(3_330.0))
        .purchase_cost_usd(12_000.0)
        .build()
}

/// The HP ProLiant DL380 G6 legacy server (2007).
#[must_use]
pub fn proliant_dl380_g6() -> DeviceSpec {
    DeviceSpec::builder("ProLiant DL380 G6", DeviceClass::Server)
        .release_year(2007)
        .hardware(8, 32.0)
        .benchmarks(
            BenchmarkSuite::new()
                .with_score(Benchmark::Sgemm, 14.2, 104.2)
                .with_score(Benchmark::PdfRender, 74.2, 528.4)
                .with_score(Benchmark::Dijkstra, 2.43, 16.9)
                .with_score(Benchmark::MemoryCopy, 6.52, 11.3),
        )
        .power(PowerCurve::from_measurements(
            Watts::new(169.0),
            Watts::new(181.0),
            Watts::new(213.0),
            Watts::new(280.0),
        ))
        .embodied(GramsCo2e::from_kilograms(2_500.0))
        .purchase_cost_usd(150.0)
        .build()
}

/// The Lenovo ThinkPad X1 Carbon Gen 3 laptop (2015).
#[must_use]
pub fn thinkpad_x1_carbon_g3() -> DeviceSpec {
    DeviceSpec::builder("ThinkPad X1 Carbon G3", DeviceClass::Laptop)
        .release_year(2015)
        .hardware(4, 8.0)
        .benchmarks(
            BenchmarkSuite::new()
                .with_score(Benchmark::Sgemm, 72.1, 123.7)
                .with_score(Benchmark::PdfRender, 123.2, 225.1)
                .with_score(Benchmark::Dijkstra, 3.08, 7.45)
                .with_score(Benchmark::MemoryCopy, 11.0, 13.1),
        )
        .power(PowerCurve::from_measurements(
            Watts::new(3.4),
            Watts::new(8.5),
            Watts::new(16.2),
            Watts::new(24.0),
        ))
        .battery(BatterySpec::thinkpad_x1_carbon_g3())
        .embodied(GramsCo2e::from_kilograms(250.0))
        .radios(RadioSpec::new(
            Some(DataRate::from_megabits_per_sec(433.0)),
            None,
        ))
        .purchase_cost_usd(250.0)
        .build()
}

/// The Google Pixel 3A smartphone (2019) — the paper's cloudlet node.
#[must_use]
pub fn pixel_3a() -> DeviceSpec {
    DeviceSpec::builder("Pixel 3A", DeviceClass::Smartphone)
        .release_year(2019)
        .hardware(8, 4.0)
        .benchmarks(
            BenchmarkSuite::new()
                .with_score(Benchmark::Sgemm, 8.84, 39.0)
                .with_score(Benchmark::PdfRender, 38.9, 147.0)
                .with_score(Benchmark::Dijkstra, 1.08, 4.44)
                .with_score(Benchmark::MemoryCopy, 4.00, 5.45),
        )
        .power(PowerCurve::from_measurements(
            Watts::new(0.8),
            Watts::new(1.4),
            Watts::new(1.9),
            Watts::new(2.5),
        ))
        .battery(BatterySpec::pixel_3a())
        .embodied(GramsCo2e::from_kilograms(37.0))
        .components(ComponentBreakdown::scaled_like_nexus_4(
            GramsCo2e::from_kilograms(37.0),
        ))
        .radios(RadioSpec::new(
            Some(DataRate::from_megabits_per_sec(433.0)),
            Some(DataRate::from_megabits_per_sec(100.0)),
        ))
        .purchase_cost_usd(65.0)
        .build()
}

/// The LG/Google Nexus 4 smartphone (2012).
#[must_use]
pub fn nexus_4() -> DeviceSpec {
    DeviceSpec::builder("Nexus 4", DeviceClass::Smartphone)
        .release_year(2012)
        .hardware(4, 2.0)
        .benchmarks(
            BenchmarkSuite::new()
                .with_score(Benchmark::Sgemm, 1.95, 8.12)
                .with_score(Benchmark::PdfRender, 14.1, 40.8)
                .with_score(Benchmark::Dijkstra, 0.654, 2.21)
                .with_score(Benchmark::MemoryCopy, 2.35, 3.22),
        )
        .power(PowerCurve::from_measurements(
            Watts::new(0.7),
            Watts::new(1.0),
            Watts::new(2.7),
            Watts::new(3.6),
        ))
        .battery(BatterySpec::nexus_4())
        .embodied(GramsCo2e::from_kilograms(49.5))
        .components(ComponentBreakdown::nexus_4())
        .radios(RadioSpec::new(
            Some(DataRate::from_megabits_per_sec(150.0)),
            Some(DataRate::from_megabits_per_sec(42.0)),
        ))
        .purchase_cost_usd(25.0)
        .build()
}

/// The LG/Google Nexus 5 smartphone (2013), used in the thermal experiment.
///
/// The paper does not benchmark the Nexus 5; the scores here are interpolated
/// between the Nexus 4 and Pixel 3A and only used for the thermal study.
#[must_use]
pub fn nexus_5() -> DeviceSpec {
    DeviceSpec::builder("Nexus 5", DeviceClass::Smartphone)
        .release_year(2013)
        .hardware(4, 2.0)
        .benchmarks(
            BenchmarkSuite::new()
                .with_score(Benchmark::Sgemm, 3.1, 11.5)
                .with_score(Benchmark::PdfRender, 19.0, 55.0)
                .with_score(Benchmark::Dijkstra, 0.75, 2.7)
                .with_score(Benchmark::MemoryCopy, 2.8, 3.8),
        )
        .power(PowerCurve::from_measurements(
            Watts::new(0.7),
            Watts::new(1.1),
            Watts::new(2.4),
            Watts::new(3.3),
        ))
        .battery(BatterySpec::new(
            2.3,
            crate::battery::NOMINAL_CELL_VOLTAGE,
            Watts::new(10.0),
            GramsCo2e::from_kilograms(1.2),
            crate::battery::DEFAULT_CYCLE_LIFE,
        ))
        .embodied(GramsCo2e::from_kilograms(45.0))
        .radios(RadioSpec::new(
            Some(DataRate::from_megabits_per_sec(150.0)),
            Some(DataRate::from_megabits_per_sec(42.0)),
        ))
        .purchase_cost_usd(30.0)
        .build()
}

/// Sizes of the AWS EC2 C5 instances used as baselines in Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum C5Size {
    /// c5.4xlarge: 16 vCPU, 32 GiB.
    XLarge4,
    /// c5.9xlarge: 36 vCPU, 72 GiB.
    XLarge9,
    /// c5.12xlarge: 48 vCPU, 96 GiB.
    XLarge12,
}

impl C5Size {
    /// All sizes used in Figure 7, ascending.
    pub const ALL: [C5Size; 3] = [C5Size::XLarge4, C5Size::XLarge9, C5Size::XLarge12];

    fn vcpus(self) -> u32 {
        match self {
            C5Size::XLarge4 => 16,
            C5Size::XLarge9 => 36,
            C5Size::XLarge12 => 48,
        }
    }

    fn memory_gib(self) -> f64 {
        match self {
            C5Size::XLarge4 => 32.0,
            C5Size::XLarge9 => 72.0,
            C5Size::XLarge12 => 96.0,
        }
    }

    fn hourly_cost_usd(self) -> f64 {
        match self {
            C5Size::XLarge4 => 0.68,
            C5Size::XLarge9 => 1.53,
            C5Size::XLarge12 => 2.04,
        }
    }

    /// The instance type name (for example `"c5.9xlarge"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            C5Size::XLarge4 => "c5.4xlarge",
            C5Size::XLarge9 => "c5.9xlarge",
            C5Size::XLarge12 => "c5.12xlarge",
        }
    }
}

/// An AWS EC2 C5 instance, modelled as a single large node.
///
/// Power and embodied carbon follow the public per-instance estimates the
/// paper uses for the c5.9xlarge (140.7 W at 10 % utilisation, 239 W at
/// 50 %, 1,344 kgCO2e embodied), scaled by vCPU count for the other sizes.
/// The benchmark suite is synthesised from the PowerEdge per-core scores
/// (same Xeon-class cores) and is used only to derive per-core speed ratios
/// for the microservice simulator.
#[must_use]
pub fn c5_instance(size: C5Size) -> DeviceSpec {
    let scale = f64::from(size.vcpus()) / 36.0;
    // Per-core single-thread throughput comparable to the R740's cores.
    let single_sgemm = 70.0;
    let parallel_efficiency = 0.75;
    let multi = |single: f64| single * f64::from(size.vcpus()) * parallel_efficiency;
    DeviceSpec::builder(size.label(), DeviceClass::CloudInstance)
        .release_year(2017)
        .hardware(size.vcpus(), size.memory_gib())
        .benchmarks(
            BenchmarkSuite::new()
                .with_score(Benchmark::Sgemm, single_sgemm, multi(single_sgemm))
                .with_score(Benchmark::PdfRender, 105.0, multi(105.0))
                .with_score(Benchmark::Dijkstra, 3.4, multi(3.4))
                .with_score(
                    Benchmark::MemoryCopy,
                    6.3,
                    6.3 * f64::from(size.vcpus()).sqrt(),
                ),
        )
        .power(PowerCurve::from_measurements(
            Watts::new(95.0 * scale),
            Watts::new(140.7 * scale),
            Watts::new(239.0 * scale),
            Watts::new(310.0 * scale),
        ))
        .embodied(GramsCo2e::from_kilograms(1_344.0 * scale))
        .hourly_cost_usd(size.hourly_cost_usd())
        .build()
}

/// Every physical device the paper characterises in Tables 1 and 2, in the
/// order the tables list them.
#[must_use]
pub fn table_devices() -> Vec<DeviceSpec> {
    vec![
        poweredge_r740(),
        proliant_dl380_g6(),
        thinkpad_x1_carbon_g3(),
        pixel_3a(),
        nexus_4(),
    ]
}

/// The devices the paper reuses (everything in Tables 1–2 except the new
/// PowerEdge baseline).
#[must_use]
pub fn reused_devices() -> Vec<DeviceSpec> {
    vec![
        proliant_dl380_g6(),
        thinkpad_x1_carbon_g3(),
        pixel_3a(),
        nexus_4(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::LoadProfile;

    #[test]
    fn table2_average_powers_match_paper() {
        let profile = LoadProfile::light_medium();
        let expectations = [
            (poweredge_r740(), 308.7),
            (proliant_dl380_g6(), 199.1),
            (thinkpad_x1_carbon_g3(), 11.47),
            (pixel_3a(), 1.54),
            (nexus_4(), 1.78),
        ];
        for (device, expected) in expectations {
            let avg = device.average_power(&profile).value();
            assert!(
                (avg - expected).abs() / expected < 0.02,
                "{}: expected {expected} W, got {avg} W",
                device.name()
            );
        }
    }

    #[test]
    fn table1_n_values_match_paper() {
        let baseline = poweredge_r740();
        let cases = [
            (proliant_dl380_g6(), Benchmark::Sgemm, 20),
            (proliant_dl380_g6(), Benchmark::PdfRender, 6),
            (proliant_dl380_g6(), Benchmark::Dijkstra, 5),
            (proliant_dl380_g6(), Benchmark::MemoryCopy, 2),
            (thinkpad_x1_carbon_g3(), Benchmark::Sgemm, 17),
            (thinkpad_x1_carbon_g3(), Benchmark::PdfRender, 14),
            (thinkpad_x1_carbon_g3(), Benchmark::Dijkstra, 11),
            (thinkpad_x1_carbon_g3(), Benchmark::MemoryCopy, 2),
            (pixel_3a(), Benchmark::Sgemm, 54),
            (pixel_3a(), Benchmark::PdfRender, 22),
            (pixel_3a(), Benchmark::Dijkstra, 19),
            // The paper's Table 1 says 256; 2070/8.12 = 254.9 rounds up to
            // 255 (noted as a minor discrepancy in EXPERIMENTS.md).
            (nexus_4(), Benchmark::Sgemm, 255),
            (nexus_4(), Benchmark::PdfRender, 77),
            (nexus_4(), Benchmark::Dijkstra, 37),
            (nexus_4(), Benchmark::MemoryCopy, 7),
        ];
        for (device, benchmark, expected) in cases {
            let n = device
                .benchmarks()
                .devices_to_match(baseline.benchmarks(), benchmark)
                .unwrap();
            assert_eq!(n, expected, "{} on {}", device.name(), benchmark);
        }
    }

    #[test]
    fn phones_have_batteries_and_radios() {
        for phone in [pixel_3a(), nexus_4(), nexus_5()] {
            assert!(phone.battery().is_some(), "{}", phone.name());
            assert!(phone.radios().wifi().is_some(), "{}", phone.name());
        }
        assert!(poweredge_r740().battery().is_none());
    }

    #[test]
    fn c5_sizes_scale_monotonically() {
        let profile = LoadProfile::constant(0.10);
        let mut last_power = 0.0;
        let mut last_embodied = 0.0;
        for size in C5Size::ALL {
            let spec = c5_instance(size);
            let p = spec.average_power(&profile).value();
            let e = spec.embodied().kilograms();
            assert!(p > last_power, "{}", spec.name());
            assert!(e > last_embodied, "{}", spec.name());
            last_power = p;
            last_embodied = e;
        }
    }

    #[test]
    fn c5_9xlarge_matches_public_estimates() {
        let spec = c5_instance(C5Size::XLarge9);
        assert_eq!(spec.cores(), 36);
        assert!((spec.power().at_10_percent().value() - 140.7).abs() < 1e-9);
        assert!((spec.power().at_50_percent().value() - 239.0).abs() < 1e-9);
        assert!((spec.embodied().kilograms() - 1_344.0).abs() < 1e-9);
        assert_eq!(spec.hourly_cost_usd(), Some(1.53));
    }

    #[test]
    fn catalog_listings_cover_all_devices() {
        assert_eq!(table_devices().len(), 5);
        assert_eq!(reused_devices().len(), 4);
        assert!(reused_devices()
            .iter()
            .all(|d| d.name() != "PowerEdge R740"));
    }

    #[test]
    fn pixel_components_scale_to_its_embodied_total() {
        let pixel = pixel_3a();
        let components = pixel.components().unwrap();
        assert!((components.total().grams() - pixel.embodied().grams()).abs() < 1e-6);
    }
}
