//! Battery pack specifications and wear-out projections.
//!
//! Section 4.3 of the paper: smartphone batteries survive roughly 2,500
//! charge cycles; a Pixel 3A on a light-medium duty cycle draws 1.54 W,
//! consumes ~133 kJ/day and therefore cycles its 3 Ah pack about three times
//! a day, wearing it out after ~2.3 years. [`BatterySpec`] carries the
//! electrical and embodied-carbon parameters needed for that projection and
//! for the smart-charging simulation in `junkyard-battery`.

use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::units::{GramsCo2e, Joules, TimeSpan, Watts};

/// Nominal lithium-ion cell voltage used to convert amp-hours to energy.
pub const NOMINAL_CELL_VOLTAGE: f64 = 3.85;

/// Number of full charge cycles a smartphone battery survives before it is
/// considered unusable (Section 4.3, citing consumer battery studies).
pub const DEFAULT_CYCLE_LIFE: u32 = 2_500;

/// Specification of a device's battery pack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatterySpec {
    capacity_amp_hours: f64,
    voltage: f64,
    max_charge_power: Watts,
    embodied: GramsCo2e,
    cycle_life: u32,
    charge_efficiency: f64,
}

impl BatterySpec {
    /// Creates a battery specification with lossless (efficiency 1.0)
    /// charging; override with [`BatterySpec::with_charge_efficiency`].
    ///
    /// # Panics
    ///
    /// Panics if capacity, voltage or cycle life are not strictly positive.
    #[must_use]
    pub fn new(
        capacity_amp_hours: f64,
        voltage: f64,
        max_charge_power: Watts,
        embodied: GramsCo2e,
        cycle_life: u32,
    ) -> Self {
        assert!(
            capacity_amp_hours > 0.0,
            "battery capacity must be positive"
        );
        assert!(voltage > 0.0, "battery voltage must be positive");
        assert!(cycle_life > 0, "battery cycle life must be positive");
        Self {
            capacity_amp_hours,
            voltage,
            max_charge_power,
            embodied,
            cycle_life,
            charge_efficiency: 1.0,
        }
    }

    /// Overrides the wall-to-pack charging efficiency in `(0, 1]`.
    ///
    /// Lithium-ion charging is not lossless: conversion and cell losses
    /// mean the wall supplies more energy than the pack stores (a
    /// realistic round figure is ~0.9). The default of 1.0 preserves the
    /// historical lossless accounting bit for bit; studies that care about
    /// wall-side emissions should set a realistic value.
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is outside `(0, 1]`.
    #[must_use]
    pub fn with_charge_efficiency(mut self, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "charge efficiency must be in (0, 1]"
        );
        self.charge_efficiency = efficiency;
        self
    }

    /// The Pixel 3A pack: 3 Ah, 18 W charging, 2.00 kgCO2e embodied.
    #[must_use]
    pub fn pixel_3a() -> Self {
        Self::new(
            3.0,
            NOMINAL_CELL_VOLTAGE,
            Watts::new(18.0),
            GramsCo2e::from_kilograms(2.0),
            DEFAULT_CYCLE_LIFE,
        )
    }

    /// The Nexus 4 pack: 2.1 Ah, 1.11 kgCO2e embodied.
    #[must_use]
    pub fn nexus_4() -> Self {
        Self::new(
            2.1,
            NOMINAL_CELL_VOLTAGE,
            Watts::new(10.0),
            GramsCo2e::from_kilograms(1.11),
            DEFAULT_CYCLE_LIFE,
        )
    }

    /// A ThinkPad X1 Carbon Gen 3 pack: ~50 Wh, 45 W charging.
    #[must_use]
    pub fn thinkpad_x1_carbon_g3() -> Self {
        // 50 Wh at 11.4 V is about 4.4 Ah.
        Self::new(
            4.4,
            11.4,
            Watts::new(45.0),
            GramsCo2e::from_kilograms(5.0),
            1_000,
        )
    }

    /// Usable capacity in amp-hours.
    #[must_use]
    pub fn capacity_amp_hours(self) -> f64 {
        self.capacity_amp_hours
    }

    /// Nominal pack voltage.
    #[must_use]
    pub fn voltage(self) -> f64 {
        self.voltage
    }

    /// Maximum charging power the device accepts.
    #[must_use]
    pub fn max_charge_power(self) -> Watts {
        self.max_charge_power
    }

    /// Embodied carbon of one replacement pack.
    #[must_use]
    pub fn embodied(self) -> GramsCo2e {
        self.embodied
    }

    /// Number of full charge cycles before the pack is unusable.
    #[must_use]
    pub fn cycle_life(self) -> u32 {
        self.cycle_life
    }

    /// Wall-to-pack charging efficiency in `(0, 1]` (1.0 = lossless).
    #[must_use]
    pub fn charge_efficiency(self) -> f64 {
        self.charge_efficiency
    }

    /// Usable energy of a full charge.
    #[must_use]
    pub fn energy(self) -> Joules {
        Joules::from_watt_hours(self.capacity_amp_hours * self.voltage)
    }

    /// Time a full charge lasts while the device draws `power`.
    ///
    /// # Panics
    ///
    /// Panics if `power` is not strictly positive.
    #[must_use]
    pub fn runtime_at(self, power: Watts) -> TimeSpan {
        assert!(power.value() > 0.0, "device power must be positive");
        TimeSpan::from_secs(self.energy().value() / power.value())
    }

    /// Full charge cycles per day needed to sustain `average_power`.
    #[must_use]
    pub fn cycles_per_day(self, average_power: Watts) -> f64 {
        let daily = average_power * TimeSpan::from_days(1.0);
        daily.value() / self.energy().value()
    }

    /// Projected pack lifetime when the device continuously draws
    /// `average_power` (the Eq. 10 denominator).
    ///
    /// # Panics
    ///
    /// Panics if `average_power` is not strictly positive.
    #[must_use]
    pub fn projected_lifetime(self, average_power: Watts) -> TimeSpan {
        assert!(average_power.value() > 0.0, "device power must be positive");
        let cycles_per_day = self.cycles_per_day(average_power);
        TimeSpan::from_days(f64::from(self.cycle_life) / cycles_per_day)
    }

    /// Minimum time needed to charge the pack from empty to full at the
    /// maximum charging power (ignoring taper).
    ///
    /// # Panics
    ///
    /// Panics if the maximum charging power is not strictly positive.
    #[must_use]
    pub fn full_charge_time(self) -> TimeSpan {
        assert!(
            self.max_charge_power.value() > 0.0,
            "charging power must be positive"
        );
        TimeSpan::from_secs(self.energy().value() / self.max_charge_power.value())
    }
}

impl fmt::Display for BatterySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} Ah @ {:.1} V ({:.0} kJ, {} cycles)",
            self.capacity_amp_hours,
            self.voltage,
            self.energy().kilojoules(),
            self.cycle_life
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_pack_energy_is_about_45_kj() {
        // The paper quotes the 3 Ah Pixel pack as 45 kJ.
        let e = BatterySpec::pixel_3a().energy();
        assert!(
            (e.kilojoules() - 41.6).abs() < 5.0,
            "got {} kJ",
            e.kilojoules()
        );
    }

    #[test]
    fn pixel_wears_out_in_about_2_point_3_years() {
        // Section 4.3: 1.54 W -> ~3 cycles/day -> ~833 days = 2.3 years.
        let life = BatterySpec::pixel_3a().projected_lifetime(Watts::new(1.54));
        assert!(
            life.years() > 2.0 && life.years() < 2.6,
            "got {} years",
            life.years()
        );
    }

    #[test]
    fn nexus4_wears_out_in_about_1_point_2_years() {
        let life = BatterySpec::nexus_4().projected_lifetime(Watts::new(1.78));
        assert!(
            life.years() > 1.0 && life.years() < 1.5,
            "got {} years",
            life.years()
        );
    }

    #[test]
    fn quarter_charge_lasts_under_two_hours() {
        // Section 4.3: a 25% Pixel charge lasts slightly under 2 hours on the
        // light-medium workload.
        let spec = BatterySpec::pixel_3a();
        let quarter = TimeSpan::from_secs(spec.runtime_at(Watts::new(1.54)).seconds() * 0.25);
        assert!(
            quarter.hours() > 1.3 && quarter.hours() < 2.3,
            "got {} h",
            quarter.hours()
        );
    }

    #[test]
    fn cycles_per_day_pixel() {
        let c = BatterySpec::pixel_3a().cycles_per_day(Watts::new(1.54));
        assert!(c > 2.5 && c < 3.5, "got {c}");
    }

    #[test]
    fn full_charge_time_is_reasonable() {
        let t = BatterySpec::pixel_3a().full_charge_time();
        assert!(
            t.minutes() > 30.0 && t.minutes() < 90.0,
            "got {} min",
            t.minutes()
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BatterySpec::new(0.0, 3.85, Watts::new(18.0), GramsCo2e::ZERO, 2_500);
    }

    #[test]
    fn charge_efficiency_defaults_to_lossless_and_can_be_overridden() {
        let spec = BatterySpec::pixel_3a();
        assert_eq!(spec.charge_efficiency(), 1.0);
        let lossy = spec.with_charge_efficiency(0.9);
        assert!((lossy.charge_efficiency() - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "charge efficiency")]
    fn out_of_range_efficiency_panics() {
        let _ = BatterySpec::pixel_3a().with_charge_efficiency(1.2);
    }

    #[test]
    fn display_mentions_cycles() {
        assert!(BatterySpec::pixel_3a().to_string().contains("cycles"));
    }
}
