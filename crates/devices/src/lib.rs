//! Device catalog substrate for the Junkyard Computing reproduction.
//!
//! This crate carries everything the carbon models and simulators need to
//! know about hardware:
//!
//! * [`benchmark`] — GeekBench-style scores (Table 1) and server-equivalence
//!   sizing.
//! * [`power`] — measured power-vs-load curves (Table 2) and duty-cycle
//!   profiles, including the Dell LCA "light-medium" regime.
//! * [`battery`] — battery pack specifications and wear projections
//!   (Section 4.3).
//! * [`components`] — per-component embodied carbon (Table 3) and reuse
//!   roles.
//! * [`device`] — the [`DeviceSpec`](device::DeviceSpec) aggregate and its
//!   builder.
//! * [`catalog`] — ready-made specifications for every device in the paper
//!   (PowerEdge R740, ProLiant DL380 G6, ThinkPad X1 Carbon G3, Pixel 3A,
//!   Nexus 4/5, EC2 C5 instances).
//! * [`release_db`] — the yearly Android-capability dataset behind Figure 1.
//!
//! # Example
//!
//! ```
//! use junkyard_devices::catalog;
//! use junkyard_devices::benchmark::Benchmark;
//! use junkyard_devices::power::LoadProfile;
//!
//! let pixel = catalog::pixel_3a();
//! let profile = LoadProfile::light_medium();
//! println!(
//!     "{} draws {:.2} on the light-medium duty cycle",
//!     pixel.name(),
//!     pixel.average_power(&profile)
//! );
//! let n = pixel
//!     .benchmarks()
//!     .devices_to_match(catalog::poweredge_r740().benchmarks(), Benchmark::Sgemm)
//!     .unwrap();
//! assert_eq!(n, 54);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod benchmark;
pub mod catalog;
pub mod components;
pub mod device;
pub mod power;
pub mod release_db;

pub use battery::BatterySpec;
pub use benchmark::{Benchmark, BenchmarkScore, BenchmarkSuite};
pub use components::{Component, ComponentBreakdown};
pub use device::{DeviceClass, DeviceSpec, DeviceSpecBuilder, RadioSpec};
pub use power::{LoadProfile, LoadSegment, PowerCurve};
