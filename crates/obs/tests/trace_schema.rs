//! Schema-stability test for the `TRACE_*.jsonl` export: downstream
//! tooling (the timeline renderer, CI artifact diffing, dashboards)
//! parses the stream by field name and kind name, so the schema
//! version, the header shape, the per-event field order, the summary
//! shape, and the event-kind list itself are all pinned here. Renaming
//! a kind or reordering a field must show up as a deliberate diff in
//! this test, not as a silent breakage downstream.

use junkyard_obs::{EventKind, Recorder, TraceEvent, TraceRecorder, EVENT_KINDS, TRACE_SCHEMA};

/// Every event kind, in export order. Appending is fine (the header's
/// `kinds` array tells readers what to expect); renaming or reordering
/// is a schema break.
const KINDS: [&str; 13] = [
    "admit",
    "drop",
    "complete",
    "route",
    "fault",
    "retry",
    "hedge",
    "degrade",
    "rung",
    "prune",
    "cache-hit",
    "cache-miss",
    "ledger",
];

/// A two-shard, serial-plus-fanout trace exercising every line type.
fn sample_trace() -> String {
    let mut recorder = TraceRecorder::new();
    recorder.event(TraceEvent::new(EventKind::Route, 0.5, "site-a", 120.0).with_detail("w0"));
    let mut shard = recorder.shard(3);
    shard.event(TraceEvent::new(EventKind::Admit, 1.25, "type0", 1.0));
    shard.event(TraceEvent::new(EventKind::Drop, 2.0, "node1:q0", 1.0));
    recorder.absorb(shard);
    recorder.to_jsonl()
}

#[test]
fn trace_schema_is_stable() {
    let jsonl = sample_trace();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 5, "header + 3 events + summary");

    // Line 1 — the header pins the schema version, the stream name and
    // the full kind list, byte for byte.
    let expected_header = format!(
        "{{\"schema\":{TRACE_SCHEMA},\"stream\":\"junkyard_obs\",\"kinds\":[{}]}}",
        KINDS
            .iter()
            .map(|k| format!("\"{k}\""))
            .collect::<Vec<_>>()
            .join(",")
    );
    assert_eq!(lines[0], expected_header);
    assert_eq!(TRACE_SCHEMA, 1);

    // Event lines — fields in pinned order; serial events export
    // `"slot":null`, shard events their slot index. Values use the
    // shortest round-trip f64 form.
    assert_eq!(
        lines[1],
        "{\"kind\":\"route\",\"t\":0.5,\"slot\":null,\"key\":\"site-a\",\"value\":120,\"detail\":\"w0\"}"
    );
    assert_eq!(
        lines[2],
        "{\"kind\":\"admit\",\"t\":1.25,\"slot\":3,\"key\":\"type0\",\"value\":1,\"detail\":\"\"}"
    );
    assert_eq!(
        lines[3],
        "{\"kind\":\"drop\",\"t\":2,\"slot\":3,\"key\":\"node1:q0\",\"value\":1,\"detail\":\"\"}"
    );

    // Summary line — event total plus one count per kind, in kind order.
    let expected_summary = concat!(
        "{\"summary\":true,\"events\":3,\"counts\":{",
        "\"admit\":1,\"drop\":1,\"complete\":0,\"route\":1,\"fault\":0,",
        "\"retry\":0,\"hedge\":0,\"degrade\":0,\"rung\":0,\"prune\":0,",
        "\"cache-hit\":0,\"cache-miss\":0,\"ledger\":0}}"
    );
    assert_eq!(lines[4], expected_summary);
}

#[test]
fn event_kind_list_is_pinned() {
    // The in-code kind list and the pinned names agree, one to one, in
    // order — `EventKind::index` positions double as the `counts`
    // layout, so a reorder silently corrupts every summary downstream.
    assert_eq!(EVENT_KINDS.len(), KINDS.len());
    for (i, (kind, name)) in EVENT_KINDS.iter().zip(KINDS.iter()).enumerate() {
        assert_eq!(kind.name(), *name, "kind {i} renamed or reordered");
        assert_eq!(kind.index(), i, "kind {name} index drifted");
    }
}

#[test]
fn traces_with_identical_content_serialise_identically() {
    // Byte-identity holds across recorder instances, not just within
    // one: the export depends only on recorded content.
    assert_eq!(sample_trace(), sample_trace());
}
