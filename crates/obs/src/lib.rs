//! # `junkyard_obs` — the observability layer
//!
//! Two strictly separated facets:
//!
//! * **Deterministic sim-time tracing** ([`Recorder`], [`TraceRecorder`],
//!   [`TraceShard`], [`ConservedLedger`]): events keyed by *simulated*
//!   time, recorded through a zero-cost-when-disabled trait threaded into
//!   the hot paths as hooks. Workers inside a `thread::scope` fan-out
//!   only ever touch their own [`TraceShard`] (one per result slot); the
//!   serial driver absorbs shards back in slot order, so an enabled
//!   trace is worker-count invariant — the same contract the results
//!   themselves already obey. With the [`NoopRecorder`] every hook
//!   folds to a constant-false branch and runs are bit-identical to
//!   builds that never heard of tracing.
//! * **Wall-clock profiling** ([`Profiler`]): the *only* sanctioned
//!   wall-clock site outside `crates/bench` (enforced by
//!   `junkyard_lint`'s `wall-clock-in-sim` rule). The profiler is
//!   deliberately `!Send` so it cannot migrate into a fan-out worker;
//!   it measures per-stage wall time on the serial driver side and
//!   emits collapsed-stack (`PROFILE.folded`) output.
//!
//! The split is load-bearing: simulated time is replayable and belongs
//! in results and traces; wall time is not and must never flow into
//! anything a test pins. The lint gate (`wall-clock-in-sim`,
//! `fanout-purity`'s `recorder-in-fanout` facet) enforces the boundary
//! mechanically.
//!
//! Both facets export JSONL with a pinned schema — see
//! [`TraceRecorder::to_jsonl`] and the `trace_schema` regression test.

pub mod event;
pub mod ledger;
pub mod profiler;
pub mod recorder;
pub mod trace;

pub use event::{EventKind, TraceEvent, EVENT_KINDS, KIND_COUNT, TRACE_SCHEMA};
pub use ledger::{ConservedLedger, LedgerError};
pub use profiler::Profiler;
pub use recorder::{NoopRecorder, Recorder};
pub use trace::{EventSource, TraceRecorder, TraceShard};
