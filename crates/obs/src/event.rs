//! The trace event taxonomy and the pinned JSONL record shape.
//!
//! The kind list is **ordered and pinned** — downstream tooling indexes
//! the summary counts by position, and the `trace_schema` regression
//! test rejects any rename or reorder. Appending a new kind at the end
//! is fine.

/// The JSONL trace schema version, emitted in the header line. Bump it
/// only when the record shape or the kind list changes incompatibly.
pub const TRACE_SCHEMA: u32 = 1;

/// What happened. Each variant maps to one layer's hook:
/// microsim (admit/drop/complete), fleet routing (route), lifecycle
/// fault handling (fault/retry/hedge/degrade), planner search
/// (rung/prune/cache-hit/cache-miss), and the conservation ledger
/// (ledger).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// Microsim: an arrival was admitted into the event loop.
    Admit,
    /// Microsim: a request was dropped at a full bounded queue.
    Drop,
    /// Microsim: a request completed all phases.
    Complete,
    /// Fleet: a per-(window, site) routing decision.
    Route,
    /// Lifecycle: a site's availability fell below 1 in a window.
    Fault,
    /// Lifecycle: retry rounds re-aimed traffic after failures.
    Retry,
    /// Lifecycle: hedged duplicates were issued.
    Hedge,
    /// Lifecycle: the degradation ladder shed or browned out traffic.
    Degrade,
    /// Planner: a successive-halving rung promoted survivors.
    Rung,
    /// Planner: a candidate was screened out or pruned, with the reason.
    Prune,
    /// Planner: an evaluation was served from the fidelity cache.
    CacheHit,
    /// Planner: an evaluation missed the cache and ran fresh.
    CacheMiss,
    /// A conserved-ledger snapshot (both identities re-checked).
    Ledger,
}

/// Number of event kinds (the size of per-shard count tables).
pub const KIND_COUNT: usize = 13;

/// Every kind, in the pinned reporting order.
pub const EVENT_KINDS: [EventKind; KIND_COUNT] = [
    EventKind::Admit,
    EventKind::Drop,
    EventKind::Complete,
    EventKind::Route,
    EventKind::Fault,
    EventKind::Retry,
    EventKind::Hedge,
    EventKind::Degrade,
    EventKind::Rung,
    EventKind::Prune,
    EventKind::CacheHit,
    EventKind::CacheMiss,
    EventKind::Ledger,
];

impl EventKind {
    /// The kebab-case name used in JSONL records.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Admit => "admit",
            EventKind::Drop => "drop",
            EventKind::Complete => "complete",
            EventKind::Route => "route",
            EventKind::Fault => "fault",
            EventKind::Retry => "retry",
            EventKind::Hedge => "hedge",
            EventKind::Degrade => "degrade",
            EventKind::Rung => "rung",
            EventKind::Prune => "prune",
            EventKind::CacheHit => "cache-hit",
            EventKind::CacheMiss => "cache-miss",
            EventKind::Ledger => "ledger",
        }
    }

    /// Position in [`EVENT_KINDS`] (the summary-count index).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            EventKind::Admit => 0,
            EventKind::Drop => 1,
            EventKind::Complete => 2,
            EventKind::Route => 3,
            EventKind::Fault => 4,
            EventKind::Retry => 5,
            EventKind::Hedge => 6,
            EventKind::Degrade => 7,
            EventKind::Rung => 8,
            EventKind::Prune => 9,
            EventKind::CacheHit => 10,
            EventKind::CacheMiss => 11,
            EventKind::Ledger => 12,
        }
    }
}

/// One point event on the simulated-time axis.
///
/// `t` is whatever "simulated time" means for the emitting layer:
/// seconds into the run for microsim, the window index for fleet and
/// lifecycle hooks, the rung index for planner telemetry. It is never a
/// wall-clock reading — that is the [`crate::Profiler`]'s side of the
/// boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// Simulated time (layer-defined axis; see type docs).
    pub t: f64,
    /// A short stable key: site name, queue id, fingerprint, ...
    pub key: String,
    /// The magnitude: requests, grams, candidates, ...
    pub value: f64,
    /// Free-form human detail (kept out of keys so merging never
    /// depends on it).
    pub detail: String,
}

impl TraceEvent {
    /// A point event.
    #[must_use]
    pub fn new(kind: EventKind, t: f64, key: &str, value: f64) -> Self {
        Self {
            kind,
            t,
            key: key.to_string(),
            value,
            detail: String::new(),
        }
    }

    /// Attaches free-form detail.
    #[must_use]
    pub fn with_detail(mut self, detail: &str) -> Self {
        self.detail = detail.to_string();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_match_pinned_order() {
        for (i, kind) in EVENT_KINDS.iter().enumerate() {
            assert_eq!(kind.index(), i, "{}", kind.name());
        }
    }
}
