//! The wall-clock profiling boundary.
//!
//! This module is the **one** sanctioned wall-clock site outside
//! `crates/bench` — `junkyard_lint`'s `wall-clock-in-sim` rule names
//! this file explicitly and flags `Instant`/`SystemTime` everywhere
//! else. Two mechanical guards keep wall time from leaking into
//! results:
//!
//! * [`Profiler`] is `!Send` (a raw-pointer `PhantomData` opts it out),
//!   so it cannot move into a `thread::scope` worker — per-stage times
//!   are only ever measured on the serial driver side, bracketing the
//!   fan-out as a whole.
//! * Nothing here touches simulated time: the profiler knows stage
//!   labels and durations, never event timestamps. The sim-time facet
//!   ([`crate::TraceRecorder`]) is the mirror image — it never sees a
//!   wall clock.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::time::Instant;

/// One open stage on the profiler's stack.
#[derive(Debug)]
struct Frame {
    label: String,
    started: Instant,
    /// Wall micros spent in already-closed child stages, subtracted to
    /// get this frame's self time for the folded output.
    child_micros: u128,
}

/// A serial-side, stack-shaped wall-clock profiler.
///
/// `start`/`stop` calls nest: `compile` → `event-loop` inside a
/// scenario produce the collapsed-stack paths `scenario`,
/// `scenario;compile`, `scenario;event-loop`. [`Profiler::folded`]
/// emits standard collapsed-stack lines (`path self-micros`) that
/// flamegraph tooling consumes directly; [`Profiler::stages`] reports
/// inclusive per-stage milliseconds for `BENCH_microsim.json`.
#[derive(Debug, Default)]
pub struct Profiler {
    open: Vec<Frame>,
    /// Self-time micros per collapsed-stack path, in sorted path order.
    folded: BTreeMap<String, u128>,
    /// (full path, inclusive ms) in completion order.
    stages: Vec<(String, f64)>,
    /// Raw-pointer marker: opts out of `Send`/`Sync` so the profiler
    /// cannot cross into a fan-out worker (without any `unsafe`).
    _serial_only: PhantomData<*const ()>,
}

impl Profiler {
    /// An idle profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a stage nested inside the currently open one (if any).
    pub fn start(&mut self, label: &str) {
        self.open.push(Frame {
            label: label.to_string(),
            started: Instant::now(),
            child_micros: 0,
        });
    }

    /// Closes the innermost open stage, returning its inclusive wall
    /// milliseconds. A stray `stop` with nothing open records nothing
    /// and returns `0.0`.
    pub fn stop(&mut self) -> f64 {
        let Some(frame) = self.open.pop() else {
            return 0.0;
        };
        let elapsed = frame.started.elapsed();
        let inclusive_micros = elapsed.as_micros();
        let mut path = String::new();
        for parent in &self.open {
            path.push_str(&parent.label);
            path.push(';');
        }
        path.push_str(&frame.label);
        let self_micros = inclusive_micros.saturating_sub(frame.child_micros);
        *self.folded.entry(path.clone()).or_insert(0) += self_micros;
        if let Some(parent) = self.open.last_mut() {
            parent.child_micros += inclusive_micros;
        }
        let inclusive_ms = elapsed.as_secs_f64() * 1e3;
        self.stages.push((path, inclusive_ms));
        inclusive_ms
    }

    /// Times one closed-over stage: `start(label)`, run, `stop()`.
    pub fn time<T>(&mut self, label: &str, work: impl FnOnce() -> T) -> T {
        self.start(label);
        let result = work();
        self.stop();
        result
    }

    /// Collapsed-stack lines (`path self-micros`), sorted by path —
    /// ready for `PROFILE.folded` and flamegraph tooling.
    #[must_use]
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, micros) in &self.folded {
            out.push_str(&format!("{path} {micros}\n"));
        }
        out
    }

    /// (collapsed-stack path, inclusive wall ms) for every completed
    /// stage, in completion order.
    #[must_use]
    pub fn stages(&self) -> &[(String, f64)] {
        &self.stages
    }

    /// Inclusive wall ms of the most recent completed stage with this
    /// exact collapsed-stack path.
    #[must_use]
    pub fn stage_ms(&self, path: &str) -> Option<f64> {
        self.stages
            .iter()
            .rev()
            .find(|(p, _)| p == path)
            .map(|&(_, ms)| ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_collapsed_paths() {
        let mut p = Profiler::new();
        p.start("outer");
        p.start("inner");
        let inner_ms = p.stop();
        let outer_ms = p.stop();
        assert!(inner_ms >= 0.0 && outer_ms >= inner_ms);
        let folded = p.folded();
        assert!(folded.contains("outer;inner "), "{folded}");
        assert!(folded.lines().any(|l| l.starts_with("outer ")), "{folded}");
        assert_eq!(p.stages().len(), 2);
        assert_eq!(p.stages()[0].0, "outer;inner");
        assert_eq!(p.stages()[1].0, "outer");
    }

    #[test]
    fn closure_timer_returns_the_value() {
        let mut p = Profiler::new();
        let v = p.time("stage", || 41 + 1);
        assert_eq!(v, 42);
        assert!(p.stage_ms("stage").is_some());
    }

    #[test]
    fn stray_stop_is_harmless() {
        let mut p = Profiler::new();
        assert_eq!(p.stop(), 0.0);
        assert!(p.folded().is_empty());
    }
}
