//! Shard-merged trace storage and the pinned JSONL export.
//!
//! Ownership mirrors the workspace's fan-out contract:
//!
//! * [`TraceRecorder`] lives on the **serial driver side**. It records
//!   driver-level events directly (routing plans, fault resolutions,
//!   planner telemetry — everything already computed serially), hands
//!   out one [`TraceShard`] per result slot before a fan-out, and
//!   absorbs the shards back **in slot order** after the scope joins.
//! * [`TraceShard`] is the only recorder a spawned worker may touch.
//!   A shard's content depends only on its slot's work — never on
//!   which worker ran it or in what interleaving — so the merged trace
//!   is byte-identical at any worker count.
//!
//! Everything is `BTreeMap`-backed and keyed by simulated time (bit
//! pattern) plus a per-shard sequence number: two runs over the same
//! inputs serialise to byte-identical JSONL.

use std::collections::BTreeMap;

use crate::event::{EventKind, TraceEvent, EVENT_KINDS, KIND_COUNT, TRACE_SCHEMA};
use crate::recorder::Recorder;

/// The events and counters collected for one result slot (or for the
/// serial driver itself). Constructed only via [`TraceRecorder::shard`].
#[derive(Debug, Clone)]
pub struct TraceShard {
    slot: u64,
    seq: u64,
    /// Keyed by (sim-time bit pattern, arrival sequence): simulated
    /// time is the primary axis, the sequence breaks ties in the
    /// deterministic order the hooks fired.
    events: BTreeMap<(u64, u64), TraceEvent>,
    counts: [u64; KIND_COUNT],
}

impl TraceShard {
    fn new(slot: u64) -> Self {
        Self {
            slot,
            seq: 0,
            events: BTreeMap::new(),
            counts: [0; KIND_COUNT],
        }
    }

    /// The result-slot index this shard belongs to.
    #[must_use]
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Stored events, in (simulated time, sequence) order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.values()
    }

    /// Aggregate count per kind, indexed by [`EventKind::index`].
    #[must_use]
    pub fn counts(&self) -> &[u64; KIND_COUNT] {
        &self.counts
    }
}

impl Recorder for TraceShard {
    fn enabled(&self) -> bool {
        true
    }

    fn event(&mut self, event: TraceEvent) {
        self.counts[event.kind.index()] += 1;
        self.events.insert((event.t.to_bits(), self.seq), event);
        self.seq += 1;
    }

    fn count(&mut self, kind: EventKind, by: u64) {
        self.counts[kind.index()] += by;
    }

    fn span(&mut self, kind: EventKind, start_t: f64, end_t: f64, key: &str) {
        self.event(TraceEvent::new(kind, start_t, key, end_t - start_t).with_detail("span"));
    }
}

/// Which shard an exported event came from: a fan-out result slot, or
/// the serial driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventSource {
    /// Recorded by the serial driver (exported with `"slot": null`).
    Serial,
    /// Recorded by the shard for this result slot.
    Slot(u64),
}

/// The serial-side owner: records driver events, mints shards, merges
/// them back, and serialises the whole trace.
///
/// Never hand a `TraceRecorder` (or `&mut` to one) into a spawn
/// closure — mint a [`TraceShard`] per slot instead. The
/// `recorder-in-fanout` lint facet fails the build otherwise.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    serial: TraceShard,
    shards: BTreeMap<u64, TraceShard>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// An empty, enabled recorder.
    #[must_use]
    pub fn new() -> Self {
        Self {
            serial: TraceShard::new(u64::MAX),
            shards: BTreeMap::new(),
        }
    }

    /// Mints the shard for result slot `slot`, to be moved into the
    /// worker that fills that slot and absorbed back after the join.
    #[must_use]
    pub fn shard(&self, slot: u64) -> TraceShard {
        TraceShard::new(slot)
    }

    /// Merges a worker shard back. Call in **slot order** after the
    /// scope joins; absorbing the same slot twice extends it (the
    /// second shard's events follow the first's).
    pub fn absorb(&mut self, shard: TraceShard) {
        match self.shards.get_mut(&shard.slot) {
            Some(existing) => {
                for (i, n) in shard.counts.iter().enumerate() {
                    existing.counts[i] += n;
                }
                for (_, event) in shard.events {
                    existing
                        .events
                        .insert((event.t.to_bits(), existing.seq), event);
                    existing.seq += 1;
                }
            }
            None => {
                self.shards.insert(shard.slot, shard);
            }
        }
    }

    /// Total stored events across the serial shard and all absorbed
    /// slots.
    #[must_use]
    pub fn events(&self) -> usize {
        self.serial.events.len() + self.shards.values().map(|s| s.events.len()).sum::<usize>()
    }

    /// Aggregate counts per kind, indexed by [`EventKind::index`].
    #[must_use]
    pub fn counts(&self) -> [u64; KIND_COUNT] {
        let mut totals = [0u64; KIND_COUNT];
        for (i, n) in self.serial.counts.iter().enumerate() {
            totals[i] += n;
        }
        for shard in self.shards.values() {
            for (i, n) in shard.counts.iter().enumerate() {
                totals[i] += n;
            }
        }
        totals
    }

    /// Every stored event in export order: the serial shard first (in
    /// simulated-time order), then each absorbed slot in slot order.
    pub fn events_in_order(&self) -> impl Iterator<Item = (EventSource, &TraceEvent)> {
        let serial = self
            .serial
            .events
            .values()
            .map(|e| (EventSource::Serial, e));
        let sharded = self.shards.values().flat_map(|shard| {
            shard
                .events
                .values()
                .map(move |e| (EventSource::Slot(shard.slot), e))
        });
        serial.chain(sharded)
    }

    /// Serialises the trace to JSONL with the pinned schema:
    ///
    /// * line 1 — header: `{"schema":1,"stream":"junkyard_obs","kinds":[...]}`
    /// * one line per event, fields in pinned order:
    ///   `{"kind":...,"t":...,"slot":...,"key":...,"value":...,"detail":...}`
    ///   (`slot` is `null` for serial-driver events);
    /// * last line — summary: `{"summary":true,"events":N,"counts":{...}}`
    ///   with one count per kind in [`EVENT_KINDS`] order.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":{TRACE_SCHEMA},\"stream\":\"junkyard_obs\",\"kinds\":["
        ));
        for (i, kind) in EVENT_KINDS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", kind.name()));
        }
        out.push_str("]}\n");
        for (source, event) in self.events_in_order() {
            let slot = match source {
                EventSource::Serial => "null".to_string(),
                EventSource::Slot(s) => s.to_string(),
            };
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"t\":{},\"slot\":{slot},\"key\":\"{}\",\"value\":{},\"detail\":\"{}\"}}\n",
                event.kind.name(),
                json_f64(event.t),
                escape(&event.key),
                json_f64(event.value),
                escape(&event.detail),
            ));
        }
        let counts = self.counts();
        out.push_str(&format!(
            "{{\"summary\":true,\"events\":{},\"counts\":{{",
            self.events()
        ));
        for (i, kind) in EVENT_KINDS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", kind.name(), counts[kind.index()]));
        }
        out.push_str("}}\n");
        out
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn event(&mut self, event: TraceEvent) {
        self.serial.event(event);
    }

    fn count(&mut self, kind: EventKind, by: u64) {
        self.serial.count(kind, by);
    }

    fn span(&mut self, kind: EventKind, start_t: f64, end_t: f64, key: &str) {
        self.serial.span(kind, start_t, end_t, key);
    }
}

/// A finite `f64` as a JSON number (shortest round-trip form; `1` for
/// `1.0`). Non-finite values — which no hook emits — degrade to `null`
/// rather than corrupting the stream.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping (mirrors `junkyard_lint`'s report
/// writer): quotes, backslashes, and control characters.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_order_is_slot_order_not_arrival_order() {
        let mut a = TraceRecorder::new();
        let mut shard_hi = a.shard(7);
        let mut shard_lo = a.shard(2);
        shard_hi.event(TraceEvent::new(EventKind::Admit, 1.0, "hi", 1.0));
        shard_lo.event(TraceEvent::new(EventKind::Admit, 1.0, "lo", 1.0));
        // Absorb in "wrong" order: export order must still be slot order.
        a.absorb(shard_hi);
        a.absorb(shard_lo);

        let mut b = TraceRecorder::new();
        let mut shard_hi = b.shard(7);
        let mut shard_lo = b.shard(2);
        shard_hi.event(TraceEvent::new(EventKind::Admit, 1.0, "hi", 1.0));
        shard_lo.event(TraceEvent::new(EventKind::Admit, 1.0, "lo", 1.0));
        b.absorb(shard_lo);
        b.absorb(shard_hi);

        assert_eq!(a.to_jsonl(), b.to_jsonl());
        let keys: Vec<&str> = a.events_in_order().map(|(_, e)| e.key.as_str()).collect();
        assert_eq!(keys, vec!["lo", "hi"]);
    }

    #[test]
    fn serial_events_sort_by_sim_time_then_sequence() {
        let mut rec = TraceRecorder::new();
        rec.event(TraceEvent::new(EventKind::Route, 2.0, "late", 1.0));
        rec.event(TraceEvent::new(EventKind::Route, 1.0, "early", 1.0));
        rec.event(TraceEvent::new(EventKind::Route, 1.0, "early-second", 1.0));
        let keys: Vec<&str> = rec.events_in_order().map(|(_, e)| e.key.as_str()).collect();
        assert_eq!(keys, vec!["early", "early-second", "late"]);
    }

    #[test]
    fn jsonl_escapes_and_counts() {
        let mut rec = TraceRecorder::new();
        rec.event(TraceEvent::new(EventKind::Prune, 0.0, "a\"b", 1.0).with_detail("x\ny"));
        rec.count(EventKind::Admit, 41);
        rec.count(EventKind::Admit, 1);
        let jsonl = rec.to_jsonl();
        assert!(jsonl.contains("\"key\":\"a\\\"b\""));
        assert!(jsonl.contains("\"detail\":\"x\\ny\""));
        assert!(jsonl.contains("\"admit\":42"));
        assert!(jsonl.contains("\"prune\":1"));
        // Header first, summary last, one event line in between.
        assert_eq!(jsonl.lines().count(), 3);
    }
}
