//! The recording trait the hot paths are generic over.
//!
//! Hook sites call `recorder.enabled()` before building an event, so
//! the disabled path costs one branch. With [`NoopRecorder`] (the
//! default everywhere) `enabled()` is a constant `false` that the
//! monomorphised hot loops fold away entirely — a run that records
//! nothing is bit-identical, instruction for instruction, to one built
//! before this crate existed.

use crate::event::{EventKind, TraceEvent};

/// A sink for simulated-time trace events.
///
/// All methods default to no-ops so implementations opt into exactly
/// the primitives they store. Fan-out workers must only ever hold a
/// [`crate::TraceShard`] (one per result slot) — never the serial
/// [`crate::TraceRecorder`]; `junkyard_lint`'s `recorder-in-fanout`
/// facet enforces this mechanically.
pub trait Recorder {
    /// Whether events will be kept. Hook sites gate on this before
    /// paying any formatting cost.
    fn enabled(&self) -> bool {
        false
    }

    /// Records one point event.
    fn event(&mut self, _event: TraceEvent) {}

    /// Bumps the aggregate count for `kind` by `by` without storing a
    /// per-event record — for hot loops where the count is the story.
    fn count(&mut self, _kind: EventKind, _by: u64) {}

    /// Records a span on the simulated-time axis (stored as a point
    /// event at `start_t` whose value is the duration).
    fn span(&mut self, _kind: EventKind, _start_t: f64, _end_t: f64, _key: &str) {}
}

/// The do-nothing recorder: `enabled()` is `false`, every sink is
/// empty, and the optimiser deletes the hooks.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

impl<R: Recorder + ?Sized> Recorder for &mut R {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn event(&mut self, event: TraceEvent) {
        (**self).event(event);
    }

    fn count(&mut self, kind: EventKind, by: u64) {
        (**self).count(kind, by);
    }

    fn span(&mut self, kind: EventKind, start_t: f64, end_t: f64, key: &str) {
        (**self).span(kind, start_t, end_t, key);
    }
}
