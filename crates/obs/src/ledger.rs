//! The conservation ledger: the two `lint: conserved` identities as a
//! live, self-checking primitive.
//!
//! The fleet/lifecycle results carry struct fields audited statically
//! by `junkyard_lint`'s `conservation-audit` rule; this mirrors the
//! same identities dynamically, so a trace can assert at *record time*
//! that nothing leaked:
//!
//! * requests: `offered == served + declined + dropped + shed + failed`
//! * carbon:   `total == operational + embodied + retry`

use std::fmt;

use crate::event::{EventKind, TraceEvent};

/// A violated conservation identity, with both sides of the failed
/// balance.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// `offered` didn't balance against the served/declined/dropped/
    /// shed/failed decomposition.
    Requests {
        /// The left-hand side of the identity.
        offered: f64,
        /// The sum the decomposition actually reached.
        accounted: f64,
    },
    /// `total` carbon didn't balance against operational + embodied +
    /// retry.
    Carbon {
        /// The left-hand side of the identity.
        total: f64,
        /// The sum the decomposition actually reached.
        accounted: f64,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Requests { offered, accounted } => write!(
                f,
                "request conservation violated: offered {offered} but served + declined + \
                 dropped + shed + failed account for {accounted}"
            ),
            LedgerError::Carbon { total, accounted } => write!(
                f,
                "carbon conservation violated: total {total} gCO2e but operational + embodied + \
                 retry account for {accounted}"
            ),
        }
    }
}

/// Running totals for both conserved identities, re-checked on every
/// `record_*` call — a broken decomposition is rejected at the moment
/// it happens, with the failing window still on the stack, instead of
/// surfacing as a drifted total at the end of a study.
#[derive(Debug, Clone)]
pub struct ConservedLedger {
    tolerance: f64,
    offered: f64,
    served: f64,
    declined: f64,
    dropped: f64,
    shed: f64,
    failed: f64,
    carbon: f64,
    operational: f64,
    embodied: f64,
    retry: f64,
}

impl Default for ConservedLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl ConservedLedger {
    /// An empty ledger with the default relative tolerance (`1e-6`,
    /// generous against f64 summation order but far below any real
    /// accounting leak).
    #[must_use]
    pub fn new() -> Self {
        Self::with_tolerance(1e-6)
    }

    /// An empty ledger with an explicit relative tolerance.
    #[must_use]
    pub fn with_tolerance(tolerance: f64) -> Self {
        Self {
            tolerance,
            offered: 0.0,
            served: 0.0,
            declined: 0.0,
            dropped: 0.0,
            shed: 0.0,
            failed: 0.0,
            carbon: 0.0,
            operational: 0.0,
            embodied: 0.0,
            retry: 0.0,
        }
    }

    fn balanced(&self, lhs: f64, accounted: f64) -> bool {
        (lhs - accounted).abs() <= self.tolerance * lhs.abs().max(1.0)
    }

    /// Records one window's (or study's) request decomposition,
    /// rejecting it if `offered` doesn't balance. Totals only
    /// accumulate on success.
    ///
    /// # Errors
    ///
    /// [`LedgerError::Requests`] when the identity is violated beyond
    /// the tolerance.
    pub fn record_requests(
        &mut self,
        offered: f64,
        served: f64,
        declined: f64,
        dropped: f64,
        shed: f64,
        failed: f64,
    ) -> Result<(), LedgerError> {
        let accounted = served + declined + dropped + shed + failed;
        if !self.balanced(offered, accounted) {
            return Err(LedgerError::Requests { offered, accounted });
        }
        self.offered += offered;
        self.served += served;
        self.declined += declined;
        self.dropped += dropped;
        self.shed += shed;
        self.failed += failed;
        Ok(())
    }

    /// Records one slice of the carbon decomposition, rejecting it if
    /// `total` doesn't balance. Totals only accumulate on success.
    ///
    /// # Errors
    ///
    /// [`LedgerError::Carbon`] when the identity is violated beyond the
    /// tolerance.
    pub fn record_carbon(
        &mut self,
        total: f64,
        operational: f64,
        embodied: f64,
        retry: f64,
    ) -> Result<(), LedgerError> {
        let accounted = operational + embodied + retry;
        if !self.balanced(total, accounted) {
            return Err(LedgerError::Carbon { total, accounted });
        }
        self.carbon += total;
        self.operational += operational;
        self.embodied += embodied;
        self.retry += retry;
        Ok(())
    }

    /// Accumulated offered requests.
    #[must_use]
    pub fn offered(&self) -> f64 {
        self.offered
    }

    /// Accumulated served requests.
    #[must_use]
    pub fn served(&self) -> f64 {
        self.served
    }

    /// Accumulated total carbon (gCO2e).
    #[must_use]
    pub fn carbon(&self) -> f64 {
        self.carbon
    }

    /// A `ledger` trace event snapshotting both identities at simulated
    /// time `t` (value = offered so far; detail = the full balance).
    #[must_use]
    pub fn snapshot(&self, t: f64) -> TraceEvent {
        TraceEvent::new(EventKind::Ledger, t, "conserved", self.offered).with_detail(&format!(
            "requests offered={} served={} declined={} dropped={} shed={} failed={}; \
             carbon total={} operational={} embodied={} retry={}",
            self.offered,
            self.served,
            self.declined,
            self.dropped,
            self.shed,
            self.failed,
            self.carbon,
            self.operational,
            self.embodied,
            self.retry,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_identities_accumulate() {
        let mut ledger = ConservedLedger::new();
        ledger
            .record_requests(100.0, 90.0, 4.0, 3.0, 2.0, 1.0)
            .expect("balanced");
        ledger
            .record_requests(50.0, 50.0, 0.0, 0.0, 0.0, 0.0)
            .expect("balanced");
        ledger.record_carbon(10.0, 6.0, 3.0, 1.0).expect("balanced");
        assert_eq!(ledger.offered(), 150.0);
        assert_eq!(ledger.served(), 140.0);
        assert_eq!(ledger.carbon(), 10.0);
    }

    #[test]
    fn broken_request_identity_is_rejected_and_not_accumulated() {
        let mut ledger = ConservedLedger::new();
        let err = ledger
            .record_requests(100.0, 90.0, 0.0, 0.0, 0.0, 0.0)
            .expect_err("10 requests leaked");
        assert_eq!(
            err,
            LedgerError::Requests {
                offered: 100.0,
                accounted: 90.0
            }
        );
        assert_eq!(ledger.offered(), 0.0);
    }

    #[test]
    fn broken_carbon_identity_is_rejected() {
        let mut ledger = ConservedLedger::new();
        let err = ledger
            .record_carbon(10.0, 6.0, 3.0, 0.0)
            .expect_err("1 gram leaked");
        assert!(matches!(err, LedgerError::Carbon { .. }));
        assert!(err.to_string().contains("carbon conservation violated"));
    }

    #[test]
    fn tolerance_absorbs_summation_noise() {
        let mut ledger = ConservedLedger::new();
        ledger
            .record_requests(1.0e9, 1.0e9 + 0.5, 0.0, 0.0, 0.0, 0.0)
            .expect("relative error 5e-10 is inside 1e-6");
    }
}
