//! Time-stepping simulation of smart charging against a grid trace.
//!
//! This reproduces the Figure 4 experiment: a battery-backed device (Pixel
//! 3A or ThinkPad) runs continuously at its light-medium average power; the
//! smart-charging policy decides, sample by sample, whether to draw from the
//! wall (powering the device and charging the pack) or run from the battery.
//! Carbon is accounted at the grid's instantaneous intensity, and savings
//! are reported against a baseline that draws wall power continuously.

use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::convert::{count_f64, counts_ratio};
use junkyard_carbon::units::{CarbonIntensity, GramsCo2e, TimeSpan, Watts};
use junkyard_devices::battery::BatterySpec;
use junkyard_grid::trace::IntensityTrace;

use crate::charging::SmartChargePolicy;
use crate::state::BatteryState;
use crate::trace_ext::{sorted_percentile, DayStats};

/// Configuration of one smart-charging simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmartChargingConfig {
    label: String,
    device_power: Watts,
    battery: BatterySpec,
    policy: SmartChargePolicy,
}

impl SmartChargingConfig {
    /// Creates a configuration for a device drawing `device_power` on
    /// average, backed by `battery`, charged under the default paper policy.
    ///
    /// # Panics
    ///
    /// Panics if `device_power` is not strictly positive.
    #[must_use]
    pub fn new(label: impl Into<String>, device_power: Watts, battery: BatterySpec) -> Self {
        assert!(device_power.value() > 0.0, "device power must be positive");
        Self {
            label: label.into(),
            device_power,
            battery,
            policy: SmartChargePolicy::paper_default(),
        }
    }

    /// Overrides the charging policy.
    #[must_use]
    pub fn policy(mut self, policy: SmartChargePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The device label used in reports.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The device's average power draw.
    #[must_use]
    pub fn device_power(&self) -> Watts {
        self.device_power
    }

    /// The battery pack being managed.
    #[must_use]
    pub fn battery(&self) -> BatterySpec {
        self.battery
    }

    /// Runs the simulation over `trace`, which must cover at least one whole
    /// day.
    ///
    /// Day 0 has no previous day to derive a threshold from, so it runs as
    /// an explicit warm-up day (see [`simulate_day`]'s causal prior) and is
    /// flagged via [`DayOutcome::is_warmup`]; the savings statistics exclude
    /// warm-up days.
    ///
    /// # Panics
    ///
    /// Panics if the trace covers less than one whole day.
    #[must_use]
    pub fn run(&self, trace: &IntensityTrace) -> SmartChargingOutcome {
        let day_count = trace.day_count();
        assert!(
            day_count >= 1,
            "smart charging needs at least one full day of grid data"
        );
        let step = trace.step();
        let mut battery = BatteryState::new_full(self.battery);
        let mut days = Vec::with_capacity(day_count);
        let mut previous_stats: Option<DayStats> = None;

        for day_index in 0..day_count {
            let Some(day_trace) = trace.day(day_index) else {
                break;
            };
            let stats = DayStats::from_trace(&day_trace);
            let mut charging_flags = Vec::with_capacity(day_trace.len());
            let warmup = previous_stats.is_none();
            let run = simulate_day(
                self.policy,
                self.device_power,
                &mut battery,
                &day_trace,
                previous_stats.as_ref(),
                Some(&mut charging_flags),
            );
            days.push(DayOutcome {
                day_index,
                threshold: run.threshold(),
                baseline_carbon: run.baseline_carbon(),
                smart_carbon: run.smart_carbon(),
                charging_flags,
                step,
                warmup,
            });
            previous_stats = Some(stats);
        }

        SmartChargingOutcome {
            label: self.label.clone(),
            days,
            battery_replacements: battery.replacements(),
            replacement_carbon: battery.replacement_carbon(),
            amortized_replacement_carbon: battery.amortized_replacement_carbon(),
        }
    }
}

/// Carbon ledger of one simulated day of smart charging.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayRun {
    threshold: CarbonIntensity,
    baseline_carbon: GramsCo2e,
    smart_carbon: GramsCo2e,
    packs_replaced: u32,
}

impl DayRun {
    /// The charging threshold in force at the day's last decision (fixed
    /// all day when a previous day seeded it).
    #[must_use]
    pub fn threshold(&self) -> CarbonIntensity {
        self.threshold
    }

    /// Carbon a device drawing wall power continuously would have emitted.
    #[must_use]
    pub fn baseline_carbon(&self) -> GramsCo2e {
        self.baseline_carbon
    }

    /// Carbon emitted under smart charging.
    #[must_use]
    pub fn smart_carbon(&self) -> GramsCo2e {
        self.smart_carbon
    }

    /// Worn-out packs replaced during the day.
    #[must_use]
    pub fn packs_replaced(&self) -> u32 {
        self.packs_replaced
    }
}

/// Steps one day of smart charging, mutating `battery` in place, and
/// returns the day's carbon ledger. This is the primitive shared by
/// [`SmartChargingConfig::run`] and the fleet lifecycle simulator, which
/// integrates per-device wear across multi-year horizons.
///
/// With `previous_day` statistics the threshold is fixed for the whole day
/// (the paper's rule). Without them — a warm-up day with no history — the
/// threshold is built *causally* from the samples already observed: zero
/// before the first observation (so the device charges only on the backup
/// floor), then the policy percentile of the sorted prefix of strictly
/// earlier samples. No decision ever reads same-day future samples, unlike
/// the old behaviour of deriving day 0's threshold from day 0's own
/// full-day statistics.
///
/// `charging_flags`, when provided, receives one `true`/`false` per sample
/// (plugged in or on battery), for Figure 4-style shading.
#[must_use]
pub fn simulate_day(
    policy: SmartChargePolicy,
    device_power: Watts,
    battery: &mut BatteryState,
    day_trace: &IntensityTrace,
    previous_day: Option<&DayStats>,
    mut charging_flags: Option<&mut Vec<bool>>,
) -> DayRun {
    let step = day_trace.step();
    let spec = battery.spec();
    let fixed_threshold = previous_day.map(|stats| policy.threshold(stats, device_power, spec));
    let percentile = policy.charging_percentile(device_power, spec);
    let mut prefix: Vec<f64> = Vec::new();
    let start_replacements = battery.replacements();
    let mut baseline = GramsCo2e::ZERO;
    let mut smart = GramsCo2e::ZERO;
    let mut threshold = fixed_threshold.unwrap_or(CarbonIntensity::ZERO);

    for (_, intensity) in day_trace.iter() {
        if battery.is_worn_out() {
            battery.replace();
        }
        if fixed_threshold.is_none() {
            threshold = sorted_percentile(&prefix, percentile);
        }
        let decision = policy.should_charge(battery.state_of_charge(), intensity, threshold);
        let device_energy = device_power * step;
        baseline += intensity.emissions_for(device_energy);
        if decision.is_charging() {
            let from_wall = battery.charge_from_wall(step);
            smart += intensity.emissions_for(device_energy + from_wall);
            if let Some(flags) = charging_flags.as_deref_mut() {
                flags.push(true);
            }
        } else {
            let shortfall = battery.discharge(device_power, step);
            if shortfall.value() > 0.0 {
                // Pack emptied mid-interval: the remainder comes from
                // the wall regardless of the grid.
                smart += intensity.emissions_for(shortfall);
            }
            if let Some(flags) = charging_flags.as_deref_mut() {
                flags.push(false);
            }
        }
        if fixed_threshold.is_none() {
            let value = intensity.grams_per_kwh();
            let at = prefix.partition_point(|x| *x <= value);
            prefix.insert(at, value);
        }
    }

    DayRun {
        threshold,
        baseline_carbon: baseline,
        smart_carbon: smart,
        packs_replaced: battery.replacements() - start_replacements,
    }
}

/// Result of one simulated day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayOutcome {
    day_index: usize,
    threshold: CarbonIntensity,
    baseline_carbon: GramsCo2e,
    smart_carbon: GramsCo2e,
    charging_flags: Vec<bool>,
    step: TimeSpan,
    warmup: bool,
}

impl DayOutcome {
    /// Which day of the trace this is (0-based).
    #[must_use]
    pub fn day_index(&self) -> usize {
        self.day_index
    }

    /// `true` for warm-up days: days with no previous-day history, run on
    /// the causal prior (see [`simulate_day`]) and excluded from the
    /// savings statistics. Day 0 of every run is a warm-up day.
    #[must_use]
    pub fn is_warmup(&self) -> bool {
        self.warmup
    }

    /// The carbon-intensity threshold used for green charging that day.
    #[must_use]
    pub fn threshold(&self) -> CarbonIntensity {
        self.threshold
    }

    /// Carbon emitted by a device drawing wall power continuously.
    #[must_use]
    pub fn baseline_carbon(&self) -> GramsCo2e {
        self.baseline_carbon
    }

    /// Carbon emitted under smart charging.
    #[must_use]
    pub fn smart_carbon(&self) -> GramsCo2e {
        self.smart_carbon
    }

    /// Savings relative to the baseline, in percent (may be negative on a
    /// day that mostly refills the pack).
    #[must_use]
    pub fn savings_percent(&self) -> f64 {
        if self.baseline_carbon.grams() <= 0.0 {
            return 0.0;
        }
        (1.0 - self.smart_carbon.grams() / self.baseline_carbon.grams()) * 100.0
    }

    /// Per-sample charging flags (true = plugged in), for the Figure 4
    /// shading.
    #[must_use]
    pub fn charging_flags(&self) -> &[bool] {
        &self.charging_flags
    }

    /// Sampling step of the charging flags.
    #[must_use]
    pub fn step(&self) -> TimeSpan {
        self.step
    }

    /// Fraction of the day spent plugged in.
    #[must_use]
    pub fn charging_fraction(&self) -> f64 {
        if self.charging_flags.is_empty() {
            return 0.0;
        }
        counts_ratio(
            self.charging_flags.iter().filter(|c| **c).count(),
            self.charging_flags.len(),
        )
    }
}

/// Result of a full smart-charging simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmartChargingOutcome {
    label: String,
    days: Vec<DayOutcome>,
    battery_replacements: u32,
    replacement_carbon: GramsCo2e,
    amortized_replacement_carbon: GramsCo2e,
}

impl SmartChargingOutcome {
    /// The device label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Per-day results.
    #[must_use]
    pub fn days(&self) -> &[DayOutcome] {
        &self.days
    }

    /// Battery packs replaced during the simulated period.
    #[must_use]
    pub fn battery_replacements(&self) -> u32 {
        self.battery_replacements
    }

    /// Embodied carbon of the packs actually replaced during the run
    /// (whole packs only; zero until the first pack wears out).
    #[must_use]
    pub fn replacement_carbon(&self) -> GramsCo2e {
        self.replacement_carbon
    }

    /// Replacement embodied carbon amortised over the wear the simulated
    /// schedule actually accrued: pack embodied × (equivalent cycles /
    /// cycle life), continuous in time, so a month-long run is charged its
    /// fair share of the pack it is consuming instead of rounding to whole
    /// replacements (see
    /// [`BatteryState::amortized_replacement_carbon`]).
    #[must_use]
    pub fn amortized_replacement_carbon(&self) -> GramsCo2e {
        self.amortized_replacement_carbon
    }

    /// Total baseline (always-on-wall) carbon across every simulated day.
    #[must_use]
    pub fn total_baseline_carbon(&self) -> GramsCo2e {
        self.days.iter().map(DayOutcome::baseline_carbon).sum()
    }

    /// Total smart-charging carbon across every simulated day, excluding
    /// battery-replacement embodied carbon.
    #[must_use]
    pub fn total_smart_carbon(&self) -> GramsCo2e {
        self.days.iter().map(DayOutcome::smart_carbon).sum()
    }

    /// Whole-period operational savings in percent, *ignoring* battery
    /// wear — the figure the savings statistics above describe per day.
    #[must_use]
    pub fn gross_savings_percent(&self) -> f64 {
        let baseline = self.total_baseline_carbon().grams();
        if baseline <= 0.0 {
            return 0.0;
        }
        (1.0 - self.total_smart_carbon().grams() / baseline) * 100.0
    }

    /// Whole-period savings in percent *net of battery wear*: the smart
    /// side is charged the replacement embodied carbon amortised over the
    /// simulated days ([`Self::amortized_replacement_carbon`]), because the
    /// baseline never cycles the pack while the policy consumes it. This is
    /// the offset the paper flags against the Figure 4 savings; it can be
    /// negative when wear costs more than time-shifting saves.
    #[must_use]
    pub fn net_savings_percent(&self) -> f64 {
        let baseline = self.total_baseline_carbon().grams();
        if baseline <= 0.0 {
            return 0.0;
        }
        let smart = self.total_smart_carbon() + self.amortized_replacement_carbon;
        (1.0 - smart.grams() / baseline) * 100.0
    }

    /// Daily savings percentages over the non-warm-up days (warm-up days
    /// have no previous-day threshold and start with an artificially full
    /// pack, so they are explicitly flagged and excluded — see
    /// [`DayOutcome::is_warmup`]).
    #[must_use]
    pub fn savings_percentages(&self) -> Vec<f64> {
        self.days
            .iter()
            .filter(|d| !d.is_warmup())
            .map(DayOutcome::savings_percent)
            .collect()
    }

    /// Median daily savings in percent (the statistic the paper reports).
    #[must_use]
    pub fn median_savings_percent(&self) -> f64 {
        median(&self.savings_percentages())
    }

    /// Standard deviation of daily savings in percent.
    #[must_use]
    pub fn std_savings_percent(&self) -> f64 {
        std_dev(&self.savings_percentages())
    }

    /// The day whose savings are closest to the median — the
    /// "representative day" plotted in Figure 4.
    #[must_use]
    pub fn representative_day(&self) -> Option<&DayOutcome> {
        let median = self.median_savings_percent();
        self.days.iter().filter(|d| !d.is_warmup()).min_by(|a, b| {
            (a.savings_percent() - median)
                .abs()
                .total_cmp(&(b.savings_percent() - median).abs())
        })
    }
}

impl fmt::Display for SmartChargingOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: median savings {:.2}% (std {:.2}%) over {} days",
            self.label,
            self.median_savings_percent(),
            self.std_savings_percent(),
            self.days.len()
        )
    }
}

/// Median of a slice (0 if empty).
#[must_use]
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Population standard deviation of a slice (0 if fewer than two values).
#[must_use]
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / count_f64(values.len());
    let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count_f64(values.len());
    variance.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use junkyard_grid::synth::CaisoSynthesizer;

    fn month_trace() -> IntensityTrace {
        CaisoSynthesizer::april_2021_like(2021).intensity_trace()
    }

    fn pixel_config() -> SmartChargingConfig {
        SmartChargingConfig::new("Pixel 3A", Watts::new(1.54), BatterySpec::pixel_3a())
    }

    fn thinkpad_config() -> SmartChargingConfig {
        SmartChargingConfig::new(
            "ThinkPad X1 Carbon G3",
            Watts::new(11.47),
            BatterySpec::thinkpad_x1_carbon_g3(),
        )
    }

    #[test]
    fn pixel_saves_single_digit_percent_like_the_paper() {
        let outcome = pixel_config().run(&month_trace());
        let median = outcome.median_savings_percent();
        // Paper: 7.22% median savings for the Pixel 3A (std 5.93).
        assert!(median > 2.0 && median < 20.0, "median savings {median}%");
    }

    #[test]
    fn laptop_saves_less_than_the_phone() {
        let trace = month_trace();
        let pixel = pixel_config().run(&trace).median_savings_percent();
        let laptop = thinkpad_config().run(&trace).median_savings_percent();
        // Paper: the ThinkPad's higher power draw offsets its larger pack, so
        // its savings (4.03%) trail the Pixel's (7.22%).
        assert!(laptop < pixel, "laptop {laptop}% vs pixel {pixel}%");
        assert!(
            laptop > 0.0,
            "laptop should still save something, got {laptop}%"
        );
    }

    #[test]
    fn charging_happens_mostly_during_clean_hours() {
        let outcome = pixel_config().run(&month_trace());
        let trace = month_trace();
        // Weighted mean intensity while charging should be below the overall
        // mean — that is the whole point of the policy.
        let mut charging_sum = 0.0;
        let mut charging_n = 0usize;
        for day in outcome.days().iter().skip(1) {
            let day_trace = trace.day(day.day_index()).unwrap();
            for (flag, (_, intensity)) in day.charging_flags().iter().zip(day_trace.iter()) {
                if *flag {
                    charging_sum += intensity.grams_per_kwh();
                    charging_n += 1;
                }
            }
        }
        let charging_mean = charging_sum / charging_n as f64;
        assert!(
            charging_mean < trace.mean().grams_per_kwh(),
            "charging mean {charging_mean} vs overall {}",
            trace.mean().grams_per_kwh()
        );
    }

    #[test]
    fn charging_fraction_is_small_for_the_pixel() {
        let outcome = pixel_config().run(&month_trace());
        let day = outcome.representative_day().unwrap();
        assert!(
            day.charging_fraction() < 0.35,
            "got {}",
            day.charging_fraction()
        );
        assert!(day.charging_fraction() > 0.02);
    }

    #[test]
    fn energy_balance_holds_over_the_month() {
        // Smart charging shifts energy in time; it cannot create or destroy
        // much of it. Total smart-side wall carbon should stay within a
        // plausible band of the baseline (same energy, cleaner times).
        let outcome = pixel_config().run(&month_trace());
        let baseline: f64 = outcome
            .days()
            .iter()
            .map(|d| d.baseline_carbon().grams())
            .sum();
        let smart: f64 = outcome
            .days()
            .iter()
            .map(|d| d.smart_carbon().grams())
            .sum();
        assert!(smart > baseline * 0.5 && smart < baseline * 1.05);
    }

    #[test]
    fn representative_day_is_near_the_median() {
        let outcome = pixel_config().run(&month_trace());
        let median = outcome.median_savings_percent();
        let repr = outcome.representative_day().unwrap().savings_percent();
        assert!(
            (repr - median).abs() < 3.0,
            "repr {repr} vs median {median}"
        );
    }

    #[test]
    fn statistics_helpers() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn replacement_wear_reduces_net_savings() {
        let outcome = pixel_config().run(&month_trace());
        // The policy cycles the pack every day, so the month accrues wear
        // and its amortised replacement carbon is strictly positive.
        assert!(outcome.amortized_replacement_carbon().grams() > 0.0);
        assert!(
            outcome.net_savings_percent() < outcome.gross_savings_percent(),
            "net {} must trail gross {}",
            outcome.net_savings_percent(),
            outcome.gross_savings_percent()
        );
        // A free pack (zero embodied) leaves the two figures identical.
        let free_pack = BatterySpec::new(
            3.0,
            junkyard_devices::battery::NOMINAL_CELL_VOLTAGE,
            Watts::new(18.0),
            junkyard_carbon::units::GramsCo2e::ZERO,
            junkyard_devices::battery::DEFAULT_CYCLE_LIFE,
        );
        let free =
            SmartChargingConfig::new("free", Watts::new(1.54), free_pack).run(&month_trace());
        assert!((free.net_savings_percent() - free.gross_savings_percent()).abs() < 1e-12);
    }

    #[test]
    fn day_zero_is_flagged_warmup_and_excluded_from_statistics() {
        let outcome = pixel_config().run(&month_trace());
        assert!(outcome.days()[0].is_warmup());
        assert!(outcome.days().iter().skip(1).all(|d| !d.is_warmup()));
        assert_eq!(
            outcome.savings_percentages().len(),
            outcome.days().len() - 1
        );
    }

    #[test]
    fn day_zero_decisions_never_read_future_samples() {
        // Two day-0 traces identical up to sample k, arbitrary afterwards:
        // a causal policy must make identical decisions up to k. The old
        // code thresholded on day 0's *full-day* percentile, which this
        // test rejects (a future dip would change early decisions).
        let step = TimeSpan::from_minutes(5.0);
        let prefix: Vec<f64> = (0..288).map(|i| 250.0 + f64::from(i % 7) * 13.0).collect();
        let make = |tail: f64| {
            let values = prefix
                .iter()
                .enumerate()
                .map(|(i, v)| CarbonIntensity::from_grams_per_kwh(if i < 200 { *v } else { tail }))
                .collect();
            IntensityTrace::new(step, values)
        };
        // Drain the pack quickly so green-charging decisions actually occur
        // during day 0 (a full pack never green-charges).
        let config = SmartChargingConfig::new(
            "probe",
            Watts::new(30.0),
            BatterySpec::thinkpad_x1_carbon_g3(),
        );
        let deep_dip = config.run(&make(20.0));
        let high_tail = config.run(&make(900.0));
        let a = &deep_dip.days()[0].charging_flags()[..200];
        let b = &high_tail.days()[0].charging_flags()[..200];
        assert_eq!(a, b, "decisions before the divergence point must match");
    }

    #[test]
    fn lossy_charging_raises_wall_side_emissions() {
        let trace = month_trace();
        let lossless = pixel_config().run(&trace);
        let lossy = SmartChargingConfig::new(
            "Pixel 3A (90% charger)",
            Watts::new(1.54),
            BatterySpec::pixel_3a().with_charge_efficiency(0.9),
        )
        .run(&trace);
        // The baseline never touches the charger, so it is unchanged; the
        // smart side pays for conversion losses at the wall.
        assert!(
            (lossy.total_baseline_carbon().grams() - lossless.total_baseline_carbon().grams())
                .abs()
                < 1e-9
        );
        assert!(
            lossy.total_smart_carbon().grams() > lossless.total_smart_carbon().grams(),
            "lossy {} vs lossless {}",
            lossy.total_smart_carbon().grams(),
            lossless.total_smart_carbon().grams()
        );
    }

    #[test]
    #[should_panic(expected = "at least one full day")]
    fn short_trace_panics() {
        let trace = IntensityTrace::constant(
            CarbonIntensity::from_grams_per_kwh(257.0),
            TimeSpan::from_minutes(5.0),
            TimeSpan::from_hours(3.0),
        );
        let _ = pixel_config().run(&trace);
    }

    #[test]
    fn display_summarises() {
        let outcome = pixel_config().run(&month_trace());
        assert!(outcome.to_string().contains("median savings"));
    }
}
