//! Battery and smart-charging substrate for the Junkyard Computing
//! reproduction.
//!
//! Smartphones bring their own uninterruptible power supply; Section 4.3 of
//! the paper exploits it to shift wall-power draw towards the hours when the
//! grid is greenest ("smart charging"). This crate provides:
//!
//! * [`state`] — a mutable battery model with charge tracking, cycle wear
//!   and replacement accounting.
//! * [`charging`] — the percentile-threshold smart-charging policy.
//! * [`trace_ext`] — per-day intensity statistics feeding the threshold.
//! * [`sim`] — a time-stepping simulation of a device under the policy
//!   against a grid trace, reporting the daily carbon savings of Figure 4.
//!
//! # Example
//!
//! ```
//! use junkyard_battery::sim::SmartChargingConfig;
//! use junkyard_carbon::units::Watts;
//! use junkyard_devices::battery::BatterySpec;
//! use junkyard_grid::synth::CaisoSynthesizer;
//!
//! let trace = CaisoSynthesizer::april_2021_like(7).intensity_trace();
//! let outcome = SmartChargingConfig::new("Pixel 3A", Watts::new(1.54), BatterySpec::pixel_3a())
//!     .run(&trace);
//! println!("{outcome}");
//! assert!(outcome.median_savings_percent() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod charging;
pub mod sim;
pub mod state;
pub mod trace_ext;

pub use charging::{ChargeDecision, SmartChargePolicy};
pub use sim::{simulate_day, DayOutcome, DayRun, SmartChargingConfig, SmartChargingOutcome};
pub use state::BatteryState;
pub use trace_ext::DayStats;
