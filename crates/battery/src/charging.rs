//! The smart-charging heuristic (Section 4.3).
//!
//! Smart charging opportunistically charges a battery-backed device whenever
//! the grid's instantaneous carbon intensity falls below a threshold. The
//! threshold is the P-th percentile of the *previous day's* intensities,
//! where P is the fraction of time the device needs to spend charging to
//! sustain its load. Regardless of grid conditions, the device charges
//! whenever its battery drops below a safety floor (25 % in the paper) so it
//! always retains backup capacity.

use serde::{Deserialize, Serialize};

use junkyard_carbon::units::{CarbonIntensity, Watts};
use junkyard_devices::battery::BatterySpec;

use crate::trace_ext::DayStats;

/// Tunable parameters of the smart-charging policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmartChargePolicy {
    min_charge_fraction: f64,
    percentile_headroom: f64,
}

impl SmartChargePolicy {
    /// The paper's policy: charge below the 25 % floor unconditionally, and
    /// add a small headroom to the charging-time percentile so transient
    /// intensity spikes do not starve the battery.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            min_charge_fraction: 0.25,
            percentile_headroom: 1.25,
        }
    }

    /// Creates a policy with a custom battery floor and percentile headroom
    /// multiplier.
    ///
    /// # Panics
    ///
    /// Panics if the floor is outside `[0, 1]` or the headroom is below 1.
    #[must_use]
    pub fn new(min_charge_fraction: f64, percentile_headroom: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&min_charge_fraction),
            "battery floor must be in [0, 1]"
        );
        assert!(percentile_headroom >= 1.0, "headroom must be at least 1.0");
        Self {
            min_charge_fraction,
            percentile_headroom,
        }
    }

    /// The battery floor below which the device charges unconditionally.
    #[must_use]
    pub fn min_charge_fraction(self) -> f64 {
        self.min_charge_fraction
    }

    /// Fraction of time the device must spend plugged in to sustain
    /// `device_power` given the pack's charging rate: `P` in the paper's
    /// threshold rule.
    ///
    /// While plugged in the wall supplies both the device and the charger,
    /// so the battery *stores* `max_charge_power x charge_efficiency` (the
    /// charger rating is wall-side) and loses `device_power` during the
    /// rest of the cycle; a lossy pack therefore needs a proportionally
    /// larger charging share.
    #[must_use]
    pub fn required_charging_fraction(self, device_power: Watts, battery: BatterySpec) -> f64 {
        let stored = battery.max_charge_power().value() * battery.charge_efficiency();
        let load = device_power.value();
        if stored <= 0.0 {
            return 1.0;
        }
        (load / (load + stored)).clamp(0.0, 1.0)
    }

    /// The percentile (0–100) the threshold rule evaluates: the required
    /// charging fraction with headroom, clamped to `[1, 100]`.
    #[must_use]
    pub fn charging_percentile(self, device_power: Watts, battery: BatterySpec) -> f64 {
        let fraction =
            self.required_charging_fraction(device_power, battery) * self.percentile_headroom;
        (fraction * 100.0).clamp(1.0, 100.0)
    }

    /// The charging threshold for a day, given the previous day's intensity
    /// statistics: the `P`-th percentile (with headroom) of yesterday's
    /// intensities.
    #[must_use]
    pub fn threshold(
        self,
        previous_day: &DayStats,
        device_power: Watts,
        battery: BatterySpec,
    ) -> CarbonIntensity {
        previous_day.percentile(self.charging_percentile(device_power, battery))
    }

    /// Decides whether to charge right now.
    #[must_use]
    pub fn should_charge(
        self,
        state_of_charge: f64,
        current_intensity: CarbonIntensity,
        threshold: CarbonIntensity,
    ) -> ChargeDecision {
        if state_of_charge < self.min_charge_fraction {
            ChargeDecision::ChargeForBackup
        } else if state_of_charge < 1.0
            && current_intensity.grams_per_kwh() <= threshold.grams_per_kwh()
        {
            ChargeDecision::ChargeGreen
        } else {
            ChargeDecision::RunFromBattery
        }
    }
}

impl Default for SmartChargePolicy {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Outcome of one smart-charging decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChargeDecision {
    /// Plug in because the grid is currently green enough.
    ChargeGreen,
    /// Plug in because the battery fell below the backup floor.
    ChargeForBackup,
    /// Stay on battery.
    RunFromBattery,
}

impl ChargeDecision {
    /// `true` if the decision plugs the device into the wall.
    #[must_use]
    pub fn is_charging(self) -> bool {
        !matches!(self, ChargeDecision::RunFromBattery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use junkyard_carbon::units::TimeSpan;
    use junkyard_grid::trace::IntensityTrace;

    fn ramp_day() -> DayStats {
        let values = (0..288)
            .map(|i| CarbonIntensity::from_grams_per_kwh(100.0 + i as f64))
            .collect();
        DayStats::from_trace(&IntensityTrace::new(TimeSpan::from_minutes(5.0), values))
    }

    #[test]
    fn pixel_needs_to_charge_about_8_percent_of_the_time() {
        let policy = SmartChargePolicy::paper_default();
        let fraction = policy.required_charging_fraction(Watts::new(1.54), BatterySpec::pixel_3a());
        assert!(fraction > 0.06 && fraction < 0.10, "got {fraction}");
    }

    #[test]
    fn laptop_needs_a_larger_charging_share() {
        let policy = SmartChargePolicy::paper_default();
        let pixel = policy.required_charging_fraction(Watts::new(1.54), BatterySpec::pixel_3a());
        let laptop = policy
            .required_charging_fraction(Watts::new(11.47), BatterySpec::thinkpad_x1_carbon_g3());
        assert!(laptop > pixel);
    }

    #[test]
    fn lossy_packs_need_a_larger_charging_share() {
        // Regression: the fraction must size against the *stored* rate —
        // a 50%-efficient charger banks half the wall power, doubling the
        // effective plugged-in time the policy budgets for.
        let policy = SmartChargePolicy::paper_default();
        let load = Watts::new(1.54);
        let lossless = policy.required_charging_fraction(load, BatterySpec::pixel_3a());
        let lossy = policy
            .required_charging_fraction(load, BatterySpec::pixel_3a().with_charge_efficiency(0.5));
        assert!(lossy > lossless, "lossy {lossy} vs lossless {lossless}");
        let expected = 1.54 / (1.54 + 18.0 * 0.5);
        assert!((lossy - expected).abs() < 1e-12);
    }

    #[test]
    fn threshold_sits_near_the_clean_tail() {
        let policy = SmartChargePolicy::paper_default();
        let threshold = policy.threshold(&ramp_day(), Watts::new(1.54), BatterySpec::pixel_3a());
        // ~10th percentile of a 100..388 ramp is ~130.
        assert!(threshold.grams_per_kwh() < 160.0, "got {threshold}");
        assert!(threshold.grams_per_kwh() > 100.0);
    }

    #[test]
    fn decisions_follow_the_rules() {
        let policy = SmartChargePolicy::paper_default();
        let threshold = CarbonIntensity::from_grams_per_kwh(200.0);
        let clean = CarbonIntensity::from_grams_per_kwh(150.0);
        let dirty = CarbonIntensity::from_grams_per_kwh(300.0);
        assert_eq!(
            policy.should_charge(0.5, clean, threshold),
            ChargeDecision::ChargeGreen
        );
        assert_eq!(
            policy.should_charge(0.5, dirty, threshold),
            ChargeDecision::RunFromBattery
        );
        assert_eq!(
            policy.should_charge(0.10, dirty, threshold),
            ChargeDecision::ChargeForBackup
        );
        // A full battery never green-charges.
        assert_eq!(
            policy.should_charge(1.0, clean, threshold),
            ChargeDecision::RunFromBattery
        );
        assert!(ChargeDecision::ChargeGreen.is_charging());
        assert!(!ChargeDecision::RunFromBattery.is_charging());
    }

    #[test]
    #[should_panic(expected = "battery floor")]
    fn invalid_floor_panics() {
        let _ = SmartChargePolicy::new(1.5, 1.0);
    }
}
