//! Per-day intensity statistics used by the smart-charging threshold rule.

use serde::{Deserialize, Serialize};

use junkyard_carbon::convert::{count_f64, percentile_rank};
use junkyard_carbon::units::CarbonIntensity;
use junkyard_grid::trace::IntensityTrace;

/// Pre-sorted intensity statistics of one day of grid data.
///
/// The smart-charging threshold is a percentile of the previous day's
/// intensities; sorting once per day keeps the simulation linear.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayStats {
    sorted_grams_per_kwh: Vec<f64>,
}

impl DayStats {
    /// Builds the statistics from a (usually one-day) trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn from_trace(trace: &IntensityTrace) -> Self {
        assert!(!trace.is_empty(), "cannot summarise an empty trace");
        let mut sorted: Vec<f64> = trace.values().iter().map(|v| v.grams_per_kwh()).collect();
        sorted.sort_by(f64::total_cmp);
        Self {
            sorted_grams_per_kwh: sorted,
        }
    }

    /// Number of samples summarised.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted_grams_per_kwh.len()
    }

    /// `true` if no samples are present (never true for constructed stats).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted_grams_per_kwh.is_empty()
    }

    /// The `p`-th percentile (0–100) by linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> CarbonIntensity {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        sorted_percentile(&self.sorted_grams_per_kwh, p)
    }

    /// Mean intensity of the day.
    #[must_use]
    pub fn mean(&self) -> CarbonIntensity {
        let sum: f64 = self.sorted_grams_per_kwh.iter().sum();
        CarbonIntensity::from_grams_per_kwh(sum / count_f64(self.sorted_grams_per_kwh.len()))
    }
}

/// The `p`-th percentile (0–100) of an ascending gCO2e/kWh slice by linear
/// interpolation between order statistics — the one percentile definition
/// shared by [`DayStats::percentile`] and the warm-up prefix threshold in
/// the smart-charging simulation. Zero when the slice is empty (the
/// warm-up prior before any observation).
#[must_use]
pub fn sorted_percentile(sorted: &[f64], p: f64) -> CarbonIntensity {
    if sorted.is_empty() {
        return CarbonIntensity::ZERO;
    }
    let (lo, hi, frac) = percentile_rank(p, sorted.len());
    CarbonIntensity::from_grams_per_kwh(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use junkyard_carbon::units::TimeSpan;

    fn ramp() -> DayStats {
        let values = (0..=100)
            .map(|i| CarbonIntensity::from_grams_per_kwh(f64::from(i)))
            .collect();
        DayStats::from_trace(&IntensityTrace::new(TimeSpan::from_minutes(5.0), values))
    }

    #[test]
    fn percentiles_match_ramp() {
        let stats = ramp();
        assert!((stats.percentile(0.0).grams_per_kwh() - 0.0).abs() < 1e-9);
        assert!((stats.percentile(10.0).grams_per_kwh() - 10.0).abs() < 1e-9);
        assert!((stats.percentile(100.0).grams_per_kwh() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mean_matches_ramp() {
        assert!((ramp().mean().grams_per_kwh() - 50.0).abs() < 1e-9);
        assert_eq!(ramp().len(), 101);
        assert!(!ramp().is_empty());
    }

    #[test]
    fn unsorted_input_is_handled() {
        let values = vec![
            CarbonIntensity::from_grams_per_kwh(300.0),
            CarbonIntensity::from_grams_per_kwh(100.0),
            CarbonIntensity::from_grams_per_kwh(200.0),
        ];
        let stats = DayStats::from_trace(&IntensityTrace::new(TimeSpan::from_hours(8.0), values));
        assert!((stats.percentile(0.0).grams_per_kwh() - 100.0).abs() < 1e-9);
        assert!((stats.percentile(50.0).grams_per_kwh() - 200.0).abs() < 1e-9);
    }
}
