//! Mutable battery state: charge level, cycle wear and replacements.

use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::units::{GramsCo2e, Joules, TimeSpan, Watts};
use junkyard_devices::battery::BatterySpec;

/// The live state of one battery pack installed in a repurposed device.
///
/// Tracks the charge level, the cumulative *equivalent full cycles* the pack
/// has endured (Section 4.3 assumes a pack dies after ~2,500 of them) and how
/// many replacement packs have been fitted so far.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryState {
    spec: BatterySpec,
    charge: Joules,
    equivalent_cycles: f64,
    lifetime_cycles: f64,
    replacements: u32,
}

impl BatteryState {
    /// Creates a fully charged battery of the given specification.
    #[must_use]
    pub fn new_full(spec: BatterySpec) -> Self {
        Self {
            spec,
            charge: spec.energy(),
            equivalent_cycles: 0.0,
            lifetime_cycles: 0.0,
            replacements: 0,
        }
    }

    /// Creates a battery at the given state of charge (0–1).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` lies outside `[0, 1]`.
    #[must_use]
    pub fn new_at(spec: BatterySpec, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "state of charge must be in [0, 1]"
        );
        Self {
            spec,
            charge: spec.energy() * fraction,
            equivalent_cycles: 0.0,
            lifetime_cycles: 0.0,
            replacements: 0,
        }
    }

    /// The pack specification.
    #[must_use]
    pub fn spec(&self) -> BatterySpec {
        self.spec
    }

    /// Current stored energy.
    #[must_use]
    pub fn charge(&self) -> Joules {
        self.charge
    }

    /// Current state of charge as a fraction of capacity (0–1).
    #[must_use]
    pub fn state_of_charge(&self) -> f64 {
        self.charge.value() / self.spec.energy().value()
    }

    /// Cumulative equivalent full cycles of the *current* pack.
    #[must_use]
    pub fn equivalent_cycles(&self) -> f64 {
        self.equivalent_cycles
    }

    /// Cumulative equivalent full cycles across *every* pack this device
    /// has worn, including replaced ones (never reset by
    /// [`BatteryState::replace`]).
    #[must_use]
    pub fn lifetime_equivalent_cycles(&self) -> f64 {
        self.lifetime_cycles
    }

    /// Number of replacement packs fitted so far.
    #[must_use]
    pub fn replacements(&self) -> u32 {
        self.replacements
    }

    /// Embodied carbon of the replacement packs fitted so far (the original
    /// pack came with the reused device and is free).
    #[must_use]
    pub fn replacement_carbon(&self) -> GramsCo2e {
        self.spec.embodied() * f64::from(self.replacements)
    }

    /// Replacement embodied carbon amortised over the wear actually
    /// accrued: every equivalent cycle consumed brings the next (paid)
    /// replacement pack `1 / cycle_life` closer, so the steady-state
    /// replacement rate prices wear at `embodied / cycle_life` per cycle
    /// whatever the current pack's remaining headroom. Unlike
    /// [`BatteryState::replacement_carbon`] this is continuous in time —
    /// short simulations are charged their fair share of a pack instead of
    /// rounding to whole replacements.
    #[must_use]
    pub fn amortized_replacement_carbon(&self) -> GramsCo2e {
        self.spec.embodied() * (self.lifetime_cycles / f64::from(self.spec.cycle_life()))
    }

    /// `true` when the current pack has exceeded its cycle life and should
    /// be replaced.
    #[must_use]
    pub fn is_worn_out(&self) -> bool {
        self.equivalent_cycles >= f64::from(self.spec.cycle_life())
    }

    /// Fits a new pack: restores full charge, resets wear and counts the
    /// replacement.
    pub fn replace(&mut self) {
        self.charge = self.spec.energy();
        self.equivalent_cycles = 0.0;
        self.replacements += 1;
    }

    /// Drains the battery by the device's consumption over `dt`.
    /// Returns the energy that could *not* be supplied (shortfall) if the
    /// pack emptied during the interval.
    #[must_use]
    pub fn discharge(&mut self, power: Watts, dt: TimeSpan) -> Joules {
        let wanted = power * dt;
        let supplied = wanted.min(self.charge);
        self.charge = (self.charge - supplied).max(Joules::ZERO);
        let cycles = supplied.value() / self.spec.energy().value();
        self.equivalent_cycles += cycles;
        self.lifetime_cycles += cycles;
        wanted - supplied
    }

    /// Charges the battery from the wall for `dt` at up to the pack's
    /// maximum charging power (a wall-side rating). Returns the energy
    /// actually drawn from the wall for charging (zero once full); with a
    /// charge efficiency below 1.0 the wall draw exceeds the energy
    /// stored, so emissions accounted on the returned energy are charged
    /// on the wall side where they physically occur.
    #[must_use]
    pub fn charge_from_wall(&mut self, dt: TimeSpan) -> Joules {
        let efficiency = self.spec.charge_efficiency();
        let headroom = self.spec.energy() - self.charge;
        let offered = self.spec.max_charge_power() * dt * efficiency;
        let stored = offered.min(headroom).max(Joules::ZERO);
        self.charge += stored;
        stored / efficiency
    }
}

impl fmt::Display for BatteryState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0}% charged, {:.1} cycles, {} replacements",
            self.state_of_charge() * 100.0,
            self.equivalent_cycles,
            self.replacements
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pixel() -> BatteryState {
        BatteryState::new_full(BatterySpec::pixel_3a())
    }

    #[test]
    fn full_battery_starts_at_100_percent() {
        let b = pixel();
        assert!((b.state_of_charge() - 1.0).abs() < 1e-12);
        assert_eq!(b.replacements(), 0);
        assert!(!b.is_worn_out());
    }

    #[test]
    fn discharge_tracks_cycles() {
        let mut b = pixel();
        // Drain half the pack.
        let half = b.spec().energy().value() / 2.0;
        let shortfall = b.discharge(Watts::new(half), TimeSpan::from_secs(1.0));
        assert_eq!(shortfall, Joules::ZERO);
        assert!((b.state_of_charge() - 0.5).abs() < 1e-9);
        assert!((b.equivalent_cycles() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn discharge_reports_shortfall_when_empty() {
        let mut b = BatteryState::new_at(BatterySpec::pixel_3a(), 0.01);
        let shortfall = b.discharge(Watts::new(100.0), TimeSpan::from_hours(1.0));
        assert!(shortfall.value() > 0.0);
        assert_eq!(b.charge(), Joules::ZERO);
    }

    #[test]
    fn charging_stops_at_full() {
        let mut b = BatteryState::new_at(BatterySpec::pixel_3a(), 0.9);
        let drawn = b.charge_from_wall(TimeSpan::from_hours(2.0));
        assert!((b.state_of_charge() - 1.0).abs() < 1e-9);
        // Only the missing 10% was drawn, not two full hours at 18 W.
        assert!(drawn.value() < Watts::new(18.0).value() * 7200.0);
        let more = b.charge_from_wall(TimeSpan::from_minutes(5.0));
        assert_eq!(more, Joules::ZERO);
    }

    #[test]
    fn wear_out_and_replace() {
        let mut b = pixel();
        // Simulate 2,500 full cycles of wear.
        for _ in 0..2_500 {
            let _ = b.discharge(
                Watts::new(b.spec().energy().value()),
                TimeSpan::from_secs(1.0),
            );
            let _ = b.charge_from_wall(TimeSpan::from_hours(1.0));
        }
        assert!(b.is_worn_out());
        b.replace();
        assert!(!b.is_worn_out());
        assert_eq!(b.replacements(), 1);
        assert!((b.replacement_carbon().kilograms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lossy_charging_draws_more_from_the_wall_than_it_stores() {
        let spec = BatterySpec::pixel_3a().with_charge_efficiency(0.9);
        let mut lossy = BatteryState::new_at(spec, 0.0);
        let mut lossless = BatteryState::new_at(BatterySpec::pixel_3a(), 0.0);
        let dt = TimeSpan::from_minutes(10.0);
        let lossy_draw = lossy.charge_from_wall(dt);
        let lossless_draw = lossless.charge_from_wall(dt);
        // Same wall draw while charging flat out (the charger's rating is a
        // wall-side figure), but the lossy pack stores only 90% of it.
        assert!((lossy_draw.value() - lossless_draw.value()).abs() < 1e-9);
        assert!((lossy.charge().value() - 0.9 * lossy_draw.value()).abs() < 1e-6);
        assert!((lossless.charge().value() - lossless_draw.value()).abs() < 1e-6);
        // Filling the remaining headroom still bills the wall for the loss.
        let mut nearly_full = BatteryState::new_at(spec, 0.99);
        let headroom = spec.energy().value() * 0.01;
        let draw = nearly_full.charge_from_wall(TimeSpan::from_hours(2.0));
        assert!((draw.value() - headroom / 0.9).abs() < 1e-6);
    }

    #[test]
    fn lifetime_cycles_survive_replacement_and_price_wear() {
        let mut b = pixel();
        let full = b.spec().energy().value();
        for _ in 0..2_500 {
            let _ = b.discharge(Watts::new(full), TimeSpan::from_secs(1.0));
            let _ = b.charge_from_wall(TimeSpan::from_hours(1.0));
        }
        assert!(b.is_worn_out());
        b.replace();
        assert!((b.equivalent_cycles() - 0.0).abs() < 1e-9);
        assert!((b.lifetime_equivalent_cycles() - 2_500.0).abs() < 1e-6);
        // A whole cycle life of wear prices exactly one pack.
        assert!((b.amortized_replacement_carbon().kilograms() - 2.0).abs() < 1e-6);
        // Half a cycle life more wear adds half a pack's embodied carbon.
        for _ in 0..1_250 {
            let _ = b.discharge(Watts::new(full), TimeSpan::from_secs(1.0));
            let _ = b.charge_from_wall(TimeSpan::from_hours(1.0));
        }
        assert!((b.amortized_replacement_carbon().kilograms() - 3.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "state of charge")]
    fn invalid_state_of_charge_panics() {
        let _ = BatteryState::new_at(BatterySpec::pixel_3a(), 1.5);
    }

    #[test]
    fn display_shows_percentage() {
        assert!(pixel().to_string().contains('%'));
    }
}
