//! Mutable battery state: charge level, cycle wear and replacements.

use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::units::{GramsCo2e, Joules, TimeSpan, Watts};
use junkyard_devices::battery::BatterySpec;

/// The live state of one battery pack installed in a repurposed device.
///
/// Tracks the charge level, the cumulative *equivalent full cycles* the pack
/// has endured (Section 4.3 assumes a pack dies after ~2,500 of them) and how
/// many replacement packs have been fitted so far.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryState {
    spec: BatterySpec,
    charge: Joules,
    equivalent_cycles: f64,
    replacements: u32,
}

impl BatteryState {
    /// Creates a fully charged battery of the given specification.
    #[must_use]
    pub fn new_full(spec: BatterySpec) -> Self {
        Self {
            spec,
            charge: spec.energy(),
            equivalent_cycles: 0.0,
            replacements: 0,
        }
    }

    /// Creates a battery at the given state of charge (0–1).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` lies outside `[0, 1]`.
    #[must_use]
    pub fn new_at(spec: BatterySpec, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "state of charge must be in [0, 1]"
        );
        Self {
            spec,
            charge: spec.energy() * fraction,
            equivalent_cycles: 0.0,
            replacements: 0,
        }
    }

    /// The pack specification.
    #[must_use]
    pub fn spec(&self) -> BatterySpec {
        self.spec
    }

    /// Current stored energy.
    #[must_use]
    pub fn charge(&self) -> Joules {
        self.charge
    }

    /// Current state of charge as a fraction of capacity (0–1).
    #[must_use]
    pub fn state_of_charge(&self) -> f64 {
        self.charge.value() / self.spec.energy().value()
    }

    /// Cumulative equivalent full cycles of the *current* pack.
    #[must_use]
    pub fn equivalent_cycles(&self) -> f64 {
        self.equivalent_cycles
    }

    /// Number of replacement packs fitted so far.
    #[must_use]
    pub fn replacements(&self) -> u32 {
        self.replacements
    }

    /// Embodied carbon of the replacement packs fitted so far (the original
    /// pack came with the reused device and is free).
    #[must_use]
    pub fn replacement_carbon(&self) -> GramsCo2e {
        self.spec.embodied() * f64::from(self.replacements)
    }

    /// `true` when the current pack has exceeded its cycle life and should
    /// be replaced.
    #[must_use]
    pub fn is_worn_out(&self) -> bool {
        self.equivalent_cycles >= f64::from(self.spec.cycle_life())
    }

    /// Fits a new pack: restores full charge, resets wear and counts the
    /// replacement.
    pub fn replace(&mut self) {
        self.charge = self.spec.energy();
        self.equivalent_cycles = 0.0;
        self.replacements += 1;
    }

    /// Drains the battery by the device's consumption over `dt`.
    /// Returns the energy that could *not* be supplied (shortfall) if the
    /// pack emptied during the interval.
    #[must_use]
    pub fn discharge(&mut self, power: Watts, dt: TimeSpan) -> Joules {
        let wanted = power * dt;
        let supplied = wanted.min(self.charge);
        self.charge = (self.charge - supplied).max(Joules::ZERO);
        self.equivalent_cycles += supplied.value() / self.spec.energy().value();
        wanted - supplied
    }

    /// Charges the battery from the wall for `dt` at up to the pack's
    /// maximum charging power. Returns the energy actually drawn from the
    /// wall for charging (zero once full).
    #[must_use]
    pub fn charge_from_wall(&mut self, dt: TimeSpan) -> Joules {
        let headroom = self.spec.energy() - self.charge;
        let offered = self.spec.max_charge_power() * dt;
        let accepted = offered.min(headroom).max(Joules::ZERO);
        self.charge += accepted;
        accepted
    }
}

impl fmt::Display for BatteryState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0}% charged, {:.1} cycles, {} replacements",
            self.state_of_charge() * 100.0,
            self.equivalent_cycles,
            self.replacements
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pixel() -> BatteryState {
        BatteryState::new_full(BatterySpec::pixel_3a())
    }

    #[test]
    fn full_battery_starts_at_100_percent() {
        let b = pixel();
        assert!((b.state_of_charge() - 1.0).abs() < 1e-12);
        assert_eq!(b.replacements(), 0);
        assert!(!b.is_worn_out());
    }

    #[test]
    fn discharge_tracks_cycles() {
        let mut b = pixel();
        // Drain half the pack.
        let half = b.spec().energy().value() / 2.0;
        let shortfall = b.discharge(Watts::new(half), TimeSpan::from_secs(1.0));
        assert_eq!(shortfall, Joules::ZERO);
        assert!((b.state_of_charge() - 0.5).abs() < 1e-9);
        assert!((b.equivalent_cycles() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn discharge_reports_shortfall_when_empty() {
        let mut b = BatteryState::new_at(BatterySpec::pixel_3a(), 0.01);
        let shortfall = b.discharge(Watts::new(100.0), TimeSpan::from_hours(1.0));
        assert!(shortfall.value() > 0.0);
        assert_eq!(b.charge(), Joules::ZERO);
    }

    #[test]
    fn charging_stops_at_full() {
        let mut b = BatteryState::new_at(BatterySpec::pixel_3a(), 0.9);
        let drawn = b.charge_from_wall(TimeSpan::from_hours(2.0));
        assert!((b.state_of_charge() - 1.0).abs() < 1e-9);
        // Only the missing 10% was drawn, not two full hours at 18 W.
        assert!(drawn.value() < Watts::new(18.0).value() * 7200.0);
        let more = b.charge_from_wall(TimeSpan::from_minutes(5.0));
        assert_eq!(more, Joules::ZERO);
    }

    #[test]
    fn wear_out_and_replace() {
        let mut b = pixel();
        // Simulate 2,500 full cycles of wear.
        for _ in 0..2_500 {
            let _ = b.discharge(
                Watts::new(b.spec().energy().value()),
                TimeSpan::from_secs(1.0),
            );
            let _ = b.charge_from_wall(TimeSpan::from_hours(1.0));
        }
        assert!(b.is_worn_out());
        b.replace();
        assert!(!b.is_worn_out());
        assert_eq!(b.replacements(), 1);
        assert!((b.replacement_carbon().kilograms() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "state of charge")]
    fn invalid_state_of_charge_panics() {
        let _ = BatteryState::new_at(BatterySpec::pixel_3a(), 1.5);
    }

    #[test]
    fn display_shows_percentage() {
        assert!(pixel().to_string().contains('%'));
    }
}
