//! The Section 6 evaluation: DeathStarBench workloads on the junkyard
//! cloudlet versus EC2 instances (Figures 7 and 8) and the carbon intensity
//! per request (Figure 9).

use junkyard_carbon::cci::{CciCalculator, CciError};
use junkyard_carbon::embodied::EmbodiedCarbon;
use junkyard_carbon::ops::{OpUnit, Throughput};
use junkyard_carbon::units::{CarbonIntensity, GramsCo2e, TimeSpan, Watts};
use junkyard_devices::catalog::{self, C5Size};
use junkyard_microsim::app::{
    hotel_reservation, social_network, Application, SN_COMPOSE_POST, SN_READ_HOME_TIMELINE,
};
use junkyard_microsim::metrics::RunMetrics;
use junkyard_microsim::sweep::{run_figure8, LatencyCurve, SweepConfig};

use crate::deployments::{build_deployment, DeploymentError, DeploymentKind};
use crate::report::{Chart, SeriesLine};

/// The three end-to-end workloads evaluated in Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CloudletWorkload {
    /// SocialNetwork compose-post (write-only).
    SocialNetworkWrite,
    /// SocialNetwork read-home-timeline (read-only).
    SocialNetworkRead,
    /// HotelReservation with its mixed request generator.
    HotelReservation,
}

impl CloudletWorkload {
    /// All three workloads, in the paper's figure order.
    pub const ALL: [CloudletWorkload; 3] = [
        CloudletWorkload::SocialNetworkWrite,
        CloudletWorkload::SocialNetworkRead,
        CloudletWorkload::HotelReservation,
    ];

    /// Display name used in figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CloudletWorkload::SocialNetworkWrite => "SocialNetwork-Write",
            CloudletWorkload::SocialNetworkRead => "SocialNetwork-Read",
            CloudletWorkload::HotelReservation => "HotelReservation",
        }
    }

    /// The application graph the workload runs on.
    #[must_use]
    pub fn application(self) -> Application {
        match self {
            CloudletWorkload::SocialNetworkWrite | CloudletWorkload::SocialNetworkRead => {
                social_network()
            }
            CloudletWorkload::HotelReservation => hotel_reservation(),
        }
    }

    /// The request-type restriction, if the workload is single-type.
    #[must_use]
    pub fn request_type(self) -> Option<&'static str> {
        match self {
            CloudletWorkload::SocialNetworkWrite => Some(SN_COMPOSE_POST),
            CloudletWorkload::SocialNetworkRead => Some(SN_READ_HOME_TIMELINE),
            CloudletWorkload::HotelReservation => None,
        }
    }

    /// The sustainable throughput the paper reports for the phone cloudlet
    /// (used by the Figure 9 carbon-per-request analysis).
    #[must_use]
    pub fn paper_phone_qps(self) -> f64 {
        match self {
            CloudletWorkload::SocialNetworkWrite => 3_000.0,
            CloudletWorkload::SocialNetworkRead => 3_500.0,
            CloudletWorkload::HotelReservation => 4_000.0,
        }
    }

    /// The sustainable throughput the paper reports for the c5.9xlarge.
    #[must_use]
    pub fn paper_c5_9xlarge_qps(self) -> f64 {
        match self {
            CloudletWorkload::SocialNetworkWrite => 2_000.0,
            CloudletWorkload::SocialNetworkRead => 4_500.0,
            CloudletWorkload::HotelReservation => 4_000.0,
        }
    }
}

/// Result of the Figure 7 study for one workload: one latency curve per
/// deployment.
#[derive(Debug, Clone)]
pub struct Figure7Result {
    workload: CloudletWorkload,
    curves: Vec<LatencyCurve>,
}

impl Figure7Result {
    /// The workload the curves belong to.
    #[must_use]
    pub fn workload(&self) -> CloudletWorkload {
        self.workload
    }

    /// The per-deployment latency curves.
    #[must_use]
    pub fn curves(&self) -> &[LatencyCurve] {
        &self.curves
    }

    /// The curve for one deployment.
    #[must_use]
    pub fn curve(&self, label: &str) -> Option<&LatencyCurve> {
        self.curves.iter().find(|c| c.label() == label)
    }

    /// Maximum sustainable throughput per deployment under the paper's
    /// informal "before the latencies shoot up" criterion (median ≤ 100 ms,
    /// tail ≤ 200 ms).
    #[must_use]
    pub fn saturation_points(&self) -> Vec<(String, Option<f64>)> {
        self.curves
            .iter()
            .map(|c| (c.label().to_owned(), c.max_sustainable_qps(100.0, 200.0)))
            .collect()
    }

    /// Renders the median or tail latency chart.
    #[must_use]
    pub fn chart(&self, tail: bool) -> Chart {
        let which = if tail { "tail (90th)" } else { "median" };
        let mut chart = Chart::new(
            format!("{} — {which} latency", self.workload.label()),
            "throughput (requests/sec)",
            "latency (ms)",
        );
        for curve in &self.curves {
            chart.push_line(SeriesLine::new(
                curve.label(),
                curve
                    .points()
                    .iter()
                    .map(|p| (p.qps(), if tail { p.tail_ms() } else { p.median_ms() }))
                    .collect(),
            ));
        }
        chart
    }
}

/// Configuration for the Figure 7 sweeps.
#[derive(Debug, Clone)]
pub struct Figure7Study {
    qps_points: Vec<f64>,
    duration_s: f64,
    warmup_s: f64,
    seed: u64,
}

impl Figure7Study {
    /// The paper-scale sweep: 500–5,500 QPS in 500 QPS steps, 10-second
    /// measurements after a 2-second warm-up.
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            qps_points: (1..=11).map(|i| f64::from(i) * 500.0).collect(),
            duration_s: 10.0,
            warmup_s: 2.0,
            seed: 42,
        }
    }

    /// A reduced sweep for quick runs and tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            qps_points: vec![500.0, 2_000.0, 3_500.0, 5_000.0],
            duration_s: 3.0,
            warmup_s: 1.0,
            seed: 42,
        }
    }

    /// Overrides the offered-load points.
    ///
    /// # Panics
    ///
    /// Panics if no points are given.
    #[must_use]
    pub fn qps_points(mut self, points: Vec<f64>) -> Self {
        assert!(!points.is_empty(), "need at least one load point");
        self.qps_points = points;
        self
    }

    /// Runs the study for one workload across all Figure 7 deployments.
    ///
    /// The deployments are independent simulations, so they are fanned out
    /// across scoped worker threads (each sweep additionally parallelises
    /// its load points); every worker writes into its own pre-assigned
    /// slot, so the curve order matches `DeploymentKind::figure7_set()`
    /// exactly as in a serial run.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] if a deployment cannot be built or run;
    /// with multiple failures the earliest deployment's error wins.
    pub fn run(&self, workload: CloudletWorkload) -> Result<Figure7Result, DeploymentError> {
        let app = workload.application();
        let kinds = DeploymentKind::figure7_set();
        // The outer fan-out already occupies one core per deployment, so
        // cap each inner sweep's worker pool to its share of the machine —
        // otherwise 4 deployments x available_parallelism sweep workers
        // oversubscribe the CPU.
        let sweep_workers = std::thread::available_parallelism()
            .map_or(1, std::num::NonZero::get)
            .div_ceil(kinds.len())
            .max(1);
        let mut slots: Vec<Option<Result<LatencyCurve, DeploymentError>>> =
            kinds.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            for (slot, kind) in slots.iter_mut().zip(&kinds) {
                let app = &app;
                scope.spawn(move || {
                    *slot = Some(self.run_deployment(
                        *kind,
                        app,
                        workload.request_type(),
                        sweep_workers,
                    ));
                });
            }
        });
        let mut curves = Vec::with_capacity(kinds.len());
        for slot in slots {
            curves.push(slot.expect("every deployment slot is filled by its worker")?);
        }
        Ok(Figure7Result { workload, curves })
    }

    /// Builds and sweeps one deployment (one worker's share of the study).
    fn run_deployment(
        &self,
        kind: DeploymentKind,
        app: &Application,
        request_type: Option<&str>,
        sweep_workers: usize,
    ) -> Result<LatencyCurve, DeploymentError> {
        let sim = build_deployment(kind, app, 11)?;
        let mut config = SweepConfig::new(self.qps_points.clone(), self.duration_s, self.warmup_s)
            .seed(self.seed)
            .parallelism(sweep_workers);
        if let Some(rt) = request_type {
            config = config.request_type(rt);
        }
        config.run(kind.label(), &sim).map_err(DeploymentError::Sim)
    }
}

/// Runs the Figure 8 scenario (idle / read / idle / write / idle) on the
/// phone cloudlet and returns the run metrics with per-phone utilisation.
///
/// The paper uses 120-second phases at 3,000 QPS of reads and 3,500 QPS of
/// writes; smaller values run proportionally faster.
///
/// # Errors
///
/// Returns [`DeploymentError`] if the deployment cannot be built or run.
pub fn figure8_utilization(
    read_qps: f64,
    write_qps: f64,
    phase_seconds: f64,
    seed: u64,
) -> Result<RunMetrics, DeploymentError> {
    let app = social_network();
    let sim = build_deployment(DeploymentKind::PhoneCloudlet, &app, 11)?;
    run_figure8(
        &sim,
        SN_READ_HOME_TIMELINE,
        SN_COMPOSE_POST,
        read_qps,
        write_qps,
        phase_seconds,
        seed,
    )
    .map_err(DeploymentError::Sim)
}

/// Carbon accounting for the ten-phone cloudlet serving requests
/// continuously (Section 6.3): ~1.7 W per phone plus one server fan, with
/// battery packs replaced every ~2.1 years.
#[must_use]
pub fn phone_cloudlet_request_calculator(qps: f64, grid: CarbonIntensity) -> CciCalculator {
    let pixel = catalog::pixel_3a();
    let battery = pixel.battery().expect("the Pixel has a battery");
    let serving_power_per_phone = Watts::new(1.7);
    let fan = Watts::new(4.0);
    let cluster_power = serving_power_per_phone * 10.0 + fan;
    CciCalculator::new(OpUnit::Request)
        .embodied(EmbodiedCarbon::reused().with_item(
            "server fan",
            GramsCo2e::from_kilograms(9.3),
            1.0,
        ))
        .average_power(cluster_power)
        .grid(grid)
        .throughput(Throughput::per_second(qps, OpUnit::Request))
        .battery_replacement(
            battery.embodied() * 10.0,
            battery.projected_lifetime(serving_power_per_phone),
        )
}

/// Carbon accounting for a c5.9xlarge serving requests continuously,
/// using the public estimates the paper cites (140.7 W at the ~10–30 %
/// utilisation observed, 1,344 kgCO2e embodied).
#[must_use]
pub fn c5_9xlarge_request_calculator(qps: f64, grid: CarbonIntensity) -> CciCalculator {
    let c5 = catalog::c5_instance(C5Size::XLarge9);
    CciCalculator::new(OpUnit::Request)
        .embodied(EmbodiedCarbon::manufactured(c5.name(), c5.embodied()))
        .average_power(Watts::new(140.7))
        .grid(grid)
        .throughput(Throughput::per_second(qps, OpUnit::Request))
}

/// The Figure 9 study: CCI per request over the deployment lifetime for the
/// phone cloudlet and the c5.9xlarge, per workload.
///
/// `months` is the lifetime axis; throughputs default to the paper's
/// measured saturation points.
///
/// # Errors
///
/// Propagates CCI errors.
pub fn figure9_chart(workload: CloudletWorkload, months: &[f64]) -> Result<Chart, CciError> {
    let grid = CarbonIntensity::from_grams_per_kwh(257.0);
    let phones = phone_cloudlet_request_calculator(workload.paper_phone_qps(), grid);
    let server = c5_9xlarge_request_calculator(workload.paper_c5_9xlarge_qps(), grid);
    let mut chart = Chart::new(
        format!("{} — carbon per request", workload.label()),
        "lifetime (months)",
        "gCO2e/request",
    );
    for (label, calc) in [("Phones", &phones), ("Server (c5.9xlarge)", &server)] {
        let mut points = Vec::with_capacity(months.len());
        for m in months {
            points.push((*m, calc.cci_at(TimeSpan::from_months(*m))?.grams_per_op()));
        }
        chart.push_line(SeriesLine::new(label, points));
    }
    Ok(chart)
}

/// Relative carbon efficiency of the phone cloudlet over the c5.9xlarge at a
/// given lifetime (the paper reports 18.9x / 9.8x / 12.6x after three
/// years for write / read / hotel).
///
/// # Errors
///
/// Propagates CCI errors.
pub fn figure9_advantage(workload: CloudletWorkload, lifetime: TimeSpan) -> Result<f64, CciError> {
    let grid = CarbonIntensity::from_grams_per_kwh(257.0);
    let phones =
        phone_cloudlet_request_calculator(workload.paper_phone_qps(), grid).cci_at(lifetime)?;
    let server =
        c5_9xlarge_request_calculator(workload.paper_c5_9xlarge_qps(), grid).cci_at(lifetime)?;
    Ok(server.grams_per_op() / phones.grams_per_op())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_advantages_match_paper_band() {
        let three_years = TimeSpan::from_years(3.0);
        let write = figure9_advantage(CloudletWorkload::SocialNetworkWrite, three_years).unwrap();
        let read = figure9_advantage(CloudletWorkload::SocialNetworkRead, three_years).unwrap();
        let hotel = figure9_advantage(CloudletWorkload::HotelReservation, three_years).unwrap();
        // Paper: 18.9x, 9.8x and 12.6x respectively.
        assert!((10.0..=30.0).contains(&write), "write {write}");
        assert!((5.0..=16.0).contains(&read), "read {read}");
        assert!((7.0..=20.0).contains(&hotel), "hotel {hotel}");
        assert!(write > hotel && hotel > read);
    }

    #[test]
    fn figure9_chart_has_both_lines_and_phones_win() {
        let months: Vec<f64> = (6..=54).step_by(6).map(|m| m as f64).collect();
        let chart = figure9_chart(CloudletWorkload::HotelReservation, &months).unwrap();
        let phones = chart.line("Phones").unwrap().final_value().unwrap();
        let server = chart
            .line("Server (c5.9xlarge)")
            .unwrap()
            .final_value()
            .unwrap();
        assert!(phones < server);
    }

    #[test]
    fn figure7_quick_sweep_reproduces_the_write_ordering() {
        // Reduced sweep: the phone cloudlet should sustain more compose-post
        // throughput than the client-throttled c5 instances.
        let result = Figure7Study::quick()
            .qps_points(vec![1_500.0, 2_600.0, 3_200.0])
            .run(CloudletWorkload::SocialNetworkWrite)
            .unwrap();
        let saturation = result.saturation_points();
        let get = |label: &str| {
            saturation
                .iter()
                .find(|(l, _)| l == label)
                .and_then(|(_, q)| *q)
                .unwrap_or(0.0)
        };
        assert!(
            get("Phones") > get("c5.12xlarge"),
            "phones {:?} vs 12xl {:?}",
            get("Phones"),
            get("c5.12xlarge")
        );
        let chart = result.chart(false);
        assert_eq!(chart.lines().len(), 4);
    }

    #[test]
    fn figure8_shows_load_dependent_utilisation() {
        let metrics = figure8_utilization(500.0, 600.0, 3.0, 7).unwrap();
        assert_eq!(metrics.node_utilization().len(), 10);
        let mean_all = |from: usize, to: usize| -> f64 {
            metrics
                .node_utilization()
                .iter()
                .map(|u| u.mean_percent_between(from, to))
                .sum::<f64>()
                / 10.0
        };
        let idle = mean_all(0, 3);
        let busy = mean_all(4, 6);
        assert!(busy > idle);
    }

    #[test]
    fn workload_metadata_is_consistent() {
        for workload in CloudletWorkload::ALL {
            assert!(workload.paper_phone_qps() > 0.0);
            assert!(workload.paper_c5_9xlarge_qps() > 0.0);
            assert!(!workload.label().is_empty());
        }
        assert!(CloudletWorkload::HotelReservation.request_type().is_none());
        assert_eq!(
            CloudletWorkload::SocialNetworkWrite.request_type(),
            Some(SN_COMPOSE_POST)
        );
    }
}
