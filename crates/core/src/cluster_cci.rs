//! Cluster-level lifetime CCI (Figure 5) and the reuse-vs-new crossover
//! analysis of Section 5.2.

use junkyard_carbon::cci::{crossover_months, CciCalculator, CciError};
use junkyard_carbon::operational::NetworkProfile;
use junkyard_carbon::units::{DataRate, TimeSpan};
use junkyard_cluster::cloudlet::CloudletDesign;
use junkyard_cluster::presets;
use junkyard_devices::benchmark::Benchmark;
use junkyard_devices::power::LoadProfile;
use junkyard_grid::regime::PowerRegime;

use crate::report::{Chart, SeriesLine};
use crate::single_device::lifetime_months_axis;

/// Assembles the CCI calculator for a whole cloudlet under a power regime.
///
/// * Devices are reused unless the design says otherwise; peripherals always
///   pay their embodied carbon (Eq. 12).
/// * The cloudlet's networking term uses the paper's 0.1 Gbps at the WiFi
///   (5 µJ/byte) or wired energy intensity.
/// * Smart charging scales the operational terms and schedules battery
///   replacements; the solar regime strips both (Section 5.2).
///
/// # Panics
///
/// Panics if the cloudlet's device has no score for `benchmark`.
#[must_use]
pub fn cloudlet_calculator(
    cloudlet: &CloudletDesign,
    benchmark: Benchmark,
    regime: PowerRegime,
) -> CciCalculator {
    let profile = LoadProfile::light_medium();
    let effective = if regime.supports_smart_charging() {
        cloudlet.clone()
    } else {
        cloudlet.without_smart_charging()
    };
    let throughput = effective
        .aggregate_throughput(benchmark, &profile)
        .unwrap_or_else(|| panic!("{} has no {benchmark} score", effective.device().name()));
    let network = if effective.network().needs_cellular() {
        NetworkProfile::wifi(DataRate::from_gigabits_per_sec(0.1))
    } else {
        NetworkProfile::new(
            DataRate::from_gigabits_per_sec(0.1),
            junkyard_carbon::units::EnergyPerByte::from_microjoules_per_byte(2.0),
        )
    };
    let mut calc = CciCalculator::new(benchmark.op_unit())
        .embodied(effective.embodied_bill())
        .average_power(effective.average_power(&profile))
        .grid(regime.carbon_intensity())
        .network(network)
        .throughput(throughput)
        .operational_scale(effective.operational_scale());
    if regime.supports_smart_charging() {
        if let Some((per_round, pack_lifetime)) = effective.battery_schedule(&profile) {
            calc = calc.battery_replacement(per_round, pack_lifetime);
        }
    }
    calc
}

/// The Figure 5 study: lifetime CCI of the five Section 5.2 cloudlets for
/// one benchmark under one power regime.
#[derive(Debug, Clone)]
pub struct ClusterCciStudy {
    benchmark: Benchmark,
    regime: PowerRegime,
    months: Vec<f64>,
}

impl ClusterCciStudy {
    /// Creates the study.
    #[must_use]
    pub fn new(benchmark: Benchmark, regime: PowerRegime) -> Self {
        Self {
            benchmark,
            regime,
            months: lifetime_months_axis(),
        }
    }

    /// Overrides the lifetime axis.
    ///
    /// # Panics
    ///
    /// Panics if the axis is empty.
    #[must_use]
    pub fn months(mut self, months: Vec<f64>) -> Self {
        assert!(!months.is_empty(), "the lifetime axis cannot be empty");
        self.months = months;
        self
    }

    /// Runs the study over a set of cloudlet designs.
    ///
    /// # Errors
    ///
    /// Propagates CCI errors (an empty axis cannot occur; a cloudlet with
    /// zero lifetime work would).
    pub fn run(&self, cloudlets: &[CloudletDesign]) -> Result<Chart, CciError> {
        let mut chart = Chart::new(
            format!("Cluster CCI — {} ({})", self.benchmark, self.regime),
            "lifetime (months)",
            format!("mgCO2e/{}", self.benchmark.op_unit()),
        );
        for cloudlet in cloudlets {
            let calc = cloudlet_calculator(cloudlet, self.benchmark, self.regime);
            let mut points = Vec::with_capacity(self.months.len());
            for m in &self.months {
                let cci = calc.cci_at(TimeSpan::from_months(*m))?;
                points.push((*m, cci.milligrams_per_op()));
            }
            chart.push_line(SeriesLine::new(cloudlet.name(), points));
        }
        Ok(chart)
    }

    /// Runs the study on the paper's five cloudlets.
    ///
    /// # Errors
    ///
    /// Propagates CCI errors.
    pub fn run_paper_cloudlets(&self) -> Result<Chart, CciError> {
        self.run(&presets::section_5_2_cloudlets())
    }
}

/// Section 5.2's crossover observation: the lifetime (in months) beyond
/// which running the power-hungry Nexus 4 cluster stops beating
/// manufacturing a new PowerEdge, per benchmark (≈45 months for SGEMM; never
/// for the Pixel cluster).
///
/// # Errors
///
/// Propagates CCI configuration errors.
pub fn nexus4_vs_new_server_crossover(
    benchmark: Benchmark,
    regime: PowerRegime,
    max_months: u32,
) -> Result<Option<u32>, CciError> {
    let nexus = cloudlet_calculator(&presets::nexus4_cloudlet(), benchmark, regime);
    let server = cloudlet_calculator(&presets::poweredge_baseline(), benchmark, regime);
    crossover_months(&nexus, &server, max_months)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reused_cloudlets_beat_the_new_server_early_on() {
        let chart = ClusterCciStudy::new(Benchmark::PdfRender, PowerRegime::CaliforniaMix)
            .months((1..=24).map(f64::from).collect())
            .run_paper_cloudlets()
            .unwrap();
        let server_at_12 = chart.line("PowerEdge R740").unwrap().points()[11].1;
        for label in ["ThinkPad x17", "Pixel 3A x54", "Nexus 4 x256"] {
            let at_12 = chart.line(label).unwrap().points()[11].1;
            assert!(
                at_12 < server_at_12,
                "{label}: {at_12} vs server {server_at_12}"
            );
        }
    }

    #[test]
    fn pixel_cluster_beats_the_server_at_every_lifetime() {
        // Section 5.2: "The more efficient Pixel 3A smartphone cluster beats
        // out the server every time."
        let chart = ClusterCciStudy::new(Benchmark::Dijkstra, PowerRegime::CaliforniaMix)
            .run_paper_cloudlets()
            .unwrap();
        let pixel = chart.line("Pixel 3A x54").unwrap();
        let server = chart.line("PowerEdge R740").unwrap();
        for (p, s) in pixel.points().iter().zip(server.points()) {
            assert!(p.1 < s.1, "month {}: {} vs {}", p.0, p.1, s.1);
        }
    }

    #[test]
    fn nexus4_sgemm_crossover_happens_within_the_study_horizon() {
        // The paper finds the Nexus 4 cluster is more carbon efficient than a
        // new server for lifetimes under ~45 months on SGEMM.
        let crossover =
            nexus4_vs_new_server_crossover(Benchmark::Sgemm, PowerRegime::CaliforniaMix, 120)
                .unwrap();
        let months = crossover.expect("a crossover should exist for SGEMM");
        assert!(
            (24..=80).contains(&months),
            "crossover at {months} months, expected in the vicinity of 45"
        );
    }

    #[test]
    fn solar_regime_lowers_cci_for_everyone() {
        let ca = ClusterCciStudy::new(Benchmark::Dijkstra, PowerRegime::CaliforniaMix)
            .months(vec![36.0])
            .run_paper_cloudlets()
            .unwrap();
        let solar = ClusterCciStudy::new(Benchmark::Dijkstra, PowerRegime::AlwaysSolar)
            .months(vec![36.0])
            .run_paper_cloudlets()
            .unwrap();
        for line in ca.lines() {
            let ca_value = line.final_value().unwrap();
            let solar_value = solar.line(line.label()).unwrap().final_value().unwrap();
            assert!(solar_value < ca_value, "{}", line.label());
        }
    }
}
