//! The resilience study: what a "nine" of availability costs in carbon.
//!
//! The two-region CAISO cloudlet setup from the lifecycle study is run
//! under an identical deterministic fault plan — regional grid outages,
//! firmware-batch failures and thermal mass-shutdowns — with a stale
//! health view (the router learns about dead capacity one detection lag
//! late). Five strategies face the same chaos:
//!
//! 1. **fault-free baseline** — the fault machinery disabled; must be
//!    bit-identical to a run that never constructed it (and is checked).
//! 2. **unmitigated** — faults land, nothing recovers; the floor for
//!    availability and the floor for carbon.
//! 3. **N+1 overprovisioning** — spare Pixel slots per cloudlet buy
//!    headroom with embodied + idle carbon paid up front, faults or not.
//! 4. **retry-to-fallback** — bounded retries with a hedged fallback to
//!    a leased datacenter kept on standby; every retry and hedge is
//!    charged its network and marginal compute carbon, and the standby
//!    pays idle + amortised embodied all horizon long.
//! 5. **degrade-in-place** — reroute to surviving capacity, shed
//!    low-priority work, brown out the latency target; no new hardware,
//!    availability bought with degraded service instead of carbon.
//!
//! The output orders the strategies on the availability/carbon plane so
//! the gCO2e/request price of each additional nine is explicit.

use junkyard_fleet::faults::{DegradationLadder, FaultConfig, ResiliencePolicy, RetryPolicy};
use junkyard_fleet::lifecycle::{LifecycleConfig, LifecycleResult, LifecycleSim};
use junkyard_fleet::routing::RoutingPolicy;
use junkyard_fleet::schedule::DiurnalSchedule;

use crate::deployments::DeploymentError;
use crate::lifecycle_study::LifecycleStudy;
use crate::report::Table;

/// Nines of availability: `-log10(1 - availability)`, capped at nine
/// nines so a perfect run stays finite (and JSON-representable).
#[must_use]
pub fn availability_nines(availability: f64) -> f64 {
    if availability >= 1.0 - 1e-9 {
        9.0
    } else {
        -(1.0 - availability).log10()
    }
}

/// Configuration of the fault-injection resilience study.
#[derive(Debug, Clone)]
pub struct ResilienceStudy {
    study: LifecycleStudy,
    horizon_days: usize,
    windows_per_day: usize,
    sim_slice_s: f64,
    warmup_s: f64,
    seed: u64,
    base_qps: f64,
    parallelism: Option<usize>,
    outage_mean_days: f64,
    outage_windows: usize,
    firmware_mean_days: f64,
    firmware_fraction: f64,
    firmware_windows: usize,
    thermal_mean_days: f64,
    thermal_windows: usize,
    detection_lag_windows: usize,
    spare_pixels: usize,
    max_retries: usize,
    low_priority_fraction: f64,
    brownout_stretch: f64,
}

impl ResilienceStudy {
    /// The full-scale study: one year, hourly routing windows, monthly
    /// regional outages (half a day each), firmware batches knocking out
    /// 40% of a cohort for two days every ~45 days, thermal shutdowns
    /// every two months, and a two-hour detection lag.
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            study: LifecycleStudy::paper_scale(),
            horizon_days: 365,
            windows_per_day: 24,
            sim_slice_s: 2.0,
            warmup_s: 1.0,
            seed: 42,
            base_qps: 1_600.0,
            parallelism: None,
            outage_mean_days: 30.0,
            outage_windows: 12,
            firmware_mean_days: 45.0,
            firmware_fraction: 0.4,
            firmware_windows: 48,
            thermal_mean_days: 60.0,
            thermal_windows: 6,
            detection_lag_windows: 2,
            spare_pixels: 2,
            max_retries: 3,
            low_priority_fraction: 0.5,
            brownout_stretch: 1.25,
        }
    }

    /// A reduced study for quick runs and CI: eight weeks, four 6-hour
    /// windows per day, faults aggressive enough to strike several times
    /// within the short horizon, a one-window detection lag.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            study: LifecycleStudy::quick(),
            horizon_days: 56,
            windows_per_day: 4,
            sim_slice_s: 1.0,
            warmup_s: 1.0,
            seed: 42,
            base_qps: 1_600.0,
            parallelism: None,
            outage_mean_days: 14.0,
            outage_windows: 4,
            firmware_mean_days: 18.0,
            firmware_fraction: 0.5,
            firmware_windows: 8,
            thermal_mean_days: 21.0,
            thermal_windows: 2,
            detection_lag_windows: 1,
            spare_pixels: 2,
            max_retries: 3,
            low_priority_fraction: 0.5,
            brownout_stretch: 1.25,
        }
    }

    /// Overrides the simulated horizon in days.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn horizon_days(mut self, days: usize) -> Self {
        assert!(days > 0, "the study needs at least one day");
        self.horizon_days = days;
        self
    }

    /// Overrides the peak-hour fleet demand, requests per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative.
    #[must_use]
    pub fn base_qps(mut self, qps: f64) -> Self {
        assert!(qps >= 0.0, "offered load cannot be negative");
        self.base_qps = qps;
        self
    }

    /// Overrides the random seed (grid traces, workloads and the fault
    /// plan all derive from it deterministically).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.study = self.study.seed(seed);
        self
    }

    /// Caps the worker threads; `1` forces serial runs.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn parallelism(mut self, workers: usize) -> Self {
        assert!(workers > 0, "the study needs at least one worker");
        self.parallelism = Some(workers);
        self
    }

    /// Overrides the routing windows per day.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn windows_per_day(mut self, windows_per_day: usize) -> Self {
        assert!(
            windows_per_day > 0,
            "the study needs at least one window per day"
        );
        self.windows_per_day = windows_per_day;
        self
    }

    /// The shared fault plan configuration every faulty strategy faces.
    #[must_use]
    pub fn fault_config(&self) -> FaultConfig {
        FaultConfig::disabled()
            .grid_outages(self.outage_mean_days, self.outage_windows)
            .firmware_batches(
                self.firmware_mean_days,
                self.firmware_fraction,
                self.firmware_windows,
            )
            .thermal_shutdowns(self.thermal_mean_days, self.thermal_windows)
    }

    fn config(&self) -> LifecycleConfig {
        let mut config = LifecycleConfig::new(1)
            .horizon_days(self.horizon_days)
            .windows_per_day(self.windows_per_day)
            .sim_slice_s(self.sim_slice_s)
            .warmup_s(self.warmup_s)
            .seed(self.seed);
        if let Some(workers) = self.parallelism {
            config = config.parallelism(workers);
        }
        config
    }

    /// The two-cloudlet fleet (plus an optional datacenter standby as the
    /// last site) under carbon-aware routing, with `spares` extra Pixel
    /// slots per cloudlet.
    fn build_fleet(
        &self,
        spares: usize,
        with_standby: bool,
        faults: Option<FaultConfig>,
        policy: Option<ResiliencePolicy>,
    ) -> Result<LifecycleSim, DeploymentError> {
        let factory = self.study.clone().spare_pixels(spares);
        let (west, east) = factory.two_region_traces();
        let mut sites = vec![
            factory.phone_site("cloudlet-west", west)?,
            factory.phone_site("cloudlet-east", east)?,
        ];
        if with_standby {
            sites.push(factory.datacenter_site("datacenter-standby")?);
        }
        let mut sim = LifecycleSim::new(
            sites,
            DiurnalSchedule::office_day(self.base_qps),
            RoutingPolicy::carbon_aware(),
            self.config(),
        );
        if let Some(faults) = faults {
            sim = sim.with_faults(faults);
        }
        if let Some(policy) = policy {
            sim = sim.with_resilience(policy);
        }
        Ok(sim)
    }

    fn lagged_policy(&self) -> ResiliencePolicy {
        ResiliencePolicy::new().detection_lag_windows(self.detection_lag_windows)
    }

    /// The fully mitigated fleet as a buildable simulation: the shared
    /// fault plan, bounded retries hedged to a datacenter standby, and
    /// the degradation ladder, all at once. The richest single run the
    /// study can express — the `trace` binary executes it with a
    /// recorder attached so every transition kind actually fires.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] if a site cannot be built.
    pub fn mitigated_fleet(&self) -> Result<LifecycleSim, DeploymentError> {
        self.build_fleet(
            0,
            true,
            Some(self.fault_config()),
            Some(
                self.lagged_policy()
                    .retry(RetryPolicy::new(self.max_retries).hedge_to_fallback())
                    .fallback_site(2)
                    .degradation(
                        DegradationLadder::new()
                            .shed_low_priority(self.low_priority_fraction)
                            .brownout(self.brownout_stretch),
                    ),
            ),
        )
    }

    /// Runs every strategy against the identical fault plan.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] if a fleet cannot be built or a
    /// simulation fails.
    pub fn run(&self) -> Result<ResilienceStudyResult, DeploymentError> {
        let run = |sim: LifecycleSim| sim.run().map_err(DeploymentError::Sim);

        // The fault-free baseline, twice: once without the machinery and
        // once with it disabled. Anything but bit-identity is a defect in
        // the failure-aware path.
        let baseline = run(self.build_fleet(0, false, None, None)?)?;
        let disabled = run(self.build_fleet(
            0,
            false,
            Some(FaultConfig::disabled()),
            Some(
                self.lagged_policy()
                    .retry(RetryPolicy::new(self.max_retries)),
            ),
        )?)?;
        let baseline_bit_identical = baseline == disabled;

        let faults = self.fault_config();
        let unmitigated =
            run(self.build_fleet(0, false, Some(faults), Some(self.lagged_policy()))?)?;
        let overprovisioned = run(self.build_fleet(
            self.spare_pixels,
            false,
            Some(faults),
            Some(self.lagged_policy()),
        )?)?;
        let retry_to_fallback = run(self.build_fleet(
            0,
            true,
            Some(faults),
            Some(
                self.lagged_policy()
                    .retry(RetryPolicy::new(self.max_retries).hedge_to_fallback())
                    .fallback_site(2),
            ),
        )?)?;
        let degrade_in_place = run(self.build_fleet(
            0,
            false,
            Some(faults),
            Some(
                self.lagged_policy()
                    .retry(RetryPolicy::new(self.max_retries))
                    .degradation(
                        DegradationLadder::new()
                            .shed_low_priority(self.low_priority_fraction)
                            .brownout(self.brownout_stretch),
                    ),
            ),
        )?)?;

        let strategies = vec![
            StrategyOutcome::new(
                "fault-free-baseline",
                "no faults injected; the pre-fault-layer serving path",
                baseline,
            ),
            StrategyOutcome::new(
                "unmitigated",
                "faults land on a stale health view; nothing recovers",
                unmitigated,
            ),
            StrategyOutcome::new(
                "n-plus-one",
                format!(
                    "{} spare Pixel slots per cloudlet absorb correlated losses",
                    self.spare_pixels
                ),
                overprovisioned,
            ),
            StrategyOutcome::new(
                "retry-to-fallback",
                format!(
                    "{} bounded retries, hedged to a leased datacenter standby",
                    self.max_retries
                ),
                retry_to_fallback,
            ),
            StrategyOutcome::new(
                "degrade-in-place",
                format!(
                    "reroute, shed {:.0}% low-priority, brown out {:.0}%",
                    self.low_priority_fraction * 100.0,
                    (self.brownout_stretch - 1.0) * 100.0
                ),
                degrade_in_place,
            ),
        ];
        Ok(ResilienceStudyResult {
            strategies,
            baseline_bit_identical,
        })
    }
}

/// One strategy's full lifecycle accounting under the shared fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyOutcome {
    name: String,
    description: String,
    result: LifecycleResult,
}

impl StrategyOutcome {
    fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        result: LifecycleResult,
    ) -> Self {
        Self {
            name: name.into(),
            description: description.into(),
            result,
        }
    }

    /// Stable identifier of the strategy.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line description of what the strategy does.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The underlying lifecycle result.
    #[must_use]
    pub fn result(&self) -> &LifecycleResult {
        &self.result
    }

    /// Fraction of non-declined demand that was eventually served (or
    /// deliberately shed, which counts as a decision, not a failure).
    #[must_use]
    pub fn availability(&self) -> f64 {
        self.result.availability()
    }

    /// Availability expressed as nines.
    #[must_use]
    pub fn nines(&self) -> f64 {
        availability_nines(self.result.availability())
    }

    /// Lifetime carbon divided by requests actually served, gCO2e.
    #[must_use]
    pub fn grams_per_request(&self) -> f64 {
        self.result.grams_per_request().unwrap_or(0.0)
    }

    /// Carbon spent purely on retries and hedges, gCO2e.
    #[must_use]
    pub fn retry_grams(&self) -> f64 {
        self.result.total_retry_carbon().grams()
    }
}

/// Result of the resilience study: every strategy on the
/// availability/carbon plane, plus the baseline integrity check.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceStudyResult {
    strategies: Vec<StrategyOutcome>,
    baseline_bit_identical: bool,
}

impl ResilienceStudyResult {
    /// All strategies, baseline first.
    #[must_use]
    pub fn strategies(&self) -> &[StrategyOutcome] {
        &self.strategies
    }

    /// Looks a strategy up by its stable name.
    #[must_use]
    pub fn strategy(&self, name: &str) -> Option<&StrategyOutcome> {
        self.strategies.iter().find(|s| s.name() == name)
    }

    /// The fault-free baseline outcome.
    ///
    /// # Panics
    ///
    /// Panics if the study did not record a baseline (it always does).
    #[must_use]
    pub fn baseline(&self) -> &StrategyOutcome {
        self.strategy("fault-free-baseline")
            .expect("the study always runs a baseline")
    }

    /// Whether the disabled fault machinery reproduced the plain run
    /// bit for bit. `false` means the failure-aware path leaks into
    /// healthy serving — a regression.
    #[must_use]
    pub fn baseline_bit_identical(&self) -> bool {
        self.baseline_bit_identical
    }

    /// The carbon price of availability between two strategies:
    /// `(Δ gCO2e/request) / (Δ nines)`, positive when `better` buys its
    /// extra nines with extra carbon. `None` when the nines don't differ.
    #[must_use]
    pub fn grams_per_nine(&self, worse: &str, better: &str) -> Option<f64> {
        let worse = self.strategy(worse)?;
        let better = self.strategy(better)?;
        let delta_nines = better.nines() - worse.nines();
        if delta_nines.abs() < 1e-12 {
            return None;
        }
        Some((better.grams_per_request() - worse.grams_per_request()) / delta_nines)
    }

    /// The strategy comparison table the README quotes.
    #[must_use]
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(
            "buying availability with carbon (identical fault plan)",
            vec![
                "strategy".into(),
                "availability".into(),
                "nines".into(),
                "failed (M)".into(),
                "shed (M)".into(),
                "gCO2e/request".into(),
                "retry kg".into(),
                "downtime windows".into(),
            ],
        );
        for s in &self.strategies {
            table.push_row(vec![
                s.name().to_owned(),
                format!("{:.6}", s.availability()),
                format!("{:.2}", s.nines()),
                format!("{:.3}", s.result().failed_requests() / 1e6),
                format!("{:.3}", s.result().low_priority_shed_requests() / 1e6),
                format!("{:.6}", s.grams_per_request()),
                format!("{:.3}", s.retry_grams() / 1e3),
                s.result().downtime_windows(0.5).to_string(),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_study() -> ResilienceStudy {
        ResilienceStudy::quick()
            .horizon_days(10)
            .windows_per_day(2)
            .base_qps(900.0)
    }

    #[test]
    fn baseline_is_clean_and_bit_identical() {
        let result = tiny_study().run().unwrap();
        assert!(result.baseline_bit_identical());
        let baseline = result.baseline();
        assert_eq!(baseline.result().failed_requests(), 0.0);
        assert_eq!(baseline.availability(), 1.0);
        assert_eq!(baseline.nines(), 9.0);
        assert_eq!(baseline.retry_grams(), 0.0);
    }

    #[test]
    fn strategies_trade_availability_for_carbon() {
        // A seed whose short-horizon fault plan actually strikes.
        let result = tiny_study().seed(7).run().unwrap();
        let unmitigated = result.strategy("unmitigated").unwrap();
        assert!(
            unmitigated.result().failed_requests() > 0.0,
            "the quick fault plan must strike within the horizon"
        );
        assert!(unmitigated.availability() < 1.0);

        // Retry-to-fallback recovers requests and pays for it explicitly.
        let fallback = result.strategy("retry-to-fallback").unwrap();
        assert!(fallback.availability() > unmitigated.availability());
        assert!(fallback.retry_grams() > 0.0);

        // Degrade-in-place converts failures into sheds and retries.
        let degrade = result.strategy("degrade-in-place").unwrap();
        assert!(degrade.availability() > unmitigated.availability());
        assert!(
            degrade.result().failed_requests() < unmitigated.result().failed_requests(),
            "the ladder must absorb some of the unmitigated failures"
        );

        // The price of the nines is well-defined and reported.
        assert!(result
            .grams_per_nine("unmitigated", "retry-to-fallback")
            .is_some());
        assert_eq!(result.strategies().len(), 5);
        assert_eq!(result.summary_table().rows().len(), 5);
    }

    #[test]
    fn study_is_deterministic() {
        let a = tiny_study().run().unwrap();
        let b = tiny_study().parallelism(4).run().unwrap();
        assert_eq!(a, b);
    }
}
