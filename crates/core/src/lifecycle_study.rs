//! The multi-year lifecycle study: the paper's Figure 7-style amortised
//! carbon-per-request trajectory, reproduced end to end from simulated
//! dynamics instead of closed-form amortisation.
//!
//! Two junk-phone cloudlets (heterogeneous Pixel 3A / Nexus 4 cohorts in
//! two grid regions half a day out of phase) serve a diurnal demand under
//! carbon-aware routing; a c5.9xlarge datacenter backend on a flat
//! gas-heavy grid serves the *same* demand as the comparison deployment.
//! Both run day by day for up to a decade: cohort batteries wear under
//! the simulated smart-charging schedule and are replaced when spent,
//! devices fail stochastically and are refilled from junkyard stock
//! (charging their Reuse-Factor embodied share), and the cloudlet's
//! install embodied carbon lands on day 0 while the rented instance
//! amortises its share linearly. The cumulative gCO2e/request trajectory
//! starts *above* the datacenter's — the install bill dominates the first
//! weeks — and crosses below it well within the paper's reported horizon
//! as service amortises it away.

use junkyard_carbon::units::{CarbonIntensity, GramsCo2e, TimeSpan, Watts};
use junkyard_devices::catalog::{self, C5Size};
use junkyard_devices::components::ComponentBreakdown;
use junkyard_devices::device::DeviceSpec;
use junkyard_devices::power::LoadProfile;
use junkyard_fleet::lifecycle::{
    CohortDevice, LifecycleConfig, LifecycleResult, LifecycleSim, LifecycleSite,
};
use junkyard_fleet::routing::RoutingPolicy;
use junkyard_fleet::schedule::DiurnalSchedule;
use junkyard_fleet::site::{second_life_embodied, GridRegion};
use junkyard_grid::synth::CaisoSynthesizer;
use junkyard_grid::trace::IntensityTrace;
use junkyard_microsim::app::{social_network, SN_COMPOSE_POST};
use junkyard_microsim::network::NetworkModel;
use junkyard_microsim::node::NodeSpec;
use junkyard_microsim::placement::Placement;
use junkyard_microsim::sim::Simulation;

use crate::cloudlet_study::CloudletWorkload;
use crate::deployments::{build_deployment, DeploymentError, DeploymentKind};
use crate::report::{Chart, SeriesLine, Table};

/// Embodied carbon of the cloudlet's server fan, kgCO2e (Section 5.2).
const FAN_EMBODIED_KG: f64 = 9.3;
/// Always-on cloudlet overhead draw (fan), watts.
const FAN_WATTS: f64 = 4.0;
/// Flat carbon intensity of the datacenter's gas-heavy grid, gCO2e/kWh.
const DATACENTER_GRID_G_PER_KWH: f64 = 420.0;
/// Pixel 3A slots per cloudlet.
const PIXELS_PER_SITE: usize = 6;
/// Nexus 4 slots per cloudlet.
const NEXUSES_PER_SITE: usize = 4;

/// Configuration of the cloudlet-versus-datacenter lifecycle study.
#[derive(Debug, Clone)]
pub struct LifecycleStudy {
    years: usize,
    base_qps: f64,
    windows_per_day: usize,
    sim_slice_s: f64,
    warmup_s: f64,
    seed: u64,
    parallelism: Option<usize>,
    trace_days: usize,
    trace_step: TimeSpan,
    mean_days_between_failures: f64,
    replacement_lag_days: usize,
    spare_pixels: usize,
}

impl LifecycleStudy {
    /// The full-scale study: ten years, 24 one-hour routing windows per
    /// day, the calibrated 5-minute CAISO-like month as each region's
    /// (periodically tiled) grid trace, a ~4-year device MTBF with a
    /// one-week junkyard replacement lag.
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            years: 10,
            base_qps: 1_600.0,
            windows_per_day: 24,
            sim_slice_s: 2.0,
            warmup_s: 1.0,
            seed: 42,
            parallelism: None,
            trace_days: 30,
            trace_step: TimeSpan::from_minutes(5.0),
            mean_days_between_failures: 1_500.0,
            replacement_lag_days: 7,
            spare_pixels: 0,
        }
    }

    /// A reduced study for quick runs and tests: five years, four 6-hour
    /// windows per day, a coarser 15-minute ten-day trace.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            years: 5,
            base_qps: 1_600.0,
            windows_per_day: 4,
            sim_slice_s: 1.0,
            warmup_s: 1.0,
            seed: 42,
            parallelism: None,
            trace_days: 10,
            trace_step: TimeSpan::from_minutes(15.0),
            mean_days_between_failures: 1_500.0,
            replacement_lag_days: 7,
            spare_pixels: 0,
        }
    }

    /// Overrides the simulated horizon in years.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn years(mut self, years: usize) -> Self {
        assert!(years > 0, "the study needs at least one year");
        self.years = years;
        self
    }

    /// Overrides the peak-hour fleet demand, requests per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative.
    #[must_use]
    pub fn base_qps(mut self, qps: f64) -> Self {
        assert!(qps >= 0.0, "offered load cannot be negative");
        self.base_qps = qps;
        self
    }

    /// Overrides the random seed (grid traces, failures and workloads
    /// stay deterministic per seed).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds N+1-style spare Pixel 3A slots to every cloudlet, beyond the
    /// paper's six-Pixel/four-Nexus layout. Spares cost embodied carbon
    /// on day 0 and idle power for the whole horizon, which is exactly
    /// the overprovisioning price the resilience study measures.
    #[must_use]
    pub fn spare_pixels(mut self, spares: usize) -> Self {
        self.spare_pixels = spares;
        self
    }

    /// Caps the worker threads; `1` forces serial runs.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn parallelism(mut self, workers: usize) -> Self {
        assert!(workers > 0, "the study needs at least one worker");
        self.parallelism = Some(workers);
        self
    }

    /// The two cloudlet grid traces: a CAISO-like west region and its
    /// antipodal twin shifted by twelve hours, both whole-day traces the
    /// lifecycle tiles periodically over the horizon.
    #[must_use]
    pub fn two_region_traces(&self) -> (IntensityTrace, IntensityTrace) {
        let west = CaisoSynthesizer::new(self.seed, self.trace_days)
            .step(self.trace_step)
            .intensity_trace();
        let half_day_steps = (TimeSpan::from_hours(12.0).seconds() / west.step().seconds()).round();
        let mut values = west.values().to_vec();
        let shift = half_day_steps as usize % values.len();
        values.rotate_left(shift);
        let east = IntensityTrace::new(west.step(), values);
        (west, east)
    }

    /// One cohort slot for `device`, with its Reuse-Factor replacement
    /// share, light-medium serving power and measured power curve.
    fn cohort_slot(device: &DeviceSpec, capacity_qps: f64) -> CohortDevice {
        let reuse = device
            .components()
            .expect("cohort phones carry component breakdowns")
            .reuse_factor(&ComponentBreakdown::compute_node_role());
        let replacement = second_life_embodied(device.embodied(), &reuse);
        let battery = device.battery().expect("cohort phones carry batteries");
        let curve = device.power();
        CohortDevice::new(
            device.name(),
            device.average_power(&LoadProfile::light_medium()),
            battery,
            replacement,
            capacity_qps,
        )
        .power(curve.idle(), curve.at_full_load() - curve.idle())
    }

    /// Per-slot serving capacities: the Pixel's paper-measured share of
    /// the ten-phone cloudlet, and the Nexus 4 scaled down by its
    /// multi-core SGEMM ratio. Public so the planner study provisions
    /// its candidate cohorts from the same calibration.
    #[must_use]
    pub fn slot_capacities() -> (f64, f64) {
        let per_pixel = CloudletWorkload::SocialNetworkWrite.paper_phone_qps() / 10.0;
        let pixel = catalog::pixel_3a();
        let nexus = catalog::nexus_4();
        let benchmark = junkyard_devices::benchmark::Benchmark::Sgemm;
        let ratio = nexus
            .benchmarks()
            .get(benchmark)
            .expect("nexus sgemm")
            .multi_core()
            / pixel
                .benchmarks()
                .get(benchmark)
                .expect("pixel sgemm")
                .multi_core();
        (per_pixel, per_pixel * ratio)
    }

    /// Builds one heterogeneous junk-phone cloudlet on `trace`'s grid:
    /// six Pixel 3A and four Nexus 4 slots, install embodied charged on
    /// day 0, wear-driven battery replacements and stochastic failures
    /// refilled from junkyard stock.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] if the mixed cloudlet cannot be
    /// assembled.
    pub fn phone_site(
        &self,
        name: &str,
        trace: IntensityTrace,
    ) -> Result<LifecycleSite, DeploymentError> {
        let pixel = catalog::pixel_3a();
        let nexus = catalog::nexus_4();
        let (pixel_qps, nexus_qps) = Self::slot_capacities();

        let pixels = PIXELS_PER_SITE + self.spare_pixels;
        let mut nodes = Vec::with_capacity(pixels + NEXUSES_PER_SITE);
        let mut devices = Vec::with_capacity(pixels + NEXUSES_PER_SITE);
        for i in 0..pixels {
            nodes.push(NodeSpec::from_device(format!("pixel-{i}"), &pixel));
            devices.push(Self::cohort_slot(&pixel, pixel_qps));
        }
        for i in 0..NEXUSES_PER_SITE {
            nodes.push(NodeSpec::from_device(format!("nexus-{i}"), &nexus));
            devices.push(Self::cohort_slot(&nexus, nexus_qps));
        }

        let app = social_network();
        let placement =
            Placement::swarm_spread(&app, &nodes, 11).map_err(DeploymentError::Placement)?;
        let sim = Simulation::new(app, nodes, placement, NetworkModel::phone_wifi())
            .map_err(DeploymentError::Sim)?;

        let install: GramsCo2e = devices
            .iter()
            .map(CohortDevice::replacement_embodied)
            .sum::<GramsCo2e>()
            + GramsCo2e::from_kilograms(FAN_EMBODIED_KG);

        let site =
            LifecycleSite::try_cohort(name, &sim, GridRegion::new(name, trace), devices, install)
                .map_err(DeploymentError::SiteConfig)?
                .request_type(SN_COMPOSE_POST)
                .overhead_power(Watts::new(FAN_WATTS))
                .failures(self.mean_days_between_failures, self.replacement_lag_days)
                .map_err(DeploymentError::SiteConfig)?;
        Ok(site)
    }

    /// Builds the rented c5.9xlarge backend on a flat gas-heavy grid: its
    /// embodied share amortises linearly over a four-year lease instead of
    /// landing up front.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] if the deployment cannot be assembled.
    pub fn datacenter_site(&self, name: &str) -> Result<LifecycleSite, DeploymentError> {
        let app = social_network();
        let sim = build_deployment(DeploymentKind::C5(C5Size::XLarge9), &app, 11)?;
        let c5 = catalog::c5_instance(C5Size::XLarge9);
        let trace = IntensityTrace::constant(
            CarbonIntensity::from_grams_per_kwh(DATACENTER_GRID_G_PER_KWH),
            TimeSpan::from_hours(1.0),
            TimeSpan::from_days(1.0),
        );
        Ok(LifecycleSite::try_leased(
            name,
            &sim,
            GridRegion::new("gas-heavy", trace),
            CloudletWorkload::SocialNetworkWrite.paper_c5_9xlarge_qps(),
        )
        .map_err(DeploymentError::SiteConfig)?
        .request_type(SN_COMPOSE_POST)
        .power(Watts::new(120.0), Watts::new(90.0))
        .embodied(c5.embodied(), TimeSpan::from_years(4.0)))
    }

    fn config(&self) -> LifecycleConfig {
        let mut config = LifecycleConfig::new(self.years)
            .windows_per_day(self.windows_per_day)
            .sim_slice_s(self.sim_slice_s)
            .warmup_s(self.warmup_s)
            .seed(self.seed);
        if let Some(workers) = self.parallelism {
            config = config.parallelism(workers);
        }
        config
    }

    /// Assembles the two-cloudlet fleet under carbon-aware routing.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] if a site cannot be built.
    pub fn build_cloudlet_fleet(&self) -> Result<LifecycleSim, DeploymentError> {
        let (west, east) = self.two_region_traces();
        let sites = vec![
            self.phone_site("cloudlet-west", west)?,
            self.phone_site("cloudlet-east", east)?,
        ];
        Ok(LifecycleSim::new(
            sites,
            DiurnalSchedule::office_day(self.base_qps),
            RoutingPolicy::carbon_aware(),
            self.config(),
        ))
    }

    /// Assembles the single-site datacenter fleet serving the same
    /// demand.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] if the site cannot be built.
    pub fn build_datacenter_fleet(&self) -> Result<LifecycleSim, DeploymentError> {
        let site = self.datacenter_site("datacenter")?;
        Ok(LifecycleSim::new(
            vec![site],
            DiurnalSchedule::office_day(self.base_qps),
            RoutingPolicy::Static,
            self.config(),
        ))
    }

    /// Runs both deployments over the same multi-year demand and seeds.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] if a deployment cannot be built or a
    /// simulation fails.
    pub fn run(&self) -> Result<LifecycleStudyResult, DeploymentError> {
        let cloudlet = self
            .build_cloudlet_fleet()?
            .run()
            .map_err(DeploymentError::Sim)?;
        let datacenter = self
            .build_datacenter_fleet()?
            .run()
            .map_err(DeploymentError::Sim)?;
        Ok(LifecycleStudyResult {
            cloudlet,
            datacenter,
        })
    }
}

/// Result of the lifecycle study: both deployments over the same demand.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleStudyResult {
    cloudlet: LifecycleResult,
    datacenter: LifecycleResult,
}

impl LifecycleStudyResult {
    /// The two-cloudlet junk-phone deployment.
    #[must_use]
    pub fn cloudlet(&self) -> &LifecycleResult {
        &self.cloudlet
    }

    /// The rented c5.9xlarge deployment.
    #[must_use]
    pub fn datacenter(&self) -> &LifecycleResult {
        &self.datacenter
    }

    /// The first day the cloudlet's cumulative amortised gCO2e/request
    /// drops below the datacenter's, or `None` if it never does. The
    /// cloudlet pays its install embodied up front, so it starts above
    /// and crosses below as service amortises the bill.
    #[must_use]
    pub fn crossover_day(&self) -> Option<usize> {
        self.cloudlet.first_day_cheaper_than(&self.datacenter)
    }

    /// Lifetime carbon advantage of the cloudlet: datacenter over
    /// cloudlet amortised gCO2e/request at the end of the horizon.
    #[must_use]
    pub fn lifetime_advantage(&self) -> f64 {
        let cloudlet = self
            .cloudlet
            .grams_per_request()
            .expect("the study offers traffic");
        let datacenter = self
            .datacenter
            .grams_per_request()
            .expect("the study offers traffic");
        datacenter / cloudlet
    }

    /// The Figure 7-style trajectory chart: cumulative amortised
    /// gCO2e/request at the end of each year, one line per deployment.
    #[must_use]
    pub fn trajectory_chart(&self) -> Chart {
        let mut chart = Chart::new(
            "lifecycle — lifetime-amortised carbon per request",
            "deployment lifetime (years)",
            "mgCO2e/request",
        );
        for (label, result) in [
            ("phone cloudlets", &self.cloudlet),
            ("c5.9xlarge", &self.datacenter),
        ] {
            let points = result
                .yearly_trajectory()
                .into_iter()
                .map(|(year, grams)| (year, grams * 1_000.0))
                .collect();
            chart.push_line(SeriesLine::new(label, points));
        }
        chart
    }

    /// Per-deployment lifetime accounting table.
    #[must_use]
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(
            "lifecycle accounting over the full horizon",
            vec![
                "deployment".into(),
                "requests (B)".into(),
                "operational (kg)".into(),
                "embodied (kg)".into(),
                "battery packs".into(),
                "device failures".into(),
                "gCO2e/request".into(),
            ],
        );
        for (label, result) in [
            ("phone cloudlets", &self.cloudlet),
            ("c5.9xlarge", &self.datacenter),
        ] {
            table.push_row(vec![
                label.to_owned(),
                format!("{:.3}", result.total_requests() / 1e9),
                format!("{:.1}", result.total_operational().kilograms()),
                format!("{:.1}", result.total_embodied().kilograms()),
                result.total_battery_replacements().to_string(),
                result.total_device_failures().to_string(),
                format!("{:.6}", result.grams_per_request().unwrap_or(0.0)),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_study() -> LifecycleStudy {
        LifecycleStudy::quick().years(3)
    }

    #[test]
    fn cloudlet_crosses_below_the_datacenter_within_the_first_year() {
        let result = short_study().run().unwrap();
        // The install embodied makes the cloudlet *more* carbon-intensive
        // per request at first …
        let early_cloudlet = result.cloudlet().grams_per_request_through_day(0).unwrap();
        let early_dc = result
            .datacenter()
            .grams_per_request_through_day(0)
            .unwrap();
        assert!(
            early_cloudlet > early_dc,
            "day 0: cloudlet {early_cloudlet} must start above dc {early_dc}"
        );
        // … and amortises below it well within the paper's horizon.
        let crossover = result.crossover_day().expect("the trajectories cross");
        assert!(crossover < 365, "crossover day {crossover}");
        assert!(result.lifetime_advantage() > 1.0);
    }

    #[test]
    fn battery_replacements_come_from_simulated_wear() {
        let result = short_study().run().unwrap();
        // Pixel packs at ~1.5 W wear out after ~2.3 years of continuous
        // service, so a 3-year horizon replaces packs — driven by the
        // integrated schedule, not a static constant.
        assert!(result.cloudlet().total_battery_replacements() > 0);
        // 20 devices at a 1500-day MTBF over 3 years expect ~15 failures.
        assert!(result.cloudlet().total_device_failures() > 0);
        assert_eq!(result.datacenter().total_battery_replacements(), 0);
    }

    #[test]
    fn study_is_deterministic_across_thread_counts() {
        let serial = short_study().years(2).parallelism(1).run().unwrap();
        let threaded = short_study().years(2).parallelism(4).run().unwrap();
        assert_eq!(serial, threaded);
    }

    #[test]
    fn report_artifacts_cover_both_deployments() {
        let result = short_study().run().unwrap();
        let chart = result.trajectory_chart();
        assert_eq!(chart.lines().len(), 2);
        let cloudlet = chart.line("phone cloudlets").unwrap();
        assert_eq!(cloudlet.points().len(), 3);
        // The cloudlet's trajectory falls as the install amortises.
        assert!(cloudlet.points()[0].1 > cloudlet.points()[2].1);
        let table = result.summary_table();
        assert_eq!(table.rows().len(), 2);
    }

    #[test]
    fn both_deployments_serve_the_same_demand() {
        let result = short_study().years(1).run().unwrap();
        let cloudlet = result.cloudlet().total_requests() + result.cloudlet().shed_requests();
        let datacenter = result.datacenter().total_requests() + result.datacenter().shed_requests();
        assert!(
            ((cloudlet - datacenter) / datacenter).abs() < 1e-9,
            "offered demand must match: {cloudlet} vs {datacenter}"
        );
    }
}
