//! The planner study: *what should a junkyard-cloudlet operator deploy?*
//!
//! The lifecycle study fixes one hand-built answer (six Pixel 3A and
//! four Nexus 4 per cloudlet, two CAISO-like regions, carbon-aware
//! routing) and one comparison point (a rented c5.9xlarge). This study
//! turns the question around: it hands the planner the same demand, the
//! same two-region grid, the same device catalog and the same SLO, and
//! lets the search engine pick the deployment — Pixel 3A and Nexus 4
//! cohort mixes per region, routing policy, smart-charging floor,
//! junkyard refill lag and an optional leased c5.9xlarge fallback share.
//!
//! The hand-built deployment is itself a point of the search space and
//! is *pinned* into the search (it bypasses the pre-screen and survives
//! every halving rung), so the planner's argmin can only match or beat
//! it whenever the hand-built point is SLO-feasible — by construction,
//! not by luck of the coarse rungs. The study additionally scores the
//! hand-built candidate through the same evaluator and cache at the
//! same final fidelity to report the comparison.

use junkyard_carbon::units::{CarbonIntensity, GramsCo2e, TimeSpan, Watts};
use junkyard_devices::catalog::{self, C5Size};
use junkyard_fleet::routing::RoutingPolicy;
use junkyard_fleet::schedule::DiurnalSchedule;
use junkyard_fleet::site::GridRegion;
use junkyard_grid::trace::IntensityTrace;
use junkyard_microsim::app::{social_network, SN_COMPOSE_POST};
use junkyard_microsim::network::NetworkModel;
use junkyard_planner::{
    evaluate_batch, search, CandidateDeployment, CohortOption, EvalCache, Fidelity, FleetEvaluator,
    LeasedBlueprint, PlannedDeployment, PlannerSpace, SearchConfig, SearchOutcome, Slo,
};

use crate::deployments::{build_deployment, DeploymentError, DeploymentKind};
use crate::lifecycle_study::LifecycleStudy;
use crate::report::Table;

/// Embodied carbon of each cloudlet's server fan, kgCO2e (Section 5.2).
const FAN_EMBODIED_KG: f64 = 9.3;
/// Always-on per-cloudlet overhead draw (fan), watts.
const FAN_WATTS: f64 = 4.0;
/// Flat carbon intensity of the datacenter's gas-heavy grid, gCO2e/kWh.
const DATACENTER_GRID_G_PER_KWH: f64 = 420.0;
/// Assumed cloudlet service lifetime the install embodied carbon is
/// amortised over when scoring candidates — the lifecycle study's quick
/// horizon, so a planner score estimates that study's lifetime-amortised
/// gCO2e/request from a few simulated days.
const SERVICE_LIFETIME_YEARS: f64 = 5.0;
/// Index of the hand-built 6-Pixel + 4-Nexus option in the cohort list.
const HAND_BUILT_COHORT: usize = 1;
/// Index of the carbon-aware policy in the routing list.
const CARBON_AWARE_ROUTING: usize = 1;

/// The study's SLO. The carbon-aware router deliberately fills the
/// cleanest region to 100 % of its *paper-sustainable* capacity, which
/// by definition parks that site at the Figure 7 latency knee — so the
/// study grants ~50 % headroom over the knee criterion (median 100 ms,
/// tail 200 ms) before a deployment counts as violating, and tolerates
/// 1 % shed for transient outage days.
#[must_use]
fn study_slo() -> Slo {
    Slo::new(150.0, 250.0).shed_ceiling(0.01)
}

/// Configuration of the provisioning-search study.
#[derive(Debug, Clone)]
pub struct PlannerStudy {
    base_qps: f64,
    seed: u64,
    parallelism: Option<usize>,
    mean_days_between_failures: f64,
    rungs: Vec<Fidelity>,
    slo: Slo,
    rich_space: bool,
}

impl PlannerStudy {
    /// The full-scale study: the lifecycle study's demand and grids, the
    /// knee-headroom SLO (see [`study_slo`]), a three-rung fidelity ladder ending at four simulated
    /// weeks, and the rich search space (five cohort options, two
    /// charging floors, two refill lags, three fallback shares).
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            base_qps: 1_600.0,
            seed: 42,
            parallelism: None,
            mean_days_between_failures: 1_500.0,
            rungs: vec![Fidelity::coarse(), Fidelity::medium(), Fidelity::fine()],
            slo: study_slo(),
            rich_space: true,
        }
    }

    /// A reduced study for quick runs and tests: the quick lifecycle
    /// study's coarser grid traces, a two-rung ladder ending at four
    /// simulated days and a smaller space.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            base_qps: 1_600.0,
            seed: 42,
            parallelism: None,
            mean_days_between_failures: 1_500.0,
            rungs: vec![Fidelity::coarse(), Fidelity::new(4, 2, 1.0, 0.0)],
            slo: study_slo(),
            rich_space: false,
        }
    }

    /// Overrides the peak-hour fleet demand, requests per second.
    ///
    /// # Panics
    ///
    /// Panics if not strictly positive.
    #[must_use]
    pub fn base_qps(mut self, qps: f64) -> Self {
        assert!(qps > 0.0, "the study needs offered load");
        self.base_qps = qps;
        self
    }

    /// Overrides the random seed (grid traces, workloads, failures and
    /// mutation draws all derive from it).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the SLO the search enforces.
    #[must_use]
    pub fn slo(mut self, slo: Slo) -> Self {
        self.slo = slo;
        self
    }

    /// Caps the worker threads; `1` forces a serial search.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn parallelism(mut self, workers: usize) -> Self {
        assert!(workers > 0, "the study needs at least one worker");
        self.parallelism = Some(workers);
        self
    }

    /// The SLO the search enforces.
    #[must_use]
    pub fn slo_bounds(&self) -> Slo {
        self.slo
    }

    /// The cohort options of the search space. Index
    /// [`HAND_BUILT_COHORT`] is always the lifecycle study's hand-built
    /// 6-Pixel + 4-Nexus recipe.
    fn cohort_options(&self) -> Vec<CohortOption> {
        let pixel = catalog::pixel_3a();
        let nexus = catalog::nexus_4();
        let (pixel_qps, nexus_qps) = LifecycleStudy::slot_capacities();
        let hand_built = CohortOption::mixed(
            "6x Pixel 3A + 4x Nexus 4",
            vec![(pixel.clone(), pixel_qps, 6), (nexus.clone(), nexus_qps, 4)],
        );
        let mut options = vec![
            CohortOption::empty(),
            hand_built,
            CohortOption::uniform(pixel.clone(), 10, pixel_qps),
        ];
        if self.rich_space {
            options.push(CohortOption::uniform(pixel, 14, pixel_qps));
            options.push(CohortOption::mixed(
                "8x Pixel 3A + 6x Nexus 4",
                vec![(catalog::pixel_3a(), pixel_qps, 8), (nexus, nexus_qps, 6)],
            ));
        }
        options
    }

    /// The search space: the two-region CAISO setup with per-region
    /// cohort choices and the fleet-wide policy dimensions.
    #[must_use]
    pub fn space(&self) -> PlannerSpace {
        let lifecycle = self.lifecycle_twin();
        let (west, east) = lifecycle.two_region_traces();
        let regions = vec![GridRegion::new("west", west), GridRegion::new("east", east)];
        let mut space = PlannerSpace::new(self.cohort_options(), regions)
            .routings(vec![RoutingPolicy::Static, RoutingPolicy::carbon_aware()]);
        if self.rich_space {
            space = space
                .charge_floors(vec![0.25, 0.4])
                .refill_lags(vec![7, 21])
                .fallback_shares(vec![0.0, 0.5, 1.0]);
        } else {
            space = space.fallback_shares(vec![0.0, 1.0]);
        }
        space
    }

    /// A [`LifecycleStudy`] carrying the same seed and trace fidelity,
    /// used to derive the shared two-region traces.
    fn lifecycle_twin(&self) -> LifecycleStudy {
        // The lifecycle study's quick/paper split matches ours on trace
        // fidelity; only the seed needs forwarding.
        let twin = if self.rich_space {
            LifecycleStudy::paper_scale()
        } else {
            LifecycleStudy::quick()
        };
        twin.seed(self.seed)
    }

    /// The evaluator: candidates serve the compose-post demand over the
    /// office-day curve, with the c5.9xlarge registered as the leased
    /// fallback and the saturation screen armed.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] if the c5.9xlarge blueprint cannot be
    /// assembled.
    pub fn evaluator(&self) -> Result<FleetEvaluator, DeploymentError> {
        let app = social_network();
        let c5_sim = build_deployment(DeploymentKind::C5(C5Size::XLarge9), &app, 11)?;
        let c5 = catalog::c5_instance(C5Size::XLarge9);
        let gas_heavy = GridRegion::new(
            "gas-heavy",
            IntensityTrace::constant(
                CarbonIntensity::from_grams_per_kwh(DATACENTER_GRID_G_PER_KWH),
                TimeSpan::from_hours(1.0),
                TimeSpan::from_days(1.0),
            ),
        );
        let leased = LeasedBlueprint::new(
            "leased-c5",
            c5_sim,
            gas_heavy,
            crate::cloudlet_study::CloudletWorkload::SocialNetworkWrite.paper_c5_9xlarge_qps(),
        )
        .power(Watts::new(120.0), Watts::new(90.0))
        .embodied(c5.embodied(), TimeSpan::from_years(4.0));

        Ok(FleetEvaluator::new(
            self.space(),
            social_network(),
            NetworkModel::phone_wifi(),
            DiurnalSchedule::office_day(self.base_qps),
            self.seed,
        )
        .request_type(SN_COMPOSE_POST)
        .leased(leased)
        .site_overhead(
            Watts::new(FAN_WATTS),
            GramsCo2e::from_kilograms(FAN_EMBODIED_KG),
        )
        .failures(self.mean_days_between_failures)
        .amortize_install(TimeSpan::from_years(SERVICE_LIFETIME_YEARS))
        .with_saturation_screen())
    }

    /// The hand-built lifecycle deployment as a candidate: the 6-Pixel +
    /// 4-Nexus cohort in both regions under carbon-aware routing with
    /// the paper charging floor, the one-week refill lag and no leased
    /// fallback.
    #[must_use]
    pub fn baseline_candidate(&self) -> CandidateDeployment {
        CandidateDeployment::new(
            vec![HAND_BUILT_COHORT, HAND_BUILT_COHORT],
            CARBON_AWARE_ROUTING,
            0,
            0,
            0,
        )
    }

    fn search_config(&self) -> SearchConfig {
        // Pinning the hand-built baseline guarantees it is scored at the
        // final fidelity inside the search, so "the argmin matches or
        // beats a feasible baseline" holds by construction instead of
        // depending on the coarse rungs ranking it into the survivors.
        let mut config = SearchConfig::new()
            .seed(self.seed)
            .rungs(self.rungs.clone())
            .local_search(4, 2, 2)
            .pin(self.baseline_candidate());
        if let Some(workers) = self.parallelism {
            config = config.parallelism(workers);
        }
        config
    }

    /// Runs the search and scores the hand-built baseline through the
    /// same evaluator and cache at the same final fidelity.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] if the evaluator cannot be built.
    ///
    /// # Panics
    ///
    /// Panics if the hand-built baseline itself fails to build or
    /// simulate — that would be a defect, not a search outcome.
    pub fn run(&self) -> Result<PlannerStudyResult, DeploymentError> {
        let evaluator = self.evaluator()?;
        let config = self.search_config();
        let mut cache = EvalCache::new();
        let outcome = search(
            evaluator.space(),
            &evaluator,
            &self.slo,
            &config,
            &mut cache,
        );

        let baseline_candidate = self.baseline_candidate();
        let mut fresh = 0;
        let baseline_evaluation = evaluate_batch(
            &mut cache,
            &evaluator,
            std::slice::from_ref(&baseline_candidate),
            config.final_fidelity(),
            1,
            &mut fresh,
        )
        .pop()
        .expect("one baseline result")
        .expect("the hand-built lifecycle deployment builds and simulates");
        let baseline = PlannedDeployment::from_parts(
            baseline_candidate.clone(),
            baseline_evaluation,
            evaluator.space().describe(&baseline_candidate),
        );

        Ok(PlannerStudyResult {
            outcome,
            baseline,
            slo: self.slo,
        })
    }
}

/// Result of the planner study: the search outcome plus the hand-built
/// baseline scored under identical conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerStudyResult {
    outcome: SearchOutcome,
    baseline: PlannedDeployment,
    slo: Slo,
}

impl PlannerStudyResult {
    /// The full search outcome (frontier, argmin, bookkeeping).
    #[must_use]
    pub fn outcome(&self) -> &SearchOutcome {
        &self.outcome
    }

    /// The carbon argmin among SLO-feasible deployments.
    #[must_use]
    pub fn best(&self) -> Option<&PlannedDeployment> {
        self.outcome.best()
    }

    /// The hand-built lifecycle deployment scored at the same fidelity.
    #[must_use]
    pub fn baseline(&self) -> &PlannedDeployment {
        &self.baseline
    }

    /// The SLO the search enforced.
    #[must_use]
    pub fn slo(&self) -> Slo {
        self.slo
    }

    /// Carbon-per-request improvement of the planner's argmin over the
    /// hand-built baseline, percent (positive means the planner won;
    /// zero means it rediscovered the hand-built point).
    ///
    /// # Panics
    ///
    /// Panics if the search found no feasible deployment.
    #[must_use]
    pub fn improvement_percent(&self) -> f64 {
        let best = self
            .best()
            .expect("the search found a feasible deployment")
            .evaluation()
            .grams_per_request()
            .expect("feasible deployments served requests");
        let baseline = self
            .baseline
            .evaluation()
            .grams_per_request()
            .expect("the baseline served requests");
        (baseline - best) / baseline * 100.0
    }

    /// Whether the planner's argmin emits no more carbon per request
    /// than the hand-built baseline.
    #[must_use]
    pub fn matches_or_beats_baseline(&self) -> bool {
        match self.best() {
            Some(best) => {
                best.evaluation()
                    .grams_per_request()
                    .unwrap_or(f64::INFINITY)
                    <= self
                        .baseline
                        .evaluation()
                        .grams_per_request()
                        .unwrap_or(f64::INFINITY)
                        + 1e-12
            }
            None => false,
        }
    }

    /// The frontier as a report table (plus the baseline as the last
    /// row for comparison).
    #[must_use]
    pub fn frontier_table(&self) -> Table {
        let mut table = Table::new(
            "planner — SLO-feasible Pareto frontier (gCO2e/request vs p99 vs fleet size)",
            vec![
                "deployment".into(),
                "phones".into(),
                "mgCO2e/request".into(),
                "p99 (ms)".into(),
                "tail (ms)".into(),
                "shed %".into(),
            ],
        );
        for planned in self.outcome.frontier() {
            table.push_row(Self::row(planned));
        }
        let mut baseline_row = Self::row(&self.baseline);
        baseline_row[0] = format!("[hand-built] {}", baseline_row[0]);
        table.push_row(baseline_row);
        table
    }

    fn row(planned: &PlannedDeployment) -> Vec<String> {
        let evaluation = planned.evaluation();
        vec![
            planned.label().to_owned(),
            evaluation.devices().to_string(),
            format!(
                "{:.4}",
                evaluation.grams_per_request().unwrap_or(0.0) * 1_000.0
            ),
            format!("{:.1}", evaluation.worst_p99_ms()),
            format!("{:.1}", evaluation.worst_tail_ms()),
            format!("{:.2}", evaluation.shed_fraction() * 100.0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_matches_or_beats_the_hand_built_cloudlet() {
        let result = PlannerStudy::quick().run().unwrap();
        // The hand-built deployment is a point of the space, so a
        // feasible baseline can only be matched or beaten.
        assert!(
            result.baseline.evaluation().meets(&result.slo()),
            "the hand-built baseline violates the SLO: {:?}",
            result.baseline.evaluation()
        );
        assert!(result.matches_or_beats_baseline());
        assert!(result.improvement_percent() >= 0.0);
        let best = result.best().unwrap();
        assert!(best.evaluation().grams_per_request().unwrap() > 0.0);
    }

    #[test]
    fn every_frontier_point_meets_the_slo() {
        let result = PlannerStudy::quick().run().unwrap();
        assert!(!result.outcome().frontier().is_empty());
        for planned in result.outcome().frontier() {
            assert!(
                planned.evaluation().meets(&result.slo()),
                "{} violates the SLO",
                planned.label()
            );
        }
        // The search recorded cache traffic (mutation rounds revisit
        // their elites by construction).
        assert!(result.outcome().cache_hits() > 0);
    }

    #[test]
    fn study_is_deterministic_across_worker_counts() {
        let serial = PlannerStudy::quick().parallelism(1).run().unwrap();
        let threaded = PlannerStudy::quick().parallelism(4).run().unwrap();
        assert_eq!(serial, threaded);
    }

    #[test]
    fn frontier_table_includes_the_baseline_row() {
        let result = PlannerStudy::quick().run().unwrap();
        let table = result.frontier_table();
        assert_eq!(table.rows().len(), result.outcome().frontier().len() + 1);
        assert!(table.rows().last().unwrap()[0].starts_with("[hand-built]"));
    }
}
