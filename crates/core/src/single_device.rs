//! Single-device lifetime CCI (Figure 2) and the shared calculator builder.

use junkyard_carbon::cci::CciCalculator;
use junkyard_carbon::embodied::EmbodiedCarbon;
use junkyard_carbon::units::CarbonIntensity;
use junkyard_devices::benchmark::Benchmark;
use junkyard_devices::device::DeviceSpec;
use junkyard_devices::power::LoadProfile;

use crate::report::{Chart, SeriesLine};

/// Default lifetime axis of the paper's CCI figures: 1–60 months.
#[must_use]
pub fn lifetime_months_axis() -> Vec<f64> {
    (1..=60).map(f64::from).collect()
}

/// Builds a CCI calculator for one device on one benchmark.
///
/// `reused` devices pay no manufacturing carbon (the paper's `C_M = 0`
/// stipulation); new devices pay the catalog's embodied figure. The device
/// runs the light-medium duty cycle, and its useful work is the
/// duty-cycle-averaged multi-core benchmark throughput (Eq. 6).
///
/// # Panics
///
/// Panics if the device lacks a score for `benchmark`.
#[must_use]
pub fn device_calculator(
    device: &DeviceSpec,
    benchmark: Benchmark,
    grid: CarbonIntensity,
    reused: bool,
) -> CciCalculator {
    let profile = LoadProfile::light_medium();
    let embodied = if reused {
        EmbodiedCarbon::reused()
    } else {
        EmbodiedCarbon::manufactured(device.name(), device.embodied())
    };
    let throughput = device
        .average_throughput(benchmark, &profile)
        .unwrap_or_else(|| panic!("{} has no {benchmark} score", device.name()));
    CciCalculator::new(benchmark.op_unit())
        .embodied(embodied)
        .average_power(device.average_power(&profile))
        .grid(grid)
        .throughput(throughput)
}

/// The Figure 2 study: single-device lifetime CCI of the reused devices
/// against the new PowerEdge server, for one benchmark, on the California
/// grid.
#[derive(Debug, Clone)]
pub struct SingleDeviceStudy {
    benchmark: Benchmark,
    grid: CarbonIntensity,
    months: Vec<f64>,
}

impl SingleDeviceStudy {
    /// Creates the study for a benchmark with the paper's defaults
    /// (California mix, 60-month axis).
    #[must_use]
    pub fn new(benchmark: Benchmark) -> Self {
        Self {
            benchmark,
            grid: CarbonIntensity::from_grams_per_kwh(257.0),
            months: lifetime_months_axis(),
        }
    }

    /// Overrides the grid carbon intensity.
    #[must_use]
    pub fn grid(mut self, grid: CarbonIntensity) -> Self {
        self.grid = grid;
        self
    }

    /// Overrides the lifetime axis.
    ///
    /// # Panics
    ///
    /// Panics if the axis is empty.
    #[must_use]
    pub fn months(mut self, months: Vec<f64>) -> Self {
        assert!(!months.is_empty(), "the lifetime axis cannot be empty");
        self.months = months;
        self
    }

    /// Runs the study over the given devices. `new_devices` pay their
    /// embodied carbon, the rest are treated as reused.
    ///
    /// # Panics
    ///
    /// Panics if a device lacks a score for the study's benchmark.
    #[must_use]
    pub fn run(&self, reused: &[DeviceSpec], new_devices: &[DeviceSpec]) -> Chart {
        let mut chart = Chart::new(
            format!("Single-device CCI — {}", self.benchmark),
            "lifetime (months)",
            format!("mgCO2e/{}", self.benchmark.op_unit()),
        );
        let mut add = |device: &DeviceSpec, reused: bool| {
            let calc = device_calculator(device, self.benchmark, self.grid, reused);
            let points = self
                .months
                .iter()
                .map(|m| {
                    let cci = calc
                        .cci_at(junkyard_carbon::units::TimeSpan::from_months(*m))
                        .expect("throughput configured and lifetime positive");
                    (*m, cci.milligrams_per_op())
                })
                .collect();
            chart.push_line(SeriesLine::new(device.name(), points));
        };
        for device in reused {
            add(device, true);
        }
        for device in new_devices {
            add(device, false);
        }
        chart
    }

    /// Runs the study on the paper's device set: reused ProLiant, ThinkPad,
    /// Pixel 3A and Nexus 4 against a new PowerEdge R740.
    #[must_use]
    pub fn run_paper_devices(&self) -> Chart {
        self.run(
            &junkyard_devices::catalog::reused_devices(),
            &[junkyard_devices::catalog::poweredge_r740()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use junkyard_devices::catalog;

    #[test]
    fn reused_phones_beat_the_new_server_on_dijkstra() {
        let chart = SingleDeviceStudy::new(Benchmark::Dijkstra).run_paper_devices();
        let pixel = chart.line("Pixel 3A").unwrap().final_value().unwrap();
        let server = chart.line("PowerEdge R740").unwrap().final_value().unwrap();
        assert!(pixel < server, "pixel {pixel} vs server {server}");
    }

    #[test]
    fn sgemm_is_where_the_laptop_is_most_competitive() {
        // Figure 2's SGEMM panel: the ThinkPad's strong FP hardware makes it
        // the exception to the "phones always win" pattern. With the paper's
        // own Table 1/2 numbers it clearly beats the Nexus 4, and its gap to
        // the Pixel 3A is far smaller on SGEMM than on the other benchmarks.
        let values = |benchmark: Benchmark| {
            let chart = SingleDeviceStudy::new(benchmark).run_paper_devices();
            let laptop = chart
                .line("ThinkPad X1 Carbon G3")
                .unwrap()
                .final_value()
                .unwrap();
            let pixel = chart.line("Pixel 3A").unwrap().final_value().unwrap();
            let nexus = chart.line("Nexus 4").unwrap().final_value().unwrap();
            (laptop, pixel, nexus)
        };
        let ratio = |benchmark: Benchmark| {
            let (laptop, pixel, _) = values(benchmark);
            laptop / pixel
        };
        let (sgemm_laptop, _, sgemm_nexus) = values(Benchmark::Sgemm);
        assert!(
            sgemm_laptop < sgemm_nexus,
            "laptop {sgemm_laptop} vs Nexus 4 {sgemm_nexus}"
        );
        let sgemm = ratio(Benchmark::Sgemm);
        let dijkstra = ratio(Benchmark::Dijkstra);
        let pdf = ratio(Benchmark::PdfRender);
        assert!(
            sgemm < dijkstra && sgemm < pdf,
            "sgemm {sgemm}, dijkstra {dijkstra}, pdf {pdf}"
        );
    }

    #[test]
    fn server_cci_improves_with_lifetime() {
        let chart = SingleDeviceStudy::new(Benchmark::PdfRender).run_paper_devices();
        let server = chart.line("PowerEdge R740").unwrap();
        let first = server.points().first().unwrap().1;
        let last = server.final_value().unwrap();
        assert!(last < first, "amortisation should reduce CCI over time");
    }

    #[test]
    fn zero_carbon_grid_flattens_reused_devices() {
        let chart = SingleDeviceStudy::new(Benchmark::Dijkstra)
            .grid(CarbonIntensity::ZERO)
            .run(&[catalog::pixel_3a()], &[]);
        let pixel = chart.line("Pixel 3A").unwrap();
        // With no embodied and no operational carbon the CCI is zero.
        assert!(pixel.points().iter().all(|(_, y)| *y == 0.0));
    }
}
