//! The smart-charging study of Figure 4: Pixel 3A and ThinkPad against a
//! synthetic CAISO April.

use junkyard_battery::sim::{SmartChargingConfig, SmartChargingOutcome};
use junkyard_devices::catalog;
use junkyard_devices::power::LoadProfile;
use junkyard_grid::synth::CaisoSynthesizer;
use junkyard_grid::trace::IntensityTrace;

use crate::report::{Chart, SeriesLine, Table};

/// The Figure 4 study configuration.
#[derive(Debug, Clone)]
pub struct ChargingStudy {
    seed: u64,
    days: usize,
}

/// The result of the study: the grid trace used and one outcome per device.
#[derive(Debug, Clone)]
pub struct ChargingStudyResult {
    trace: IntensityTrace,
    outcomes: Vec<SmartChargingOutcome>,
}

impl ChargingStudy {
    /// Creates the study with the paper's month-long horizon.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed, days: 30 }
    }

    /// Overrides the number of simulated days.
    ///
    /// # Panics
    ///
    /// Panics if `days` is zero.
    #[must_use]
    pub fn days(mut self, days: usize) -> Self {
        assert!(days > 0, "need at least one day");
        self.days = days;
        self
    }

    /// Runs the study for the paper's two devices (Pixel 3A and ThinkPad X1
    /// Carbon Gen 3) on a synthetic CAISO month.
    #[must_use]
    pub fn run(&self) -> ChargingStudyResult {
        let trace = CaisoSynthesizer::new(self.seed, self.days).intensity_trace();
        let profile = LoadProfile::light_medium();
        let pixel = catalog::pixel_3a();
        let thinkpad = catalog::thinkpad_x1_carbon_g3();
        let outcomes = vec![
            SmartChargingConfig::new(
                pixel.name(),
                pixel.average_power(&profile),
                // lint:allow(panic-in-library): the built-in Pixel 3a
                // catalog entry always carries a battery spec
                pixel.battery().expect("the Pixel has a battery"),
            )
            .run(&trace),
            SmartChargingConfig::new(
                thinkpad.name(),
                thinkpad.average_power(&profile),
                // lint:allow(panic-in-library): the built-in ThinkPad
                // catalog entry always carries a battery spec
                thinkpad.battery().expect("the ThinkPad has a battery"),
            )
            .run(&trace),
        ];
        ChargingStudyResult { trace, outcomes }
    }
}

impl Default for ChargingStudy {
    fn default() -> Self {
        Self::new(2021)
    }
}

impl ChargingStudyResult {
    /// The grid trace the study ran against.
    #[must_use]
    pub fn trace(&self) -> &IntensityTrace {
        &self.trace
    }

    /// Per-device outcomes (Pixel first, ThinkPad second).
    #[must_use]
    pub fn outcomes(&self) -> &[SmartChargingOutcome] {
        &self.outcomes
    }

    /// Summary table: median and standard deviation of daily savings per
    /// device (the numbers quoted in Section 4.3), alongside the
    /// replacement-aware figures — the embodied carbon of the pack wear the
    /// policy accrued (amortised over the simulated days) and the savings
    /// net of it. The paper flags replacement carbon as the offset to the
    /// Figure 4 savings; the gross median alone overstates the benefit.
    #[must_use]
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(
            "Smart charging savings (synthetic CAISO month)",
            vec![
                "device".into(),
                "median savings %".into(),
                "std %".into(),
                "battery replacements".into(),
                "wear gCO2e".into(),
                "net savings %".into(),
            ],
        );
        for outcome in &self.outcomes {
            table.push_row(vec![
                outcome.label().to_owned(),
                format!("{:.2}", outcome.median_savings_percent()),
                format!("{:.2}", outcome.std_savings_percent()),
                outcome.battery_replacements().to_string(),
                format!("{:.1}", outcome.amortized_replacement_carbon().grams()),
                format!("{:.2}", outcome.net_savings_percent()),
            ]);
        }
        table
    }

    /// The Figure 4b/4c chart for one device: the representative day's
    /// carbon-intensity curve and the charging windows chosen by the policy
    /// (1 when charging, 0 otherwise, scaled to the intensity axis).
    ///
    /// # Panics
    ///
    /// Panics if `device_index` is out of range.
    #[must_use]
    pub fn representative_day_chart(&self, device_index: usize) -> Chart {
        let outcome = &self.outcomes[device_index];
        let day = outcome
            .representative_day()
            .expect("the study always has more than one day");
        let day_trace = self
            .trace
            .day(day.day_index())
            .expect("representative day is within the trace");
        let intensity: Vec<(f64, f64)> = day_trace
            .iter()
            .map(|(t, ci)| (t.hours(), ci.grams_per_kwh()))
            .collect();
        let max_intensity = day_trace.max().grams_per_kwh();
        let charging: Vec<(f64, f64)> = day
            .charging_flags()
            .iter()
            .enumerate()
            .map(|(i, on)| {
                (
                    i as f64 * day.step().hours(),
                    if *on { max_intensity } else { 0.0 },
                )
            })
            .collect();
        Chart::new(
            format!(
                "{} — representative day ({}), {:.2}% savings",
                outcome.label(),
                day.day_index(),
                day.savings_percent()
            ),
            "hour of day",
            "gCO2e/kWh",
        )
        .with_line(SeriesLine::new("carbon intensity", intensity))
        .with_line(SeriesLine::new("when to charge", charging))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_study() -> ChargingStudyResult {
        ChargingStudy::new(7).days(10).run()
    }

    #[test]
    fn pixel_saves_more_than_the_thinkpad() {
        let result = short_study();
        let pixel = result.outcomes()[0].median_savings_percent();
        let thinkpad = result.outcomes()[1].median_savings_percent();
        assert!(pixel > thinkpad, "pixel {pixel}% vs thinkpad {thinkpad}%");
        assert!(pixel > 2.0 && pixel < 20.0);
        assert!(thinkpad > 0.0);
    }

    #[test]
    fn summary_table_has_both_devices() {
        let table = short_study().summary_table();
        assert_eq!(table.rows().len(), 2);
        assert!(table.rows()[0][0].contains("Pixel"));
        assert!(table.rows()[1][0].contains("ThinkPad"));
        assert_eq!(table.rows()[0].len(), 6);
    }

    #[test]
    fn net_savings_account_for_pack_wear() {
        let result = short_study();
        for outcome in result.outcomes() {
            assert!(outcome.amortized_replacement_carbon().grams() > 0.0);
            assert!(
                outcome.net_savings_percent() < outcome.gross_savings_percent(),
                "{}: net {} vs gross {}",
                outcome.label(),
                outcome.net_savings_percent(),
                outcome.gross_savings_percent()
            );
        }
    }

    #[test]
    fn representative_day_chart_shows_charging_in_clean_hours() {
        let result = short_study();
        let chart = result.representative_day_chart(0);
        let intensity = chart.line("carbon intensity").unwrap();
        let charging = chart.line("when to charge").unwrap();
        assert_eq!(intensity.points().len(), charging.points().len());
        // Average intensity during charging hours should be below the day's
        // overall mean.
        let mean: f64 = intensity.points().iter().map(|(_, y)| y).sum::<f64>()
            / intensity.points().len() as f64;
        let charging_points: Vec<f64> = intensity
            .points()
            .iter()
            .zip(charging.points())
            .filter(|(_, (_, on))| *on > 0.0)
            .map(|((_, y), _)| *y)
            .collect();
        assert!(!charging_points.is_empty());
        let charging_mean = charging_points.iter().sum::<f64>() / charging_points.len() as f64;
        assert!(charging_mean < mean, "{charging_mean} vs {mean}");
    }
}
