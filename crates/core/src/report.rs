//! Report primitives: tables and labelled series, with plain-text and CSV
//! rendering used by the experiment binaries.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A rectangular table with named columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Self {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Adds a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Adds a row (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    #[must_use]
    pub fn with_row(mut self, row: Vec<String>) -> Self {
        self.push_row(row);
        self
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as CSV (headers first).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            let line: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))
        };
        render(&self.headers, f)?;
        for row in &self.rows {
            render(row, f)?;
        }
        Ok(())
    }
}

/// One labelled line of a chart: `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesLine {
    label: String,
    points: Vec<(f64, f64)>,
}

impl SeriesLine {
    /// Creates a line.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }

    /// Line label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The points.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The y value at the largest x, if any.
    #[must_use]
    pub fn final_value(&self) -> Option<f64> {
        self.points.last().map(|(_, y)| *y)
    }
}

/// A chart: several labelled lines over a shared x axis, standing in for one
/// panel of a paper figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    lines: Vec<SeriesLine>,
}

impl Chart {
    /// Creates an empty chart.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            lines: Vec::new(),
        }
    }

    /// Adds a line (builder style).
    #[must_use]
    pub fn with_line(mut self, line: SeriesLine) -> Self {
        self.lines.push(line);
        self
    }

    /// Adds a line in place.
    pub fn push_line(&mut self, line: SeriesLine) {
        self.lines.push(line);
    }

    /// Chart title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// X-axis label.
    #[must_use]
    pub fn x_label(&self) -> &str {
        &self.x_label
    }

    /// Y-axis label.
    #[must_use]
    pub fn y_label(&self) -> &str {
        &self.y_label
    }

    /// The chart's lines.
    #[must_use]
    pub fn lines(&self) -> &[SeriesLine] {
        &self.lines
    }

    /// Finds a line by label.
    #[must_use]
    pub fn line(&self, label: &str) -> Option<&SeriesLine> {
        self.lines.iter().find(|l| l.label() == label)
    }

    /// Renders the chart as CSV: one column of x values followed by one
    /// column per line.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for line in &self.lines {
            out.push(',');
            out.push_str(line.label());
        }
        out.push('\n');
        let xs: Vec<f64> = self
            .lines
            .first()
            .map(|l| l.points().iter().map(|(x, _)| *x).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            out.push_str(&format!("{x}"));
            for line in &self.lines {
                out.push(',');
                if let Some((_, y)) = line.points().get(i) {
                    out.push_str(&format!("{y}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Chart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== {} ==  ({} vs {})",
            self.title, self.y_label, self.x_label
        )?;
        for line in &self.lines {
            let preview: Vec<String> = line
                .points()
                .iter()
                .map(|(x, y)| format!("({x:.4}, {y:.4})"))
                .collect();
            writeln!(f, "  {}: {}", line.label(), preview.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trip() {
        let table = Table::new("t", vec!["a".into(), "b".into()])
            .with_row(vec!["1".into(), "2".into()])
            .with_row(vec!["3".into(), "4".into()]);
        assert_eq!(table.rows().len(), 2);
        assert!(table.to_csv().contains("1,2"));
        let rendered = table.to_string();
        assert!(rendered.contains("== t =="));
        assert!(rendered.contains('a'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let _ = Table::new("t", vec!["a".into()]).with_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn chart_lines_and_csv() {
        let chart = Chart::new("cci", "months", "mg/op")
            .with_line(SeriesLine::new("phone", vec![(1.0, 2.0), (2.0, 1.5)]))
            .with_line(SeriesLine::new("server", vec![(1.0, 9.0), (2.0, 5.0)]));
        assert_eq!(chart.lines().len(), 2);
        assert_eq!(chart.line("phone").unwrap().final_value(), Some(1.5));
        assert!(chart.line("laptop").is_none());
        let csv = chart.to_csv();
        assert!(csv.starts_with("months,phone,server"));
        assert!(csv.contains("2,1.5,5"));
        assert!(chart.to_string().contains("cci"));
    }
}
