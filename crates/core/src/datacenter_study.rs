//! The datacenter-scale study of Section 5.3: PUE (Eq. 14) and the
//! facility-level CCI projections of Table 4.

use junkyard_carbon::cci::{CciCalculator, CciError};
use junkyard_carbon::operational::NetworkProfile;
use junkyard_carbon::units::{CarbonIntensity, DataRate, TimeSpan};
use junkyard_cluster::datacenter::DatacenterDesign;
use junkyard_cluster::presets;
use junkyard_devices::benchmark::Benchmark;
use junkyard_devices::power::LoadProfile;

use crate::report::Table;

/// Comparison of the two 50 MW designs of Section 5.3.
#[derive(Debug, Clone)]
pub struct DatacenterStudy {
    lifetime: TimeSpan,
    grid: CarbonIntensity,
}

impl DatacenterStudy {
    /// Creates the study with the paper's parameters: three-year lifespan on
    /// the California mix.
    #[must_use]
    pub fn new() -> Self {
        Self {
            lifetime: TimeSpan::from_years(3.0),
            grid: CarbonIntensity::from_grams_per_kwh(257.0),
        }
    }

    /// Overrides the amortisation lifetime.
    #[must_use]
    pub fn lifetime(mut self, lifetime: TimeSpan) -> Self {
        self.lifetime = lifetime;
        self
    }

    /// The PUE comparison table (server ≈ 1.31, phones ≈ 1.32 in the paper).
    #[must_use]
    pub fn pue_table(&self) -> Table {
        let mut table = Table::new(
            "50 MW datacenter PUE",
            vec![
                "design".into(),
                "units".into(),
                "IT MW".into(),
                "PUE".into(),
            ],
        );
        for design in [
            DatacenterDesign::paper_server_datacenter(),
            DatacenterDesign::paper_phone_datacenter(),
        ] {
            table.push_row(vec![
                design.name().to_owned(),
                design.unit_count().to_string(),
                format!("{:.1}", design.it_power().value() / 1e6),
                format!("{:.2}", design.pue().value()),
            ]);
        }
        table
    }

    /// Builds the per-unit CCI calculator for one design, applying its PUE
    /// to the operational terms as in Eq. 15.
    fn unit_calculator(&self, benchmark: Benchmark, phones: bool) -> CciCalculator {
        let profile = LoadProfile::light_medium();
        let (cloudlet, design) = if phones {
            (
                presets::pixel_cloudlet(),
                DatacenterDesign::paper_phone_datacenter(),
            )
        } else {
            (
                presets::poweredge_baseline(),
                DatacenterDesign::paper_server_datacenter(),
            )
        };
        let throughput = cloudlet
            .aggregate_throughput(benchmark, &profile)
            .expect("catalog devices have all four scores");
        let mut calc = CciCalculator::new(benchmark.op_unit())
            .embodied(cloudlet.embodied_bill())
            .average_power(cloudlet.average_power(&profile))
            .grid(self.grid)
            .network(NetworkProfile::wifi(DataRate::from_gigabits_per_sec(0.1)))
            .throughput(throughput)
            .operational_scale(cloudlet.operational_scale())
            .pue(design.pue().value());
        if let Some((per_round, pack_lifetime)) = cloudlet.battery_schedule(&profile) {
            calc = calc.battery_replacement(per_round, pack_lifetime);
        }
        calc
    }

    /// The Table 4 projection: datacenter-scale CCI per unit of work for the
    /// PowerEdge and smartphone designs across the paper's three benchmarks.
    ///
    /// # Errors
    ///
    /// Propagates CCI errors.
    pub fn cci_table(&self) -> Result<Table, CciError> {
        let benchmarks = [Benchmark::Sgemm, Benchmark::PdfRender, Benchmark::Dijkstra];
        let mut table = Table::new(
            "Datacenter-scale three-year CCI (mgCO2e per op)",
            vec![
                "design".into(),
                "SGEMM (mg/gflop)".into(),
                "PDF Render (mg/Mpixel)".into(),
                "Dijkstra (mg/MTE)".into(),
            ],
        );
        for phones in [false, true] {
            let mut row = vec![if phones {
                "Smartphone (54x Pixel 3A clusters)".to_owned()
            } else {
                "PowerEdge R740".to_owned()
            }];
            for benchmark in benchmarks {
                let cci = self
                    .unit_calculator(benchmark, phones)
                    .cci_at(self.lifetime)?;
                row.push(format!("{:.3}", cci.milligrams_per_op()));
            }
            table.push_row(row);
        }
        Ok(table)
    }

    /// Carbon-efficiency advantage (server CCI divided by smartphone CCI)
    /// for one benchmark at the configured lifetime.
    ///
    /// # Errors
    ///
    /// Propagates CCI errors.
    pub fn smartphone_advantage(&self, benchmark: Benchmark) -> Result<f64, CciError> {
        let server = self
            .unit_calculator(benchmark, false)
            .cci_at(self.lifetime)?;
        let phones = self
            .unit_calculator(benchmark, true)
            .cci_at(self.lifetime)?;
        Ok(server.grams_per_op() / phones.grams_per_op())
    }
}

impl Default for DatacenterStudy {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pue_table_matches_paper_band() {
        let table = DatacenterStudy::new().pue_table();
        assert_eq!(table.rows().len(), 2);
        let server_pue: f64 = table.rows()[0][3].parse().unwrap();
        let phone_pue: f64 = table.rows()[1][3].parse().unwrap();
        assert!((server_pue - 1.31).abs() < 0.05);
        assert!((phone_pue - 1.32).abs() < 0.05);
        assert!(phone_pue >= server_pue);
    }

    #[test]
    fn smartphone_design_wins_every_benchmark() {
        let study = DatacenterStudy::new();
        for benchmark in [Benchmark::Sgemm, Benchmark::PdfRender, Benchmark::Dijkstra] {
            let advantage = study.smartphone_advantage(benchmark).unwrap();
            assert!(advantage > 1.0, "{benchmark}: advantage {advantage}");
        }
    }

    #[test]
    fn dijkstra_advantage_is_the_largest() {
        // Table 4's pattern: the gap is widest where the phones' relative
        // throughput is strongest per watt (Dijkstra/PDF) and narrowest for
        // SGEMM.
        let study = DatacenterStudy::new();
        let sgemm = study.smartphone_advantage(Benchmark::Sgemm).unwrap();
        let dijkstra = study.smartphone_advantage(Benchmark::Dijkstra).unwrap();
        assert!(dijkstra > sgemm, "dijkstra {dijkstra} vs sgemm {sgemm}");
    }

    #[test]
    fn cci_table_renders_two_rows() {
        let table = DatacenterStudy::new().cci_table().unwrap();
        assert_eq!(table.rows().len(), 2);
        assert!(table.to_csv().contains("PowerEdge"));
    }
}
