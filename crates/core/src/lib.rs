//! High-level analyses reproducing the Junkyard Computing paper.
//!
//! Each module corresponds to a part of the paper's evaluation and builds on
//! the substrate crates (devices, grid, battery, thermal, cluster,
//! microsim) and the CCI metric crate:
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`tables`] | Figure 1, Tables 1–3 |
//! | [`single_device`] | Figure 2 |
//! | [`thermal_study`] | Figure 3 |
//! | [`charging_study`] | Figure 4 |
//! | [`cluster_cci`] | Figure 5 |
//! | [`energy_mix`] | Figure 6 |
//! | [`datacenter_study`] | Table 4 and the PUE comparison |
//! | [`deployments`], [`cloudlet_study`] | Figures 7, 8 and 9 |
//! | [`fleet_study`] | the coupled carbon-aware fleet extension of Figs. 7–9 |
//! | [`lifecycle_study`] | the multi-year Fig. 7-style amortised CCI trajectory |
//! | [`planner_study`] | the SLO-constrained provisioning search over Figure 7's deployment space |
//! | [`cost_study`] | the Section 6.2 cost comparison |
//!
//! Results are returned as [`report::Table`] and [`report::Chart`] values
//! that the experiment binaries print as text or CSV.
//!
//! # Example
//!
//! ```
//! use junkyard_core::single_device::SingleDeviceStudy;
//! use junkyard_devices::benchmark::Benchmark;
//!
//! let chart = SingleDeviceStudy::new(Benchmark::Dijkstra).run_paper_devices();
//! let pixel = chart.line("Pixel 3A").unwrap().final_value().unwrap();
//! let server = chart.line("PowerEdge R740").unwrap().final_value().unwrap();
//! assert!(pixel < server, "the reused phone should win on carbon per op");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod charging_study;
pub mod cloudlet_study;
pub mod cluster_cci;
pub mod cost_study;
pub mod datacenter_study;
pub mod deployments;
pub mod energy_mix;
pub mod fleet_study;
pub mod lifecycle_study;
pub mod overload_study;
pub mod planner_study;
pub mod report;
pub mod resilience_study;
pub mod single_device;
pub mod tables;
pub mod thermal_study;

pub use charging_study::{ChargingStudy, ChargingStudyResult};
pub use cloudlet_study::{CloudletWorkload, Figure7Result, Figure7Study};
pub use cluster_cci::ClusterCciStudy;
pub use datacenter_study::DatacenterStudy;
pub use deployments::{build_deployment, DeploymentKind};
pub use fleet_study::{FleetStudy, FleetStudyResult};
pub use lifecycle_study::{LifecycleStudy, LifecycleStudyResult};
pub use overload_study::{OverloadCurve, OverloadStudy, OverloadStudyResult};
pub use planner_study::{PlannerStudy, PlannerStudyResult};
pub use report::{Chart, SeriesLine, Table};
pub use resilience_study::{
    availability_nines, ResilienceStudy, ResilienceStudyResult, StrategyOutcome,
};
pub use single_device::SingleDeviceStudy;
pub use thermal_study::{run_thermal_study, ThermalStudyResult};
