//! The carbon-aware fleet study: the paper's cloudlet serving results
//! (Figures 7–9) coupled end to end.
//!
//! Two junk-phone cloudlets sit in two grid regions whose diurnal carbon
//! intensity curves are half a day out of phase (a synthetic CAISO-like
//! grid and its antipodal twin), with a c5.9xlarge datacenter backend on a
//! flat gas-heavy grid. A diurnal compose-post load is routed across the
//! three either with the paper's static capacity-proportional placement or
//! with the carbon-aware policy that fills the cleanest region first; the
//! fleet simulation measures serving performance per window with the
//! compiled microsim engine and integrates operational plus amortised
//! embodied carbon into gCO2e per request.

use junkyard_carbon::embodied::battery_replacement_carbon;
use junkyard_carbon::units::{CarbonIntensity, GramsCo2e, TimeSpan, Watts};
use junkyard_devices::catalog::{self, C5Size};
use junkyard_devices::components::ComponentBreakdown;
use junkyard_fleet::routing::RoutingPolicy;
use junkyard_fleet::schedule::DiurnalSchedule;
use junkyard_fleet::sim::{FleetConfig, FleetResult, FleetSim};
use junkyard_fleet::site::{second_life_embodied, smart_charging_scale, FleetSite, GridRegion};
use junkyard_grid::synth::CaisoSynthesizer;
use junkyard_grid::trace::IntensityTrace;
use junkyard_microsim::app::{social_network, SN_COMPOSE_POST};

use crate::cloudlet_study::CloudletWorkload;
use crate::deployments::{build_deployment, DeploymentError, DeploymentKind};
use crate::report::{Chart, SeriesLine, Table};

/// Serving power per phone under load (Section 6.3).
const PHONE_SERVING_WATTS: f64 = 1.7;
/// Embodied carbon of the cloudlet's server fan, kgCO2e (Section 5.2).
const FAN_EMBODIED_KG: f64 = 9.3;
/// Flat carbon intensity of the datacenter's gas-heavy grid, gCO2e/kWh.
const DATACENTER_GRID_G_PER_KWH: f64 = 420.0;

/// Configuration of the two-region fleet study.
#[derive(Debug, Clone)]
pub struct FleetStudy {
    base_qps: f64,
    days: usize,
    windows_per_day: usize,
    sim_slice_s: f64,
    warmup_s: f64,
    seed: u64,
    parallelism: Option<usize>,
}

impl FleetStudy {
    /// The full-scale study: one simulated day in 24 one-hour windows, a
    /// 4-second measured slice per cell, a 4,000-QPS peak-hour demand.
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            base_qps: 4_000.0,
            days: 1,
            windows_per_day: 24,
            sim_slice_s: 4.0,
            warmup_s: 1.0,
            seed: 42,
            parallelism: None,
        }
    }

    /// A reduced study for quick runs and tests: six 4-hour windows with
    /// short slices.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            base_qps: 4_000.0,
            days: 1,
            windows_per_day: 6,
            sim_slice_s: 1.0,
            warmup_s: 1.0,
            seed: 42,
            parallelism: None,
        }
    }

    /// Overrides the peak-hour fleet demand, requests per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative.
    #[must_use]
    pub fn base_qps(mut self, qps: f64) -> Self {
        assert!(qps >= 0.0, "offered load cannot be negative");
        self.base_qps = qps;
        self
    }

    /// Overrides the number of simulated days.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn days(mut self, days: usize) -> Self {
        assert!(days > 0, "the study needs at least one day");
        self.days = days;
        self
    }

    /// Overrides the random seed (regions, workloads and routing stay
    /// deterministic per seed).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the fleet's worker threads; `1` forces serial runs.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn parallelism(mut self, workers: usize) -> Self {
        assert!(workers > 0, "the study needs at least one worker");
        self.parallelism = Some(workers);
        self
    }

    /// The synthetic two-region pair: a CAISO-like west grid and its
    /// antipodal twin whose day curve is shifted by twelve hours, so the
    /// solar trough of one lines up with the evening peak of the other.
    #[must_use]
    pub fn two_region_traces(&self) -> (IntensityTrace, IntensityTrace) {
        // Smart charging needs at least one full previous day of history.
        let trace_days = self.days.max(2);
        let west = CaisoSynthesizer::new(self.seed, trace_days).intensity_trace();
        let half_day_steps = (TimeSpan::from_hours(12.0).seconds() / west.step().seconds()).round();
        let mut values = west.values().to_vec();
        let shift = half_day_steps as usize % values.len();
        values.rotate_left(shift);
        let east = IntensityTrace::new(west.step(), values);
        (west, east)
    }

    /// Builds one junk-phone cloudlet site on `trace`'s grid.
    ///
    /// Couples all four substrate crates: the compiled microsim serves the
    /// traffic, the grid trace prices each window's energy, the battery
    /// crate's smart-charging policy scales operational carbon, and the
    /// carbon crate's Reuse Factor (Eq. 8) plus battery-replacement
    /// schedule (Eq. 10) set the amortised embodied bill.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] if the cloudlet cannot be assembled.
    pub fn phone_site(
        &self,
        name: &str,
        trace: IntensityTrace,
    ) -> Result<FleetSite, DeploymentError> {
        let app = social_network();
        let sim = build_deployment(DeploymentKind::PhoneCloudlet, &app, 11)?;
        let pixel = catalog::pixel_3a();
        let battery = pixel.battery().expect("the Pixel has a battery");
        let amortization = TimeSpan::from_years(3.0);

        // Embodied: the non-reused component share of ten phones (Reuse
        // Factor, Eq. 8), the new server fan, and the replacement battery
        // packs consumed over the amortisation lifetime (Eq. 10).
        let reuse = pixel
            .components()
            .expect("the Pixel has a component breakdown")
            .reuse_factor(&ComponentBreakdown::compute_node_role());
        let per_phone = second_life_embodied(pixel.embodied(), &reuse);
        let replacements = battery_replacement_carbon(
            battery.embodied(),
            amortization,
            battery.projected_lifetime(Watts::new(PHONE_SERVING_WATTS)),
        );
        let embodied =
            per_phone * 10.0 + GramsCo2e::from_kilograms(FAN_EMBODIED_KG) + replacements * 10.0;

        // Operational: smart charging shifts wall draw into the region's
        // cleanest hours; its median daily saving scales the site's
        // operational carbon (Section 4.3).
        let charging_scale = smart_charging_scale(Watts::new(PHONE_SERVING_WATTS), battery, &trace);

        // Idle/full-load power from the measured Pixel curve, plus the fan.
        let idle = Watts::new(10.0 * pixel.power().idle().value() + 4.0);
        let dynamic = Watts::new(
            10.0 * (pixel.power().at_full_load().value() - pixel.power().idle().value()),
        );

        Ok(FleetSite::new(
            name,
            &sim,
            GridRegion::new(name, trace),
            self.phone_capacity_qps(),
        )
        .request_type(SN_COMPOSE_POST)
        .power(idle, dynamic)
        .embodied(embodied, amortization)
        .operational_scale(charging_scale))
    }

    /// Builds the c5.9xlarge datacenter backend on a flat gas-heavy grid.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] if the deployment cannot be assembled.
    pub fn datacenter_site(&self, name: &str) -> Result<FleetSite, DeploymentError> {
        let app = social_network();
        let sim = build_deployment(DeploymentKind::C5(C5Size::XLarge9), &app, 11)?;
        let c5 = catalog::c5_instance(C5Size::XLarge9);
        let trace_days = self.days.max(2);
        let trace = IntensityTrace::constant(
            CarbonIntensity::from_grams_per_kwh(DATACENTER_GRID_G_PER_KWH),
            TimeSpan::from_hours(1.0),
            TimeSpan::from_days(trace_days as f64),
        );
        // The paper cites 140.7 W at the 10-30 % utilisation it observed;
        // split that into a dominant idle floor plus a utilisation term.
        Ok(FleetSite::new(
            name,
            &sim,
            GridRegion::new("gas-heavy", trace),
            CloudletWorkload::SocialNetworkWrite.paper_c5_9xlarge_qps(),
        )
        .request_type(SN_COMPOSE_POST)
        .power(Watts::new(120.0), Watts::new(90.0))
        .embodied(c5.embodied(), TimeSpan::from_years(4.0)))
    }

    /// Sustainable compose-post throughput of one phone cloudlet (the
    /// paper's measured saturation point).
    #[must_use]
    pub fn phone_capacity_qps(&self) -> f64 {
        CloudletWorkload::SocialNetworkWrite.paper_phone_qps()
    }

    /// Assembles the three-site fleet under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] if any site cannot be built.
    pub fn build_fleet(&self, policy: RoutingPolicy) -> Result<FleetSim, DeploymentError> {
        let (west, east) = self.two_region_traces();
        let sites = vec![
            self.phone_site("cloudlet-west", west)?,
            self.phone_site("cloudlet-east", east)?,
            self.datacenter_site("datacenter")?,
        ];
        let schedule = DiurnalSchedule::office_day(self.base_qps).days(self.days);
        let mut config = FleetConfig::new()
            .windows_per_day(self.windows_per_day)
            .sim_slice_s(self.sim_slice_s)
            .warmup_s(self.warmup_s)
            .seed(self.seed);
        if let Some(workers) = self.parallelism {
            config = config.parallelism(workers);
        }
        Ok(FleetSim::new(sites, schedule, policy, config))
    }

    /// Runs the study: the static-placement baseline and the carbon-aware
    /// policy over the same fleet, schedule and seeds.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] if a deployment cannot be built or a
    /// simulation fails.
    pub fn run(&self) -> Result<FleetStudyResult, DeploymentError> {
        // Build the fleet once — sites (compiled simulations, traces,
        // smart-charging scales) are policy-independent — and rerun it
        // under each routing policy.
        let fleet = self.build_fleet(RoutingPolicy::Static)?;
        let baseline = fleet.run().map_err(DeploymentError::Sim)?;
        let carbon_aware = fleet
            .with_policy(RoutingPolicy::carbon_aware())
            .run()
            .map_err(DeploymentError::Sim)?;
        Ok(FleetStudyResult {
            baseline,
            carbon_aware,
        })
    }
}

/// Result of the fleet study: the same fleet under both routing policies.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStudyResult {
    baseline: FleetResult,
    carbon_aware: FleetResult,
}

impl FleetStudyResult {
    /// The static-placement baseline.
    #[must_use]
    pub fn baseline(&self) -> &FleetResult {
        &self.baseline
    }

    /// The carbon-aware run.
    #[must_use]
    pub fn carbon_aware(&self) -> &FleetResult {
        &self.carbon_aware
    }

    /// Percentage of carbon per request the carbon-aware policy saves over
    /// the static baseline.
    #[must_use]
    pub fn savings_percent(&self) -> f64 {
        let base = self
            .baseline
            .grams_per_request()
            .expect("the study offers traffic");
        let aware = self
            .carbon_aware
            .grams_per_request()
            .expect("the study offers traffic");
        (1.0 - aware / base) * 100.0
    }

    /// Carbon per request over the day, one line per policy.
    #[must_use]
    pub fn chart(&self) -> Chart {
        let mut chart = Chart::new(
            "fleet — carbon per request over the day",
            "window start (hours)",
            "mgCO2e/request",
        );
        for result in [&self.baseline, &self.carbon_aware] {
            let points = (0..result.windows())
                .filter_map(|w| {
                    result
                        .window_grams_per_request(w)
                        .map(|g| (result.window_duration().hours() * w as f64, g * 1_000.0))
                })
                .collect();
            chart.push_line(SeriesLine::new(result.policy().label(), points));
        }
        chart
    }

    /// Per-site accounting table across both policies.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "fleet carbon accounting by site",
            vec![
                "policy".into(),
                "site".into(),
                "requests (M)".into(),
                "carbon (kg)".into(),
                "worst tail (ms)".into(),
            ],
        );
        for result in [&self.baseline, &self.carbon_aware] {
            for (site, name) in result.site_names().iter().enumerate() {
                table.push_row(vec![
                    result.policy().label().to_owned(),
                    name.clone(),
                    format!("{:.3}", result.site_requests(site) / 1e6),
                    format!("{:.2}", result.site_carbon(site).kilograms()),
                    format!("{:.1}", result.site_worst_tail_ms(site)),
                ]);
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carbon_aware_routing_cuts_carbon_per_request() {
        let result = FleetStudy::quick().run().unwrap();
        let base = result.baseline().grams_per_request().unwrap();
        let aware = result.carbon_aware().grams_per_request().unwrap();
        assert!(
            aware < base,
            "carbon-aware {aware} should beat static {base}"
        );
        assert!(result.savings_percent() > 0.0);
        // Both policies serve the same demand, and nothing is shed (the
        // fleet's aggregate capacity covers the evening peak).
        assert!(
            (result.baseline().total_requests() - result.carbon_aware().total_requests()).abs()
                < 1e-6
        );
        assert_eq!(result.baseline().shed_requests(), 0.0);
    }

    #[test]
    fn study_is_deterministic_across_thread_counts() {
        let serial = FleetStudy::quick().parallelism(1).run().unwrap();
        let threaded = FleetStudy::quick().parallelism(4).run().unwrap();
        assert_eq!(serial, threaded);
    }

    #[test]
    fn report_artifacts_cover_both_policies() {
        let result = FleetStudy::quick().run().unwrap();
        let chart = result.chart();
        assert_eq!(chart.lines().len(), 2);
        assert!(chart.line("static").is_some());
        assert!(chart.line("carbon-aware").is_some());
        let table = result.table();
        assert_eq!(table.rows().len(), 6);
    }

    #[test]
    fn two_region_traces_are_half_a_day_out_of_phase() {
        let study = FleetStudy::quick();
        let (west, east) = study.two_region_traces();
        assert_eq!(west.len(), east.len());
        let offset = TimeSpan::from_hours(12.0);
        for h in [0.0, 6.0, 13.0, 20.0] {
            let t = TimeSpan::from_hours(h);
            assert_eq!(west.value_at(t + offset), east.value_at(t));
        }
    }

    #[test]
    fn phone_sites_carry_embodied_and_smart_charging() {
        let study = FleetStudy::quick();
        let (west, _) = study.two_region_traces();
        let site = study.phone_site("west", west).unwrap();
        // Reuse factor < 1 leaves a non-zero embodied share; battery
        // replacements and the fan add to it.
        assert!(site.embodied_total().kilograms() > 9.3);
        // Smart charging saves a few percent of operational carbon.
        let scale = site.operational_scale_factor();
        assert!(scale < 1.0 && scale > 0.8, "scale {scale}");
        assert!(site.idle_power().value() > 0.0);
    }
}
