//! The paper's data tables and capability trends rendered as reports:
//! Figure 1 (phone capability vs T4g instances), Table 1 (GeekBench + N),
//! Table 2 (power vs load) and Table 3 (component carbon + reuse factor).

use junkyard_devices::benchmark::Benchmark;
use junkyard_devices::catalog;
use junkyard_devices::components::{Component, ComponentBreakdown};
use junkyard_devices::power::LoadProfile;
use junkyard_devices::release_db;

use crate::report::{Chart, SeriesLine, Table};

/// Figure 1: yearly mean/min/max phone capability against T4g reference
/// lines, one chart per panel (`performance`, `cores`, `memory`).
#[must_use]
pub fn figure1_charts() -> Vec<Chart> {
    let summaries = release_db::yearly_summaries();
    let years: Vec<f64> = summaries.iter().map(|s| f64::from(s.year())).collect();
    let line = |label: &str, values: Vec<f64>| {
        SeriesLine::new(label, years.iter().copied().zip(values).collect())
    };

    let mut performance = Chart::new(
        "Phone performance vs T4g",
        "year",
        "GeekBench (Core i3 = 1.0)",
    )
    .with_line(line(
        "mean",
        summaries.iter().map(|s| s.performance_mean()).collect(),
    ))
    .with_line(line(
        "min",
        summaries.iter().map(|s| s.performance_min()).collect(),
    ))
    .with_line(line(
        "max",
        summaries.iter().map(|s| s.performance_max()).collect(),
    ));
    let mut cores = Chart::new("Phone cores vs T4g", "year", "cores")
        .with_line(line(
            "mean",
            summaries.iter().map(|s| s.cores_mean()).collect(),
        ))
        .with_line(line(
            "min",
            summaries.iter().map(|s| f64::from(s.cores_min())).collect(),
        ))
        .with_line(line(
            "max",
            summaries.iter().map(|s| f64::from(s.cores_max())).collect(),
        ));
    let mut memory = Chart::new("Phone memory vs T4g", "year", "GiB")
        .with_line(line(
            "min config mean",
            summaries
                .iter()
                .map(|s| s.memory_min_config_mean())
                .collect(),
        ))
        .with_line(line(
            "max config mean",
            summaries
                .iter()
                .map(|s| s.memory_max_config_mean())
                .collect(),
        ));

    for instance in release_db::t4g_instances() {
        let flat =
            |v: f64| SeriesLine::new(instance.name(), years.iter().map(|y| (*y, v)).collect());
        performance.push_line(flat(instance.performance()));
        cores.push_line(flat(f64::from(instance.vcpus())));
        memory.push_line(flat(instance.memory_gib()));
    }
    vec![performance, cores, memory]
}

/// Table 1: GeekBench single/multi-core scores plus the number of devices
/// needed to match the PowerEdge baseline.
#[must_use]
pub fn table1() -> Table {
    let baseline = catalog::poweredge_r740();
    let mut headers = vec!["device".to_owned(), "year".to_owned()];
    for benchmark in Benchmark::ALL {
        headers.push(format!("{benchmark} single"));
        headers.push(format!("{benchmark} multi"));
        headers.push(format!("{benchmark} N"));
    }
    let mut table = Table::new(
        "GeekBench performance and server-equivalence (Table 1)",
        headers,
    );
    for device in catalog::table_devices() {
        let mut row = vec![device.name().to_owned(), device.release_year().to_string()];
        for benchmark in Benchmark::ALL {
            let score = device
                .benchmarks()
                .get(benchmark)
                .expect("catalog is complete");
            row.push(format!("{:.3}", score.single_core()));
            row.push(format!("{:.1}", score.multi_core()));
            let n = device
                .benchmarks()
                .devices_to_match(baseline.benchmarks(), benchmark)
                .expect("catalog is complete");
            row.push(n.to_string());
        }
        table.push_row(row);
    }
    table
}

/// Table 2: power draw at the measured load points and the light-medium
/// average.
#[must_use]
pub fn table2() -> Table {
    let profile = LoadProfile::light_medium();
    let mut table = Table::new(
        "Power versus CPU load (Table 2)",
        vec![
            "device".into(),
            "P100 (W)".into(),
            "P50 (W)".into(),
            "P10 (W)".into(),
            "Pidle (W)".into(),
            "Pavg (W)".into(),
        ],
    );
    for device in catalog::table_devices() {
        let power = device.power();
        table.push_row(vec![
            device.name().to_owned(),
            format!("{:.1}", power.at_full_load().value()),
            format!("{:.1}", power.at_50_percent().value()),
            format!("{:.1}", power.at_10_percent().value()),
            format!("{:.1}", power.idle().value()),
            format!("{:.2}", device.average_power(&profile).value()),
        ]);
    }
    table
}

/// Table 3: the Nexus 4 component carbon attribution, plus the reuse factor
/// of the paper's compute-node scenario.
#[must_use]
pub fn table3() -> (Table, f64) {
    let breakdown = ComponentBreakdown::nexus_4();
    let mut table = Table::new(
        "Nexus 4 component embodied carbon (Table 3)",
        vec![
            "component".into(),
            "kgCO2e".into(),
            "fraction".into(),
            "reused as compute node".into(),
        ],
    );
    let reused_role = ComponentBreakdown::compute_node_role();
    for component in Component::ALL {
        let carbon = breakdown.carbon_of(component);
        table.push_row(vec![
            component.to_string(),
            format!("{:.1}", carbon.kilograms()),
            format!(
                "{:.1}%",
                breakdown.fraction_of(component).unwrap_or(0.0) * 100.0
            ),
            if reused_role.contains(&component) {
                "yes"
            } else {
                "no"
            }
            .to_owned(),
        ]);
    }
    let reuse_factor = breakdown
        .reuse_factor(&reused_role)
        .factor()
        .expect("the breakdown is non-empty");
    (table, reuse_factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_three_panels_with_t4g_lines() {
        let charts = figure1_charts();
        assert_eq!(charts.len(), 3);
        for chart in &charts {
            assert!(chart.lines().len() >= 7, "{}", chart.title());
            assert!(chart.line("t4g.2xlarge").is_some());
        }
    }

    #[test]
    fn table1_has_five_devices_and_n_columns() {
        let table = table1();
        assert_eq!(table.rows().len(), 5);
        assert_eq!(table.headers().len(), 2 + 4 * 3);
        // The Pixel 3A row carries the paper's N = 54 for SGEMM.
        let pixel = table.rows().iter().find(|r| r[0] == "Pixel 3A").unwrap();
        assert_eq!(pixel[4], "54");
    }

    #[test]
    fn table2_average_power_column_matches_paper() {
        let table = table2();
        let poweredge = &table.rows()[0];
        assert_eq!(poweredge[0], "PowerEdge R740");
        let pavg: f64 = poweredge[5].parse().unwrap();
        assert!((pavg - 308.7).abs() < 1.0);
    }

    #[test]
    fn table3_reuse_factor_is_about_085() {
        let (table, rf) = table3();
        assert_eq!(table.rows().len(), 7);
        assert!(rf > 0.80 && rf < 0.90, "rf {rf}");
    }
}
