//! The energy-mix study of Figure 6: how the power regime changes lifetime
//! CCI for a reused Pixel 3A versus a new PowerEdge server (SGEMM).

use junkyard_carbon::cci::CciError;
use junkyard_carbon::units::TimeSpan;
use junkyard_devices::benchmark::Benchmark;
use junkyard_devices::catalog;
use junkyard_grid::regime::PowerRegime;

use crate::report::{Chart, SeriesLine};
use crate::single_device::{device_calculator, lifetime_months_axis};

/// One curve of Figure 6: a device under a power regime, optionally with
/// smart charging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixScenario {
    /// `true` for the reused Pixel 3A, `false` for the new PowerEdge.
    pub pixel: bool,
    /// The energy regime powering the device.
    pub regime: PowerRegime,
    /// Whether smart charging is applied (only meaningful for the Pixel on
    /// the California mix).
    pub smart_charging: bool,
}

impl MixScenario {
    /// Legend label matching the paper's figure.
    #[must_use]
    pub fn label(self) -> String {
        let device = if self.pixel { "Pixel" } else { "Server" };
        let regime = if self.smart_charging {
            "CA + SC".to_owned()
        } else {
            self.regime.label().to_owned()
        };
        format!("[{device}] {regime}")
    }
}

/// The Figure 6 scenario list: Pixel under California, California with smart
/// charging, solar and zero-carbon; PowerEdge under California, solar and
/// zero-carbon.
#[must_use]
pub fn paper_scenarios() -> Vec<MixScenario> {
    let mut scenarios = vec![MixScenario {
        pixel: true,
        regime: PowerRegime::CaliforniaMix,
        smart_charging: false,
    }];
    scenarios.push(MixScenario {
        pixel: true,
        regime: PowerRegime::CaliforniaMix,
        smart_charging: true,
    });
    for regime in [PowerRegime::AlwaysSolar, PowerRegime::ZeroCarbon] {
        scenarios.push(MixScenario {
            pixel: true,
            regime,
            smart_charging: false,
        });
    }
    for regime in PowerRegime::ALL {
        scenarios.push(MixScenario {
            pixel: false,
            regime,
            smart_charging: false,
        });
    }
    scenarios
}

/// Smart-charging saving applied to the Pixel's operational carbon in the
/// "CA + SC" scenario (Section 4.3's 7 % median saving).
pub const PIXEL_SMART_CHARGING_SAVING: f64 = 0.07;

/// Runs the Figure 6 study on the SGEMM benchmark.
///
/// # Errors
///
/// Propagates CCI errors.
pub fn energy_mix_chart() -> Result<Chart, CciError> {
    energy_mix_chart_for(Benchmark::Sgemm, &lifetime_months_axis())
}

/// Runs the energy-mix study for an arbitrary benchmark and lifetime axis.
///
/// # Errors
///
/// Propagates CCI errors.
///
/// # Panics
///
/// Panics if `months` is empty.
pub fn energy_mix_chart_for(benchmark: Benchmark, months: &[f64]) -> Result<Chart, CciError> {
    assert!(!months.is_empty(), "the lifetime axis cannot be empty");
    let pixel = catalog::pixel_3a();
    let server = catalog::poweredge_r740();
    let mut chart = Chart::new(
        format!("Energy mix vs CCI — {benchmark}"),
        "lifetime (months)",
        format!("mgCO2e/{}", benchmark.op_unit()),
    );
    for scenario in paper_scenarios() {
        let device = if scenario.pixel { &pixel } else { &server };
        let mut calc = device_calculator(
            device,
            benchmark,
            scenario.regime.carbon_intensity(),
            scenario.pixel,
        );
        if scenario.smart_charging {
            calc = calc.operational_scale(1.0 - PIXEL_SMART_CHARGING_SAVING);
            if let Some(battery) = device.battery() {
                let profile = junkyard_devices::power::LoadProfile::light_medium();
                calc = calc.battery_replacement(
                    battery.embodied(),
                    battery.projected_lifetime(device.average_power(&profile)),
                );
            }
        }
        let mut points = Vec::with_capacity(months.len());
        for m in months {
            points.push((
                *m,
                calc.cci_at(TimeSpan::from_months(*m))?.milligrams_per_op(),
            ));
        }
        chart.push_line(SeriesLine::new(scenario.label(), points));
    }
    Ok(chart)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleaner_energy_means_lower_cci() {
        let chart = energy_mix_chart().unwrap();
        let ca = chart
            .line("[Pixel] California")
            .unwrap()
            .final_value()
            .unwrap();
        let solar = chart.line("[Pixel] Solar").unwrap().final_value().unwrap();
        let zero = chart
            .line("[Pixel] Z.Carbon")
            .unwrap()
            .final_value()
            .unwrap();
        assert!(solar < ca);
        assert!(zero <= solar);
        // A reused device on a perfectly clean grid has zero CCI.
        assert_eq!(zero, 0.0);
    }

    #[test]
    fn smart_charging_helps_on_the_california_mix() {
        let chart = energy_mix_chart().unwrap();
        let plain = chart.line("[Pixel] California").unwrap().points()[11].1;
        let sc = chart.line("[Pixel] CA + SC").unwrap().points()[11].1;
        assert!(sc < plain, "smart charging {sc} vs plain {plain}");
    }

    #[test]
    fn embodied_carbon_dominates_the_server_on_clean_grids() {
        // Figure 6's point: with zero-carbon energy only manufacturing
        // matters, so the new server keeps a non-zero CCI while the reused
        // phone goes to (near) zero.
        let chart = energy_mix_chart().unwrap();
        let server_zero = chart
            .line("[Server] Z.Carbon")
            .unwrap()
            .final_value()
            .unwrap();
        let pixel_zero = chart
            .line("[Pixel] Z.Carbon")
            .unwrap()
            .final_value()
            .unwrap();
        assert!(server_zero > 0.0);
        assert!(pixel_zero < server_zero);
    }

    #[test]
    fn scenario_labels_match_figure_legend() {
        let labels: Vec<String> = paper_scenarios().iter().map(|s| s.label()).collect();
        assert!(labels.contains(&"[Pixel] CA + SC".to_owned()));
        assert!(labels.contains(&"[Server] California".to_owned()));
        assert_eq!(labels.len(), 7);
    }
}
