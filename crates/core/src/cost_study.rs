//! The Section 6.2 cost comparison: buying and powering the ten-phone
//! cloudlet versus renting a c5.9xlarge for the same deployment length.

use junkyard_carbon::units::{TimeSpan, Watts};
use junkyard_devices::catalog::{self, C5Size};

use crate::report::Table;

/// Default California retail electricity price used by the study, USD/kWh.
pub const CALIFORNIA_ELECTRICITY_USD_PER_KWH: f64 = 0.24;

/// Cost model of one deployment option.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentCost {
    label: String,
    upfront_usd: f64,
    hourly_usd: f64,
    power: Watts,
    electricity_usd_per_kwh: f64,
}

impl DeploymentCost {
    /// Creates a cost model.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        upfront_usd: f64,
        hourly_usd: f64,
        power: Watts,
        electricity_usd_per_kwh: f64,
    ) -> Self {
        Self {
            label: label.into(),
            upfront_usd,
            hourly_usd,
            power,
            electricity_usd_per_kwh,
        }
    }

    /// The ten-phone cloudlet: phones bought second-hand (~$70 each in the
    /// paper), powered at ~1.7 W per phone plus a 4 W fan, paying California
    /// electricity prices.
    #[must_use]
    pub fn phone_cloudlet() -> Self {
        let per_phone = catalog::pixel_3a()
            .purchase_cost_usd()
            .unwrap_or(70.0)
            .max(70.0);
        Self::new(
            "Junkyard cloudlet (10x Pixel 3A)",
            per_phone * 10.0 + 60.0, // phones plus the fan and charging hardware
            0.0,
            Watts::new(1.7 * 10.0 + 4.0),
            CALIFORNIA_ELECTRICITY_USD_PER_KWH,
        )
    }

    /// A rented c5.9xlarge (electricity is included in the hourly price).
    #[must_use]
    pub fn c5_9xlarge() -> Self {
        let c5 = catalog::c5_instance(C5Size::XLarge9);
        Self::new(
            c5.name(),
            0.0,
            c5.hourly_cost_usd().unwrap_or(1.53),
            Watts::ZERO,
            0.0,
        )
    }

    /// Display label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Total cost of ownership over `lifetime`.
    #[must_use]
    pub fn total_over(&self, lifetime: TimeSpan) -> f64 {
        let hours = lifetime.hours();
        let energy_kwh = self.power.value() * hours / 1_000.0;
        self.upfront_usd + self.hourly_usd * hours + energy_kwh * self.electricity_usd_per_kwh
    }
}

/// The Section 6.2 comparison table over a three-year deployment.
#[must_use]
pub fn cost_table(lifetime: TimeSpan) -> Table {
    let mut table = Table::new(
        format!("Deployment cost over {:.1} years", lifetime.years()),
        vec!["option".into(), "upfront USD".into(), "total USD".into()],
    );
    for option in [
        DeploymentCost::phone_cloudlet(),
        DeploymentCost::c5_9xlarge(),
    ] {
        table.push_row(vec![
            option.label().to_owned(),
            format!("{:.2}", option.total_over(TimeSpan::ZERO)),
            format!("{:.2}", option.total_over(lifetime)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phone_cloudlet_costs_about_a_thousand_dollars_over_three_years() {
        // Paper: $1,027.60 for the cloudlet vs $40,404 for the c5.9xlarge.
        let three_years = TimeSpan::from_years(3.0);
        let phones = DeploymentCost::phone_cloudlet().total_over(three_years);
        let c5 = DeploymentCost::c5_9xlarge().total_over(three_years);
        assert!((800.0..=1_300.0).contains(&phones), "phones ${phones:.0}");
        assert!((38_000.0..=42_000.0).contains(&c5), "c5 ${c5:.0}");
        assert!(c5 / phones > 30.0);
    }

    #[test]
    fn upfront_versus_running_split() {
        let phones = DeploymentCost::phone_cloudlet();
        assert!(phones.total_over(TimeSpan::ZERO) >= 700.0);
        let c5 = DeploymentCost::c5_9xlarge();
        assert_eq!(c5.total_over(TimeSpan::ZERO), 0.0);
        // Cloud costs scale linearly with time.
        let one = c5.total_over(TimeSpan::from_years(1.0));
        let two = c5.total_over(TimeSpan::from_years(2.0));
        assert!((two / one - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_both_rows() {
        let table = cost_table(TimeSpan::from_years(3.0));
        assert_eq!(table.rows().len(), 2);
        assert!(table.to_csv().contains("c5.9xlarge"));
    }
}
