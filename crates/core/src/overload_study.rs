//! The overload study: what the Pixel 3A cloudlet does when pushed far
//! past its knee.
//!
//! The paper's Section 6 sweeps stop where the latencies shoot up; this
//! study keeps going. With the microsim's bounded application queues
//! (`ServerModel::with_queue_size`) the cloudlet becomes a loss system,
//! and the interesting questions are *how much* it sheds at 2–10× the
//! sustainable rate and what happens to the latency of the requests it
//! still serves — under each queue discipline (centralized vs
//! distributed FCFS) and core layout (combined vs dedicated network
//! cores).
//!
//! The study first locates the knee of the *default* (unbounded,
//! centralized, combined) deployment with a conventional sweep, then
//! re-sweeps each (discipline × layout) variant with a finite per-queue
//! bound at fixed multiples of that knee. Everything below the knee
//! should be drop-free; everything at ≥2× should shed visibly.

use junkyard_microsim::app::{social_network, SN_COMPOSE_POST};
use junkyard_microsim::sim::{CoreLayout, QueueDiscipline, ServerModel};
use junkyard_microsim::sweep::{LatencyCurve, SweepConfig};

use crate::deployments::{build_deployment, DeploymentError, DeploymentKind};

/// Display label of a queue discipline.
#[must_use]
pub fn discipline_label(discipline: QueueDiscipline) -> &'static str {
    match discipline {
        QueueDiscipline::CentralizedFcfs => "cFCFS",
        QueueDiscipline::DistributedFcfs => "dFCFS",
    }
}

/// Display label of a core layout.
#[must_use]
pub fn layout_label(layout: CoreLayout) -> String {
    match layout {
        CoreLayout::Combined => "combined".to_owned(),
        CoreLayout::Dedicated { network_cores } => format!("dedicated-{network_cores}net"),
    }
}

/// One (discipline, layout) variant's drop/latency curve over the load
/// multipliers.
#[derive(Debug, Clone)]
pub struct OverloadCurve {
    discipline: QueueDiscipline,
    layout: CoreLayout,
    curve: LatencyCurve,
}

impl OverloadCurve {
    /// The queue discipline of the variant.
    #[must_use]
    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// The core layout of the variant.
    #[must_use]
    pub fn layout(&self) -> CoreLayout {
        self.layout
    }

    /// `"cFCFS/combined"`-style display label.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/{}",
            discipline_label(self.discipline),
            layout_label(self.layout)
        )
    }

    /// The measured curve; point order matches the study's multipliers.
    #[must_use]
    pub fn curve(&self) -> &LatencyCurve {
        &self.curve
    }
}

/// Result of an overload study: the baseline knee and one curve per
/// (discipline × layout) variant.
#[derive(Debug, Clone)]
pub struct OverloadStudyResult {
    knee_qps: f64,
    queue_size: usize,
    multipliers: Vec<f64>,
    baseline: LatencyCurve,
    curves: Vec<OverloadCurve>,
}

impl OverloadStudyResult {
    /// The sustainable throughput of the default deployment (median ≤
    /// 100 ms, tail ≤ 200 ms), from which the overload points are scaled.
    #[must_use]
    pub fn knee_qps(&self) -> f64 {
        self.knee_qps
    }

    /// The per-queue bound applied to every overload variant.
    #[must_use]
    pub fn queue_size(&self) -> usize {
        self.queue_size
    }

    /// The load multipliers (× knee) every variant was measured at.
    #[must_use]
    pub fn multipliers(&self) -> &[f64] {
        &self.multipliers
    }

    /// The unbounded default-model sweep the knee was read from.
    #[must_use]
    pub fn baseline(&self) -> &LatencyCurve {
        &self.baseline
    }

    /// One curve per (discipline × layout) variant.
    #[must_use]
    pub fn curves(&self) -> &[OverloadCurve] {
        &self.curves
    }

    /// True when no variant dropped anything strictly below the knee.
    #[must_use]
    pub fn drop_free_below_knee(&self) -> bool {
        self.curves.iter().all(|c| {
            c.curve
                .points()
                .iter()
                .filter(|p| p.qps() < self.knee_qps)
                .all(|p| p.drop_fraction() == 0.0)
        })
    }

    /// True when every variant sheds at every point at or above
    /// `multiplier × knee`.
    #[must_use]
    pub fn all_variants_drop_at(&self, multiplier: f64) -> bool {
        self.curves.iter().all(|c| {
            c.curve
                .points()
                .iter()
                .filter(|p| p.qps() >= multiplier * self.knee_qps - 1e-9)
                .all(|p| p.drop_fraction() > 0.0)
        })
    }
}

/// Configuration of the overload study.
#[derive(Debug, Clone)]
pub struct OverloadStudy {
    baseline_qps_points: Vec<f64>,
    multipliers: Vec<f64>,
    queue_size: usize,
    duration_s: f64,
    warmup_s: f64,
    seed: u64,
}

impl OverloadStudy {
    /// The full study: knee from an 8-point baseline sweep, variants at
    /// 0.25×–10× the knee with 64-deep queues, 5-second measurements.
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            baseline_qps_points: (1..=8).map(|i| f64::from(i) * 700.0).collect(),
            multipliers: vec![0.25, 0.5, 0.75, 2.0, 4.0, 6.0, 8.0, 10.0],
            queue_size: 64,
            duration_s: 5.0,
            warmup_s: 1.0,
            seed: 42,
        }
    }

    /// A reduced study for quick runs, tests and CI smoke.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            baseline_qps_points: vec![1_000.0, 2_000.0, 3_000.0, 4_000.0, 5_000.0],
            multipliers: vec![0.25, 0.5, 2.0, 4.0],
            queue_size: 64,
            duration_s: 2.0,
            warmup_s: 1.0,
            seed: 42,
        }
    }

    /// Overrides the per-queue bound used for the overload variants.
    ///
    /// # Panics
    ///
    /// Panics if zero — a zero-length queue admits only work that starts
    /// immediately, which is a degenerate study.
    #[must_use]
    pub fn queue_size(mut self, slots: usize) -> Self {
        assert!(slots > 0, "the overload study needs at least one slot");
        self.queue_size = slots;
        self
    }

    /// Overrides the load multipliers (× knee).
    ///
    /// # Panics
    ///
    /// Panics if empty.
    #[must_use]
    pub fn multipliers(mut self, multipliers: Vec<f64>) -> Self {
        assert!(!multipliers.is_empty(), "need at least one multiplier");
        self.multipliers = multipliers;
        self
    }

    /// Sets the root seed of every sweep.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the study on the ten-phone SocialNetwork compose-post
    /// deployment.
    ///
    /// # Errors
    ///
    /// Propagates deployment-build and simulation errors.
    pub fn run(&self) -> Result<OverloadStudyResult, DeploymentError> {
        let app = social_network();
        let sweep = |points: Vec<f64>| {
            SweepConfig::new(points, self.duration_s, self.warmup_s)
                .request_type(SN_COMPOSE_POST)
                .seed(self.seed)
        };

        // The knee of the default (unbounded, centralized, combined)
        // deployment anchors every variant's load axis.
        let default_sim = build_deployment(DeploymentKind::PhoneCloudlet, &app, 11)?;
        let baseline = sweep(self.baseline_qps_points.clone())
            .run("baseline", &default_sim)
            .map_err(DeploymentError::Sim)?;
        let knee_qps = baseline
            .max_sustainable_qps(100.0, 200.0)
            .unwrap_or_else(|| {
                // The sweep never crossed the SLO: the knee is beyond the
                // last point, which then serves as a conservative anchor.
                *self
                    .baseline_qps_points
                    .last()
                    .expect("a sweep has at least one point")
            });

        let variants = [
            QueueDiscipline::CentralizedFcfs,
            QueueDiscipline::DistributedFcfs,
        ]
        .into_iter()
        .flat_map(|d| {
            [
                CoreLayout::Combined,
                CoreLayout::Dedicated { network_cores: 2 },
            ]
            .into_iter()
            .map(move |l| (d, l))
        });
        let mut curves = Vec::new();
        for (discipline, layout) in variants {
            let model = ServerModel::new()
                .with_discipline(discipline)
                .with_layout(layout)
                .with_queue_size(Some(self.queue_size));
            let sim =
                build_deployment(DeploymentKind::PhoneCloudlet, &app, 11)?.with_server_model(model);
            let points: Vec<f64> = self.multipliers.iter().map(|m| m * knee_qps).collect();
            let label = format!("{}/{}", discipline_label(discipline), layout_label(layout));
            let curve = sweep(points)
                .run(&label, &sim)
                .map_err(DeploymentError::Sim)?;
            curves.push(OverloadCurve {
                discipline,
                layout,
                curve,
            });
        }
        Ok(OverloadStudyResult {
            knee_qps,
            queue_size: self.queue_size,
            multipliers: self.multipliers.clone(),
            baseline,
            curves,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_every_variant() {
        assert_eq!(discipline_label(QueueDiscipline::CentralizedFcfs), "cFCFS");
        assert_eq!(discipline_label(QueueDiscipline::DistributedFcfs), "dFCFS");
        assert_eq!(layout_label(CoreLayout::Combined), "combined");
        assert_eq!(
            layout_label(CoreLayout::Dedicated { network_cores: 2 }),
            "dedicated-2net"
        );
    }

    #[test]
    #[should_panic(expected = "at least one multiplier")]
    fn empty_multipliers_panic() {
        let _ = OverloadStudy::quick().multipliers(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_queue_panics() {
        let _ = OverloadStudy::quick().queue_size(0);
    }
}
