//! The thermal study of Figure 3: the Styrofoam-box stress test under full
//! load and under the light-medium duty cycle, plus the derived cooling plan
//! for larger cloudlets.

use junkyard_carbon::units::Watts;
use junkyard_devices::power::LoadProfile;
use junkyard_thermal::cooling::{CoolingPlan, ServerFan};
use junkyard_thermal::sim::{StressTest, ThermalTimeline};

use crate::report::{Chart, SeriesLine, Table};

/// Result of the two-scenario thermal study.
#[derive(Debug, Clone)]
pub struct ThermalStudyResult {
    full_load: ThermalTimeline,
    light_medium: ThermalTimeline,
    full_load_thermal_power_per_device: Watts,
    light_medium_thermal_power_per_device: Watts,
}

/// Runs the paper's thermal experiment: four Nexus 4s and a Nexus 5 in the
/// sealed box, once at 100 % load and once on the light-medium duty cycle.
#[must_use]
pub fn run_thermal_study() -> ThermalStudyResult {
    let run = |profile: LoadProfile| {
        let test = StressTest::paper_setup(profile);
        let timeline = test.run();
        let per_device = timeline
            .thermal_power(test.enclosure(), &test.models())
            .value()
            / test.phones().len() as f64;
        (timeline, Watts::new(per_device))
    };
    let (full_load, full_power) = run(LoadProfile::full_load());
    let (light_medium, light_power) = run(LoadProfile::light_medium());
    ThermalStudyResult {
        full_load,
        light_medium,
        full_load_thermal_power_per_device: full_power,
        light_medium_thermal_power_per_device: light_power,
    }
}

impl ThermalStudyResult {
    /// The 100 %-load timeline (Figure 3a).
    #[must_use]
    pub fn full_load(&self) -> &ThermalTimeline {
        &self.full_load
    }

    /// The light-medium timeline (Figure 3b).
    #[must_use]
    pub fn light_medium(&self) -> &ThermalTimeline {
        &self.light_medium
    }

    /// Per-device thermal power at 100 % load (the paper measures ≈2.6 W).
    #[must_use]
    pub fn full_load_thermal_power_per_device(&self) -> Watts {
        self.full_load_thermal_power_per_device
    }

    /// Per-device thermal power on the light-medium cycle (≈1.2 W).
    #[must_use]
    pub fn light_medium_thermal_power_per_device(&self) -> Watts {
        self.light_medium_thermal_power_per_device
    }

    /// Renders one scenario as a chart: air temperature plus each phone's
    /// internal temperature over time.
    #[must_use]
    pub fn temperature_chart(&self, full_load: bool) -> Chart {
        let timeline = if full_load {
            &self.full_load
        } else {
            &self.light_medium
        };
        let label = if full_load {
            "100% load"
        } else {
            "light-medium"
        };
        let step_min = timeline.step().minutes();
        let mut chart = Chart::new(
            format!("Thermal stress test — {label}"),
            "time (minutes)",
            "temperature (C)",
        );
        chart.push_line(SeriesLine::new(
            "Air Temp",
            timeline
                .air_temperatures()
                .iter()
                .enumerate()
                .map(|(i, t)| (i as f64 * step_min, *t))
                .collect(),
        ));
        for phone in timeline.phones() {
            chart.push_line(SeriesLine::new(
                phone.label(),
                phone
                    .temperatures()
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (i as f64 * step_min, *t))
                    .collect(),
            ));
        }
        chart
    }

    /// Summary table: shutdowns, peak temperatures and thermal power for the
    /// two scenarios, plus the 256-phone cooling plan of Section 4.1.
    #[must_use]
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(
            "Thermal stress test summary",
            vec![
                "scenario".into(),
                "shutdowns".into(),
                "peak air C".into(),
                "thermal W/device".into(),
            ],
        );
        table.push_row(vec![
            "100% load".into(),
            self.full_load.shutdown_count().to_string(),
            format!("{:.1}", self.full_load.peak_air_temperature()),
            format!("{:.2}", self.full_load_thermal_power_per_device.value()),
        ]);
        table.push_row(vec![
            "light-medium".into(),
            self.light_medium.shutdown_count().to_string(),
            format!("{:.1}", self.light_medium.peak_air_temperature()),
            format!("{:.2}", self.light_medium_thermal_power_per_device.value()),
        ]);
        table
    }

    /// The Section 4.1 scale-up estimate: cooling plan for a 256-phone
    /// cloudlet at the measured full-load thermal power (two fans in the
    /// paper).
    #[must_use]
    pub fn cloudlet_cooling_plan(&self) -> CoolingPlan {
        CoolingPlan::for_cluster(
            ServerFan::paper_cots_fan(),
            256,
            self.full_load_thermal_power_per_device,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_reproduces_the_papers_qualitative_findings() {
        let result = run_thermal_study();
        // (a) Nexus 4s protect themselves under sustained full load.
        assert!(result.full_load().shutdown_count() >= 1);
        // (c) performance/temperature is worse at full load than light-medium.
        assert!(
            result.full_load().peak_air_temperature()
                > result.light_medium().peak_air_temperature()
        );
        // (d) thermal power stays below the 5 W TDP.
        assert!(result.full_load_thermal_power_per_device().value() < 5.0);
        assert!(
            result.light_medium_thermal_power_per_device().value()
                < result.full_load_thermal_power_per_device().value()
        );
    }

    #[test]
    fn cooling_plan_needs_one_or_two_fans() {
        let plan = run_thermal_study().cloudlet_cooling_plan();
        assert!(
            plan.fans_needed() >= 1 && plan.fans_needed() <= 2,
            "{}",
            plan.fans_needed()
        );
    }

    #[test]
    fn charts_and_table_render() {
        let result = run_thermal_study();
        let chart = result.temperature_chart(true);
        assert_eq!(chart.lines().len(), 6); // air + 5 phones
        assert!(chart.line("Air Temp").is_some());
        let table = result.summary_table();
        assert_eq!(table.rows().len(), 2);
    }
}
