//! Ready-made simulation deployments for the Section 6 evaluation: the
//! ten-phone junkyard cloudlet and the EC2 C5 comparison instances.

use junkyard_devices::catalog::C5Size;
use junkyard_microsim::app::Application;
use junkyard_microsim::network::NetworkModel;
use junkyard_microsim::node::{ten_pixel_cloudlet, NodeSpec};
use junkyard_microsim::placement::{Placement, PlacementError};
use junkyard_microsim::sim::{SimError, Simulation};

/// Identifies one of the deployments compared in Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DeploymentKind {
    /// The ten-phone Pixel 3A cloudlet over WiFi.
    PhoneCloudlet,
    /// A single EC2 C5 instance with a colocated load generator.
    C5(C5Size),
}

impl DeploymentKind {
    /// All deployments of Figure 7, phones first.
    #[must_use]
    pub fn figure7_set() -> Vec<DeploymentKind> {
        let mut set = vec![DeploymentKind::PhoneCloudlet];
        set.extend(C5Size::ALL.iter().map(|s| DeploymentKind::C5(*s)));
        set
    }

    /// Display label used in figure legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DeploymentKind::PhoneCloudlet => "Phones",
            DeploymentKind::C5(size) => size.label(),
        }
    }
}

/// Errors raised while building a deployment.
#[derive(Debug)]
pub enum DeploymentError {
    /// Service placement failed.
    Placement(PlacementError),
    /// Simulation assembly failed.
    Sim(SimError),
    /// A fleet site was configured with an option that does not apply to
    /// its backend kind (e.g. device failures on a leased site).
    SiteConfig(junkyard_fleet::lifecycle::SiteConfigError),
}

impl std::fmt::Display for DeploymentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeploymentError::Placement(e) => write!(f, "placement failed: {e}"),
            DeploymentError::Sim(e) => write!(f, "simulation setup failed: {e}"),
            DeploymentError::SiteConfig(e) => write!(f, "site configuration rejected: {e}"),
        }
    }
}

impl std::error::Error for DeploymentError {}

impl From<junkyard_fleet::lifecycle::SiteConfigError> for DeploymentError {
    fn from(value: junkyard_fleet::lifecycle::SiteConfigError) -> Self {
        DeploymentError::SiteConfig(value)
    }
}

impl From<PlacementError> for DeploymentError {
    fn from(value: PlacementError) -> Self {
        DeploymentError::Placement(value)
    }
}

impl From<SimError> for DeploymentError {
    fn from(value: SimError) -> Self {
        DeploymentError::Sim(value)
    }
}

/// Builds the simulation for one deployment of an application.
///
/// The phone cloudlet spreads services across ten Pixel 3A nodes with the
/// swarm scheduler and talks over shared WiFi; the C5 deployments place
/// everything on one node over loopback and colocate the load generator, as
/// in the paper's methodology.
///
/// # Errors
///
/// Returns [`DeploymentError`] if placement or simulation assembly fails.
pub fn build_deployment(
    kind: DeploymentKind,
    app: &Application,
    seed: u64,
) -> Result<Simulation, DeploymentError> {
    match kind {
        DeploymentKind::PhoneCloudlet => {
            let nodes = ten_pixel_cloudlet();
            let placement = Placement::swarm_spread(app, &nodes, seed)?;
            Ok(Simulation::new(
                app.clone(),
                nodes,
                placement,
                NetworkModel::phone_wifi(),
            )?)
        }
        DeploymentKind::C5(size) => {
            let device = junkyard_devices::catalog::c5_instance(size);
            let node = NodeSpec::c5(device.name(), device.cores(), device.memory_gib());
            let placement = Placement::single_node(app);
            Ok(Simulation::new(
                app.clone(),
                vec![node],
                placement,
                NetworkModel::single_node_loopback(),
            )?
            .with_colocated_client(true))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use junkyard_microsim::app::hotel_reservation;

    #[test]
    fn figure7_set_has_four_deployments() {
        let set = DeploymentKind::figure7_set();
        assert_eq!(set.len(), 4);
        assert_eq!(set[0].label(), "Phones");
        assert_eq!(set[3].label(), "c5.12xlarge");
    }

    #[test]
    fn phone_deployment_spreads_across_ten_nodes() {
        let sim =
            build_deployment(DeploymentKind::PhoneCloudlet, &hotel_reservation(), 11).unwrap();
        assert_eq!(sim.nodes().len(), 10);
        let occupied = (0..10)
            .filter(|n| !sim.placement().services_on(*n).is_empty())
            .count();
        assert_eq!(occupied, 10);
    }

    #[test]
    fn c5_deployment_is_a_single_colocated_node() {
        let sim = build_deployment(
            DeploymentKind::C5(C5Size::XLarge9),
            &hotel_reservation(),
            11,
        )
        .unwrap();
        assert_eq!(sim.nodes().len(), 1);
        assert_eq!(sim.nodes()[0].cores(), 36);
        assert_eq!(
            sim.placement().services_on(0).len(),
            hotel_reservation().services().len()
        );
    }
}
