//! Grid carbon-intensity substrate for the Junkyard Computing reproduction.
//!
//! The operational carbon of a device depends on when and where its energy
//! comes from. This crate models that supply side:
//!
//! * [`sources`] — generation sources and their life-cycle carbon
//!   intensities, plus instantaneous generation mixes.
//! * [`trace`] — fixed-step carbon-intensity time series with the
//!   percentile/day-slicing operations the smart-charging heuristic needs.
//! * [`synth`] — a seeded synthetic CAISO-like generator reproducing the
//!   diurnal structure of the California grid (the paper's Figure 4a data).
//! * [`regime`] — the three power regimes of the evaluation (California
//!   mix, always-solar, zero-carbon).
//!
//! # Example
//!
//! ```
//! use junkyard_grid::synth::CaisoSynthesizer;
//!
//! let trace = CaisoSynthesizer::april_2021_like(42).intensity_trace();
//! // The synthetic month is calibrated to the paper's 257 gCO2e/kWh mean.
//! assert!((trace.mean().grams_per_kwh() - 257.0).abs() < 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod regime;
pub mod sources;
pub mod synth;
pub mod trace;

pub use regime::PowerRegime;
pub use sources::{EnergySource, GenerationMix};
pub use synth::CaisoSynthesizer;
pub use trace::IntensityTrace;
