//! Energy sources and their carbon intensities.
//!
//! Section 5.1 of the paper: solar emits about 48 gCO2e/kWh over its life
//! cycle, gas about 602, and the California grid mix averages 257. The
//! [`EnergySource`] enum carries life-cycle intensities for the generation
//! types that appear in the CAISO supply data (Figure 4a).

use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::units::CarbonIntensity;

/// A grid generation source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EnergySource {
    /// Utility-scale photovoltaics.
    Solar,
    /// Onshore wind.
    Wind,
    /// Natural-gas turbines.
    Gas,
    /// Hydroelectric generation.
    Hydro,
    /// Net imports from neighbouring grids (mixed provenance).
    Import,
    /// Nuclear generation.
    Nuclear,
    /// Geothermal and other renewables.
    Geothermal,
}

impl EnergySource {
    /// The sources shown in the paper's CAISO supply plot (Figure 4a).
    pub const CAISO: [EnergySource; 5] = [
        EnergySource::Solar,
        EnergySource::Wind,
        EnergySource::Gas,
        EnergySource::Hydro,
        EnergySource::Import,
    ];

    /// Life-cycle carbon intensity of the source.
    ///
    /// Solar and gas use the figures quoted in Section 5.1; the remaining
    /// values are standard life-cycle estimates (documented in `DESIGN.md`).
    #[must_use]
    pub fn carbon_intensity(self) -> CarbonIntensity {
        let grams_per_kwh = match self {
            EnergySource::Solar => 48.0,
            EnergySource::Wind => 11.0,
            EnergySource::Gas => 602.0,
            EnergySource::Hydro => 24.0,
            EnergySource::Import => 430.0,
            EnergySource::Nuclear => 12.0,
            EnergySource::Geothermal => 38.0,
        };
        CarbonIntensity::from_grams_per_kwh(grams_per_kwh)
    }

    /// Human-readable source name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EnergySource::Solar => "solar",
            EnergySource::Wind => "wind",
            EnergySource::Gas => "gas",
            EnergySource::Hydro => "hydro",
            EnergySource::Import => "import",
            EnergySource::Nuclear => "nuclear",
            EnergySource::Geothermal => "geothermal",
        }
    }
}

impl fmt::Display for EnergySource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An instantaneous generation mix: how many gigawatts each source supplies.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GenerationMix {
    entries: Vec<(EnergySource, f64)>,
}

impl GenerationMix {
    /// Creates an empty mix.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `gigawatts` of generation from `source` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `gigawatts` is negative.
    #[must_use]
    pub fn with(mut self, source: EnergySource, gigawatts: f64) -> Self {
        self.add(source, gigawatts);
        self
    }

    /// Adds `gigawatts` of generation from `source` in place.
    ///
    /// # Panics
    ///
    /// Panics if `gigawatts` is negative.
    pub fn add(&mut self, source: EnergySource, gigawatts: f64) {
        assert!(gigawatts >= 0.0, "generation cannot be negative");
        if let Some(entry) = self.entries.iter_mut().find(|(s, _)| *s == source) {
            entry.1 += gigawatts;
        } else {
            self.entries.push((source, gigawatts));
        }
    }

    /// Gigawatts supplied by `source` (zero if absent).
    #[must_use]
    pub fn gigawatts_of(&self, source: EnergySource) -> f64 {
        self.entries
            .iter()
            .find(|(s, _)| *s == source)
            .map_or(0.0, |(_, gw)| *gw)
    }

    /// Total generation in gigawatts.
    #[must_use]
    pub fn total_gigawatts(&self) -> f64 {
        self.entries.iter().map(|(_, gw)| gw).sum()
    }

    /// Iterates over `(source, gigawatts)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EnergySource, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Generation-weighted average carbon intensity of the mix.
    /// Returns `None` when there is no generation at all.
    #[must_use]
    pub fn carbon_intensity(&self) -> Option<CarbonIntensity> {
        let total = self.total_gigawatts();
        if total <= 0.0 {
            return None;
        }
        let weighted: f64 = self
            .entries
            .iter()
            .map(|(source, gw)| source.carbon_intensity().grams_per_kwh() * gw)
            .sum();
        Some(CarbonIntensity::from_grams_per_kwh(weighted / total))
    }

    /// Fraction of generation that is renewable (solar, wind, hydro,
    /// geothermal). Returns `None` when there is no generation.
    #[must_use]
    pub fn renewable_fraction(&self) -> Option<f64> {
        let total = self.total_gigawatts();
        if total <= 0.0 {
            return None;
        }
        let renewable: f64 = self
            .entries
            .iter()
            .filter(|(source, _)| {
                matches!(
                    source,
                    EnergySource::Solar
                        | EnergySource::Wind
                        | EnergySource::Hydro
                        | EnergySource::Geothermal
                )
            })
            .map(|(_, gw)| gw)
            .sum();
        Some(renewable / total)
    }
}

impl FromIterator<(EnergySource, f64)> for GenerationMix {
    fn from_iter<T: IntoIterator<Item = (EnergySource, f64)>>(iter: T) -> Self {
        let mut mix = Self::new();
        for (source, gw) in iter {
            mix.add(source, gw);
        }
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_intensities_for_solar_and_gas() {
        assert!((EnergySource::Solar.carbon_intensity().grams_per_kwh() - 48.0).abs() < 1e-12);
        assert!((EnergySource::Gas.carbon_intensity().grams_per_kwh() - 602.0).abs() < 1e-12);
    }

    #[test]
    fn pure_solar_mix_matches_solar_intensity() {
        let mix = GenerationMix::new().with(EnergySource::Solar, 10.0);
        assert!((mix.carbon_intensity().unwrap().grams_per_kwh() - 48.0).abs() < 1e-12);
        assert!((mix.renewable_fraction().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_intensity_is_weighted_average() {
        let mix = GenerationMix::new()
            .with(EnergySource::Solar, 5.0)
            .with(EnergySource::Gas, 5.0);
        let ci = mix.carbon_intensity().unwrap().grams_per_kwh();
        assert!((ci - (48.0 + 602.0) / 2.0).abs() < 1e-9);
        assert!((mix.renewable_fraction().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_mix_has_no_intensity() {
        assert!(GenerationMix::new().carbon_intensity().is_none());
        assert!(GenerationMix::new().renewable_fraction().is_none());
        assert_eq!(GenerationMix::new().total_gigawatts(), 0.0);
    }

    #[test]
    fn adding_same_source_accumulates() {
        let mut mix = GenerationMix::new();
        mix.add(EnergySource::Wind, 1.0);
        mix.add(EnergySource::Wind, 2.0);
        assert!((mix.gigawatts_of(EnergySource::Wind) - 3.0).abs() < 1e-12);
        assert_eq!(mix.iter().count(), 1);
    }

    #[test]
    fn collect_from_pairs() {
        let mix: GenerationMix = [(EnergySource::Gas, 8.0), (EnergySource::Solar, 2.0)]
            .into_iter()
            .collect();
        assert!((mix.total_gigawatts() - 10.0).abs() < 1e-12);
        let ci = mix.carbon_intensity().unwrap().grams_per_kwh();
        assert!(ci > 400.0 && ci < 602.0);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_generation_panics() {
        let _ = GenerationMix::new().with(EnergySource::Gas, -1.0);
    }

    #[test]
    fn source_names() {
        assert_eq!(EnergySource::Solar.to_string(), "solar");
        assert_eq!(EnergySource::CAISO.len(), 5);
    }
}
