//! The three power regimes the paper evaluates (Section 5.1, Figure 6).

use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::convert::count_f64;
use junkyard_carbon::units::{CarbonIntensity, TimeSpan};

use crate::synth::CaisoSynthesizer;
use crate::trace::IntensityTrace;

/// An energy-supply regime for powering a device or cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PowerRegime {
    /// The California grid mix (mean 257 gCO2e/kWh).
    CaliforniaMix,
    /// Solar energy available 100 % of the time (48 gCO2e/kWh, the
    /// life-cycle intensity of photovoltaics).
    AlwaysSolar,
    /// A theoretical perfectly carbon-free source (0 gCO2e/kWh); a lower
    /// bound in which only embodied carbon matters.
    ZeroCarbon,
}

impl PowerRegime {
    /// The regimes plotted in Figure 6, in the paper's order.
    pub const ALL: [PowerRegime; 3] = [
        PowerRegime::CaliforniaMix,
        PowerRegime::AlwaysSolar,
        PowerRegime::ZeroCarbon,
    ];

    /// Mean carbon intensity of the regime.
    #[must_use]
    pub fn carbon_intensity(self) -> CarbonIntensity {
        match self {
            PowerRegime::CaliforniaMix => CarbonIntensity::from_grams_per_kwh(257.0),
            PowerRegime::AlwaysSolar => CarbonIntensity::from_grams_per_kwh(48.0),
            PowerRegime::ZeroCarbon => CarbonIntensity::ZERO,
        }
    }

    /// Whether smart charging can save carbon in this regime: only the
    /// time-varying California mix has diurnal structure to exploit.
    #[must_use]
    pub fn supports_smart_charging(self) -> bool {
        matches!(self, PowerRegime::CaliforniaMix)
    }

    /// A representative intensity trace for the regime covering `days` days
    /// (seeded for reproducibility). California uses the synthetic CAISO
    /// generator; the other regimes are flat.
    ///
    /// # Panics
    ///
    /// Panics if `days` is zero.
    #[must_use]
    pub fn trace(self, seed: u64, days: usize) -> IntensityTrace {
        assert!(days > 0, "need at least one day");
        match self {
            PowerRegime::CaliforniaMix => CaisoSynthesizer::new(seed, days).intensity_trace(),
            PowerRegime::AlwaysSolar | PowerRegime::ZeroCarbon => IntensityTrace::constant(
                self.carbon_intensity(),
                TimeSpan::from_minutes(5.0),
                TimeSpan::from_days(count_f64(days)),
            ),
        }
    }

    /// Short label used in figure legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PowerRegime::CaliforniaMix => "California",
            PowerRegime::AlwaysSolar => "Solar",
            PowerRegime::ZeroCarbon => "Z.Carbon",
        }
    }
}

impl fmt::Display for PowerRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensities_match_paper() {
        assert!(
            (PowerRegime::CaliforniaMix
                .carbon_intensity()
                .grams_per_kwh()
                - 257.0)
                .abs()
                < 1e-9
        );
        assert!((PowerRegime::AlwaysSolar.carbon_intensity().grams_per_kwh() - 48.0).abs() < 1e-9);
        assert_eq!(
            PowerRegime::ZeroCarbon.carbon_intensity(),
            CarbonIntensity::ZERO
        );
    }

    #[test]
    fn only_california_supports_smart_charging() {
        assert!(PowerRegime::CaliforniaMix.supports_smart_charging());
        assert!(!PowerRegime::AlwaysSolar.supports_smart_charging());
        assert!(!PowerRegime::ZeroCarbon.supports_smart_charging());
    }

    #[test]
    fn traces_have_expected_means() {
        let ca = PowerRegime::CaliforniaMix.trace(5, 7);
        assert!((ca.mean().grams_per_kwh() - 257.0).abs() < 2.0);
        let solar = PowerRegime::AlwaysSolar.trace(5, 7);
        assert_eq!(solar.min(), solar.max());
        assert!((solar.mean().grams_per_kwh() - 48.0).abs() < 1e-9);
        let zero = PowerRegime::ZeroCarbon.trace(5, 7);
        assert_eq!(zero.mean(), CarbonIntensity::ZERO);
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(PowerRegime::CaliforniaMix.to_string(), "California");
        assert_eq!(PowerRegime::ZeroCarbon.to_string(), "Z.Carbon");
        assert_eq!(PowerRegime::ALL.len(), 3);
    }
}
