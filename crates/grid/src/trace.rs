//! Time series of grid carbon intensity.
//!
//! The smart-charging heuristic (Section 4.3) consumes a per-day carbon
//! intensity trace: it sets the charging threshold at a percentile of the
//! *previous* day's intensities and charges whenever the current intensity
//! falls below it. [`IntensityTrace`] stores a fixed-step series and provides
//! the day slicing, percentile and averaging operations that algorithm and
//! the Figure 4 reproduction need.

use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::convert::{ceil_index, count_f64, floor_index, percentile_rank, round_count};
use junkyard_carbon::units::{CarbonIntensity, TimeSpan};

/// A fixed-step time series of grid carbon intensity.
///
/// # Rounding rule
///
/// A trace quantises time to whole steps. Constructors that take a target
/// duration ([`IntensityTrace::constant`]) round the sample count *up*, so
/// the covered span is at least the requested duration and exceeds it by
/// less than one step. [`IntensityTrace::duration`] always reports the
/// exact covered span (`step * len`), and the day operations
/// ([`IntensityTrace::day_count`], [`IntensityTrace::day`]) agree with each
/// other: a "day" is `round(86 400 s / step)` samples (exact whenever the
/// step divides a day evenly) and `day_count` is precisely the number of
/// indices for which `day(i)` returns `Some`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntensityTrace {
    step: TimeSpan,
    values: Vec<CarbonIntensity>,
}

impl IntensityTrace {
    /// Creates a trace from a fixed step and a vector of samples.
    ///
    /// # Panics
    ///
    /// Panics if the step is not strictly positive or the sample vector is
    /// empty.
    #[must_use]
    pub fn new(step: TimeSpan, values: Vec<CarbonIntensity>) -> Self {
        assert!(step.seconds() > 0.0, "trace step must be positive");
        assert!(!values.is_empty(), "trace must contain at least one sample");
        Self { step, values }
    }

    /// A flat trace at a constant intensity covering `duration`.
    ///
    /// The sample count is rounded *up* to the next whole step (see the
    /// type-level rounding rule), so [`IntensityTrace::duration`] may report
    /// up to one step more than requested when `duration` is not a multiple
    /// of `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` or `duration` is not strictly positive.
    #[must_use]
    pub fn constant(intensity: CarbonIntensity, step: TimeSpan, duration: TimeSpan) -> Self {
        assert!(duration.seconds() > 0.0, "duration must be positive");
        let samples = ceil_index(duration.seconds() / step.seconds()).max(1);
        Self::new(step, vec![intensity; samples])
    }

    /// The sampling step.
    #[must_use]
    pub fn step(&self) -> TimeSpan {
        self.step
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the trace has no samples (never true for constructed
    /// traces, but required by convention alongside `len`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total duration covered by the trace: exactly `step * len`. For
    /// traces built by [`IntensityTrace::constant`] with a non-aligned
    /// duration this exceeds the requested duration by less than one step.
    #[must_use]
    pub fn duration(&self) -> TimeSpan {
        TimeSpan::from_secs(self.step.seconds() * count_f64(self.values.len()))
    }

    /// The raw samples.
    #[must_use]
    pub fn values(&self) -> &[CarbonIntensity] {
        &self.values
    }

    /// Sample at the given offset from the start of the trace. Offsets past
    /// the end wrap around (the synthetic traces are periodic by day), and
    /// negative offsets clamp to the first sample.
    #[must_use]
    pub fn value_at(&self, offset: TimeSpan) -> CarbonIntensity {
        if offset.seconds() <= 0.0 {
            return self.values[0];
        }
        let index = floor_index(offset.seconds() / self.step.seconds());
        self.values[index % self.values.len()]
    }

    /// Iterates over `(offset, intensity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TimeSpan, CarbonIntensity)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, v)| (TimeSpan::from_secs(self.step.seconds() * count_f64(i)), *v))
    }

    /// Mean intensity across the trace.
    #[must_use]
    pub fn mean(&self) -> CarbonIntensity {
        let sum: f64 = self.values.iter().map(|v| v.grams_per_kwh()).sum();
        CarbonIntensity::from_grams_per_kwh(sum / count_f64(self.values.len()))
    }

    /// Minimum intensity across the trace.
    #[must_use]
    pub fn min(&self) -> CarbonIntensity {
        CarbonIntensity::from_grams_per_kwh(
            self.values
                .iter()
                .map(|v| v.grams_per_kwh())
                .fold(f64::INFINITY, f64::min),
        )
    }

    /// Maximum intensity across the trace.
    #[must_use]
    pub fn max(&self) -> CarbonIntensity {
        CarbonIntensity::from_grams_per_kwh(
            self.values
                .iter()
                .map(|v| v.grams_per_kwh())
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// The `p`-th percentile (0–100) of the trace's intensities, computed by
    /// linear interpolation between order statistics.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> CarbonIntensity {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        let mut sorted: Vec<f64> = self.values.iter().map(|v| v.grams_per_kwh()).collect();
        sorted.sort_by(f64::total_cmp);
        let (lo, hi, frac) = percentile_rank(p, sorted.len());
        CarbonIntensity::from_grams_per_kwh(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }

    /// Number of samples in one quantised day: `round(86 400 s / step)`,
    /// exact whenever the step divides a day evenly. Zero for steps longer
    /// than ~1.5 days.
    fn samples_per_day(&self) -> usize {
        round_count(TimeSpan::from_days(1.0).seconds() / self.step.seconds())
    }

    /// Number of whole (quantised) days covered by the trace.
    ///
    /// Defined as the number of indices for which [`IntensityTrace::day`]
    /// returns `Some`, so the two can never disagree — previously this
    /// floored `duration().days()` while `day` rounded the per-day sample
    /// count, which diverged for steps that do not divide a day evenly.
    #[must_use]
    pub fn day_count(&self) -> usize {
        self.values
            .len()
            .checked_div(self.samples_per_day())
            .unwrap_or(0)
    }

    /// Extracts one whole day with periodic tiling: day `index` of the
    /// infinitely repeated trace, i.e. `day(index % day_count())`. This is
    /// the day-granular counterpart of [`IntensityTrace::value_at`]'s
    /// wrap-around and what lets a one-month synthetic trace drive a
    /// multi-year lifecycle simulation. Returns `None` only when the trace
    /// covers no whole day at all.
    #[must_use]
    pub fn day_periodic(&self, index: usize) -> Option<IntensityTrace> {
        let count = self.day_count();
        if count == 0 {
            return None;
        }
        self.day(index % count)
    }

    /// Materialises `repeats` periodic copies of the trace back to back —
    /// an explicitly tiled multi-year trace for consumers that need the
    /// samples in memory rather than the implicit wrap-around of
    /// [`IntensityTrace::value_at`] / [`IntensityTrace::day_periodic`].
    ///
    /// # Panics
    ///
    /// Panics if `repeats` is zero.
    #[must_use]
    pub fn tile(&self, repeats: usize) -> IntensityTrace {
        assert!(repeats > 0, "tiling needs at least one repeat");
        let mut values = Vec::with_capacity(self.values.len() * repeats);
        for _ in 0..repeats {
            values.extend_from_slice(&self.values);
        }
        IntensityTrace::new(self.step, values)
    }

    /// Extracts one whole day (day 0 is the first) as its own trace.
    /// Returns `None` if the trace does not cover that day completely —
    /// exactly when `index >= day_count()`.
    #[must_use]
    pub fn day(&self, index: usize) -> Option<IntensityTrace> {
        let per_day = self.samples_per_day();
        if per_day == 0 {
            return None;
        }
        let start = index.checked_mul(per_day)?;
        let end = start.checked_add(per_day)?;
        if end > self.values.len() {
            return None;
        }
        Some(IntensityTrace::new(
            self.step,
            self.values[start..end].to_vec(),
        ))
    }

    /// Time-weighted mean intensity over the offset window `[from, to)`,
    /// with the same periodic wrap-around as [`IntensityTrace::value_at`]
    /// (the synthetic traces are periodic by day). Partial overlaps with a
    /// sample are weighted by the overlapped fraction of the step.
    ///
    /// # Panics
    ///
    /// Panics if `from` is negative or `to <= from`.
    #[must_use]
    pub fn mean_between(&self, from: TimeSpan, to: TimeSpan) -> CarbonIntensity {
        assert!(from.seconds() >= 0.0, "window start cannot be negative");
        assert!(
            to.seconds() > from.seconds(),
            "window end must come after its start"
        );
        let step = self.step.seconds();
        let (a, b) = (from.seconds(), to.seconds());
        let mut weighted = 0.0;
        let mut t = a;
        while t < b - 1e-12 {
            let index = (t / step).floor();
            let segment_end = ((index + 1.0) * step).min(b);
            let value = self.values[floor_index(index) % self.values.len()].grams_per_kwh();
            weighted += value * (segment_end - t);
            t = segment_end;
        }
        CarbonIntensity::from_grams_per_kwh(weighted / (b - a))
    }
}

impl fmt::Display for IntensityTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} samples @ {:.0} s (mean {:.0})",
            self.values.len(),
            self.step.seconds(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> IntensityTrace {
        IntensityTrace::new(
            TimeSpan::from_minutes(5.0),
            (0..n)
                .map(|i| CarbonIntensity::from_grams_per_kwh(i as f64))
                .collect(),
        )
    }

    #[test]
    fn constant_trace_statistics() {
        let trace = IntensityTrace::constant(
            CarbonIntensity::from_grams_per_kwh(257.0),
            TimeSpan::from_minutes(5.0),
            TimeSpan::from_days(1.0),
        );
        assert_eq!(trace.len(), 288);
        assert!((trace.mean().grams_per_kwh() - 257.0).abs() < 1e-9);
        assert_eq!(trace.min(), trace.max());
        assert_eq!(trace.day_count(), 1);
    }

    #[test]
    fn value_at_indexes_and_wraps() {
        let trace = ramp(12);
        assert_eq!(trace.value_at(TimeSpan::ZERO).grams_per_kwh(), 0.0);
        assert_eq!(
            trace.value_at(TimeSpan::from_minutes(7.0)).grams_per_kwh(),
            1.0
        );
        // One full hour wraps back to the start.
        assert_eq!(
            trace.value_at(TimeSpan::from_minutes(60.0)).grams_per_kwh(),
            0.0
        );
        assert_eq!(
            trace.value_at(TimeSpan::from_minutes(-5.0)).grams_per_kwh(),
            0.0
        );
    }

    #[test]
    fn percentiles_interpolate() {
        let trace = ramp(101);
        assert!((trace.percentile(0.0).grams_per_kwh() - 0.0).abs() < 1e-9);
        assert!((trace.percentile(50.0).grams_per_kwh() - 50.0).abs() < 1e-9);
        assert!((trace.percentile(100.0).grams_per_kwh() - 100.0).abs() < 1e-9);
        assert!((trace.percentile(25.0).grams_per_kwh() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn day_slicing() {
        let trace = IntensityTrace::constant(
            CarbonIntensity::from_grams_per_kwh(100.0),
            TimeSpan::from_hours(1.0),
            TimeSpan::from_days(3.0),
        );
        assert_eq!(trace.day_count(), 3);
        let day1 = trace.day(1).unwrap();
        assert_eq!(day1.len(), 24);
        assert!(trace.day(3).is_none());
    }

    #[test]
    fn non_aligned_constant_duration_over_covers_by_less_than_one_step() {
        // 25-minute steps do not divide a day: 57.6 steps are needed, so the
        // trace rounds up to 58 and covers 10 minutes more than requested.
        let step = TimeSpan::from_minutes(25.0);
        let trace = IntensityTrace::constant(
            CarbonIntensity::from_grams_per_kwh(100.0),
            step,
            TimeSpan::from_days(1.0),
        );
        assert_eq!(trace.len(), 58);
        let covered = trace.duration().seconds();
        let requested = TimeSpan::from_days(1.0).seconds();
        assert!(covered >= requested, "must cover the requested duration");
        assert!(covered < requested + step.seconds(), "over by < one step");
    }

    #[test]
    fn day_count_agrees_with_day_slicing_for_non_aligned_steps() {
        // Regression: day_count() used to floor duration().days() while
        // day() rounded the per-day sample count; for a 10-hour step over a
        // 20-hour span day(0) existed but day_count() said zero.
        let trace = IntensityTrace::constant(
            CarbonIntensity::from_grams_per_kwh(100.0),
            TimeSpan::from_hours(10.0),
            TimeSpan::from_hours(20.0),
        );
        assert_eq!(trace.day_count(), 1);
        assert!(trace.day(0).is_some());
        assert!(trace.day(1).is_none());
        // The invariant in general: day(i) exists exactly for i < day_count.
        for (step_h, duration_h) in [(25.0 / 60.0, 24.0), (7.0, 48.0), (11.0, 24.0), (1.0, 36.0)] {
            let trace = IntensityTrace::constant(
                CarbonIntensity::from_grams_per_kwh(100.0),
                TimeSpan::from_hours(step_h),
                TimeSpan::from_hours(duration_h),
            );
            let count = trace.day_count();
            for i in 0..count {
                assert!(trace.day(i).is_some(), "step {step_h} h day {i}");
            }
            assert!(trace.day(count).is_none(), "step {step_h} h day {count}");
        }
    }

    #[test]
    fn periodic_day_tiling_wraps_and_tile_materialises_it() {
        let trace = IntensityTrace::new(
            TimeSpan::from_hours(1.0),
            (0..48)
                .map(|i| CarbonIntensity::from_grams_per_kwh(f64::from(i)))
                .collect(),
        );
        assert_eq!(trace.day_count(), 2);
        // Day 5 of the tiled series replays day 1.
        assert_eq!(trace.day_periodic(5).unwrap(), trace.day(1).unwrap());
        assert_eq!(trace.day_periodic(4).unwrap(), trace.day(0).unwrap());
        // tile() agrees with the implicit wrap, sample by sample.
        let tiled = trace.tile(3);
        assert_eq!(tiled.len(), trace.len() * 3);
        assert_eq!(tiled.day_count(), 6);
        for day in 0..6 {
            assert_eq!(
                tiled.day(day).unwrap(),
                trace.day_periodic(day).unwrap(),
                "day {day}"
            );
        }
        for offset_h in [0.0, 30.0, 47.5, 95.0] {
            let t = TimeSpan::from_hours(offset_h);
            assert_eq!(tiled.value_at(t), trace.value_at(t));
        }
        // A sub-day trace has no periodic day to give.
        let stub = IntensityTrace::constant(
            CarbonIntensity::from_grams_per_kwh(100.0),
            TimeSpan::from_hours(1.0),
            TimeSpan::from_hours(3.0),
        );
        assert!(stub.day_periodic(0).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one repeat")]
    fn zero_tile_panics() {
        let _ = ramp(4).tile(0);
    }

    #[test]
    fn mean_between_weights_partial_steps_and_wraps() {
        let trace = ramp(12); // 0..11 gCO2e/kWh at 5-minute steps, 1 h total.
                              // Whole-sample window.
        let m = trace.mean_between(TimeSpan::ZERO, TimeSpan::from_minutes(10.0));
        assert!((m.grams_per_kwh() - 0.5).abs() < 1e-9);
        // Partial overlap: 2.5 min of sample 0 and 5 min of sample 1.
        let m = trace.mean_between(TimeSpan::from_minutes(2.5), TimeSpan::from_minutes(10.0));
        assert!((m.grams_per_kwh() - (0.0 * 2.5 + 1.0 * 5.0) / 7.5).abs() < 1e-9);
        // Wrap-around: the second hour replays the first.
        let a = trace.mean_between(TimeSpan::ZERO, TimeSpan::from_minutes(30.0));
        let b = trace.mean_between(TimeSpan::from_minutes(60.0), TimeSpan::from_minutes(90.0));
        assert!((a.grams_per_kwh() - b.grams_per_kwh()).abs() < 1e-9);
        // The full-trace window matches mean().
        let full = trace.mean_between(TimeSpan::ZERO, trace.duration());
        assert!((full.grams_per_kwh() - trace.mean().grams_per_kwh()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "window end")]
    fn empty_mean_between_window_panics() {
        let _ = ramp(4).mean_between(TimeSpan::from_minutes(5.0), TimeSpan::from_minutes(5.0));
    }

    #[test]
    fn iter_offsets_are_regular() {
        let trace = ramp(4);
        let offsets: Vec<f64> = trace.iter().map(|(t, _)| t.minutes()).collect();
        assert_eq!(offsets, vec![0.0, 5.0, 10.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_panics() {
        let _ = IntensityTrace::new(TimeSpan::from_minutes(5.0), vec![]);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_panics() {
        let _ = ramp(10).percentile(150.0);
    }
}
