//! Time series of grid carbon intensity.
//!
//! The smart-charging heuristic (Section 4.3) consumes a per-day carbon
//! intensity trace: it sets the charging threshold at a percentile of the
//! *previous* day's intensities and charges whenever the current intensity
//! falls below it. [`IntensityTrace`] stores a fixed-step series and provides
//! the day slicing, percentile and averaging operations that algorithm and
//! the Figure 4 reproduction need.

use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::units::{CarbonIntensity, TimeSpan};

/// A fixed-step time series of grid carbon intensity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntensityTrace {
    step: TimeSpan,
    values: Vec<CarbonIntensity>,
}

impl IntensityTrace {
    /// Creates a trace from a fixed step and a vector of samples.
    ///
    /// # Panics
    ///
    /// Panics if the step is not strictly positive or the sample vector is
    /// empty.
    #[must_use]
    pub fn new(step: TimeSpan, values: Vec<CarbonIntensity>) -> Self {
        assert!(step.seconds() > 0.0, "trace step must be positive");
        assert!(!values.is_empty(), "trace must contain at least one sample");
        Self { step, values }
    }

    /// A flat trace at a constant intensity covering `duration`.
    ///
    /// # Panics
    ///
    /// Panics if `step` or `duration` is not strictly positive.
    #[must_use]
    pub fn constant(intensity: CarbonIntensity, step: TimeSpan, duration: TimeSpan) -> Self {
        assert!(duration.seconds() > 0.0, "duration must be positive");
        let samples = (duration.seconds() / step.seconds()).ceil().max(1.0) as usize;
        Self::new(step, vec![intensity; samples])
    }

    /// The sampling step.
    #[must_use]
    pub fn step(&self) -> TimeSpan {
        self.step
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the trace has no samples (never true for constructed
    /// traces, but required by convention alongside `len`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total duration covered by the trace.
    #[must_use]
    pub fn duration(&self) -> TimeSpan {
        TimeSpan::from_secs(self.step.seconds() * self.values.len() as f64)
    }

    /// The raw samples.
    #[must_use]
    pub fn values(&self) -> &[CarbonIntensity] {
        &self.values
    }

    /// Sample at the given offset from the start of the trace. Offsets past
    /// the end wrap around (the synthetic traces are periodic by day), and
    /// negative offsets clamp to the first sample.
    #[must_use]
    pub fn value_at(&self, offset: TimeSpan) -> CarbonIntensity {
        if offset.seconds() <= 0.0 {
            return self.values[0];
        }
        let index = (offset.seconds() / self.step.seconds()).floor() as usize;
        self.values[index % self.values.len()]
    }

    /// Iterates over `(offset, intensity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TimeSpan, CarbonIntensity)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, v)| (TimeSpan::from_secs(self.step.seconds() * i as f64), *v))
    }

    /// Mean intensity across the trace.
    #[must_use]
    pub fn mean(&self) -> CarbonIntensity {
        let sum: f64 = self.values.iter().map(|v| v.grams_per_kwh()).sum();
        CarbonIntensity::from_grams_per_kwh(sum / self.values.len() as f64)
    }

    /// Minimum intensity across the trace.
    #[must_use]
    pub fn min(&self) -> CarbonIntensity {
        CarbonIntensity::from_grams_per_kwh(
            self.values
                .iter()
                .map(|v| v.grams_per_kwh())
                .fold(f64::INFINITY, f64::min),
        )
    }

    /// Maximum intensity across the trace.
    #[must_use]
    pub fn max(&self) -> CarbonIntensity {
        CarbonIntensity::from_grams_per_kwh(
            self.values
                .iter()
                .map(|v| v.grams_per_kwh())
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// The `p`-th percentile (0–100) of the trace's intensities, computed by
    /// linear interpolation between order statistics.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> CarbonIntensity {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        let mut sorted: Vec<f64> = self.values.iter().map(|v| v.grams_per_kwh()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("intensities are finite"));
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        CarbonIntensity::from_grams_per_kwh(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }

    /// Number of whole days covered by the trace.
    #[must_use]
    pub fn day_count(&self) -> usize {
        (self.duration().days()).floor() as usize
    }

    /// Extracts one whole day (day 0 is the first) as its own trace.
    /// Returns `None` if the trace does not cover that day completely.
    #[must_use]
    pub fn day(&self, index: usize) -> Option<IntensityTrace> {
        let per_day = (TimeSpan::from_days(1.0).seconds() / self.step.seconds()).round() as usize;
        if per_day == 0 {
            return None;
        }
        let start = index.checked_mul(per_day)?;
        let end = start.checked_add(per_day)?;
        if end > self.values.len() {
            return None;
        }
        Some(IntensityTrace::new(
            self.step,
            self.values[start..end].to_vec(),
        ))
    }
}

impl fmt::Display for IntensityTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} samples @ {:.0} s (mean {:.0})",
            self.values.len(),
            self.step.seconds(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> IntensityTrace {
        IntensityTrace::new(
            TimeSpan::from_minutes(5.0),
            (0..n)
                .map(|i| CarbonIntensity::from_grams_per_kwh(i as f64))
                .collect(),
        )
    }

    #[test]
    fn constant_trace_statistics() {
        let trace = IntensityTrace::constant(
            CarbonIntensity::from_grams_per_kwh(257.0),
            TimeSpan::from_minutes(5.0),
            TimeSpan::from_days(1.0),
        );
        assert_eq!(trace.len(), 288);
        assert!((trace.mean().grams_per_kwh() - 257.0).abs() < 1e-9);
        assert_eq!(trace.min(), trace.max());
        assert_eq!(trace.day_count(), 1);
    }

    #[test]
    fn value_at_indexes_and_wraps() {
        let trace = ramp(12);
        assert_eq!(trace.value_at(TimeSpan::ZERO).grams_per_kwh(), 0.0);
        assert_eq!(
            trace.value_at(TimeSpan::from_minutes(7.0)).grams_per_kwh(),
            1.0
        );
        // One full hour wraps back to the start.
        assert_eq!(
            trace.value_at(TimeSpan::from_minutes(60.0)).grams_per_kwh(),
            0.0
        );
        assert_eq!(
            trace.value_at(TimeSpan::from_minutes(-5.0)).grams_per_kwh(),
            0.0
        );
    }

    #[test]
    fn percentiles_interpolate() {
        let trace = ramp(101);
        assert!((trace.percentile(0.0).grams_per_kwh() - 0.0).abs() < 1e-9);
        assert!((trace.percentile(50.0).grams_per_kwh() - 50.0).abs() < 1e-9);
        assert!((trace.percentile(100.0).grams_per_kwh() - 100.0).abs() < 1e-9);
        assert!((trace.percentile(25.0).grams_per_kwh() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn day_slicing() {
        let trace = IntensityTrace::constant(
            CarbonIntensity::from_grams_per_kwh(100.0),
            TimeSpan::from_hours(1.0),
            TimeSpan::from_days(3.0),
        );
        assert_eq!(trace.day_count(), 3);
        let day1 = trace.day(1).unwrap();
        assert_eq!(day1.len(), 24);
        assert!(trace.day(3).is_none());
    }

    #[test]
    fn iter_offsets_are_regular() {
        let trace = ramp(4);
        let offsets: Vec<f64> = trace.iter().map(|(t, _)| t.minutes()).collect();
        assert_eq!(offsets, vec![0.0, 5.0, 10.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_panics() {
        let _ = IntensityTrace::new(TimeSpan::from_minutes(5.0), vec![]);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_panics() {
        let _ = ramp(10).percentile(150.0);
    }
}
