//! Synthetic CAISO-like grid traces.
//!
//! The paper evaluates smart charging against public California ISO supply
//! and carbon-intensity data for April 2021 (Figure 4). That telemetry is
//! not redistributable, so this module synthesises traces with the same
//! structure: a pronounced midday solar trough in carbon intensity
//! (anti-correlated with solar production), a morning and evening peak, and
//! modest day-to-day variation. The generator is seeded and deterministic,
//! and is calibrated so the mean intensity matches the paper's 257 gCO2e/kWh
//! California average.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use junkyard_carbon::convert::{count_f64, round_count};
use junkyard_carbon::units::{CarbonIntensity, TimeSpan};

use crate::sources::{EnergySource, GenerationMix};
use crate::trace::IntensityTrace;

/// Configuration of the synthetic CAISO generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaisoSynthesizer {
    seed: u64,
    days: usize,
    step: TimeSpan,
    mean_intensity: CarbonIntensity,
    solar_depth: f64,
    evening_peak: f64,
    daily_jitter: f64,
}

impl CaisoSynthesizer {
    /// Creates a generator with the paper-calibrated defaults: 5-minute
    /// samples, a 257 gCO2e/kWh mean, a deep midday solar trough and an
    /// evening gas peak.
    ///
    /// # Panics
    ///
    /// Panics if `days` is zero.
    #[must_use]
    pub fn new(seed: u64, days: usize) -> Self {
        assert!(days > 0, "must synthesise at least one day");
        Self {
            seed,
            days,
            step: TimeSpan::from_minutes(5.0),
            mean_intensity: CarbonIntensity::from_grams_per_kwh(257.0),
            solar_depth: 110.0,
            evening_peak: 70.0,
            daily_jitter: 0.12,
        }
    }

    /// An April-2021-like month: 30 days, default calibration.
    #[must_use]
    pub fn april_2021_like(seed: u64) -> Self {
        Self::new(seed, 30)
    }

    /// Overrides the sampling step.
    ///
    /// # Panics
    ///
    /// Panics if the step is not strictly positive.
    #[must_use]
    pub fn step(mut self, step: TimeSpan) -> Self {
        assert!(step.seconds() > 0.0, "step must be positive");
        self.step = step;
        self
    }

    /// Overrides the target mean carbon intensity.
    #[must_use]
    pub fn mean_intensity(mut self, mean: CarbonIntensity) -> Self {
        self.mean_intensity = mean;
        self
    }

    /// Overrides the depth (gCO2e/kWh) of the midday solar trough.
    #[must_use]
    pub fn solar_depth(mut self, depth: f64) -> Self {
        self.solar_depth = depth;
        self
    }

    /// Number of days the generator will produce.
    #[must_use]
    pub fn days(&self) -> usize {
        self.days
    }

    /// Solar output shape at `hour` of day, in `[0, 1]`, peaking at 13:00.
    #[must_use]
    pub fn solar_shape(hour: f64) -> f64 {
        let sunrise = 6.5;
        let sunset = 19.5;
        if hour <= sunrise || hour >= sunset {
            0.0
        } else {
            let x = (hour - sunrise) / (sunset - sunrise);
            (std::f64::consts::PI * x).sin().powi(2)
        }
    }

    /// Evening demand-peak shape at `hour` of day, in `[0, 1]`, peaking
    /// around 19:30.
    #[must_use]
    pub fn evening_shape(hour: f64) -> f64 {
        let peak = 19.5;
        let width = 2.6;
        (-((hour - peak) / width).powi(2)).exp()
    }

    /// Synthesises the carbon-intensity trace.
    #[must_use]
    pub fn intensity_trace(&self) -> IntensityTrace {
        let samples_per_day = round_count(TimeSpan::from_days(1.0).seconds() / self.step.seconds());
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut raw = Vec::with_capacity(samples_per_day * self.days);
        for _ in 0..self.days {
            // Day-to-day variation in how sunny and how loaded the day is.
            let solar_factor = 1.0 + self.daily_jitter * (rng.random::<f64>() * 2.0 - 1.0);
            let demand_factor = 1.0 + self.daily_jitter * 0.6 * (rng.random::<f64>() * 2.0 - 1.0);
            for i in 0..samples_per_day {
                let hour = 24.0 * count_f64(i) / count_f64(samples_per_day);
                let base = 290.0 * demand_factor;
                let dip = self.solar_depth * solar_factor * Self::solar_shape(hour);
                let peak = self.evening_peak * demand_factor * Self::evening_shape(hour);
                let noise = 6.0 * (rng.random::<f64>() * 2.0 - 1.0);
                raw.push((base - dip + peak + noise).max(50.0));
            }
        }
        // Calibrate the mean to the configured California average.
        let mean: f64 = raw.iter().sum::<f64>() / count_f64(raw.len());
        let scale = self.mean_intensity.grams_per_kwh() / mean;
        let values = raw
            .into_iter()
            .map(|v| CarbonIntensity::from_grams_per_kwh(v * scale))
            .collect();
        IntensityTrace::new(self.step, values)
    }

    /// Synthesises the generation-mix trace shown in the supply panel of
    /// Figure 4a: one [`GenerationMix`] per sample.
    #[must_use]
    pub fn mix_trace(&self) -> Vec<GenerationMix> {
        let samples_per_day = round_count(TimeSpan::from_days(1.0).seconds() / self.step.seconds());
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5eed);
        let mut mixes = Vec::with_capacity(samples_per_day * self.days);
        for _ in 0..self.days {
            let solar_factor = 1.0 + self.daily_jitter * (rng.random::<f64>() * 2.0 - 1.0);
            let wind_base = 2.0 + 3.0 * rng.random::<f64>();
            for i in 0..samples_per_day {
                let hour = 24.0 * count_f64(i) / count_f64(samples_per_day);
                let demand =
                    23.0 + 4.0 * Self::evening_shape(hour) - 2.0 * Self::solar_shape(hour) * 0.3;
                let solar = 13.0 * solar_factor * Self::solar_shape(hour);
                let wind = wind_base + 0.5 * (rng.random::<f64>() * 2.0 - 1.0);
                let hydro = 3.0;
                let import = 3.0 + 1.5 * Self::evening_shape(hour);
                let gas = (demand - solar - wind - hydro - import).max(1.0);
                mixes.push(
                    GenerationMix::new()
                        .with(EnergySource::Solar, solar)
                        .with(EnergySource::Wind, wind.max(0.0))
                        .with(EnergySource::Hydro, hydro)
                        .with(EnergySource::Import, import)
                        .with(EnergySource::Gas, gas),
                );
            }
        }
        mixes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_calibrated_to_california_average() {
        let trace = CaisoSynthesizer::april_2021_like(7).intensity_trace();
        assert!(
            (trace.mean().grams_per_kwh() - 257.0).abs() < 1.0,
            "{}",
            trace.mean()
        );
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = CaisoSynthesizer::new(42, 3).intensity_trace();
        let b = CaisoSynthesizer::new(42, 3).intensity_trace();
        assert_eq!(a, b);
        let c = CaisoSynthesizer::new(43, 3).intensity_trace();
        assert_ne!(a, c);
    }

    #[test]
    fn midday_is_cleaner_than_evening() {
        let trace = CaisoSynthesizer::april_2021_like(1).intensity_trace();
        let day = trace.day(5).unwrap();
        let at = |h: f64| day.value_at(TimeSpan::from_hours(h)).grams_per_kwh();
        let midday = (at(12.0) + at(13.0) + at(14.0)) / 3.0;
        let evening = (at(19.0) + at(20.0)) / 2.0;
        let night = at(3.0);
        assert!(midday < evening, "midday {midday} vs evening {evening}");
        assert!(midday < night, "midday {midday} vs night {night}");
    }

    #[test]
    fn trace_covers_requested_days() {
        let synth = CaisoSynthesizer::new(9, 7);
        let trace = synth.intensity_trace();
        assert_eq!(trace.day_count(), 7);
        assert_eq!(synth.mix_trace().len(), trace.len());
    }

    #[test]
    fn solar_shape_is_zero_at_night_and_peaks_midday() {
        assert_eq!(CaisoSynthesizer::solar_shape(2.0), 0.0);
        assert_eq!(CaisoSynthesizer::solar_shape(22.0), 0.0);
        assert!(CaisoSynthesizer::solar_shape(13.0) > 0.95);
        assert!(CaisoSynthesizer::solar_shape(8.0) < CaisoSynthesizer::solar_shape(12.0));
    }

    #[test]
    fn mix_trace_has_solar_at_noon_and_none_at_midnight() {
        let mixes = CaisoSynthesizer::new(3, 1).mix_trace();
        let samples_per_day = mixes.len();
        let noon = &mixes[samples_per_day / 2];
        let midnight = &mixes[0];
        assert!(noon.gigawatts_of(EnergySource::Solar) > 5.0);
        assert_eq!(midnight.gigawatts_of(EnergySource::Solar), 0.0);
        // The mix-implied intensity follows the same day shape: cleaner at
        // noon than at midnight.
        assert!(
            noon.carbon_intensity().unwrap().grams_per_kwh()
                < midnight.carbon_intensity().unwrap().grams_per_kwh()
        );
    }

    #[test]
    fn intensities_stay_physical() {
        let trace = CaisoSynthesizer::april_2021_like(11).intensity_trace();
        assert!(trace.min().grams_per_kwh() > 40.0);
        assert!(trace.max().grams_per_kwh() < 500.0);
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn zero_days_panics() {
        let _ = CaisoSynthesizer::new(1, 0);
    }
}
