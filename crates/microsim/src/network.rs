//! Cluster network models.
//!
//! The phone cloudlet communicates over a shared local WiFi network: every
//! inter-phone RPC pays a per-hop latency and its bytes serialise through a
//! shared channel of limited capacity. The single-node EC2 deployments keep
//! all traffic on loopback, where latency is tiny and bandwidth effectively
//! unlimited (the paper's methodology also runs the load generator on the
//! same instance).

use serde::{Deserialize, Serialize};

use junkyard_carbon::units::DataRate;

/// Network characteristics of a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    intra_node_latency_ms: f64,
    inter_node_latency_ms: f64,
    client_latency_ms: f64,
    shared_channel: Option<DataRate>,
}

impl NetworkModel {
    /// Creates a network model.
    ///
    /// # Panics
    ///
    /// Panics if any latency is negative.
    #[must_use]
    pub fn new(
        intra_node_latency_ms: f64,
        inter_node_latency_ms: f64,
        client_latency_ms: f64,
        shared_channel: Option<DataRate>,
    ) -> Self {
        assert!(
            intra_node_latency_ms >= 0.0
                && inter_node_latency_ms >= 0.0
                && client_latency_ms >= 0.0,
            "latencies cannot be negative"
        );
        Self {
            intra_node_latency_ms,
            inter_node_latency_ms,
            client_latency_ms,
            shared_channel,
        }
    }

    /// The paper's phone-cloudlet network: all phones and the client share
    /// one local 802.11ac WiFi (modelled at 450 Mbit/s of effective goodput),
    /// ~2 ms per wireless hop, ~0.15 ms for on-phone loopback.
    #[must_use]
    pub fn phone_wifi() -> Self {
        Self::new(0.15, 2.0, 2.0, Some(DataRate::from_megabits_per_sec(450.0)))
    }

    /// A single cloud instance: every hop is loopback, the colocated client
    /// adds almost no network latency, and bandwidth is not a constraint.
    #[must_use]
    pub fn single_node_loopback() -> Self {
        Self::new(0.08, 0.08, 0.20, None)
    }

    /// Latency of a hop between services on the same node, ms.
    #[must_use]
    pub fn intra_node_latency_ms(self) -> f64 {
        self.intra_node_latency_ms
    }

    /// Latency of a hop between services on different nodes, ms.
    #[must_use]
    pub fn inter_node_latency_ms(self) -> f64 {
        self.inter_node_latency_ms
    }

    /// Latency between the external client and the frontend, ms.
    #[must_use]
    pub fn client_latency_ms(self) -> f64 {
        self.client_latency_ms
    }

    /// The shared wireless channel, if the deployment has one.
    #[must_use]
    pub fn shared_channel(self) -> Option<DataRate> {
        self.shared_channel
    }

    /// Transmission time of `bytes` on the shared channel, in seconds
    /// (zero when there is no shared channel).
    #[must_use]
    pub fn transmission_secs(self, bytes: f64) -> f64 {
        match self.shared_channel {
            Some(rate) if rate.bytes_per_sec() > 0.0 => bytes / rate.bytes_per_sec(),
            _ => 0.0,
        }
    }

    /// One-way latency of a hop between two placed services, in seconds.
    #[must_use]
    pub fn hop_latency_secs(self, same_node: bool) -> f64 {
        if same_node {
            self.intra_node_latency_ms / 1_000.0
        } else {
            self.inter_node_latency_ms / 1_000.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wifi_is_slower_than_loopback() {
        let wifi = NetworkModel::phone_wifi();
        let lo = NetworkModel::single_node_loopback();
        assert!(wifi.hop_latency_secs(false) > lo.hop_latency_secs(false));
        assert!(wifi.shared_channel().is_some());
        assert!(lo.shared_channel().is_none());
    }

    #[test]
    fn transmission_time_matches_channel_rate() {
        let wifi = NetworkModel::phone_wifi();
        // 450 Mbit/s = 56.25 MB/s, so 56.25 KB takes 1 ms.
        let t = wifi.transmission_secs(56_250.0);
        assert!((t - 0.001).abs() < 1e-9);
        assert_eq!(
            NetworkModel::single_node_loopback().transmission_secs(1e9),
            0.0
        );
    }

    #[test]
    fn same_node_hops_are_cheaper() {
        let wifi = NetworkModel::phone_wifi();
        assert!(wifi.hop_latency_secs(true) < wifi.hop_latency_secs(false));
    }

    #[test]
    #[should_panic(expected = "latencies cannot be negative")]
    fn negative_latency_panics() {
        let _ = NetworkModel::new(-1.0, 1.0, 1.0, None);
    }
}
