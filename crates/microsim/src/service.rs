//! Microservice definitions.
//!
//! A microservice application is a set of named services (frontends, logic
//! tiers, caches, databases, tracing sidecars) that requests traverse.
//! Each service has a memory footprint that constrains placement; the work a
//! request performs *at* a service is described per request type in
//! [`crate::app`].

use std::fmt;

use serde::{Deserialize, Serialize};

/// Broad role of a service, used for placement spreading and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ServiceKind {
    /// HTTP entry point (nginx, frontend).
    Frontend,
    /// Business-logic tier (Thrift/gRPC services).
    Logic,
    /// In-memory cache (memcached, Redis).
    Cache,
    /// Persistent store (MongoDB, Cassandra).
    Storage,
    /// Observability sidecars (Jaeger).
    Tracing,
    /// Load generator running inside the deployment (colocated client).
    Client,
}

impl ServiceKind {
    /// Human-readable kind name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServiceKind::Frontend => "frontend",
            ServiceKind::Logic => "logic",
            ServiceKind::Cache => "cache",
            ServiceKind::Storage => "storage",
            ServiceKind::Tracing => "tracing",
            ServiceKind::Client => "client",
        }
    }
}

impl fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One deployable microservice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    name: String,
    kind: ServiceKind,
    memory_gib: f64,
}

impl ServiceSpec {
    /// Creates a service.
    ///
    /// # Panics
    ///
    /// Panics if the memory footprint is negative.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: ServiceKind, memory_gib: f64) -> Self {
        assert!(memory_gib >= 0.0, "memory footprint cannot be negative");
        Self {
            name: name.into(),
            kind,
            memory_gib,
        }
    }

    /// Service name (matches the DeathStarBench container names where
    /// applicable).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Role of the service.
    #[must_use]
    pub fn kind(&self) -> ServiceKind {
        self.kind
    }

    /// Resident memory footprint in GiB, used by the placement scheduler.
    #[must_use]
    pub fn memory_gib(&self) -> f64 {
        self.memory_gib
    }
}

impl fmt::Display for ServiceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {:.2} GiB)",
            self.name, self.kind, self.memory_gib
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_accessors() {
        let s = ServiceSpec::new("nginx-web-server", ServiceKind::Frontend, 0.25);
        assert_eq!(s.name(), "nginx-web-server");
        assert_eq!(s.kind(), ServiceKind::Frontend);
        assert!((s.memory_gib() - 0.25).abs() < 1e-12);
        assert!(s.to_string().contains("frontend"));
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_memory_panics() {
        let _ = ServiceSpec::new("bad", ServiceKind::Cache, -1.0);
    }

    #[test]
    fn kind_names() {
        assert_eq!(ServiceKind::Storage.to_string(), "storage");
        assert_eq!(ServiceKind::Client.name(), "client");
    }
}
