//! Discrete-event microservice cloudlet simulator.
//!
//! This crate is the substitute for the paper's physical Section 6 testbed:
//! ten Ubuntu Touch Pixel 3A phones running DeathStarBench under Docker
//! Swarm, compared against single AWS EC2 C5 instances. It provides:
//!
//! * [`service`] / [`app`] — microservice and application models, including
//!   calibrated SocialNetwork and HotelReservation graphs.
//! * [`node`] — cluster nodes (phones, C5 instances) with per-core speeds.
//! * [`placement`] — Docker-Swarm-style spreading and single-node placement.
//! * [`network`] — shared-WiFi and loopback network models.
//! * [`sim`] — the open-loop discrete-event engine (and the reference
//!   event loop that specifies its semantics).
//! * [`compiled`] — the index-resolved, lazily-generating hot path behind
//!   [`Simulation::run`], bit-identical to the reference engine.
//! * [`metrics`] — latency distributions and per-node utilisation traces.
//! * [`sweep`] — throughput sweeps (Figure 7, threaded across load
//!   points) and the phased utilisation scenario (Figure 8).
//!
//! # Example
//!
//! ```
//! use junkyard_microsim::app::{social_network, SN_COMPOSE_POST};
//! use junkyard_microsim::network::NetworkModel;
//! use junkyard_microsim::node::ten_pixel_cloudlet;
//! use junkyard_microsim::placement::Placement;
//! use junkyard_microsim::sim::{Simulation, Workload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let app = social_network();
//! let nodes = ten_pixel_cloudlet();
//! let placement = Placement::swarm_spread(&app, &nodes, 7)?;
//! let sim = Simulation::new(app, nodes, placement, NetworkModel::phone_wifi())?;
//! let metrics = sim.run(&Workload::steady(200.0, 2.0, Some(SN_COMPOSE_POST), 1))?;
//! println!("median: {:?} ms", metrics.latency_stats().median_ms());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod compiled;
pub mod metrics;
pub mod network;
pub mod node;
pub mod placement;
pub mod service;
pub mod sim;
pub mod sweep;

pub use app::{Application, RequestType, ServiceCall, Stage};
pub use compiled::{CompiledSim, CoreHeap, LazyArrivals};
pub use metrics::{LatencyStats, NodeQueueStats, NodeUtilization, RunMetrics};
pub use network::NetworkModel;
pub use node::NodeSpec;
pub use placement::{Placement, PlacementError};
pub use service::{ServiceKind, ServiceSpec};
pub use sim::{
    CoreLayout, Phase, QueueDiscipline, RssTable, ServerModel, SimError, Simulation, Workload,
};
pub use sweep::{CurvePoint, LatencyCurve, SweepConfig};
