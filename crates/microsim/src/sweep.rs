//! Throughput sweeps and saturation detection (Figure 7) and the two-phase
//! utilisation scenario (Figure 8).
//!
//! Sweep points are independent simulations, so [`SweepConfig::run`] fans
//! them out across `std::thread::scope` workers: the simulation is compiled
//! once, shared by reference, and each worker writes its points into
//! pre-assigned output slots — results are deterministic and in offered-load
//! order regardless of scheduling.

use std::thread;

use junkyard_carbon::convert::{counts_ratio, index_u64};
use junkyard_obs::{TraceRecorder, TraceShard};

use serde::{Deserialize, Serialize};

use crate::compiled::CompiledSim;
use crate::metrics::RunMetrics;
use crate::sim::{Phase, SimError, Simulation, Workload};

/// Derives an independent workload seed for stream `index` of a family
/// rooted at `seed`, via a SplitMix64-style avalanche over the pair.
///
/// `index == 0` returns `seed` unchanged, so the first stream of a family
/// stays bit-compatible with an undecorrelated run. Every other index is
/// mixed through two rounds of multiply-xor-shift, so adjacent indices
/// land on unrelated RNG states — a plain `seed ^ index` only flips low
/// bits, which seeds the vendored SplitMix64 generator at neighbouring
/// states and correlates the streams it hands out.
#[must_use]
pub fn decorrelate_seed(seed: u64, index: u64) -> u64 {
    if index == 0 {
        return seed;
    }
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One point of a latency-versus-throughput curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    qps: f64,
    median_ms: f64,
    tail_ms: f64,
    #[serde(default)]
    drop_fraction: f64,
}

impl CurvePoint {
    /// Creates a point (with no drops; simulations with bounded queues
    /// attach theirs via [`CurvePoint::with_drop_fraction`]).
    #[must_use]
    pub fn new(qps: f64, median_ms: f64, tail_ms: f64) -> Self {
        Self {
            qps,
            median_ms,
            tail_ms,
            drop_fraction: 0.0,
        }
    }

    /// Attaches the fraction of measured-window requests that a bounded
    /// queue dropped.
    #[must_use]
    pub fn with_drop_fraction(mut self, drop_fraction: f64) -> Self {
        self.drop_fraction = drop_fraction;
        self
    }

    /// Offered load in requests per second.
    #[must_use]
    pub fn qps(self) -> f64 {
        self.qps
    }

    /// Median (50th percentile) latency, ms.
    #[must_use]
    pub fn median_ms(self) -> f64 {
        self.median_ms
    }

    /// Tail (90th percentile) latency, ms.
    #[must_use]
    pub fn tail_ms(self) -> f64 {
        self.tail_ms
    }

    /// Fraction of the measured window's requests dropped by bounded
    /// queues (zero under the default unbounded server model).
    #[must_use]
    pub fn drop_fraction(self) -> f64 {
        self.drop_fraction
    }
}

/// A labelled latency-versus-throughput curve (one line of Figure 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyCurve {
    label: String,
    points: Vec<CurvePoint>,
}

impl LatencyCurve {
    /// Creates a curve.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<CurvePoint>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }

    /// Curve label (deployment name).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The measured points, in offered-load order.
    #[must_use]
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// The highest offered load the deployment sustains before *first*
    /// crossing the latency bounds — the paper's "max throughput before
    /// the latencies shoot up".
    ///
    /// Only the longest passing *prefix* of the curve counts: measurement
    /// noise can dip a point back under the limits beyond the queueing
    /// knee, and such a point is not a sustainable operating load. If the
    /// whole curve passes, the last point's load is returned; if the first
    /// point already fails, `None`. Otherwise the crossing load is
    /// linearly interpolated between the last passing and the first
    /// failing point, using whichever latency bound crosses its limit
    /// first.
    #[must_use]
    pub fn max_sustainable_qps(&self, median_limit_ms: f64, tail_limit_ms: f64) -> Option<f64> {
        let passes =
            |p: &CurvePoint| p.median_ms() <= median_limit_ms && p.tail_ms() <= tail_limit_ms;
        let prefix = self.points.iter().take_while(|p| passes(p)).count();
        if prefix == 0 {
            return None;
        }
        if prefix == self.points.len() {
            return Some(self.points[prefix - 1].qps());
        }
        let last_pass = self.points[prefix - 1];
        let first_fail = self.points[prefix];
        // Fraction of the load step at which each violated bound is hit;
        // the earliest crossing limits the sustainable load. A bound that
        // still passes at the failing point contributes no crossing. When
        // a bound does fail, its latency necessarily rose above the
        // passing point's (which was at or under the limit), so the
        // denominator is strictly positive.
        let crossing = |value_pass: f64, value_fail: f64, limit: f64| -> f64 {
            if value_fail <= limit {
                1.0
            } else {
                ((limit - value_pass) / (value_fail - value_pass)).clamp(0.0, 1.0)
            }
        };
        let t = crossing(
            last_pass.median_ms(),
            first_fail.median_ms(),
            median_limit_ms,
        )
        .min(crossing(
            last_pass.tail_ms(),
            first_fail.tail_ms(),
            tail_limit_ms,
        ));
        Some(last_pass.qps() + t * (first_fail.qps() - last_pass.qps()))
    }
}

/// Configuration of a throughput sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    qps_points: Vec<f64>,
    duration_s: f64,
    warmup_s: f64,
    request_type: Option<String>,
    seed: u64,
    decorrelate_seeds: bool,
    parallelism: Option<usize>,
}

impl SweepConfig {
    /// Creates a sweep over the given offered loads, measuring each for
    /// `duration_s` seconds after a `warmup_s` warm-up.
    ///
    /// # Panics
    ///
    /// Panics if no load points are given, the duration is not positive or
    /// the warm-up is negative.
    #[must_use]
    pub fn new(qps_points: Vec<f64>, duration_s: f64, warmup_s: f64) -> Self {
        assert!(
            !qps_points.is_empty(),
            "a sweep needs at least one load point"
        );
        assert!(duration_s > 0.0, "measurement duration must be positive");
        assert!(warmup_s >= 0.0, "warm-up cannot be negative");
        Self {
            qps_points,
            duration_s,
            warmup_s,
            request_type: None,
            seed: 42,
            decorrelate_seeds: false,
            parallelism: None,
        }
    }

    /// Restricts the sweep to a single request type.
    #[must_use]
    pub fn request_type(mut self, name: impl Into<String>) -> Self {
        self.request_type = Some(name.into());
        self
    }

    /// Sets the random seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Derives a distinct seed per load point (via [`decorrelate_seed`])
    /// instead of reusing the sweep seed everywhere.
    ///
    /// By default every point replays the identical arrival sequence
    /// (scaled to its rate), which correlates noise across the curve.
    /// Decorrelating keeps point 0 bit-compatible with the default
    /// (`decorrelate_seed(seed, 0) == seed`) while giving every other
    /// point a properly mixed, independent sequence.
    #[must_use]
    pub fn decorrelated_seeds(mut self) -> Self {
        self.decorrelate_seeds = true;
        self
    }

    /// Caps the number of worker threads the sweep fans out across.
    ///
    /// Defaults to the machine's available parallelism; `1` forces a
    /// serial sweep (useful for benchmarking the threading win itself).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn parallelism(mut self, workers: usize) -> Self {
        assert!(workers > 0, "a sweep needs at least one worker");
        self.parallelism = Some(workers);
        self
    }

    /// The offered-load points.
    #[must_use]
    pub fn qps_points(&self) -> &[f64] {
        &self.qps_points
    }

    /// The workload seed used for the load point at `index`.
    fn point_seed(&self, index: usize) -> u64 {
        if self.decorrelate_seeds {
            decorrelate_seed(self.seed, index_u64(index))
        } else {
            self.seed
        }
    }

    /// Measures one load point against a compiled simulation.
    fn measure_point(&self, sim: &CompiledSim, index: usize) -> Result<CurvePoint, SimError> {
        let qps = self.qps_points[index];
        let workload = Workload::steady(
            qps,
            self.warmup_s + self.duration_s,
            self.request_type.as_deref(),
            self.point_seed(index),
        );
        let metrics = sim.run(&workload)?;
        let stats = metrics.latency_stats_between(self.warmup_s, self.warmup_s + self.duration_s);
        let dropped = metrics.dropped_between(self.warmup_s, self.warmup_s + self.duration_s);
        let measured = stats.count() + dropped;
        let drop_fraction = if measured == 0 {
            0.0
        } else {
            counts_ratio(dropped, measured)
        };
        Ok(CurvePoint::new(
            qps,
            stats.median_ms().unwrap_or(0.0),
            stats.tail_ms().unwrap_or(0.0),
        )
        .with_drop_fraction(drop_fraction))
    }

    /// [`SweepConfig::measure_point`] with the point's trace shard:
    /// admissions, drops and completions land in `shard`, and the
    /// engine's processed-event count is returned for load accounting.
    fn measure_point_traced(
        &self,
        sim: &CompiledSim,
        index: usize,
        shard: &mut TraceShard,
    ) -> Result<(CurvePoint, u64), SimError> {
        let qps = self.qps_points[index];
        let workload = Workload::steady(
            qps,
            self.warmup_s + self.duration_s,
            self.request_type.as_deref(),
            self.point_seed(index),
        );
        let metrics = sim.run_with(&workload, shard)?;
        let stats = metrics.latency_stats_between(self.warmup_s, self.warmup_s + self.duration_s);
        let dropped = metrics.dropped_between(self.warmup_s, self.warmup_s + self.duration_s);
        let measured = stats.count() + dropped;
        let drop_fraction = if measured == 0 {
            0.0
        } else {
            counts_ratio(dropped, measured)
        };
        let point = CurvePoint::new(
            qps,
            stats.median_ms().unwrap_or(0.0),
            stats.tail_ms().unwrap_or(0.0),
        )
        .with_drop_fraction(drop_fraction);
        Ok((point, metrics.events_processed()))
    }

    /// Runs the sweep against a simulation and collects its latency curve.
    ///
    /// Compiles the simulation once, then fans the load points out across
    /// scoped worker threads (see [`SweepConfig::run_compiled`]).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors (for example an unknown request type).
    pub fn run(
        &self,
        label: impl Into<String>,
        sim: &Simulation,
    ) -> Result<LatencyCurve, SimError> {
        self.run_compiled(label, &sim.compile())
    }

    /// Runs the sweep against an already-compiled simulation.
    ///
    /// Load points are dealt across `std::thread::scope` workers in
    /// boustrophedon (snake) order — round 0 hands points to workers
    /// `0, 1, ..., k-1`, round 1 reverses to `k-1, ..., 1, 0`, and so
    /// on (see [`snake_worker`]) — so on an ascending sweep, where
    /// per-point cost grows with offered load, no worker systematically
    /// collects the heavy end. Every worker writes into its own
    /// pre-assigned output slots, so the curve's point order and values
    /// are identical to a serial sweep. Use this entry point to amortise one
    /// [`Simulation::compile`] across many sweeps.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors; on multiple failures the error of the
    /// lowest-index failing point is returned.
    pub fn run_compiled(
        &self,
        label: impl Into<String>,
        sim: &CompiledSim,
    ) -> Result<LatencyCurve, SimError> {
        let n = self.qps_points.len();
        let workers = self
            .parallelism
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, std::num::NonZero::get))
            .min(n)
            .max(1);
        let mut slots: Vec<Option<Result<CurvePoint, SimError>>> = (0..n).map(|_| None).collect();
        if workers == 1 {
            for (index, slot) in slots.iter_mut().enumerate() {
                *slot = Some(self.measure_point(sim, index));
            }
        } else {
            // Deal the points in snake order rather than contiguous chunks
            // or a plain stride: sweeps are usually ascending in offered
            // load and per-point cost grows with load, so chunking piles
            // the slow points onto the last worker — and a plain stride
            // still hands worker k-1 the heaviest point of *every* round.
            // Each point still lands in its own slot.
            type PointSlot<'s> = (usize, &'s mut Option<Result<CurvePoint, SimError>>);
            let mut assignments: Vec<Vec<PointSlot<'_>>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (index, slot) in slots.iter_mut().enumerate() {
                assignments[snake_worker(index, workers)].push((index, slot));
            }
            thread::scope(|scope| {
                for share in assignments {
                    scope.spawn(move || {
                        for (index, slot) in share {
                            *slot = Some(self.measure_point(sim, index));
                        }
                    });
                }
            });
        }
        let mut points = Vec::with_capacity(n);
        for slot in slots {
            points.push(slot.ok_or(SimError::WorkerLost)??);
        }
        Ok(LatencyCurve::new(label, points))
    }

    /// The number of fan-out workers [`SweepConfig::run_compiled`] will
    /// actually use: the configured parallelism (default: the machine's
    /// available parallelism) capped by the point count.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        self.parallelism
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, std::num::NonZero::get))
            .min(self.qps_points.len())
            .max(1)
    }

    /// [`SweepConfig::run_compiled`] with tracing: each load point
    /// records its microsim events into its own [`TraceShard`] (minted
    /// from and absorbed back into `recorder` in point order, so the
    /// merged trace is byte-identical at any worker count), and the
    /// per-point engine event counts are returned for worker-load
    /// accounting.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors; on multiple failures the error of
    /// the lowest-index failing point is returned.
    pub fn run_compiled_traced(
        &self,
        label: impl Into<String>,
        sim: &CompiledSim,
        recorder: &mut TraceRecorder,
    ) -> Result<TracedSweep, SimError> {
        let n = self.qps_points.len();
        let workers = self.effective_workers();
        let mut slots: Vec<Option<Result<(CurvePoint, u64), SimError>>> =
            (0..n).map(|_| None).collect();
        let mut shards: Vec<Option<TraceShard>> = (0..n)
            .map(|index| Some(recorder.shard(index_u64(index))))
            .collect();
        if workers == 1 {
            for (index, (slot, shard)) in slots.iter_mut().zip(shards.iter_mut()).enumerate() {
                if let Some(sh) = shard.as_mut() {
                    *slot = Some(self.measure_point_traced(sim, index, sh));
                }
            }
        } else {
            // The same snake-dealt fan-out as the untraced sweep; each
            // slot's shard travels with it, so no worker ever touches
            // another point's recorder state.
            type TracedSlot<'s> = (
                usize,
                &'s mut Option<Result<(CurvePoint, u64), SimError>>,
                &'s mut Option<TraceShard>,
            );
            let mut assignments: Vec<Vec<TracedSlot<'_>>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (index, (slot, shard)) in slots.iter_mut().zip(shards.iter_mut()).enumerate() {
                assignments[snake_worker(index, workers)].push((index, slot, shard));
            }
            thread::scope(|scope| {
                for share in assignments {
                    scope.spawn(move || {
                        for (index, slot, shard) in share {
                            if let Some(sh) = shard.as_mut() {
                                *slot = Some(self.measure_point_traced(sim, index, sh));
                            }
                        }
                    });
                }
            });
        }
        // Serial merge, in slot (point) order — worker-count invariant.
        for shard in shards.into_iter().flatten() {
            recorder.absorb(shard);
        }
        let mut points = Vec::with_capacity(n);
        let mut point_events = Vec::with_capacity(n);
        for slot in slots {
            let (point, events) = slot.ok_or(SimError::WorkerLost)??;
            points.push(point);
            point_events.push(events);
        }
        Ok(TracedSweep {
            curve: LatencyCurve::new(label, points),
            point_events,
            workers,
        })
    }
}

/// The worker that takes the point at `index` when `workers` threads
/// deal an ascending sweep in boustrophedon (snake) order: even rounds
/// run `0..workers`, odd rounds run back `workers..0`. With costs
/// monotone in the point index, consecutive rounds cancel instead of
/// compounding — on an 8-point linear-cost sweep over 2 workers the
/// plain stride leaves the last worker 25% overloaded while the snake
/// deal is exactly balanced.
#[must_use]
pub fn snake_worker(index: usize, workers: usize) -> usize {
    if workers <= 1 {
        return 0;
    }
    let round = index / workers;
    let position = index % workers;
    if round.is_multiple_of(2) {
        position
    } else {
        workers - 1 - position
    }
}

/// A traced sweep: the latency curve plus the bookkeeping the bench
/// reporter turns into `workers` / per-worker-utilisation fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedSweep {
    /// The latency curve, identical to an untraced [`SweepConfig::run_compiled`].
    pub curve: LatencyCurve,
    /// Engine events processed per load point (the deterministic unit
    /// of sweep work — wall clocks are not available on this side of
    /// the profiling boundary).
    pub point_events: Vec<u64>,
    /// Fan-out workers used (after the point-count cap).
    pub workers: usize,
}

impl TracedSweep {
    /// Per-worker utilisation under the snake deal (see
    /// [`snake_worker`]): each worker's share of total engine events,
    /// normalised so a perfectly balanced fan-out reads 1.0 for every
    /// worker.
    #[must_use]
    pub fn worker_utilisation(&self) -> Vec<f64> {
        let total: u64 = self.point_events.iter().sum();
        if total == 0 || self.workers == 0 {
            return vec![0.0; self.workers];
        }
        let mut per_worker = vec![0u64; self.workers];
        for (index, &events) in self.point_events.iter().enumerate() {
            per_worker[snake_worker(index, self.workers)] += events;
        }
        let fair_share = counts_ratio(usize::try_from(total).unwrap_or(usize::MAX), 1)
            / counts_ratio(self.workers, 1);
        per_worker
            .iter()
            .map(|&w| counts_ratio(usize::try_from(w).unwrap_or(usize::MAX), 1) / fair_share)
            .collect()
    }
}

/// The Figure 8 scenario: idle, SocialNetwork reads, idle, SocialNetwork
/// writes, idle.
///
/// The paper uses 120-second phases at 3,000 QPS (reads) and 3,500 QPS
/// (writes); `scale` shrinks both the durations and, for quick tests, can be
/// combined with lower rates by the caller.
#[must_use]
pub fn figure8_phases(
    read_type: &str,
    write_type: &str,
    read_qps: f64,
    write_qps: f64,
    phase_seconds: f64,
) -> Vec<Phase> {
    vec![
        Phase::idle(phase_seconds),
        Phase::new(read_qps, phase_seconds, Some(read_type)),
        Phase::idle(phase_seconds),
        Phase::new(write_qps, phase_seconds, Some(write_type)),
        Phase::idle(phase_seconds),
    ]
}

/// Convenience: runs the Figure 8 scenario and returns the metrics.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_figure8(
    sim: &Simulation,
    read_type: &str,
    write_type: &str,
    read_qps: f64,
    write_qps: f64,
    phase_seconds: f64,
    seed: u64,
) -> Result<RunMetrics, SimError> {
    let workload = Workload::phased(
        figure8_phases(read_type, write_type, read_qps, write_qps, phase_seconds),
        seed,
    );
    sim.run(&workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{social_network, SN_COMPOSE_POST, SN_READ_HOME_TIMELINE};
    use crate::network::NetworkModel;
    use crate::node::ten_pixel_cloudlet;
    use crate::placement::Placement;

    fn phone_sim() -> Simulation {
        let app = social_network();
        let nodes = ten_pixel_cloudlet();
        let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
        Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap()
    }

    #[test]
    fn sweep_produces_one_point_per_load() {
        let sim = phone_sim();
        let curve = SweepConfig::new(vec![300.0, 900.0], 2.0, 1.0)
            .request_type(SN_COMPOSE_POST)
            .run("phones", &sim)
            .unwrap();
        assert_eq!(curve.points().len(), 2);
        assert_eq!(curve.label(), "phones");
        assert!(curve.points()[0].median_ms() > 0.0);
    }

    #[test]
    fn tail_is_at_least_median_and_latency_rises_with_load() {
        let sim = phone_sim();
        let curve = SweepConfig::new(vec![500.0, 4_000.0], 2.5, 1.0)
            .request_type(SN_COMPOSE_POST)
            .run("phones", &sim)
            .unwrap();
        for p in curve.points() {
            assert!(p.tail_ms() >= p.median_ms());
        }
        assert!(curve.points()[1].tail_ms() > curve.points()[0].tail_ms());
    }

    #[test]
    fn max_sustainable_qps_finds_the_knee() {
        let curve = LatencyCurve::new(
            "synthetic",
            vec![
                CurvePoint::new(1_000.0, 20.0, 40.0),
                CurvePoint::new(2_000.0, 25.0, 60.0),
                CurvePoint::new(3_000.0, 45.0, 95.0),
                CurvePoint::new(4_000.0, 400.0, 900.0),
            ],
        );
        // The tail bound crosses first between 3,000 and 4,000 QPS:
        // t = (100 - 95) / (900 - 95), interpolated onto the load step.
        let expected = 3_000.0 + (100.0 - 95.0) / (900.0 - 95.0) * 1_000.0;
        let knee = curve.max_sustainable_qps(50.0, 100.0).unwrap();
        assert!((knee - expected).abs() < 1e-9, "knee {knee}");
        assert_eq!(curve.max_sustainable_qps(10.0, 10.0), None);
        // An all-passing curve sustains its last measured load.
        assert_eq!(curve.max_sustainable_qps(1_000.0, 1_000.0), Some(4_000.0));
    }

    #[test]
    fn max_sustainable_qps_ignores_passes_beyond_the_first_crossing() {
        // A noisy non-monotonic curve: the 3,000-QPS point dips back under
        // the limits *beyond* the queueing knee. The old max-over-passing
        // semantics reported 3,000; first-crossing semantics must stop at
        // the 1,000 → 2,000 step.
        let curve = LatencyCurve::new(
            "noisy",
            vec![
                CurvePoint::new(1_000.0, 20.0, 40.0),
                CurvePoint::new(2_000.0, 80.0, 160.0),
                CurvePoint::new(3_000.0, 30.0, 50.0),
                CurvePoint::new(4_000.0, 500.0, 900.0),
            ],
        );
        let knee = curve.max_sustainable_qps(50.0, 100.0).unwrap();
        assert!(knee < 2_000.0, "knee {knee} must sit inside the first step");
        // Median crosses at t = (50-20)/(80-20) = 0.5, tail at
        // t = (100-40)/(160-40) = 0.5: the knee is 1,500 QPS.
        assert!((knee - 1_500.0).abs() < 1e-9, "knee {knee}");
    }

    #[test]
    fn max_sustainable_qps_interpolates_only_the_violated_bound() {
        // The tail *improves* across the failing step while the median
        // blows through its limit: only the median contributes a crossing.
        let curve = LatencyCurve::new(
            "median-limited",
            vec![
                CurvePoint::new(1_000.0, 20.0, 90.0),
                CurvePoint::new(2_000.0, 200.0, 80.0),
            ],
        );
        let knee = curve.max_sustainable_qps(100.0, 100.0).unwrap();
        let expected = 1_000.0 + (100.0 - 20.0) / (200.0 - 20.0) * 1_000.0;
        assert!((knee - expected).abs() < 1e-9, "knee {knee}");
        // A flat all-passing curve is sustainable through its last point.
        let flat = LatencyCurve::new(
            "flat",
            vec![
                CurvePoint::new(1_000.0, 20.0, 90.0),
                CurvePoint::new(2_000.0, 20.0, 90.0),
            ],
        );
        assert_eq!(flat.max_sustainable_qps(100.0, 100.0), Some(2_000.0));
    }

    #[test]
    fn figure8_scenario_shapes_utilization_by_phase() {
        let sim = phone_sim();
        let metrics = run_figure8(
            &sim,
            SN_READ_HOME_TIMELINE,
            SN_COMPOSE_POST,
            600.0,
            700.0,
            4.0,
            3,
        )
        .unwrap();
        // Mean utilisation across phones should be higher during the two
        // loaded phases than during the idle phases.
        let mean_between = |from: usize, to: usize| -> f64 {
            let per_node: Vec<f64> = metrics
                .node_utilization()
                .iter()
                .map(|u| u.mean_percent_between(from, to))
                .collect();
            per_node.iter().sum::<f64>() / per_node.len() as f64
        };
        let idle = mean_between(0, 4);
        let read = mean_between(5, 8);
        let write = mean_between(13, 16);
        assert!(read > idle + 1.0, "read {read}% vs idle {idle}%");
        assert!(write > idle + 1.0, "write {write}% vs idle {idle}%");
    }

    #[test]
    #[should_panic(expected = "at least one load point")]
    fn empty_sweep_panics() {
        let _ = SweepConfig::new(vec![], 1.0, 0.0);
    }

    #[test]
    fn sweep_reports_drop_fractions_under_bounded_queues() {
        use crate::sim::ServerModel;
        let sim = phone_sim().with_server_model(ServerModel::new().with_queue_size(Some(16)));
        let curve = SweepConfig::new(vec![300.0, 12_000.0], 1.5, 0.5)
            .request_type(SN_COMPOSE_POST)
            .run("phones", &sim)
            .unwrap();
        assert_eq!(curve.points()[0].drop_fraction(), 0.0, "light load drops");
        let heavy = curve.points()[1].drop_fraction();
        assert!(
            heavy > 0.1 && heavy <= 1.0,
            "deep saturation should shed visibly: {heavy}"
        );
        // The unbounded default never drops.
        let unbounded = SweepConfig::new(vec![12_000.0], 1.5, 0.5)
            .request_type(SN_COMPOSE_POST)
            .run("phones", &phone_sim())
            .unwrap();
        assert_eq!(unbounded.points()[0].drop_fraction(), 0.0);
    }

    #[test]
    fn threaded_sweep_matches_serial_point_for_point() {
        let sim = phone_sim();
        let config = SweepConfig::new(vec![400.0, 900.0, 1_400.0, 1_900.0, 2_400.0], 2.0, 0.5)
            .request_type(SN_COMPOSE_POST);
        let serial = config.clone().parallelism(1).run("phones", &sim).unwrap();
        let threaded = config.parallelism(4).run("phones", &sim).unwrap();
        assert_eq!(serial, threaded);
    }

    #[test]
    fn default_seeds_replay_the_same_sequence_across_points() {
        let sim = phone_sim();
        // Two identical load points: with the default correlated seeds they
        // are the same simulation, so the same curve point.
        let curve = SweepConfig::new(vec![700.0, 700.0], 2.0, 0.5)
            .request_type(SN_COMPOSE_POST)
            .run("phones", &sim)
            .unwrap();
        assert_eq!(curve.points()[0], curve.points()[1]);
    }

    #[test]
    fn decorrelated_adjacent_points_draw_distinct_first_arrivals() {
        // Regression: `seed ^ index` seeded the SplitMix64 stand-in at
        // neighbouring states for adjacent points. The mixed derivation
        // must give adjacent load points unrelated arrival sequences.
        let sim = phone_sim();
        let compiled = sim.compile();
        let seed = 42;
        let mut first_arrivals = Vec::new();
        for index in 0..8u64 {
            let workload = Workload::steady(
                700.0,
                2.0,
                Some(SN_COMPOSE_POST),
                decorrelate_seed(seed, index),
            );
            let (t, _) = compiled
                .arrivals(&workload)
                .unwrap()
                .next()
                .expect("a 700 qps phase produces arrivals");
            first_arrivals.push(t);
        }
        for (i, a) in first_arrivals.iter().enumerate() {
            for (j, b) in first_arrivals.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "points {i} and {j} replay the same arrival");
            }
        }
        // And the derived seeds themselves are well spread, not low-bit
        // perturbations of each other.
        for index in 1..8u64 {
            let derived = decorrelate_seed(seed, index);
            assert_ne!(derived, seed ^ index);
            assert!((derived ^ seed).count_ones() > 8);
        }
    }

    #[test]
    fn decorrelate_seed_pins_index_zero() {
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_eq!(decorrelate_seed(seed, 0), seed);
        }
    }

    #[test]
    fn decorrelated_seeds_vary_across_points_but_pin_point_zero() {
        let sim = phone_sim();
        let base = SweepConfig::new(vec![700.0, 700.0], 2.0, 0.5).request_type(SN_COMPOSE_POST);
        let correlated = base.clone().run("phones", &sim).unwrap();
        let decorrelated = base.decorrelated_seeds().run("phones", &sim).unwrap();
        // Point 0 uses seed ^ 0 == seed: bit-compatible with the default.
        assert_eq!(correlated.points()[0], decorrelated.points()[0]);
        // Point 1 now replays an independent arrival sequence.
        assert_ne!(decorrelated.points()[0], decorrelated.points()[1]);
    }
}
