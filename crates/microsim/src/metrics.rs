//! Measurement containers: latency distributions and per-node CPU
//! utilisation traces.

use junkyard_carbon::convert::{count_f64, counts_ratio, floor_index, percentile_rank};
use serde::{Deserialize, Serialize};

/// A latency distribution, in milliseconds.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    sorted_ms: Vec<f64>,
}

impl LatencyStats {
    /// Builds statistics from raw latency samples (milliseconds).
    #[must_use]
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(f64::total_cmp);
        Self { sorted_ms: samples }
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.sorted_ms.len()
    }

    /// `true` when no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted_ms.is_empty()
    }

    /// The `p`-th percentile (0–100), or `None` for an empty distribution.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.sorted_ms.is_empty() {
            return None;
        }
        let (lo, hi, frac) = percentile_rank(p, self.sorted_ms.len());
        Some(self.sorted_ms[lo] * (1.0 - frac) + self.sorted_ms[hi] * frac)
    }

    /// Median latency in ms (the paper's "Median" row of Figure 7).
    #[must_use]
    pub fn median_ms(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// 90th-percentile latency in ms (the paper's "Tail" row of Figure 7).
    #[must_use]
    pub fn tail_ms(&self) -> Option<f64> {
        self.percentile(90.0)
    }

    /// 99th-percentile latency in ms — the extreme-tail axis the planner's
    /// Pareto frontier reports alongside carbon per request.
    #[must_use]
    pub fn p99_ms(&self) -> Option<f64> {
        self.percentile(99.0)
    }

    /// Mean latency in ms.
    #[must_use]
    pub fn mean_ms(&self) -> Option<f64> {
        if self.sorted_ms.is_empty() {
            None
        } else {
            Some(self.sorted_ms.iter().sum::<f64>() / count_f64(self.sorted_ms.len()))
        }
    }

    /// Maximum latency in ms.
    #[must_use]
    pub fn max_ms(&self) -> Option<f64> {
        self.sorted_ms.last().copied()
    }
}

/// Per-second CPU utilisation of one node, split into user (service work)
/// and system (RPC handling) time, as plotted per phone in Figure 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeUtilization {
    node: String,
    cores: u32,
    user_core_seconds: Vec<f64>,
    sys_core_seconds: Vec<f64>,
}

impl NodeUtilization {
    /// Creates an empty trace of `buckets` one-second buckets for a node
    /// with `cores` cores.
    #[must_use]
    pub fn new(node: impl Into<String>, cores: u32, buckets: usize) -> Self {
        Self {
            node: node.into(),
            cores,
            user_core_seconds: vec![0.0; buckets],
            sys_core_seconds: vec![0.0; buckets],
        }
    }

    /// Builds a trace from pre-accumulated per-second core-seconds — the
    /// compiled engine accumulates into dense arrays and wraps them here.
    ///
    /// # Panics
    ///
    /// Panics if the user and system traces differ in length.
    #[must_use]
    pub fn from_core_seconds(
        node: impl Into<String>,
        cores: u32,
        user_core_seconds: Vec<f64>,
        sys_core_seconds: Vec<f64>,
    ) -> Self {
        assert_eq!(
            user_core_seconds.len(),
            sys_core_seconds.len(),
            "user and system traces must cover the same buckets"
        );
        Self {
            node: node.into(),
            cores,
            user_core_seconds,
            sys_core_seconds,
        }
    }

    /// Node name.
    #[must_use]
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Adds `core_seconds` of user time at second `at`.
    pub fn add_user(&mut self, at: f64, core_seconds: f64) {
        let idx = Self::bucket(at, self.user_core_seconds.len());
        self.user_core_seconds[idx] += core_seconds;
    }

    /// Adds `core_seconds` of system time at second `at`.
    pub fn add_sys(&mut self, at: f64, core_seconds: f64) {
        let idx = Self::bucket(at, self.sys_core_seconds.len());
        self.sys_core_seconds[idx] += core_seconds;
    }

    fn bucket(at: f64, len: usize) -> usize {
        floor_index(at).min(len.saturating_sub(1))
    }

    /// Number of one-second buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.user_core_seconds.len()
    }

    /// `true` if the trace has no buckets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.user_core_seconds.is_empty()
    }

    /// User CPU percentage in bucket `i` (0–100, capped).
    #[must_use]
    pub fn user_percent(&self, i: usize) -> f64 {
        (self.user_core_seconds[i] / f64::from(self.cores) * 100.0).min(100.0)
    }

    /// System CPU percentage in bucket `i` (0–100, capped).
    #[must_use]
    pub fn sys_percent(&self, i: usize) -> f64 {
        (self.sys_core_seconds[i] / f64::from(self.cores) * 100.0).min(100.0)
    }

    /// Total CPU percentage in bucket `i` (0–100, capped).
    #[must_use]
    pub fn total_percent(&self, i: usize) -> f64 {
        (self.user_percent(i) + self.sys_percent(i)).min(100.0)
    }

    /// Mean total utilisation over the bucket range `[from, to)`, percent.
    #[must_use]
    pub fn mean_percent_between(&self, from: usize, to: usize) -> f64 {
        let to = to.min(self.len());
        if from >= to {
            return 0.0;
        }
        (from..to).map(|i| self.total_percent(i)).sum::<f64>() / count_f64(to - from)
    }
}

/// Per-node queue accounting: how many calls arrived at the node, how many
/// finished application service, and how many each of its queues dropped.
///
/// Both engines maintain these counters unconditionally (they are cheap),
/// so the per-node conservation law `calls_arrived == calls_served +
/// dropped` holds for every run; drops can only be nonzero when the
/// simulation's [`crate::sim::ServerModel`] bounds its queues.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeQueueStats {
    node: String,
    calls_arrived: u64,
    calls_served: u64,
    queue_drops: Vec<u64>,
}

impl NodeQueueStats {
    /// Assembles one node's queue counters. `queue_drops` has one entry per
    /// queue of the node (a single entry under centralised FCFS, one per
    /// application core under distributed FCFS).
    #[must_use]
    pub fn new(
        node: impl Into<String>,
        calls_arrived: u64,
        calls_served: u64,
        queue_drops: Vec<u64>,
    ) -> Self {
        Self {
            node: node.into(),
            calls_arrived,
            calls_served,
            queue_drops,
        }
    }

    /// Node name.
    #[must_use]
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Calls that reached the node (admitted or dropped).
    #[must_use]
    pub fn calls_arrived(&self) -> u64 {
        self.calls_arrived
    }

    /// Calls whose application service completed on the node.
    #[must_use]
    pub fn calls_served(&self) -> u64 {
        self.calls_served
    }

    /// Drops per queue, indexed by queue id.
    #[must_use]
    pub fn queue_drops(&self) -> &[u64] {
        &self.queue_drops
    }

    /// Total calls dropped by the node's queues.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.queue_drops.iter().sum()
    }
}

/// A completed request: when it arrived and how long it took.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedRequest {
    arrival_s: f64,
    latency_ms: f64,
}

impl CompletedRequest {
    /// Creates a completion record.
    #[must_use]
    pub fn new(arrival_s: f64, latency_ms: f64) -> Self {
        Self {
            arrival_s,
            latency_ms,
        }
    }

    /// Arrival time of the request, seconds from the start of the run.
    #[must_use]
    pub fn arrival_s(self) -> f64 {
        self.arrival_s
    }

    /// End-to-end latency in milliseconds.
    #[must_use]
    pub fn latency_ms(self) -> f64 {
        self.latency_ms
    }
}

/// Full result of one simulation run.
///
/// lint: conserved — every numeric field below must be pinned by a test
/// under `tests/` (the conservation audit fails otherwise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    duration_s: f64,
    offered: usize,
    events: u64,
    completions: Vec<CompletedRequest>,
    node_utilization: Vec<NodeUtilization>,
    #[serde(default)]
    dropped_arrivals: Vec<f64>,
    #[serde(default)]
    queue_stats: Vec<NodeQueueStats>,
}

impl RunMetrics {
    /// Assembles run metrics (with an event count of zero; engines attach
    /// theirs via [`RunMetrics::with_events`]).
    #[must_use]
    pub fn new(
        duration_s: f64,
        offered: usize,
        completions: Vec<CompletedRequest>,
        node_utilization: Vec<NodeUtilization>,
    ) -> Self {
        Self {
            duration_s,
            offered,
            events: 0,
            completions,
            node_utilization,
            dropped_arrivals: Vec::new(),
            queue_stats: Vec::new(),
        }
    }

    /// Attaches the number of discrete events the engine processed —
    /// the denominator of the events-per-second throughput figure the
    /// `perf_report` harness tracks.
    #[must_use]
    pub fn with_events(mut self, events: u64) -> Self {
        self.events = events;
        self
    }

    /// Attaches queue accounting: the arrival times of requests that were
    /// terminated by a queue drop (in termination order) and the per-node
    /// counters. Both engines attach these for every run.
    #[must_use]
    pub fn with_queue_stats(
        mut self,
        dropped_arrivals: Vec<f64>,
        queue_stats: Vec<NodeQueueStats>,
    ) -> Self {
        self.dropped_arrivals = dropped_arrivals;
        self.queue_stats = queue_stats;
        self
    }

    /// Number of discrete events the engine processed during the run.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Simulated duration in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.duration_s
    }

    /// Number of requests offered by the load generator.
    #[must_use]
    pub fn offered(&self) -> usize {
        self.offered
    }

    /// Completed requests with their arrival times and latencies.
    #[must_use]
    pub fn completions(&self) -> &[CompletedRequest] {
        &self.completions
    }

    /// Per-node CPU utilisation traces.
    #[must_use]
    pub fn node_utilization(&self) -> &[NodeUtilization] {
        &self.node_utilization
    }

    /// Number of requests terminated by a queue drop.
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.dropped_arrivals.len()
    }

    /// Arrival times of dropped requests, in termination order.
    #[must_use]
    pub fn dropped_arrivals(&self) -> &[f64] {
        &self.dropped_arrivals
    }

    /// Number of dropped requests that *arrived* in `[from, to)` seconds —
    /// the companion of [`RunMetrics::latency_stats_between`] for slicing
    /// out warm-up.
    #[must_use]
    pub fn dropped_between(&self, from_s: f64, to_s: f64) -> usize {
        self.dropped_arrivals
            .iter()
            .filter(|&&a| a >= from_s && a < to_s)
            .count()
    }

    /// Fraction of offered requests terminated by a queue drop.
    #[must_use]
    pub fn drop_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            counts_ratio(self.dropped_arrivals.len(), self.offered)
        }
    }

    /// Fraction of the requests that *arrived* in `[from, to)` seconds
    /// which were terminated by a queue drop — the slice-local companion
    /// of [`RunMetrics::drop_fraction`] for skipping warm-up. An empty
    /// slice (nothing arrived) reports `0.0` rather than `NaN`, so
    /// zero-offered windows never poison downstream extrapolation.
    #[must_use]
    pub fn drop_fraction_between(&self, from_s: f64, to_s: f64) -> f64 {
        let completed = self
            .completions
            .iter()
            .filter(|c| c.arrival_s() >= from_s && c.arrival_s() < to_s)
            .count();
        let dropped = self.dropped_between(from_s, to_s);
        let measured = completed + dropped;
        if measured == 0 {
            0.0
        } else {
            counts_ratio(dropped, measured)
        }
    }

    /// Per-node queue counters (arrived / served / dropped per queue).
    #[must_use]
    pub fn queue_stats(&self) -> &[NodeQueueStats] {
        &self.queue_stats
    }

    /// Latency distribution of every completed request.
    #[must_use]
    pub fn latency_stats(&self) -> LatencyStats {
        LatencyStats::from_samples(self.completions.iter().map(|c| c.latency_ms()).collect())
    }

    /// Latency distribution of requests that *arrived* in `[from, to)`
    /// seconds — used to skip warm-up and to slice phases.
    #[must_use]
    pub fn latency_stats_between(&self, from_s: f64, to_s: f64) -> LatencyStats {
        LatencyStats::from_samples(
            self.completions
                .iter()
                .filter(|c| c.arrival_s() >= from_s && c.arrival_s() < to_s)
                .map(|c| c.latency_ms())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_a_known_distribution() {
        let stats = LatencyStats::from_samples((1..=100).map(f64::from).collect());
        assert!((stats.median_ms().unwrap() - 50.5).abs() < 1e-9);
        assert!((stats.tail_ms().unwrap() - 90.1).abs() < 0.2);
        assert!((stats.mean_ms().unwrap() - 50.5).abs() < 1e-9);
        assert_eq!(stats.max_ms(), Some(100.0));
        assert_eq!(stats.count(), 100);
    }

    #[test]
    fn empty_stats_return_none() {
        let stats = LatencyStats::from_samples(vec![]);
        assert!(stats.is_empty());
        assert!(stats.median_ms().is_none());
        assert!(stats.mean_ms().is_none());
        assert!(stats.max_ms().is_none());
    }

    #[test]
    fn utilization_buckets_and_caps() {
        let mut u = NodeUtilization::new("pixel-00", 8, 10);
        u.add_user(2.3, 4.0);
        u.add_sys(2.7, 0.8);
        assert!((u.user_percent(2) - 50.0).abs() < 1e-9);
        assert!((u.sys_percent(2) - 10.0).abs() < 1e-9);
        assert!((u.total_percent(2) - 60.0).abs() < 1e-9);
        assert_eq!(u.total_percent(3), 0.0);
        // Overflow caps at 100 %.
        u.add_user(5.0, 100.0);
        assert_eq!(u.total_percent(5), 100.0);
        // Out-of-range samples clamp to the last bucket.
        u.add_user(99.0, 1.0);
        assert!(u.user_percent(9) > 0.0);
        assert!((u.mean_percent_between(2, 3) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn from_core_seconds_matches_incremental_adds() {
        let mut incremental = NodeUtilization::new("pixel-00", 8, 4);
        incremental.add_user(1.2, 2.0);
        incremental.add_sys(1.8, 0.5);
        let bulk = NodeUtilization::from_core_seconds(
            "pixel-00",
            8,
            vec![0.0, 2.0, 0.0, 0.0],
            vec![0.0, 0.5, 0.0, 0.0],
        );
        assert_eq!(incremental, bulk);
    }

    #[test]
    #[should_panic(expected = "same buckets")]
    fn mismatched_core_second_traces_panic() {
        let _ = NodeUtilization::from_core_seconds("x", 1, vec![0.0], vec![]);
    }

    #[test]
    fn run_metrics_slicing() {
        let completions = vec![
            CompletedRequest::new(0.5, 10.0),
            CompletedRequest::new(1.5, 20.0),
            CompletedRequest::new(2.5, 30.0),
        ];
        let metrics = RunMetrics::new(3.0, 5, completions, vec![]).with_events(12);
        assert_eq!(metrics.offered(), 5);
        assert_eq!(metrics.events_processed(), 12);
        assert_eq!(metrics.latency_stats().count(), 3);
        let sliced = metrics.latency_stats_between(1.0, 3.0);
        assert_eq!(sliced.count(), 2);
        assert!((sliced.median_ms().unwrap() - 25.0).abs() < 1e-9);
        assert_eq!(metrics.dropped(), 0);
        assert_eq!(metrics.drop_fraction(), 0.0);
    }

    #[test]
    fn queue_stats_account_drops() {
        let stats = NodeQueueStats::new("pixel-00", 10, 7, vec![1, 0, 2]);
        assert_eq!(stats.node(), "pixel-00");
        assert_eq!(stats.dropped(), 3);
        assert_eq!(
            stats.calls_arrived(),
            stats.calls_served() + stats.dropped()
        );
        let metrics = RunMetrics::new(3.0, 8, vec![], vec![])
            .with_queue_stats(vec![0.4, 1.6], vec![stats.clone()]);
        assert_eq!(metrics.dropped(), 2);
        assert_eq!(metrics.dropped_between(0.0, 1.0), 1);
        assert_eq!(metrics.dropped_between(1.0, 3.0), 1);
        assert!((metrics.drop_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(metrics.queue_stats(), &[stats]);
    }
}
