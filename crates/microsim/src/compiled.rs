//! The compiled simulation engine: the index-resolved, string-free hot
//! path behind [`Simulation::run`].
//!
//! [`Simulation::run_reference`] is the engine's executable specification:
//! readable, but it resolves a `BTreeMap`-of-`String` placement lookup for
//! every call event, materialises the full arrival schedule up front and
//! scans all of a node's cores to find the earliest-available one.
//! [`CompiledSim`] performs all of that work once, at compile time:
//!
//! * every `placement.node_of(service)` lookup is resolved to a flat node
//!   index per call;
//! * per-(call, node) service times and shared-channel transmission times
//!   are precomputed into dense arrays, using the *same* floating-point
//!   expressions as the reference engine so results stay bit-identical;
//! * the up-front `Vec` of all arrivals (plus the 4x-capacity global event
//!   heap) is replaced by [`LazyArrivals`], which draws the next arrival
//!   from the workload RNG only when the previous one enters the system,
//!   keeping memory proportional to in-flight requests;
//! * the O(cores) linear scan per call admission is replaced by a
//!   [`CoreHeap`] min-heap of core free times.
//!
//! # Determinism
//!
//! A compiled run is bit-identical to the reference engine for the same
//! seed. Three properties guarantee it:
//!
//! 1. [`LazyArrivals`] consumes the workload RNG in exactly the reference
//!    order (one inter-arrival draw per attempt, one thinning draw per
//!    candidate of a ramp phase, one mix draw per accepted arrival of an
//!    unrestricted phase).
//! 2. Events are ordered by `(time, class, seq)` where arrivals get class
//!    0 and derived events class 1 — the same tie-break the reference
//!    engine achieves by numbering all arrivals before any derived event.
//! 3. [`CoreHeap`] removes one instance of the minimum free time and
//!    inserts the finish time, the same multiset transformation the
//!    reference's first-minimum linear scan performs, so tied cores are
//!    indistinguishable.
//!
//! The equivalence is enforced by unit tests here and by the property
//! suite in the workspace's `tests/microsim_equivalence.rs`.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use junkyard_obs::{EventKind, NoopRecorder, Recorder, TraceEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{CompletedRequest, NodeQueueStats, NodeUtilization, RunMetrics};
use crate::sim::{
    flow_hash, Phase, QueueDiscipline, RssTable, SimError, Simulation, Workload,
    CLIENT_REQUEST_BYTES, RPC_SYS_OVERHEAD_MS,
};

/// A min-heap of resource free times: one entry per core (or client
/// worker), popping the earliest-available slot in O(log cores) instead of
/// the reference engine's O(cores) scan.
///
/// Only free *times* are tracked, not slot identities: reserving a slot is
/// "remove one instance of the minimum, insert the finish time", which is
/// exactly the state transition of the reference engine's first-minimum
/// linear scan (tied slots are indistinguishable by value).
#[derive(Debug, Clone)]
pub struct CoreHeap {
    free_at: BinaryHeap<Slot>,
}

/// A free time in the heap, stored as raw `f64` bits: simulation times are
/// non-negative and finite, where the IEEE-754 bit pattern is monotone in
/// the value, so a single integer compare replaces `f64::total_cmp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot(u64);

impl Ord for Slot {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we pop the smallest time.
        other.0.cmp(&self.0)
    }
}

impl PartialOrd for Slot {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl CoreHeap {
    /// Creates a heap of `slots` resources, all free from `free_from`.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or `free_from` is negative.
    #[must_use]
    pub fn new(slots: usize, free_from: f64) -> Self {
        assert!(slots > 0, "a resource pool needs at least one slot");
        assert!(
            free_from >= 0.0,
            "slot free times are simulation timestamps (non-negative)"
        );
        // Normalise -0.0 (which passes the assert) to +0.0: the raw-bit
        // ordering is only monotone for positively signed values.
        let free_from = free_from + 0.0;
        let mut free_at = BinaryHeap::with_capacity(slots);
        for _ in 0..slots {
            free_at.push(Slot(free_from.to_bits()));
        }
        Self { free_at }
    }

    /// Claims the earliest-available slot for work arriving at `now` and
    /// returns the work's start time. The caller must hand the slot back
    /// with [`CoreHeap::finish_at`] once the finish time is known.
    pub fn begin(&mut self, now: f64) -> f64 {
        let Slot(avail) = self
            .free_at
            .pop()
            .expect("begin/finish_at calls are paired, so a slot is free");
        now.max(f64::from_bits(avail))
    }

    /// Returns a claimed slot to the pool, free again from `at`.
    pub fn finish_at(&mut self, at: f64) {
        debug_assert!(at >= 0.0, "slot free times are non-negative");
        self.free_at.push(Slot(at.to_bits()));
    }

    /// The earliest free time in the pool, without claiming the slot —
    /// used by the bounded-queue admission check, which must know a call's
    /// start time before deciding whether to reserve anything.
    ///
    /// # Panics
    ///
    /// Panics if every slot is claimed.
    #[must_use]
    pub fn next_free(&self) -> f64 {
        let slot = self
            .free_at
            .peek()
            .expect("peek requires at least one unclaimed slot");
        f64::from_bits(slot.0)
    }

    /// Number of currently unclaimed slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.free_at.len()
    }

    /// `true` when every slot is claimed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.free_at.is_empty()
    }
}

/// One pre-resolved call: target node index, per-node service times and
/// shared-channel transmission times, all computed once at compile time.
#[derive(Debug, Clone, Copy)]
struct CompiledCall {
    node: u32,
    same_node: bool,
    user_secs: f64,
    sys_secs: f64,
    request_tx_secs: f64,
    response_tx_secs: f64,
}

/// One pre-resolved request type: flat call array with per-stage ranges.
#[derive(Debug, Clone)]
struct CompiledType {
    /// `calls[lo..hi]` ranges, one per stage, in execution order.
    stage_ranges: Vec<(u32, u32)>,
    calls: Vec<CompiledCall>,
    client_cost_secs: f64,
    client_response_tx_secs: f64,
}

/// A [`Simulation`] lowered to dense index-addressed tables, ready to run
/// workloads without any per-event string lookups or allocations.
///
/// Build one with [`Simulation::compile`] (or [`CompiledSim::compile`]) and
/// reuse it across workloads — compilation resolves the placement and
/// service-time maths once, and [`CompiledSim::run`] is `&self`, so a
/// compiled simulation can be shared across sweep worker threads.
#[derive(Debug, Clone)]
pub struct CompiledSim {
    node_names: Vec<String>,
    node_cores: Vec<u32>,
    /// Network cores per node (zero under the combined layout).
    net_cores: Vec<u32>,
    /// Application cores per node (all cores under the combined layout).
    app_cores: Vec<u32>,
    /// One RSS indirection table per node (a single-queue table under
    /// centralised FCFS).
    rss: Vec<RssTable>,
    dfcfs: bool,
    queue_size: Option<usize>,
    types: Vec<CompiledType>,
    type_names: Vec<String>,
    weights: Vec<f64>,
    total_weight: f64,
    colocated_client: bool,
    client_workers: u32,
    intra_secs: f64,
    inter_secs: f64,
    client_latency_secs: f64,
    client_request_tx_secs: f64,
}

/// Lazily generated open-loop arrivals: `(time, request type index)` pairs
/// drawn phase by phase from the workload RNG.
///
/// The iterator consumes the RNG in exactly the order of the reference
/// engine's up-front generation loop, so the produced sequence is
/// bit-identical — but only one arrival exists at a time instead of the
/// whole schedule.
#[derive(Debug, Clone)]
pub struct LazyArrivals<'a> {
    rng: StdRng,
    phases: &'a [Phase],
    fixed_types: Vec<Option<usize>>,
    weights: &'a [f64],
    total_weight: f64,
    phase_idx: usize,
    phase_start: f64,
    t: f64,
}

impl Iterator for LazyArrivals<'_> {
    type Item = (f64, usize);

    fn next(&mut self) -> Option<(f64, usize)> {
        while self.phase_idx < self.phases.len() {
            let phase = &self.phases[self.phase_idx];
            let peak = phase.peak_qps();
            if peak > 0.0 {
                let u: f64 = self.rng.random::<f64>().max(1e-12);
                self.t += -u.ln() / peak;
                if self.t < self.phase_start + phase.duration_s() {
                    if phase.is_ramp() {
                        // Thinning for time-varying phases: candidates are
                        // drawn at the peak rate and accepted with
                        // probability rate(t)/peak — the identical draw
                        // order as the reference generation loop. A
                        // rejected candidate stays in this phase and draws
                        // the next candidate.
                        let accept: f64 = self.rng.random();
                        if accept * peak > phase.rate_at(self.t - self.phase_start) {
                            continue;
                        }
                    }
                    let type_idx = match self.fixed_types[self.phase_idx] {
                        Some(idx) => idx,
                        None => {
                            // The reference engine's weighted pick, with the
                            // identical subtraction order.
                            let mut pick = self.rng.random::<f64>() * self.total_weight;
                            let mut chosen = self.weights.len() - 1;
                            for (i, w) in self.weights.iter().enumerate() {
                                if pick < *w {
                                    chosen = i;
                                    break;
                                }
                                pick -= w;
                            }
                            chosen
                        }
                    };
                    return Some((self.t, type_idx));
                }
            }
            // Phase exhausted (or idle): move to the next one. The draw that
            // overshot the phase end is consumed and discarded, exactly as
            // in the reference generation loop.
            self.phase_start += phase.duration_s();
            self.t = self.phase_start;
            self.phase_idx += 1;
        }
        None
    }
}

/// Event step of the compiled engine, indexing into the flat call arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CStep {
    Arrive,
    Dispatch { stage: u32 },
    CallArrived { stage: u32, call: u32 },
    CallNetDone { stage: u32, call: u32 },
    CallFinished { stage: u32, call: u32 },
    Complete,
}

/// A node's application cores, shaped by the queue discipline: one shared
/// pool under centralised FCFS (a [`CoreHeap`] multiset of free times), or
/// per-core free times under distributed FCFS, where core identity matters
/// because the RSS table pins each flow to one core.
#[derive(Debug, Clone)]
enum AppPool {
    Central(CoreHeap),
    Distributed(Vec<f64>),
}

/// Arrivals sort before derived events at equal times, mirroring the
/// reference engine's all-arrivals-first sequence numbering.
const CLASS_ARRIVAL: u128 = 0;
const CLASS_DERIVED: u128 = 1;

/// Packs the `(time, class, seq)` ordering into one integer key: the
/// `f64` bit pattern of a non-negative time is monotone in the value, so
/// `time bits . class bit . 63-bit seq` compares as a single `u128` —
/// one branch per heap comparison instead of a float/class/seq cascade.
#[inline]
fn event_key(time: f64, class: u128, seq: u64) -> u128 {
    debug_assert!(time >= 0.0, "event times are non-negative");
    debug_assert!(seq < 1 << 63, "sequence numbers stay below 2^63");
    (u128::from(time.to_bits()) << 64) | (class << 63) | u128::from(seq)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CEvent {
    key: u128,
    request: u32,
    step: CStep,
}

impl CEvent {
    /// The event's timestamp, recovered from the key's upper 64 bits.
    #[inline]
    fn time(&self) -> f64 {
        f64::from_bits((self.key >> 64) as u64)
    }
}

impl Ord for CEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: the binary heap is a max-heap, we want the
        // earliest (time, class, seq) key first. Keys are unique (every
        // event carries a distinct `seq`), so the pop sequence is the
        // unique ascending key order.
        other.key.cmp(&self.key)
    }
}

impl PartialOrd for CEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-request state, slab-allocated and recycled on completion so the
/// resident set tracks in-flight requests, not total arrivals.
#[derive(Debug, Clone, Copy)]
struct ReqState {
    arrival: f64,
    type_idx: u32,
    outstanding_calls: u32,
    stage_end: f64,
    /// SplitMix64 hash of the request's global arrival index, fed to the
    /// RSS indirection table (same value as the reference engine's).
    flow: u64,
    /// Set when any call of the request was dropped by a bounded queue:
    /// the request terminates once its in-flight calls drain.
    dropped: bool,
}

/// Sends `tx` seconds of traffic through the shared channel at `now` and
/// returns the delivery time (the reference engine's `send` for the
/// cross-node / client cases).
#[inline]
fn via_channel(link_avail: &mut f64, now: f64, tx: f64, latency: f64) -> f64 {
    if tx > 0.0 {
        let start = now.max(*link_avail);
        *link_avail = start + tx;
        start + tx + latency
    } else {
        now + latency
    }
}

impl CompiledSim {
    /// Lowers a validated simulation into dense tables.
    ///
    /// All placement lookups, per-node service-time divisions and
    /// shared-channel transmission times happen here, once, using the same
    /// floating-point expressions as the reference engine.
    #[must_use]
    pub fn compile(sim: &Simulation) -> Self {
        let app = sim.app();
        let nodes = sim.nodes();
        let placement = sim.placement();
        let network = sim.network();
        let frontend_node = placement
            .node_of(app.frontend())
            .expect("placement covers the frontend");

        let mut types = Vec::with_capacity(app.request_types().len());
        let mut type_names = Vec::with_capacity(app.request_types().len());
        for request_type in app.request_types() {
            let mut calls = Vec::new();
            let mut stage_ranges = Vec::with_capacity(request_type.stages().len());
            for stage in request_type.stages() {
                let lo = u32::try_from(calls.len()).expect("call count fits u32");
                for call in stage.calls() {
                    let target = placement
                        .node_of(call.service())
                        .expect("placement covers every service");
                    calls.push(CompiledCall {
                        node: u32::try_from(target).expect("node count fits u32"),
                        same_node: target == frontend_node,
                        user_secs: nodes[target].service_secs(call.cpu_ms()),
                        sys_secs: nodes[target].service_secs(RPC_SYS_OVERHEAD_MS),
                        request_tx_secs: network.transmission_secs(call.request_bytes()),
                        response_tx_secs: network.transmission_secs(call.response_bytes()),
                    });
                }
                let hi = u32::try_from(calls.len()).expect("call count fits u32");
                stage_ranges.push((lo, hi));
            }
            types.push(CompiledType {
                stage_ranges,
                calls,
                client_cost_secs: nodes[0].service_secs(request_type.client_cost_ms()),
                client_response_tx_secs: network
                    .transmission_secs(request_type.response_to_client_bytes()),
            });
            type_names.push(request_type.name().to_owned());
        }

        let weights: Vec<f64> = app.request_types().iter().map(|r| r.weight()).collect();
        let total_weight: f64 = weights.iter().sum();

        let model = sim.server_model();
        let dfcfs = model.discipline() == QueueDiscipline::DistributedFcfs;
        let mut net_cores = Vec::with_capacity(nodes.len());
        let mut app_cores = Vec::with_capacity(nodes.len());
        let mut rss = Vec::with_capacity(nodes.len());
        for node in nodes {
            let (net, app_pool) = model.layout().split(node.cores());
            net_cores.push(u32::try_from(net).expect("core count fits u32"));
            app_cores.push(u32::try_from(app_pool).expect("core count fits u32"));
            rss.push(RssTable::new(if dfcfs { app_pool } else { 1 }));
        }

        Self {
            node_names: nodes.iter().map(|n| n.name().to_owned()).collect(),
            node_cores: nodes.iter().map(crate::node::NodeSpec::cores).collect(),
            net_cores,
            app_cores,
            rss,
            dfcfs,
            queue_size: model.queue_size(),
            types,
            type_names,
            weights,
            total_weight,
            colocated_client: sim.colocated_client(),
            client_workers: app.client_workers(),
            intra_secs: network.hop_latency_secs(true),
            inter_secs: network.hop_latency_secs(false),
            client_latency_secs: network.client_latency_ms()
                / junkyard_carbon::units::MILLIS_PER_SEC,
            client_request_tx_secs: network.transmission_secs(CLIENT_REQUEST_BYTES),
        }
    }

    /// Position of a request type by name.
    fn type_index(&self, name: &str) -> Result<usize, SimError> {
        self.type_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| SimError::UnknownRequestType(name.to_owned()))
    }

    /// The lazy arrival sequence of `workload`: `(time, type index)` pairs
    /// in time order, bit-identical to the reference engine's up-front
    /// schedule for the same seed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownRequestType`] if a phase names a request
    /// type the application does not define.
    pub fn arrivals<'a>(&'a self, workload: &'a Workload) -> Result<LazyArrivals<'a>, SimError> {
        let mut fixed_types = Vec::with_capacity(workload.phases().len());
        for phase in workload.phases() {
            fixed_types.push(match phase.request_type() {
                Some(name) => Some(self.type_index(name)?),
                None => None,
            });
        }
        Ok(LazyArrivals {
            rng: StdRng::seed_from_u64(workload.seed()),
            phases: workload.phases(),
            fixed_types,
            weights: &self.weights,
            total_weight: self.total_weight,
            phase_idx: 0,
            phase_start: 0.0,
            t: 0.0,
        })
    }

    /// Runs the workload through the compiled hot path and returns the
    /// collected metrics, bit-identical to
    /// [`Simulation::run_reference`] for the same seed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownRequestType`] if a phase names a request
    /// type the application does not define.
    pub fn run(&self, workload: &Workload) -> Result<RunMetrics, SimError> {
        self.run_with(workload, &mut NoopRecorder)
    }

    /// [`CompiledSim::run`] with observability hooks: admissions, queue
    /// drops and completions are reported to `recorder` on the
    /// simulated-time axis.
    ///
    /// The recorder is generic (not `dyn`) so the [`NoopRecorder`]
    /// instantiation — the one `run` uses — monomorphises `enabled()`
    /// to a constant `false` and the hooks vanish from the hot loop:
    /// an untraced run is bit-identical to (and as fast as) one built
    /// without this crate's hooks.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownRequestType`] if a phase names a request
    /// type the application does not define.
    pub fn run_with<R: Recorder>(
        &self,
        workload: &Workload,
        recorder: &mut R,
    ) -> Result<RunMetrics, SimError> {
        let mut arrivals = self.arrivals(workload)?;
        let total_duration = workload.total_duration_s();
        let buckets = total_duration.ceil() as usize + 2;

        // Dense per-(node, second) accumulators, `node * buckets + second`;
        // wrapped into `NodeUtilization` traces after the run.
        let mut util_user: Vec<f64> = vec![0.0; self.node_cores.len() * buckets];
        let mut util_sys: Vec<f64> = vec![0.0; self.node_cores.len() * buckets];
        let mut net_pools: Vec<Option<CoreHeap>> = self
            .net_cores
            .iter()
            .map(|&c| (c > 0).then(|| CoreHeap::new(c as usize, 0.0)))
            .collect();
        let mut app_pools: Vec<AppPool> = self
            .app_cores
            .iter()
            .map(|&c| {
                if self.dfcfs {
                    AppPool::Distributed(vec![0.0; c as usize])
                } else {
                    AppPool::Central(CoreHeap::new(c as usize, 0.0))
                }
            })
            .collect();
        // Per-queue start times of admitted-but-waiting calls (pushed in
        // nondecreasing order, pruned from the front), mirroring the
        // reference engine's occupancy accounting exactly.
        let mut waiting: Vec<Vec<VecDeque<f64>>> = self
            .app_cores
            .iter()
            .map(|&app| vec![VecDeque::new(); if self.dfcfs { app as usize } else { 1 }])
            .collect();
        let mut queue_drops: Vec<Vec<u64>> = waiting.iter().map(|q| vec![0_u64; q.len()]).collect();
        let mut calls_arrived: Vec<u64> = vec![0; self.node_cores.len()];
        let mut calls_served: Vec<u64> = vec![0; self.node_cores.len()];
        let mut dropped_arrivals: Vec<f64> = Vec::new();
        let mut client = CoreHeap::new(self.client_workers as usize, 0.0);
        let mut link_avail = 0.0_f64;

        let mut events: BinaryHeap<CEvent> = BinaryHeap::with_capacity(256);
        let mut states: Vec<ReqState> = Vec::with_capacity(256);
        let mut free_slots: Vec<u32> = Vec::new();
        // Completions are kept for the whole run (they are the output), so
        // pre-size them from the offered load; everything else stays
        // proportional to in-flight requests.
        let expected_arrivals = workload
            .phases()
            .iter()
            .map(|p| p.mean_qps() * p.duration_s())
            .sum::<f64>() as usize;
        let mut completions: Vec<CompletedRequest> =
            Vec::with_capacity(expected_arrivals.saturating_add(16).min(1 << 24));
        let mut seq = 0_u64;
        let mut offered = 0_usize;
        let mut processed = 0_u64;

        // Keeps exactly one future arrival in the queue: admit the next one
        // when the current one enters the system.
        fn admit(
            arrival: Option<(f64, usize)>,
            states: &mut Vec<ReqState>,
            free_slots: &mut Vec<u32>,
            events: &mut BinaryHeap<CEvent>,
            seq: &mut u64,
            offered: &mut usize,
        ) {
            let Some((t, type_idx)) = arrival else {
                return;
            };
            let state = ReqState {
                arrival: t,
                type_idx: u32::try_from(type_idx).expect("request-type count fits u32"),
                outstanding_calls: 0,
                stage_end: t,
                // `*offered` is the request's global arrival index: admit
                // runs once per arrival, in arrival order, exactly like
                // the reference engine's schedule indices.
                flow: flow_hash(*offered as u64),
                dropped: false,
            };
            let slot = match free_slots.pop() {
                Some(slot) => {
                    states[slot as usize] = state;
                    slot
                }
                None => {
                    states.push(state);
                    u32::try_from(states.len() - 1).expect("in-flight request count fits u32")
                }
            };
            events.push(CEvent {
                key: event_key(t, CLASS_ARRIVAL, *seq),
                request: slot,
                step: CStep::Arrive,
            });
            *seq += 1;
            *offered += 1;
        }

        admit(
            arrivals.next(),
            &mut states,
            &mut free_slots,
            &mut events,
            &mut seq,
            &mut offered,
        );

        while let Some(event) = events.pop() {
            processed += 1;
            let now = event.time();
            let request = event.request as usize;
            let ty = &self.types[states[request].type_idx as usize];
            let mut push = |time: f64, step: CStep, seq: &mut u64| {
                events.push(CEvent {
                    key: event_key(time, CLASS_DERIVED, *seq),
                    request: event.request,
                    step,
                });
                *seq += 1;
            };

            match event.step {
                CStep::Arrive => {
                    if recorder.enabled() {
                        let type_idx = states[request].type_idx;
                        recorder.event(TraceEvent::new(
                            EventKind::Admit,
                            now,
                            &format!("type{type_idx}"),
                            1.0,
                        ));
                    }
                    let ready = if self.colocated_client {
                        let cost = ty.client_cost_secs;
                        let start = client.begin(now);
                        let end = start + cost;
                        client.finish_at(end);
                        end + self.intra_secs
                    } else {
                        via_channel(
                            &mut link_avail,
                            now,
                            self.client_request_tx_secs,
                            self.client_latency_secs,
                        )
                    };
                    push(ready, CStep::Dispatch { stage: 0 }, &mut seq);
                    admit(
                        arrivals.next(),
                        &mut states,
                        &mut free_slots,
                        &mut events,
                        &mut seq,
                        &mut offered,
                    );
                }
                CStep::Dispatch { stage } => {
                    let (lo, hi) = ty.stage_ranges[stage as usize];
                    states[request].outstanding_calls = hi - lo;
                    states[request].stage_end = now;
                    for call_idx in lo..hi {
                        let call = &ty.calls[call_idx as usize];
                        let delivered = if call.same_node {
                            now + self.intra_secs
                        } else {
                            via_channel(&mut link_avail, now, call.request_tx_secs, self.inter_secs)
                        };
                        push(
                            delivered,
                            CStep::CallArrived {
                                stage,
                                call: call_idx,
                            },
                            &mut seq,
                        );
                    }
                }
                CStep::CallArrived { stage, call } => {
                    let spec = &ty.calls[call as usize];
                    let node = spec.node as usize;
                    calls_arrived[node] += 1;
                    if let Some(pool) = &mut net_pools[node] {
                        // Dedicated layout: network processing first, on
                        // the earliest-free network core (unbounded — the
                        // application queue downstream is what the bound
                        // protects).
                        let start = pool.begin(now);
                        pool.finish_at(start + spec.sys_secs);
                        let second = (start.max(0.0).floor() as usize).min(buckets - 1);
                        util_sys[node * buckets + second] += spec.sys_secs;
                        push(
                            start + spec.sys_secs,
                            CStep::CallNetDone { stage, call },
                            &mut seq,
                        );
                        continue;
                    }
                    // Combined layout: admission against the discipline's
                    // application queue, then one reservation covering
                    // system and application work.
                    let queue = if self.dfcfs {
                        self.rss[node].queue_of(states[request].flow)
                    } else {
                        0
                    };
                    let avail = match &app_pools[node] {
                        AppPool::Central(heap) => heap.next_free(),
                        AppPool::Distributed(avail) => avail[queue],
                    };
                    let start = now.max(avail);
                    if let Some(cap) = self.queue_size {
                        if start > now {
                            let q = &mut waiting[node][queue];
                            while q.front().is_some_and(|&s| s <= now) {
                                q.pop_front();
                            }
                            if q.len() >= cap {
                                queue_drops[node][queue] += 1;
                                if recorder.enabled() {
                                    recorder.event(TraceEvent::new(
                                        EventKind::Drop,
                                        now,
                                        &format!("node{node}:q{queue}"),
                                        1.0,
                                    ));
                                }
                                let state = &mut states[request];
                                state.dropped = true;
                                state.outstanding_calls -= 1;
                                if state.outstanding_calls == 0 {
                                    dropped_arrivals.push(state.arrival);
                                    free_slots.push(event.request);
                                }
                                continue;
                            }
                            q.push_back(start);
                        }
                    }
                    let finish = start + spec.user_secs + spec.sys_secs;
                    match &mut app_pools[node] {
                        AppPool::Central(heap) => {
                            let begun = heap.begin(now);
                            debug_assert_eq!(begun.to_bits(), start.to_bits());
                            heap.finish_at(finish);
                        }
                        AppPool::Distributed(avail) => avail[queue] = finish,
                    }
                    // The reference's `NodeUtilization::bucket` clamp, on
                    // the flat accumulators.
                    let second = (start.max(0.0).floor() as usize).min(buckets - 1);
                    let slot = node * buckets + second;
                    util_user[slot] += spec.user_secs;
                    util_sys[slot] += spec.sys_secs;
                    push(finish, CStep::CallFinished { stage, call }, &mut seq);
                }
                CStep::CallNetDone { stage, call } => {
                    // Network processing done: queue for an application
                    // core. This is where the dedicated layout's bound
                    // applies — a drop here has already burnt network-core
                    // time on the doomed call.
                    let spec = &ty.calls[call as usize];
                    let node = spec.node as usize;
                    let queue = if self.dfcfs {
                        self.rss[node].queue_of(states[request].flow)
                    } else {
                        0
                    };
                    let avail = match &app_pools[node] {
                        AppPool::Central(heap) => heap.next_free(),
                        AppPool::Distributed(avail) => avail[queue],
                    };
                    let start = now.max(avail);
                    if let Some(cap) = self.queue_size {
                        if start > now {
                            let q = &mut waiting[node][queue];
                            while q.front().is_some_and(|&s| s <= now) {
                                q.pop_front();
                            }
                            if q.len() >= cap {
                                queue_drops[node][queue] += 1;
                                if recorder.enabled() {
                                    recorder.event(TraceEvent::new(
                                        EventKind::Drop,
                                        now,
                                        &format!("node{node}:q{queue}"),
                                        1.0,
                                    ));
                                }
                                let state = &mut states[request];
                                state.dropped = true;
                                state.outstanding_calls -= 1;
                                if state.outstanding_calls == 0 {
                                    dropped_arrivals.push(state.arrival);
                                    free_slots.push(event.request);
                                }
                                continue;
                            }
                            q.push_back(start);
                        }
                    }
                    match &mut app_pools[node] {
                        AppPool::Central(heap) => {
                            let begun = heap.begin(now);
                            debug_assert_eq!(begun.to_bits(), start.to_bits());
                            heap.finish_at(start + spec.user_secs);
                        }
                        AppPool::Distributed(avail) => avail[queue] = start + spec.user_secs,
                    }
                    let second = (start.max(0.0).floor() as usize).min(buckets - 1);
                    util_user[node * buckets + second] += spec.user_secs;
                    push(
                        start + spec.user_secs,
                        CStep::CallFinished { stage, call },
                        &mut seq,
                    );
                }
                CStep::CallFinished { stage, call } => {
                    let spec = &ty.calls[call as usize];
                    calls_served[spec.node as usize] += 1;
                    let replied = if spec.same_node {
                        now + self.intra_secs
                    } else {
                        via_channel(&mut link_avail, now, spec.response_tx_secs, self.inter_secs)
                    };
                    let state = &mut states[request];
                    if replied > state.stage_end {
                        state.stage_end = replied;
                    }
                    state.outstanding_calls -= 1;
                    if state.outstanding_calls == 0 {
                        if state.dropped {
                            // A sibling call was dropped: terminate the
                            // request once its in-flight calls drain.
                            dropped_arrivals.push(state.arrival);
                            free_slots.push(event.request);
                        } else {
                            let next_time = state.stage_end;
                            let next_step = if (stage as usize) + 1 < ty.stage_ranges.len() {
                                CStep::Dispatch { stage: stage + 1 }
                            } else {
                                CStep::Complete
                            };
                            push(next_time, next_step, &mut seq);
                        }
                    }
                }
                CStep::Complete => {
                    let done = if self.colocated_client {
                        now + self.intra_secs
                    } else {
                        via_channel(
                            &mut link_avail,
                            now,
                            ty.client_response_tx_secs,
                            self.client_latency_secs,
                        )
                    };
                    let arrival = states[request].arrival;
                    if recorder.enabled() {
                        recorder.event(TraceEvent::new(
                            EventKind::Complete,
                            arrival,
                            "",
                            (done - arrival) * 1_000.0,
                        ));
                    }
                    completions.push(CompletedRequest::new(arrival, (done - arrival) * 1_000.0));
                    free_slots.push(event.request);
                }
            }
        }

        let utilization: Vec<NodeUtilization> = self
            .node_names
            .iter()
            .zip(&self.node_cores)
            .enumerate()
            .map(|(node, (name, &node_cores))| {
                NodeUtilization::from_core_seconds(
                    name.as_str(),
                    node_cores,
                    util_user[node * buckets..(node + 1) * buckets].to_vec(),
                    util_sys[node * buckets..(node + 1) * buckets].to_vec(),
                )
            })
            .collect();

        let queue_stats: Vec<NodeQueueStats> = self
            .node_names
            .iter()
            .enumerate()
            .map(|(node, name)| {
                NodeQueueStats::new(
                    name.as_str(),
                    calls_arrived[node],
                    calls_served[node],
                    queue_drops[node].clone(),
                )
            })
            .collect();
        Ok(
            RunMetrics::new(total_duration, offered, completions, utilization)
                .with_events(processed)
                .with_queue_stats(dropped_arrivals, queue_stats),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{hotel_reservation, social_network, SN_COMPOSE_POST};
    use crate::network::NetworkModel;
    use crate::node::{ten_pixel_cloudlet, NodeSpec};
    use crate::placement::Placement;

    fn phone_sim(app: crate::app::Application) -> Simulation {
        let nodes = ten_pixel_cloudlet();
        let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
        Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap()
    }

    #[test]
    fn core_heap_orders_reservations_by_free_time() {
        let mut heap = CoreHeap::new(2, 0.0);
        let s1 = heap.begin(0.0);
        heap.finish_at(s1 + 5.0);
        let s2 = heap.begin(1.0);
        heap.finish_at(s2 + 5.0);
        // Both cores busy until 5.0/6.0; the next reservation queues on the
        // first-free core.
        assert_eq!(heap.begin(2.0), 5.0);
        heap.finish_at(7.0);
        assert_eq!(heap.len(), 2);
        assert!(!heap.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn empty_core_heap_panics() {
        let _ = CoreHeap::new(0, 0.0);
    }

    #[test]
    fn negative_zero_free_time_is_normalised() {
        let mut heap = CoreHeap::new(2, -0.0);
        let start = heap.begin(0.0);
        heap.finish_at(start + 0.001);
        // The second core is still free from (+)0.0, so work at 0.0 starts
        // immediately instead of queueing behind the busy core.
        assert_eq!(heap.begin(0.0), 0.0);
        heap.finish_at(0.002);
    }

    #[test]
    fn lazy_arrivals_match_reference_schedule() {
        let sim = phone_sim(hotel_reservation());
        let compiled = sim.compile();
        let workload = Workload::phased(
            vec![
                Phase::idle(1.0),
                Phase::new(300.0, 2.0, None),
                Phase::new(150.0, 1.0, Some("search-hotel")),
            ],
            9,
        );
        let lazy: Vec<(f64, usize)> = compiled.arrivals(&workload).unwrap().collect();
        assert!(!lazy.is_empty());
        // Time-ordered, inside the loaded phases only.
        for pair in lazy.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
        assert!(lazy.iter().all(|(t, _)| *t >= 1.0 && *t < 4.0));
        // The reference engine offers exactly as many requests.
        let reference = sim.run_reference(&workload).unwrap();
        assert_eq!(lazy.len(), reference.offered());
    }

    #[test]
    fn compiled_run_is_bit_identical_to_reference() {
        let sim = phone_sim(social_network());
        for workload in [
            Workload::steady(800.0, 2.0, Some(SN_COMPOSE_POST), 42),
            Workload::steady(500.0, 2.0, None, 7),
            Workload::phased(
                vec![
                    Phase::idle(1.0),
                    Phase::new(400.0, 2.0, None),
                    Phase::idle(0.5),
                ],
                3,
            ),
            Workload::phased(
                vec![
                    Phase::ramp(100.0, 900.0, 2.0, None),
                    Phase::ramp(900.0, 200.0, 1.5, Some(SN_COMPOSE_POST)),
                ],
                11,
            ),
        ] {
            let reference = sim.run_reference(&workload).unwrap();
            let compiled = sim.run(&workload).unwrap();
            assert_eq!(reference, compiled);
        }
    }

    #[test]
    fn ramp_arrivals_follow_the_time_varying_rate() {
        let sim = phone_sim(hotel_reservation());
        let compiled = sim.compile();
        // A 0 -> 1,000 qps ramp over 8 s offers ~4,000 requests, three
        // quarters of them in the second half.
        let workload = Workload::phased(vec![Phase::ramp(0.0, 1_000.0, 8.0, None)], 5);
        let arrivals: Vec<(f64, usize)> = compiled.arrivals(&workload).unwrap().collect();
        let total = arrivals.len() as f64;
        assert!((3_400.0..4_600.0).contains(&total), "offered {total}");
        let second_half = arrivals.iter().filter(|(t, _)| *t >= 4.0).count() as f64;
        let share = second_half / total;
        assert!(
            (0.70..0.80).contains(&share),
            "second-half share {share} should be ~0.75"
        );
        // Arrival times stay ordered and inside the phase.
        for pair in arrivals.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
        assert!(arrivals.iter().all(|(t, _)| (0.0..8.0).contains(t)));
    }

    #[test]
    fn flat_ramp_is_bit_identical_to_a_constant_phase() {
        // A ramp with equal endpoints takes the constant-phase path (no
        // thinning draw), so the arrival stream is unchanged.
        let sim = phone_sim(social_network());
        let compiled = sim.compile();
        let constant = Workload::phased(vec![Phase::new(600.0, 2.0, None)], 9);
        let flat_ramp = Workload::phased(vec![Phase::ramp(600.0, 600.0, 2.0, None)], 9);
        let a: Vec<(f64, usize)> = compiled.arrivals(&constant).unwrap().collect();
        let b: Vec<(f64, usize)> = compiled.arrivals(&flat_ramp).unwrap().collect();
        assert_eq!(a, b);
        assert_eq!(sim.run(&constant).unwrap(), sim.run(&flat_ramp).unwrap());
    }

    #[test]
    fn compiled_colocated_client_matches_reference() {
        let app = social_network();
        let nodes = vec![NodeSpec::c5("c5", 36, 72.0)];
        let placement = Placement::single_node(&app);
        let sim = Simulation::new(app, nodes, placement, NetworkModel::single_node_loopback())
            .unwrap()
            .with_colocated_client(true);
        let workload = Workload::steady(2_500.0, 2.0, Some(SN_COMPOSE_POST), 4);
        assert_eq!(
            sim.run_reference(&workload).unwrap(),
            sim.run(&workload).unwrap()
        );
    }

    #[test]
    fn unknown_request_type_is_reported() {
        let sim = phone_sim(hotel_reservation());
        let err = sim
            .compile()
            .run(&Workload::steady(10.0, 1.0, Some("nope"), 0))
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownRequestType(_)));
    }
}
