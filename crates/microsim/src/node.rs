//! Compute nodes the microservices are placed on.

use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_devices::benchmark::Benchmark;
use junkyard_devices::device::DeviceSpec;

/// Single-core SGEMM throughput of the reference core (one Pixel 3A big
/// core), used to normalise per-core speeds.
pub const REFERENCE_SINGLE_CORE_SGEMM: f64 = 8.84;

/// A node of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    name: String,
    cores: u32,
    core_speed: f64,
    memory_gib: f64,
}

impl NodeSpec {
    /// Creates a node with `cores` cores, each `core_speed` times as fast as
    /// the reference (Pixel 3A) core, and `memory_gib` of RAM.
    ///
    /// # Panics
    ///
    /// Panics if the core count is zero or the speed/memory are not
    /// positive.
    #[must_use]
    pub fn new(name: impl Into<String>, cores: u32, core_speed: f64, memory_gib: f64) -> Self {
        assert!(cores > 0, "a node needs at least one core");
        assert!(core_speed > 0.0, "core speed must be positive");
        assert!(memory_gib > 0.0, "memory must be positive");
        Self {
            name: name.into(),
            cores,
            core_speed,
            memory_gib,
        }
    }

    /// A Pixel 3A phone node: 8 cores at 0.59 of the reference core, 4 GiB.
    ///
    /// The Pixel 3A's two Cortex-A76 big cores and six A55 little cores are
    /// modelled as eight homogeneous cores whose aggregate (4.7 reference
    /// cores) matches the handset's effective capacity on branchy,
    /// memory-bound microservice code.
    #[must_use]
    pub fn pixel_3a(index: usize) -> Self {
        Self::new(format!("pixel-{index:02}"), 8, 0.59, 4.0)
    }

    /// An AWS C5 instance node with the given vCPU count and memory.
    ///
    /// Each vCPU of the Xeon Platinum 8124M is one hyperthread; on branchy,
    /// cache-miss-heavy microservice code it is modelled at 0.60 reference
    /// cores, calibrated so that a c5.9xlarge lands in the same performance
    /// band as the ten-phone cloudlet, as the paper measures (Figure 7).
    #[must_use]
    pub fn c5(name: impl Into<String>, vcpus: u32, memory_gib: f64) -> Self {
        Self::new(name, vcpus, 0.60, memory_gib)
    }

    /// Builds a node from a device specification: core count and memory from
    /// the spec, per-core speed from its single-core SGEMM score relative to
    /// the reference core, derated so the node's total matches its
    /// multi-core score.
    ///
    /// # Panics
    ///
    /// Panics if the device has no SGEMM score.
    #[must_use]
    pub fn from_device(name: impl Into<String>, device: &DeviceSpec) -> Self {
        let score = device
            .benchmarks()
            .get(Benchmark::Sgemm)
            .expect("device needs an SGEMM score to derive core speed");
        // Use the multi-core score to size total capacity: it already folds
        // in the device's real parallel efficiency.
        let total_speed = score.multi_core() / REFERENCE_SINGLE_CORE_SGEMM;
        let per_core = total_speed / f64::from(device.cores());
        Self::new(name, device.cores(), per_core, device.memory_gib())
    }

    /// Node name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Per-core speed relative to the reference core.
    #[must_use]
    pub fn core_speed(&self) -> f64 {
        self.core_speed
    }

    /// Memory capacity in GiB.
    #[must_use]
    pub fn memory_gib(&self) -> f64 {
        self.memory_gib
    }

    /// Total compute capacity in reference-core units.
    #[must_use]
    pub fn capacity_ref_cores(&self) -> f64 {
        f64::from(self.cores) * self.core_speed
    }

    /// Wall-clock seconds one of this node's cores needs for `cpu_ms`
    /// reference-core milliseconds of work.
    ///
    /// Both simulation engines (the reference event loop and the compiled
    /// hot path) use this single expression, so precomputed service times
    /// stay bit-identical to the reference's per-event arithmetic.
    #[must_use]
    pub fn service_secs(&self, cpu_ms: f64) -> f64 {
        cpu_ms / 1_000.0 / self.core_speed
    }
}

impl fmt::Display for NodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} cores x {:.2}, {:.0} GiB)",
            self.name, self.cores, self.core_speed, self.memory_gib
        )
    }
}

/// Builds the paper's ten-phone cloudlet as simulation nodes.
#[must_use]
pub fn ten_pixel_cloudlet() -> Vec<NodeSpec> {
    (0..10).map(NodeSpec::pixel_3a).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use junkyard_devices::catalog::{self, C5Size};

    #[test]
    fn pixel_node_capacity_is_about_4_7_reference_cores() {
        let node = NodeSpec::pixel_3a(0);
        assert!(
            (node.capacity_ref_cores() - 4.7).abs() < 0.1,
            "{}",
            node.capacity_ref_cores()
        );
        assert_eq!(node.cores(), 8);
    }

    #[test]
    fn c5_9xlarge_is_in_the_same_band_as_ten_phones() {
        // The paper's Figure 7 puts the ten-phone cloudlet between a
        // c5.4xlarge and a c5.12xlarge; the aggregate capacities reflect
        // that (the cloudlet trades raw capacity for network latency).
        let phones: f64 = ten_pixel_cloudlet()
            .iter()
            .map(NodeSpec::capacity_ref_cores)
            .sum();
        let c5_4xl = NodeSpec::c5("c5.4xlarge", 16, 32.0).capacity_ref_cores();
        let c5_12xl = NodeSpec::c5("c5.12xlarge", 48, 96.0).capacity_ref_cores();
        assert!(c5_4xl < phones, "4xl {c5_4xl} vs phones {phones}");
        assert!(c5_12xl > phones * 0.55, "12xl {c5_12xl} vs phones {phones}");
    }

    #[test]
    fn from_device_matches_multicore_capacity() {
        let node = NodeSpec::from_device("pixel", &catalog::pixel_3a());
        assert!((node.capacity_ref_cores() - 39.0 / 8.84).abs() < 1e-9);
        let c5 = NodeSpec::from_device("c5", &catalog::c5_instance(C5Size::XLarge9));
        // 36 vCPUs at 0.75 parallel efficiency of a 70-Gflop core.
        assert!(c5.capacity_ref_cores() > 100.0);
        assert_eq!(c5.cores(), 36);
        assert!(c5.core_speed() > 1.0);
    }

    #[test]
    fn ten_phone_cloudlet_has_ten_nodes_with_unique_names() {
        let nodes = ten_pixel_cloudlet();
        assert_eq!(nodes.len(), 10);
        let mut names: Vec<&str> = nodes.iter().map(NodeSpec::name).collect();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = NodeSpec::new("x", 0, 1.0, 1.0);
    }

    #[test]
    fn display_mentions_cores() {
        assert!(NodeSpec::pixel_3a(3).to_string().contains("cores"));
    }

    #[test]
    fn service_secs_scales_with_core_speed() {
        let node = NodeSpec::new("x", 4, 2.0, 1.0);
        // 10 reference-core ms on a 2x core takes 5 ms of wall clock.
        assert!((node.service_secs(10.0) - 0.005).abs() < 1e-12);
    }
}
