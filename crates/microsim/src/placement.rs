//! Service placement: which node hosts which microservice.
//!
//! The paper's testbed runs Docker Swarm, which spreads the services of the
//! `docker-compose-swarm.yml` file across the ten phones subject to their
//! memory. [`Placement::swarm_spread`] reproduces that behaviour with a
//! deterministic, seeded spreading heuristic; [`Placement::single_node`]
//! models the EC2 deployments where every service shares one machine.

use std::collections::BTreeMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::app::Application;
use crate::node::NodeSpec;
use crate::service::ServiceSpec;

/// Error returned when an application cannot be placed on a cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// The cluster does not have enough total memory for the application.
    InsufficientMemory {
        /// Memory the application needs, GiB.
        required_gib: f64,
        /// Memory the cluster offers, GiB.
        available_gib: f64,
    },
    /// A single service is larger than the largest node.
    ServiceTooLarge {
        /// The offending service.
        service: String,
    },
    /// A manual placement referenced an unknown node index.
    UnknownNode {
        /// The offending node index.
        node: usize,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::InsufficientMemory {
                required_gib,
                available_gib,
            } => write!(
                f,
                "application needs {required_gib:.1} GiB but the cluster only has {available_gib:.1} GiB"
            ),
            PlacementError::ServiceTooLarge { service } => {
                write!(f, "service {service} does not fit on any node")
            }
            PlacementError::UnknownNode { node } => write!(f, "placement references unknown node {node}"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// A mapping from service name to hosting node index.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Placement {
    assignments: BTreeMap<String, usize>,
}

impl Placement {
    /// Places every service of the application on node 0 (the single-node
    /// EC2 deployments of Section 6.1).
    #[must_use]
    pub fn single_node(app: &Application) -> Self {
        let assignments = app
            .services()
            .iter()
            .map(|s| (s.name().to_owned(), 0))
            .collect();
        Self { assignments }
    }

    /// Spreads the application's services across the nodes the way Docker
    /// Swarm's spread strategy does: services are considered in descending
    /// memory order (with a seeded shuffle breaking ties) and each goes to
    /// the node hosting the fewest services so far, breaking ties by the
    /// most free memory, subject to the node having room.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] if the services cannot fit.
    pub fn swarm_spread(
        app: &Application,
        nodes: &[NodeSpec],
        seed: u64,
    ) -> Result<Self, PlacementError> {
        let required: f64 = app.total_memory_gib();
        let available: f64 = nodes.iter().map(NodeSpec::memory_gib).sum();
        if required > available {
            return Err(PlacementError::InsufficientMemory {
                required_gib: required,
                available_gib: available,
            });
        }

        let mut services: Vec<&ServiceSpec> = app.services().iter().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        services.shuffle(&mut rng);
        services.sort_by(|a, b| {
            b.memory_gib()
                .partial_cmp(&a.memory_gib())
                .expect("memory footprints are finite")
        });

        let mut free: Vec<f64> = nodes.iter().map(NodeSpec::memory_gib).collect();
        let mut counts: Vec<usize> = vec![0; nodes.len()];
        let mut assignments = BTreeMap::new();
        for service in services {
            let best = (0..nodes.len())
                .filter(|&i| free[i] >= service.memory_gib())
                .min_by(|&a, &b| {
                    counts[a].cmp(&counts[b]).then_with(|| {
                        free[b]
                            .partial_cmp(&free[a])
                            .expect("free memory is finite")
                    })
                })
                .ok_or_else(|| PlacementError::ServiceTooLarge {
                    service: service.name().to_owned(),
                })?;
            free[best] -= service.memory_gib();
            counts[best] += 1;
            assignments.insert(service.name().to_owned(), best);
        }
        Ok(Self { assignments })
    }

    /// Builds a placement from explicit `(service, node)` pairs, validating
    /// node indices against the cluster.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::UnknownNode`] for out-of-range node
    /// indices.
    pub fn manual<I, S>(pairs: I, nodes: &[NodeSpec]) -> Result<Self, PlacementError>
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<String>,
    {
        let mut assignments = BTreeMap::new();
        for (service, node) in pairs {
            if node >= nodes.len() {
                return Err(PlacementError::UnknownNode { node });
            }
            assignments.insert(service.into(), node);
        }
        Ok(Self { assignments })
    }

    /// The node hosting `service`, if placed.
    #[must_use]
    pub fn node_of(&self, service: &str) -> Option<usize> {
        self.assignments.get(service).copied()
    }

    /// The services hosted on node `node`, in name order.
    #[must_use]
    pub fn services_on(&self, node: usize) -> Vec<&str> {
        self.assignments
            .iter()
            .filter(|(_, n)| **n == node)
            .map(|(s, _)| s.as_str())
            .collect()
    }

    /// Number of placed services.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// `true` if nothing is placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Resolves every service of `app` (in `app.services()` order) to its
    /// hosting node index in one pass, or `None` if any service is
    /// unplaced — the bulk form of [`Placement::node_of`] for callers that
    /// want to leave name-keyed lookups behind up front, as the compiled
    /// engine does for its per-call tables.
    #[must_use]
    pub fn node_indices(&self, app: &Application) -> Option<Vec<usize>> {
        app.services()
            .iter()
            .map(|s| self.node_of(s.name()))
            .collect()
    }

    /// `true` if every service of `app` has a node assignment.
    #[must_use]
    pub fn covers(&self, app: &Application) -> bool {
        app.services()
            .iter()
            .all(|s| self.assignments.contains_key(s.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::social_network;
    use crate::node::{ten_pixel_cloudlet, NodeSpec};

    #[test]
    fn single_node_places_everything_on_node_zero() {
        let app = social_network();
        let p = Placement::single_node(&app);
        assert!(p.covers(&app));
        assert!(app
            .services()
            .iter()
            .all(|s| p.node_of(s.name()) == Some(0)));
        assert_eq!(p.services_on(0).len(), app.services().len());
    }

    #[test]
    fn swarm_spread_covers_all_services_and_respects_memory() {
        let app = social_network();
        let nodes = ten_pixel_cloudlet();
        let p = Placement::swarm_spread(&app, &nodes, 7).unwrap();
        assert!(p.covers(&app));
        for (i, node) in nodes.iter().enumerate() {
            let used: f64 = p
                .services_on(i)
                .iter()
                .map(|s| app.service(s).unwrap().memory_gib())
                .sum();
            assert!(used <= node.memory_gib() + 1e-9, "node {i} over-committed");
        }
    }

    #[test]
    fn swarm_spread_actually_spreads() {
        let app = social_network();
        let nodes = ten_pixel_cloudlet();
        let p = Placement::swarm_spread(&app, &nodes, 1).unwrap();
        let occupied = (0..nodes.len())
            .filter(|n| !p.services_on(*n).is_empty())
            .count();
        assert!(occupied >= 8, "only {occupied} of 10 phones used");
    }

    #[test]
    fn swarm_spread_is_deterministic_per_seed() {
        let app = social_network();
        let nodes = ten_pixel_cloudlet();
        let a = Placement::swarm_spread(&app, &nodes, 42).unwrap();
        let b = Placement::swarm_spread(&app, &nodes, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn insufficient_memory_is_an_error() {
        let app = social_network();
        let tiny = vec![NodeSpec::new("tiny", 2, 1.0, 1.0)];
        let err = Placement::swarm_spread(&app, &tiny, 0).unwrap_err();
        assert!(matches!(err, PlacementError::InsufficientMemory { .. }));
        assert!(err.to_string().contains("GiB"));
    }

    #[test]
    fn node_indices_align_with_service_order() {
        let app = social_network();
        let nodes = ten_pixel_cloudlet();
        let p = Placement::swarm_spread(&app, &nodes, 7).unwrap();
        let indices = p.node_indices(&app).unwrap();
        assert_eq!(indices.len(), app.services().len());
        for (service, idx) in app.services().iter().zip(&indices) {
            assert_eq!(p.node_of(service.name()), Some(*idx));
        }
        // A partial placement resolves to None.
        let partial = Placement::manual([("nginx-web-server", 0usize)], &nodes).unwrap();
        assert!(partial.node_indices(&app).is_none());
    }

    #[test]
    fn manual_placement_validates_nodes() {
        let nodes = ten_pixel_cloudlet();
        let ok = Placement::manual([("nginx-web-server", 3usize)], &nodes).unwrap();
        assert_eq!(ok.node_of("nginx-web-server"), Some(3));
        assert_eq!(ok.node_of("unknown"), None);
        let err = Placement::manual([("nginx-web-server", 99usize)], &nodes).unwrap_err();
        assert!(matches!(err, PlacementError::UnknownNode { node: 99 }));
    }
}
