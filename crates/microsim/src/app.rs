//! Microservice application graphs and request types.
//!
//! Two end-to-end applications from the DeathStarBench suite are modelled,
//! matching the ones the paper deploys on its Pixel 3A cloudlet (Section 6):
//!
//! * **SocialNetwork** — compose-post (write) and read-home-timeline (read)
//!   request types over ~29 services (nginx, Thrift logic tiers, Redis,
//!   memcached, MongoDB, Cassandra, Jaeger).
//! * **HotelReservation** — a mixed workload of search, recommend, login and
//!   reserve requests over ~19 Go/gRPC services.
//!
//! Per-call CPU costs are expressed in milliseconds on a *reference core*
//! (one Pixel 3A big core); they are calibrated so that the simulated
//! saturation throughputs match the paper's measurements (see
//! `EXPERIMENTS.md`). Message sizes drive the shared-WiFi bandwidth model.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::service::{ServiceKind, ServiceSpec};

/// One RPC issued while serving a request: which service runs, how much CPU
/// it burns and how large the request/response messages are.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceCall {
    service: String,
    cpu_ms: f64,
    request_bytes: f64,
    response_bytes: f64,
}

impl ServiceCall {
    /// Creates a call.
    ///
    /// # Panics
    ///
    /// Panics if any value is negative.
    #[must_use]
    pub fn new(
        service: impl Into<String>,
        cpu_ms: f64,
        request_bytes: f64,
        response_bytes: f64,
    ) -> Self {
        assert!(cpu_ms >= 0.0, "CPU cost cannot be negative");
        assert!(
            request_bytes >= 0.0 && response_bytes >= 0.0,
            "message sizes cannot be negative"
        );
        Self {
            service: service.into(),
            cpu_ms,
            request_bytes,
            response_bytes,
        }
    }

    /// A small RPC with typical Thrift/gRPC message sizes.
    #[must_use]
    pub fn rpc(service: impl Into<String>, cpu_ms: f64) -> Self {
        Self::new(service, cpu_ms, 350.0, 350.0)
    }

    /// The called service's name.
    #[must_use]
    pub fn service(&self) -> &str {
        &self.service
    }

    /// CPU cost in reference-core milliseconds.
    #[must_use]
    pub fn cpu_ms(&self) -> f64 {
        self.cpu_ms
    }

    /// Request message size in bytes.
    #[must_use]
    pub fn request_bytes(&self) -> f64 {
        self.request_bytes
    }

    /// Response message size in bytes.
    #[must_use]
    pub fn response_bytes(&self) -> f64 {
        self.response_bytes
    }
}

/// A stage of a request: a set of calls issued in parallel from the
/// request's frontend; the stage finishes when all calls have returned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    calls: Vec<ServiceCall>,
}

impl Stage {
    /// Creates a stage from its parallel calls.
    ///
    /// # Panics
    ///
    /// Panics if the stage has no calls.
    #[must_use]
    pub fn parallel(calls: Vec<ServiceCall>) -> Self {
        assert!(!calls.is_empty(), "a stage needs at least one call");
        Self { calls }
    }

    /// Creates a stage with a single call.
    #[must_use]
    pub fn single(call: ServiceCall) -> Self {
        Self::parallel(vec![call])
    }

    /// The calls issued in this stage.
    #[must_use]
    pub fn calls(&self) -> &[ServiceCall] {
        &self.calls
    }

    /// Total CPU cost of the stage.
    #[must_use]
    pub fn total_cpu_ms(&self) -> f64 {
        self.calls.iter().map(ServiceCall::cpu_ms).sum()
    }
}

/// One request type of an application (for example "compose post").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestType {
    name: String,
    weight: f64,
    client_cpu_ms: f64,
    client_response_bytes: f64,
    stages: Vec<Stage>,
}

impl RequestType {
    /// Creates a request type.
    ///
    /// # Panics
    ///
    /// Panics if the weight is not strictly positive or there are no stages.
    #[must_use]
    pub fn new(name: impl Into<String>, weight: f64, stages: Vec<Stage>) -> Self {
        assert!(weight > 0.0, "request-type weight must be positive");
        assert!(
            !stages.is_empty(),
            "a request type needs at least one stage"
        );
        Self {
            name: name.into(),
            weight,
            client_cpu_ms: 0.3,
            client_response_bytes: 1_000.0,
            stages,
        }
    }

    /// Sets the CPU cost a *colocated* load generator pays per request of
    /// this type (the paper runs the client on the same EC2 instance).
    #[must_use]
    pub fn client_cpu_ms(mut self, cpu_ms: f64) -> Self {
        self.client_cpu_ms = cpu_ms;
        self
    }

    /// Sets the size of the final response returned to the client.
    #[must_use]
    pub fn client_response_bytes(mut self, bytes: f64) -> Self {
        self.client_response_bytes = bytes;
        self
    }

    /// Request-type name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Relative weight in a mixed workload.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// CPU cost of a colocated client per request, reference-core ms.
    #[must_use]
    pub fn client_cost_ms(&self) -> f64 {
        self.client_cpu_ms
    }

    /// Size of the final response to the client, bytes.
    #[must_use]
    pub fn response_to_client_bytes(&self) -> f64 {
        self.client_response_bytes
    }

    /// The request's stages, in execution order.
    #[must_use]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Scales every stage's CPU cost by `factor`.
    ///
    /// The per-call costs in this module are estimates; the built-in
    /// applications apply a single calibration factor per application so
    /// that the simulated saturation throughput of the ten-phone cloudlet
    /// matches the paper's measured values (see `EXPERIMENTS.md`).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        for stage in &mut self.stages {
            for call in &mut stage.calls {
                call.cpu_ms *= factor;
            }
        }
        self
    }

    /// Total server-side CPU cost of one request, reference-core ms.
    #[must_use]
    pub fn total_cpu_ms(&self) -> f64 {
        self.stages.iter().map(Stage::total_cpu_ms).sum()
    }
}

impl fmt::Display for RequestType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} stages, {:.1} ms CPU)",
            self.name,
            self.stages.len(),
            self.total_cpu_ms()
        )
    }
}

/// A complete microservice application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    name: String,
    frontend: String,
    services: Vec<ServiceSpec>,
    request_types: Vec<RequestType>,
    client_workers: u32,
}

impl Application {
    /// Creates an application.
    ///
    /// # Panics
    ///
    /// Panics if the service list or request-type list is empty, or the
    /// frontend service is not in the service list.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        frontend: impl Into<String>,
        services: Vec<ServiceSpec>,
        request_types: Vec<RequestType>,
    ) -> Self {
        let frontend = frontend.into();
        assert!(!services.is_empty(), "an application needs services");
        assert!(
            !request_types.is_empty(),
            "an application needs request types"
        );
        assert!(
            services.iter().any(|s| s.name() == frontend),
            "frontend service must exist"
        );
        Self {
            name: name.into(),
            frontend,
            services,
            request_types,
            client_workers: 4,
        }
    }

    /// Application name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Name of the frontend (entry-point) service.
    #[must_use]
    pub fn frontend(&self) -> &str {
        &self.frontend
    }

    /// All services of the application.
    #[must_use]
    pub fn services(&self) -> &[ServiceSpec] {
        &self.services
    }

    /// All request types of the application.
    #[must_use]
    pub fn request_types(&self) -> &[RequestType] {
        &self.request_types
    }

    /// Looks up a request type by name.
    #[must_use]
    pub fn request_type(&self, name: &str) -> Option<&RequestType> {
        self.request_types.iter().find(|r| r.name() == name)
    }

    /// Number of worker threads a colocated load generator uses.
    #[must_use]
    pub fn client_workers(&self) -> u32 {
        self.client_workers
    }

    /// Total resident memory of all services, GiB.
    #[must_use]
    pub fn total_memory_gib(&self) -> f64 {
        self.services.iter().map(ServiceSpec::memory_gib).sum()
    }

    /// Looks up a service by name.
    #[must_use]
    pub fn service(&self, name: &str) -> Option<&ServiceSpec> {
        self.services.iter().find(|s| s.name() == name)
    }

    /// `true` when every call of every request type refers to a declared
    /// service (used as an internal consistency check).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.request_types.iter().all(|rt| {
            rt.stages()
                .iter()
                .flat_map(|s| s.calls().iter())
                .all(|c| self.service(c.service()).is_some())
        })
    }
}

/// Name of the SocialNetwork write (compose post) request type.
pub const SN_COMPOSE_POST: &str = "compose-post";
/// Name of the SocialNetwork read (home timeline) request type.
pub const SN_READ_HOME_TIMELINE: &str = "read-home-timeline";
/// Name of the SocialNetwork read (user timeline) request type.
pub const SN_READ_USER_TIMELINE: &str = "read-user-timeline";

/// The DeathStarBench SocialNetwork application.
#[must_use]
pub fn social_network() -> Application {
    use ServiceKind::{Cache, Frontend, Logic, Storage, Tracing};
    let services = vec![
        ServiceSpec::new("nginx-web-server", Frontend, 0.30),
        ServiceSpec::new("media-frontend", Frontend, 0.20),
        ServiceSpec::new("compose-post-service", Logic, 0.20),
        ServiceSpec::new("text-service", Logic, 0.15),
        ServiceSpec::new("user-service", Logic, 0.15),
        ServiceSpec::new("media-service", Logic, 0.15),
        ServiceSpec::new("unique-id-service", Logic, 0.10),
        ServiceSpec::new("url-shorten-service", Logic, 0.15),
        ServiceSpec::new("user-mention-service", Logic, 0.15),
        ServiceSpec::new("post-storage-service", Logic, 0.20),
        ServiceSpec::new("user-timeline-service", Logic, 0.20),
        ServiceSpec::new("home-timeline-service", Logic, 0.20),
        ServiceSpec::new("social-graph-service", Logic, 0.20),
        ServiceSpec::new("home-timeline-redis", Cache, 0.50),
        ServiceSpec::new("user-timeline-redis", Cache, 0.50),
        ServiceSpec::new("social-graph-redis", Cache, 0.40),
        ServiceSpec::new("post-storage-memcached", Cache, 0.40),
        ServiceSpec::new("url-shorten-memcached", Cache, 0.20),
        ServiceSpec::new("user-memcached", Cache, 0.30),
        ServiceSpec::new("post-storage-mongo", Storage, 0.80),
        ServiceSpec::new("user-timeline-mongo", Storage, 0.70),
        ServiceSpec::new("social-graph-mongo", Storage, 0.60),
        ServiceSpec::new("user-mongo", Storage, 0.50),
        ServiceSpec::new("media-mongo", Storage, 0.50),
        ServiceSpec::new("url-shorten-mongo", Storage, 0.40),
        ServiceSpec::new("cassandra", Storage, 1.00),
        ServiceSpec::new("cassandra-schema", Storage, 0.10),
        ServiceSpec::new("jaeger-agent", Tracing, 0.20),
        ServiceSpec::new("jaeger-collector", Tracing, 0.30),
        ServiceSpec::new("jaeger-query", Tracing, 0.20),
    ];

    let compose_post = RequestType::new(
        SN_COMPOSE_POST,
        1.0,
        vec![
            Stage::single(ServiceCall::new("nginx-web-server", 1.2, 800.0, 300.0)),
            Stage::single(ServiceCall::rpc("compose-post-service", 2.0)),
            Stage::parallel(vec![
                ServiceCall::rpc("text-service", 1.5),
                ServiceCall::rpc("user-service", 1.0),
                ServiceCall::rpc("unique-id-service", 0.5),
                ServiceCall::new("media-service", 1.0, 900.0, 300.0),
            ]),
            Stage::parallel(vec![
                ServiceCall::rpc("url-shorten-service", 1.0),
                ServiceCall::rpc("user-mention-service", 1.0),
                ServiceCall::rpc("url-shorten-mongo", 0.8),
                ServiceCall::rpc("url-shorten-memcached", 0.4),
            ]),
            Stage::parallel(vec![
                ServiceCall::rpc("post-storage-service", 1.5),
                ServiceCall::new("post-storage-mongo", 2.0, 900.0, 300.0),
                ServiceCall::rpc("post-storage-memcached", 0.6),
            ]),
            Stage::parallel(vec![
                ServiceCall::rpc("user-timeline-service", 1.0),
                ServiceCall::rpc("user-timeline-mongo", 1.5),
                ServiceCall::rpc("user-timeline-redis", 0.5),
            ]),
            Stage::parallel(vec![
                ServiceCall::rpc("home-timeline-service", 1.0),
                ServiceCall::rpc("social-graph-service", 0.8),
                ServiceCall::rpc("social-graph-redis", 0.5),
                ServiceCall::rpc("home-timeline-redis", 0.6),
            ]),
            Stage::single(ServiceCall::rpc("jaeger-collector", 0.3)),
        ],
    )
    .scaled(0.29)
    // Composing a post makes the colocated generator do real work (build the
    // text, unique ids and media payload), which is what caps the paper's
    // single-instance write throughput near 2,000 QPS.
    .client_cpu_ms(1.2)
    .client_response_bytes(500.0);

    let read_home = RequestType::new(
        SN_READ_HOME_TIMELINE,
        1.0,
        vec![
            Stage::single(ServiceCall::new("nginx-web-server", 2.0, 400.0, 400.0)),
            Stage::single(ServiceCall::rpc("home-timeline-service", 3.0)),
            Stage::single(ServiceCall::new("home-timeline-redis", 1.5, 300.0, 2_500.0)),
            Stage::parallel(vec![
                ServiceCall::new("post-storage-service", 3.5, 400.0, 1_000.0),
                ServiceCall::new("post-storage-memcached", 1.2, 400.0, 3_000.0),
                ServiceCall::new("post-storage-mongo", 3.0, 400.0, 3_000.0),
            ]),
            Stage::parallel(vec![
                ServiceCall::rpc("user-service", 1.5),
                ServiceCall::new("media-service", 1.0, 300.0, 1_500.0),
            ]),
            Stage::single(ServiceCall::rpc("jaeger-collector", 0.3)),
        ],
    )
    .scaled(0.26)
    // Reading a timeline returns the whole timeline to the client.
    .client_cpu_ms(0.2)
    .client_response_bytes(6_000.0);

    let read_user = RequestType::new(
        SN_READ_USER_TIMELINE,
        1.0,
        vec![
            Stage::single(ServiceCall::new("nginx-web-server", 2.0, 400.0, 400.0)),
            Stage::single(ServiceCall::rpc("user-timeline-service", 3.0)),
            Stage::parallel(vec![
                ServiceCall::new("user-timeline-redis", 1.5, 300.0, 2_500.0),
                ServiceCall::new("user-timeline-mongo", 3.0, 400.0, 3_000.0),
            ]),
            Stage::parallel(vec![
                ServiceCall::new("post-storage-service", 4.5, 400.0, 1_000.0),
                ServiceCall::new("post-storage-memcached", 1.2, 400.0, 3_000.0),
            ]),
            Stage::single(ServiceCall::rpc("jaeger-collector", 0.3)),
        ],
    )
    .scaled(0.26)
    .client_cpu_ms(0.2)
    .client_response_bytes(6_000.0);

    Application::new(
        "SocialNetwork",
        "nginx-web-server",
        services,
        vec![compose_post, read_home, read_user],
    )
}

/// Name of the HotelReservation search request type.
pub const HOTEL_SEARCH: &str = "search-hotel";
/// Name of the HotelReservation recommendation request type.
pub const HOTEL_RECOMMEND: &str = "recommend";
/// Name of the HotelReservation login request type.
pub const HOTEL_LOGIN: &str = "user-login";
/// Name of the HotelReservation reservation request type.
pub const HOTEL_RESERVE: &str = "reserve";

/// The DeathStarBench HotelReservation application with its mixed workload
/// (roughly 60 % search, 39 % recommend, 0.5 % login, 0.5 % reserve).
#[must_use]
pub fn hotel_reservation() -> Application {
    use ServiceKind::{Cache, Frontend, Logic, Storage, Tracing};
    let services = vec![
        ServiceSpec::new("frontend", Frontend, 0.30),
        ServiceSpec::new("search", Logic, 0.20),
        ServiceSpec::new("geo", Logic, 0.20),
        ServiceSpec::new("rate", Logic, 0.20),
        ServiceSpec::new("profile", Logic, 0.20),
        ServiceSpec::new("recommendation", Logic, 0.20),
        ServiceSpec::new("user", Logic, 0.15),
        ServiceSpec::new("reservation", Logic, 0.20),
        ServiceSpec::new("memcached-profile", Cache, 0.30),
        ServiceSpec::new("memcached-rate", Cache, 0.30),
        ServiceSpec::new("memcached-reserve", Cache, 0.20),
        ServiceSpec::new("mongodb-geo", Storage, 0.40),
        ServiceSpec::new("mongodb-profile", Storage, 0.50),
        ServiceSpec::new("mongodb-rate", Storage, 0.40),
        ServiceSpec::new("mongodb-recommendation", Storage, 0.40),
        ServiceSpec::new("mongodb-reservation", Storage, 0.40),
        ServiceSpec::new("mongodb-user", Storage, 0.30),
        ServiceSpec::new("consul", Logic, 0.20),
        ServiceSpec::new("jaeger", Tracing, 0.30),
    ];

    let search = RequestType::new(
        HOTEL_SEARCH,
        0.60,
        vec![
            Stage::single(ServiceCall::new("frontend", 2.0, 500.0, 400.0)),
            Stage::single(ServiceCall::rpc("search", 2.5)),
            Stage::parallel(vec![
                ServiceCall::rpc("geo", 2.0),
                ServiceCall::rpc("rate", 2.5),
            ]),
            Stage::parallel(vec![
                ServiceCall::rpc("memcached-rate", 1.0),
                ServiceCall::new("mongodb-rate", 2.0, 400.0, 1_200.0),
            ]),
            Stage::single(ServiceCall::rpc("profile", 3.0)),
            Stage::parallel(vec![
                ServiceCall::rpc("memcached-profile", 1.0),
                ServiceCall::new("mongodb-profile", 2.5, 400.0, 1_500.0),
            ]),
            Stage::single(ServiceCall::rpc("jaeger", 0.3)),
        ],
    )
    .scaled(0.22)
    .client_cpu_ms(0.3)
    .client_response_bytes(2_000.0);

    let recommend = RequestType::new(
        HOTEL_RECOMMEND,
        0.39,
        vec![
            Stage::single(ServiceCall::new("frontend", 1.8, 450.0, 400.0)),
            Stage::single(ServiceCall::rpc("recommendation", 3.0)),
            Stage::single(ServiceCall::new(
                "mongodb-recommendation",
                3.0,
                400.0,
                1_200.0,
            )),
            Stage::single(ServiceCall::rpc("profile", 3.0)),
            Stage::parallel(vec![
                ServiceCall::rpc("memcached-profile", 1.0),
                ServiceCall::new("mongodb-profile", 2.5, 400.0, 1_500.0),
            ]),
            Stage::single(ServiceCall::rpc("jaeger", 0.3)),
        ],
    )
    .scaled(0.22)
    .client_cpu_ms(0.3)
    .client_response_bytes(1_800.0);

    let login = RequestType::new(
        HOTEL_LOGIN,
        0.005,
        vec![
            Stage::single(ServiceCall::new("frontend", 1.0, 400.0, 300.0)),
            Stage::single(ServiceCall::rpc("user", 1.5)),
            Stage::single(ServiceCall::rpc("mongodb-user", 1.5)),
        ],
    )
    .scaled(0.22)
    .client_cpu_ms(0.2)
    .client_response_bytes(400.0);

    let reserve = RequestType::new(
        HOTEL_RESERVE,
        0.005,
        vec![
            Stage::single(ServiceCall::new("frontend", 1.5, 500.0, 300.0)),
            Stage::single(ServiceCall::rpc("reservation", 2.0)),
            Stage::parallel(vec![
                ServiceCall::rpc("memcached-reserve", 1.0),
                ServiceCall::rpc("mongodb-reservation", 2.5),
            ]),
            Stage::single(ServiceCall::rpc("user", 1.0)),
            Stage::single(ServiceCall::rpc("jaeger", 0.3)),
        ],
    )
    .scaled(0.22)
    .client_cpu_ms(0.3)
    .client_response_bytes(600.0);

    Application::new(
        "HotelReservation",
        "frontend",
        services,
        vec![search, recommend, login, reserve],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn social_network_is_consistent() {
        let app = social_network();
        assert!(app.is_consistent());
        assert_eq!(app.frontend(), "nginx-web-server");
        assert!(app.services().len() >= 28);
        assert_eq!(app.request_types().len(), 3);
    }

    #[test]
    fn hotel_reservation_is_consistent() {
        let app = hotel_reservation();
        assert!(app.is_consistent());
        assert!(app.services().len() >= 18);
        assert_eq!(app.request_types().len(), 4);
        // Mixed-workload weights follow the DeathStarBench generator.
        let search = app.request_type(HOTEL_SEARCH).unwrap();
        assert!((search.weight() - 0.60).abs() < 1e-12);
    }

    #[test]
    fn compose_post_costs_more_cpu_than_a_read() {
        let app = social_network();
        let write = app.request_type(SN_COMPOSE_POST).unwrap().total_cpu_ms();
        let read = app
            .request_type(SN_READ_HOME_TIMELINE)
            .unwrap()
            .total_cpu_ms();
        assert!(write > read, "write {write} ms vs read {read} ms");
        assert!(write > 5.0 && write < 8.5, "write {write} ms");
        assert!(read > 3.2 && read < 6.5, "read {read} ms");
    }

    #[test]
    fn reads_return_more_data_than_writes() {
        let app = social_network();
        let write = app.request_type(SN_COMPOSE_POST).unwrap();
        let read = app.request_type(SN_READ_HOME_TIMELINE).unwrap();
        assert!(read.response_to_client_bytes() > write.response_to_client_bytes());
        // The write path is the expensive one for a colocated generator.
        assert!(write.client_cost_ms() > read.client_cost_ms());
    }

    #[test]
    fn memory_fits_a_ten_phone_cloudlet() {
        // 10 Pixel 3As have 40 GiB of RAM; either application must fit with
        // headroom.
        assert!(social_network().total_memory_gib() < 20.0);
        assert!(hotel_reservation().total_memory_gib() < 10.0);
    }

    #[test]
    fn hotel_mixed_cpu_is_about_20ms() {
        let app = hotel_reservation();
        let total_weight: f64 = app.request_types().iter().map(RequestType::weight).sum();
        let weighted: f64 = app
            .request_types()
            .iter()
            .map(|r| r.weight() * r.total_cpu_ms())
            .sum::<f64>()
            / total_weight;
        assert!(weighted > 3.2 && weighted < 6.0, "got {weighted} ms");
    }

    #[test]
    fn unknown_request_type_lookup() {
        assert!(social_network().request_type("nonexistent").is_none());
        assert!(social_network().service("nonexistent").is_none());
    }

    #[test]
    #[should_panic(expected = "frontend service must exist")]
    fn missing_frontend_panics() {
        let _ = Application::new(
            "broken",
            "ghost",
            vec![ServiceSpec::new("a", ServiceKind::Logic, 0.1)],
            vec![RequestType::new(
                "r",
                1.0,
                vec![Stage::single(ServiceCall::rpc("a", 1.0))],
            )],
        );
    }

    #[test]
    fn stage_and_call_accessors() {
        let call = ServiceCall::new("svc", 2.0, 100.0, 200.0);
        assert_eq!(call.service(), "svc");
        assert_eq!(call.request_bytes(), 100.0);
        assert_eq!(call.response_bytes(), 200.0);
        let stage = Stage::parallel(vec![call.clone(), ServiceCall::rpc("svc", 1.0)]);
        assert_eq!(stage.calls().len(), 2);
        assert!((stage.total_cpu_ms() - 3.0).abs() < 1e-12);
    }
}
