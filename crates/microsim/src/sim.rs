//! The discrete-event simulation engine.
//!
//! Requests arrive as an open-loop Poisson process, traverse their request
//! type's stages, and contend for three kinds of resources:
//!
//! * **Node CPUs** — each node is a multi-server FIFO queue of
//!   `cores` workers; a call's service time is its reference-core cost
//!   divided by the node's per-core speed, plus a small per-RPC system
//!   overhead.
//! * **The shared wireless channel** — on the phone cloudlet every
//!   inter-node and client message serialises through one WiFi medium of
//!   limited goodput.
//! * **The colocated load generator** — on the single-instance EC2
//!   deployments the client runs on the same machine with a small worker
//!   pool, so request types with expensive client-side work (composing
//!   posts) are throttled by it, as in the paper's methodology.
//!
//! The engine processes stage events in global time order and assigns
//! resources greedily (earliest-available worker), which is an accurate
//! FIFO approximation at the sub-millisecond service times involved.
//!
//! Two interchangeable engines implement these semantics:
//! [`Simulation::run`] lowers the simulation into the index-resolved
//! [`crate::compiled::CompiledSim`] hot path, while
//! [`Simulation::run_reference`] keeps the original name-resolved event
//! loop as an executable specification. Both are bit-identical for a
//! given seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::app::Application;
use crate::compiled::CompiledSim;
use crate::metrics::{CompletedRequest, NodeUtilization, RunMetrics};
use crate::network::NetworkModel;
use crate::node::NodeSpec;
use crate::placement::Placement;

/// Per-RPC system (network-stack) overhead, reference-core milliseconds.
pub(crate) const RPC_SYS_OVERHEAD_MS: f64 = 0.05;

/// Size of a client's request message to the frontend, bytes (shared by
/// both engines so their channel reservations stay bit-identical).
pub(crate) const CLIENT_REQUEST_BYTES: f64 = 500.0;

/// One phase of offered load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    qps: f64,
    duration_s: f64,
    request_type: Option<String>,
}

impl Phase {
    /// Creates a phase offering `qps` requests per second for
    /// `duration_s` seconds. `request_type` restricts the phase to a single
    /// request type; `None` uses the application's weighted mix.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative or the duration is not positive.
    #[must_use]
    pub fn new(qps: f64, duration_s: f64, request_type: Option<&str>) -> Self {
        assert!(qps >= 0.0, "offered load cannot be negative");
        assert!(duration_s > 0.0, "phase duration must be positive");
        Self {
            qps,
            duration_s,
            request_type: request_type.map(str::to_owned),
        }
    }

    /// An idle phase (no arrivals).
    #[must_use]
    pub fn idle(duration_s: f64) -> Self {
        Self::new(0.0, duration_s, None)
    }

    /// Offered load in requests per second.
    #[must_use]
    pub fn qps(&self) -> f64 {
        self.qps
    }

    /// Phase duration in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.duration_s
    }

    /// Request type restriction, if any.
    #[must_use]
    pub fn request_type(&self) -> Option<&str> {
        self.request_type.as_deref()
    }
}

/// A workload: one or more phases of offered load plus the random seed for
/// arrival times and mix sampling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    phases: Vec<Phase>,
    seed: u64,
}

impl Workload {
    /// Creates a workload from explicit phases.
    ///
    /// # Panics
    ///
    /// Panics if there are no phases.
    #[must_use]
    pub fn phased(phases: Vec<Phase>, seed: u64) -> Self {
        assert!(!phases.is_empty(), "a workload needs at least one phase");
        Self { phases, seed }
    }

    /// A single steady phase.
    #[must_use]
    pub fn steady(qps: f64, duration_s: f64, request_type: Option<&str>, seed: u64) -> Self {
        Self::phased(vec![Phase::new(qps, duration_s, request_type)], seed)
    }

    /// The phases of the workload.
    #[must_use]
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total duration across phases, seconds.
    #[must_use]
    pub fn total_duration_s(&self) -> f64 {
        self.phases.iter().map(Phase::duration_s).sum()
    }

    /// The random seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Errors raised when assembling a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The placement does not cover every service of the application.
    IncompletePlacement,
    /// The cluster has no nodes.
    NoNodes,
    /// A phase requested a request type the application does not define.
    UnknownRequestType(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::IncompletePlacement => f.write_str("placement does not cover every service"),
            SimError::NoNodes => f.write_str("the cluster has no nodes"),
            SimError::UnknownRequestType(name) => write!(f, "unknown request type {name}"),
        }
    }
}

impl std::error::Error for SimError {}

/// A ready-to-run simulation of one application on one deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Simulation {
    app: Application,
    nodes: Vec<NodeSpec>,
    placement: Placement,
    network: NetworkModel,
    colocated_client: bool,
}

impl Simulation {
    /// Creates a simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the cluster is empty or the placement does
    /// not cover the application.
    pub fn new(
        app: Application,
        nodes: Vec<NodeSpec>,
        placement: Placement,
        network: NetworkModel,
    ) -> Result<Self, SimError> {
        if nodes.is_empty() {
            return Err(SimError::NoNodes);
        }
        if !placement.covers(&app) {
            return Err(SimError::IncompletePlacement);
        }
        Ok(Self {
            app,
            nodes,
            placement,
            network,
            colocated_client: false,
        })
    }

    /// Runs the load generator on node 0 of the deployment (the paper's EC2
    /// methodology) instead of on an external machine.
    #[must_use]
    pub fn with_colocated_client(mut self, colocated: bool) -> Self {
        self.colocated_client = colocated;
        self
    }

    /// The application being simulated.
    #[must_use]
    pub fn app(&self) -> &Application {
        &self.app
    }

    /// The cluster nodes.
    #[must_use]
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// The service placement.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The network model.
    #[must_use]
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// `true` when the load generator runs on node 0 of the deployment.
    #[must_use]
    pub fn colocated_client(&self) -> bool {
        self.colocated_client
    }

    /// Lowers the simulation into the index-resolved [`CompiledSim`] form.
    ///
    /// Compile once and reuse across workloads (and across threads — the
    /// compiled engine runs by shared reference) when driving many runs of
    /// the same deployment, as [`crate::sweep::SweepConfig`] does.
    #[must_use]
    pub fn compile(&self) -> CompiledSim {
        CompiledSim::compile(self)
    }

    /// Runs the workload and returns the collected metrics.
    ///
    /// Delegates to the compiled engine ([`CompiledSim`]), which is
    /// bit-identical to [`Simulation::run_reference`] for a given seed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownRequestType`] if a phase names a request
    /// type the application does not define.
    pub fn run(&self, workload: &Workload) -> Result<RunMetrics, SimError> {
        self.compile().run(workload)
    }

    /// Runs the workload through the original, uncompiled event loop.
    ///
    /// This is the engine's executable specification: it resolves the
    /// placement map per event and materialises the full arrival schedule
    /// up front. [`CompiledSim`] must produce bit-identical [`RunMetrics`];
    /// the equivalence suite (`tests/microsim_equivalence.rs`) and the
    /// `des_engine` benchmarks compare the two. Prefer [`Simulation::run`]
    /// everywhere else.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownRequestType`] if a phase names a request
    /// type the application does not define.
    pub fn run_reference(&self, workload: &Workload) -> Result<RunMetrics, SimError> {
        let type_index = |name: &str| -> Result<usize, SimError> {
            self.app
                .request_types()
                .iter()
                .position(|r| r.name() == name)
                .ok_or_else(|| SimError::UnknownRequestType(name.to_owned()))
        };

        // Generate arrivals phase by phase.
        let mut rng = StdRng::seed_from_u64(workload.seed());
        let weights: Vec<f64> = self
            .app
            .request_types()
            .iter()
            .map(|r| r.weight())
            .collect();
        let total_weight: f64 = weights.iter().sum();
        let mut arrivals: Vec<(f64, usize)> = Vec::new();
        let mut phase_start = 0.0;
        for phase in workload.phases() {
            let fixed_type = match phase.request_type() {
                Some(name) => Some(type_index(name)?),
                None => None,
            };
            if phase.qps() > 0.0 {
                let mut t = phase_start;
                loop {
                    let u: f64 = rng.random::<f64>().max(1e-12);
                    t += -u.ln() / phase.qps();
                    if t >= phase_start + phase.duration_s() {
                        break;
                    }
                    let type_idx = fixed_type.unwrap_or_else(|| {
                        let mut pick = rng.random::<f64>() * total_weight;
                        for (i, w) in weights.iter().enumerate() {
                            if pick < *w {
                                return i;
                            }
                            pick -= w;
                        }
                        weights.len() - 1
                    });
                    arrivals.push((t, type_idx));
                }
            }
            phase_start += phase.duration_s();
        }
        let total_duration = workload.total_duration_s();

        // Resource state.
        let mut core_avail: Vec<Vec<f64>> = self
            .nodes
            .iter()
            .map(|n| vec![0.0; n.cores() as usize])
            .collect();
        let buckets = total_duration.ceil() as usize + 2;
        let mut utilization: Vec<NodeUtilization> = self
            .nodes
            .iter()
            .map(|n| NodeUtilization::new(n.name(), n.cores(), buckets))
            .collect();
        let mut client_avail: Vec<f64> = vec![0.0; self.app.client_workers() as usize];
        let mut link_avail: f64 = 0.0;

        let frontend_node = self
            .placement
            .node_of(self.app.frontend())
            .expect("placement covers the frontend");

        // Event queue. Every resource reservation (client worker, shared
        // WiFi channel, node core) happens at event-pop time, so each
        // resource is served in true timestamp order.
        #[derive(Debug, Clone, Copy, PartialEq)]
        enum Step {
            /// Request arrives at the (possibly colocated) load generator.
            Arrive,
            /// The frontend fans out the calls of a stage.
            Dispatch { stage: usize },
            /// A call's request message has reached its service's node.
            CallArrived { stage: usize, call: usize },
            /// A call's CPU work has finished; send the reply.
            CallFinished { stage: usize, call: usize },
            /// All stages are done; return the response to the client.
            Complete,
        }

        #[derive(PartialEq)]
        struct Event {
            time: f64,
            seq: u64,
            request: usize,
            step: Step,
        }
        impl Eq for Event {}
        impl Ord for Event {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reverse order: the binary heap is a max-heap, we want the
                // earliest event first.
                other
                    .time
                    .total_cmp(&self.time)
                    .then_with(|| other.seq.cmp(&self.seq))
            }
        }
        impl PartialOrd for Event {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        struct RequestState {
            arrival: f64,
            type_idx: usize,
            outstanding_calls: usize,
            stage_end: f64,
        }

        let mut events: BinaryHeap<Event> = BinaryHeap::with_capacity(arrivals.len() * 4);
        let mut seq = 0u64;
        let mut requests: Vec<RequestState> = Vec::with_capacity(arrivals.len());
        for (t, type_idx) in &arrivals {
            requests.push(RequestState {
                arrival: *t,
                type_idx: *type_idx,
                outstanding_calls: 0,
                stage_end: *t,
            });
            events.push(Event {
                time: *t,
                seq,
                request: requests.len() - 1,
                step: Step::Arrive,
            });
            seq += 1;
        }

        let mut completions: Vec<CompletedRequest> = Vec::with_capacity(arrivals.len());

        // Sends a message at `now` (the current event time). Cross-node and
        // client messages serialise through the shared channel, if any.
        let send = |link_avail: &mut f64,
                    now: f64,
                    same_node: bool,
                    bytes: f64,
                    client_hop: bool|
         -> f64 {
            let latency = if client_hop {
                self.network.client_latency_ms() / 1_000.0
            } else {
                self.network.hop_latency_secs(same_node)
            };
            if same_node && !client_hop {
                return now + latency;
            }
            let tx = self.network.transmission_secs(bytes);
            if tx > 0.0 {
                let start = now.max(*link_avail);
                *link_avail = start + tx;
                start + tx + latency
            } else {
                now + latency
            }
        };

        let mut processed = 0_u64;
        while let Some(event) = events.pop() {
            processed += 1;
            let now = event.time;
            let type_idx = requests[event.request].type_idx;
            let request_type = &self.app.request_types()[type_idx];
            let mut push = |time: f64, request: usize, step: Step, seq: &mut u64| {
                events.push(Event {
                    time,
                    seq: *seq,
                    request,
                    step,
                });
                *seq += 1;
            };

            match event.step {
                Step::Arrive => {
                    let ready = if self.colocated_client {
                        let cost = self.nodes[0].service_secs(request_type.client_cost_ms());
                        let (best, _) = client_avail
                            .iter()
                            .enumerate()
                            .min_by(|a, b| a.1.total_cmp(b.1))
                            .expect("client pool is non-empty");
                        let start = now.max(client_avail[best]);
                        client_avail[best] = start + cost;
                        start + cost + self.network.hop_latency_secs(true)
                    } else {
                        send(&mut link_avail, now, false, CLIENT_REQUEST_BYTES, true)
                    };
                    push(ready, event.request, Step::Dispatch { stage: 0 }, &mut seq);
                }
                Step::Dispatch { stage } => {
                    let calls = request_type.stages()[stage].calls();
                    requests[event.request].outstanding_calls = calls.len();
                    requests[event.request].stage_end = now;
                    for (call_idx, call) in calls.iter().enumerate() {
                        let target = self
                            .placement
                            .node_of(call.service())
                            .expect("placement covers every service");
                        let same_node = target == frontend_node;
                        let delivered =
                            send(&mut link_avail, now, same_node, call.request_bytes(), false);
                        push(
                            delivered,
                            event.request,
                            Step::CallArrived {
                                stage,
                                call: call_idx,
                            },
                            &mut seq,
                        );
                    }
                }
                Step::CallArrived { stage, call } => {
                    let call_spec = &request_type.stages()[stage].calls()[call];
                    let target = self
                        .placement
                        .node_of(call_spec.service())
                        .expect("placement covers every service");
                    let node = &self.nodes[target];
                    let user_secs = node.service_secs(call_spec.cpu_ms());
                    let sys_secs = node.service_secs(RPC_SYS_OVERHEAD_MS);
                    let cores = &mut core_avail[target];
                    let (best, _) = cores
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.total_cmp(b.1))
                        .expect("node has at least one core");
                    let start = now.max(cores[best]);
                    let finish = start + user_secs + sys_secs;
                    cores[best] = finish;
                    utilization[target].add_user(start, user_secs);
                    utilization[target].add_sys(start, sys_secs);
                    push(
                        finish,
                        event.request,
                        Step::CallFinished { stage, call },
                        &mut seq,
                    );
                }
                Step::CallFinished { stage, call } => {
                    let call_spec = &request_type.stages()[stage].calls()[call];
                    let target = self
                        .placement
                        .node_of(call_spec.service())
                        .expect("placement covers every service");
                    let same_node = target == frontend_node;
                    let replied = send(
                        &mut link_avail,
                        now,
                        same_node,
                        call_spec.response_bytes(),
                        false,
                    );
                    let state = &mut requests[event.request];
                    if replied > state.stage_end {
                        state.stage_end = replied;
                    }
                    state.outstanding_calls -= 1;
                    if state.outstanding_calls == 0 {
                        let next_time = state.stage_end;
                        let next_step = if stage + 1 < request_type.stages().len() {
                            Step::Dispatch { stage: stage + 1 }
                        } else {
                            Step::Complete
                        };
                        push(next_time, event.request, next_step, &mut seq);
                    }
                }
                Step::Complete => {
                    let done = if self.colocated_client {
                        now + self.network.hop_latency_secs(true)
                    } else {
                        send(
                            &mut link_avail,
                            now,
                            false,
                            request_type.response_to_client_bytes(),
                            true,
                        )
                    };
                    let arrival = requests[event.request].arrival;
                    completions.push(CompletedRequest::new(arrival, (done - arrival) * 1_000.0));
                }
            }
        }

        Ok(
            RunMetrics::new(total_duration, arrivals.len(), completions, utilization)
                .with_events(processed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{hotel_reservation, social_network, SN_COMPOSE_POST, SN_READ_HOME_TIMELINE};
    use crate::node::{ten_pixel_cloudlet, NodeSpec};

    fn phone_sim(app: Application) -> Simulation {
        let nodes = ten_pixel_cloudlet();
        let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
        Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap()
    }

    fn c5_sim(app: Application, vcpus: u32, memory: f64) -> Simulation {
        let nodes = vec![NodeSpec::c5("c5", vcpus, memory)];
        let placement = Placement::single_node(&app);
        Simulation::new(app, nodes, placement, NetworkModel::single_node_loopback())
            .unwrap()
            .with_colocated_client(true)
    }

    #[test]
    fn light_load_completes_everything_with_low_latency() {
        let sim = phone_sim(hotel_reservation());
        let metrics = sim.run(&Workload::steady(200.0, 5.0, None, 1)).unwrap();
        assert_eq!(metrics.offered(), metrics.completions().len());
        let stats = metrics.latency_stats();
        assert!(
            stats.median_ms().unwrap() < 80.0,
            "median {:?}",
            stats.median_ms()
        );
        assert!(
            stats.tail_ms().unwrap() < 150.0,
            "tail {:?}",
            stats.tail_ms()
        );
    }

    #[test]
    fn latency_grows_with_offered_load() {
        let sim = phone_sim(hotel_reservation());
        // The cloudlet's saturation knee sits near 4.7k qps for this app;
        // 6k qps is solidly past it regardless of the RNG's exact arrival
        // sequence, while 500 qps is far below it.
        let light = sim.run(&Workload::steady(500.0, 4.0, None, 2)).unwrap();
        let heavy = sim.run(&Workload::steady(6_000.0, 4.0, None, 2)).unwrap();
        let light_p50 = light.latency_stats_between(1.0, 4.0).median_ms().unwrap();
        let heavy_p50 = heavy.latency_stats_between(1.0, 4.0).median_ms().unwrap();
        assert!(
            heavy_p50 > light_p50 * 2.0,
            "light {light_p50} heavy {heavy_p50}"
        );
    }

    #[test]
    fn single_node_has_lower_base_latency_than_the_cloudlet() {
        let app = social_network();
        let phones = phone_sim(app.clone());
        let c5 = c5_sim(app, 36, 72.0);
        let workload = Workload::steady(300.0, 4.0, Some(SN_READ_HOME_TIMELINE), 3);
        let phone_p50 = phones
            .run(&workload)
            .unwrap()
            .latency_stats()
            .median_ms()
            .unwrap();
        let c5_p50 = c5
            .run(&workload)
            .unwrap()
            .latency_stats()
            .median_ms()
            .unwrap();
        assert!(
            phone_p50 > c5_p50,
            "phones should pay WiFi latency: {phone_p50} vs {c5_p50}"
        );
    }

    #[test]
    fn colocated_client_throttles_writes_on_the_single_node() {
        let app = social_network();
        let c5 = c5_sim(app, 36, 72.0);
        // Well above the client-pool capacity of ~2,000 composed posts/s.
        let overloaded = c5
            .run(&Workload::steady(3_200.0, 4.0, Some(SN_COMPOSE_POST), 4))
            .unwrap();
        let tail = overloaded
            .latency_stats_between(2.0, 4.0)
            .tail_ms()
            .unwrap();
        assert!(
            tail > 200.0,
            "writes past the client cap should queue: {tail}"
        );
        // The same offered load of reads is fine.
        let reads = c5
            .run(&Workload::steady(
                3_200.0,
                4.0,
                Some(SN_READ_HOME_TIMELINE),
                4,
            ))
            .unwrap();
        let read_tail = reads.latency_stats_between(2.0, 4.0).tail_ms().unwrap();
        assert!(
            read_tail < 100.0,
            "reads should not hit the client cap: {read_tail}"
        );
    }

    #[test]
    fn utilization_is_recorded_on_busy_nodes() {
        let sim = phone_sim(social_network());
        let metrics = sim
            .run(&Workload::steady(1_000.0, 4.0, Some(SN_COMPOSE_POST), 5))
            .unwrap();
        let means: Vec<f64> = metrics
            .node_utilization()
            .iter()
            .map(|u| u.mean_percent_between(1, 4))
            .collect();
        let busiest = means.iter().copied().fold(0.0_f64, f64::max);
        let quietest = means.iter().copied().fold(100.0_f64, f64::min);
        assert!(
            busiest > 10.0,
            "some phone should be visibly busy, got {busiest:.1}%"
        );
        // Figure 8's observation: utilisation varies widely across phones.
        assert!(
            busiest > quietest * 2.0,
            "imbalance expected: busiest {busiest:.1}% quietest {quietest:.1}%"
        );
    }

    #[test]
    fn idle_phases_produce_no_arrivals() {
        let sim = phone_sim(hotel_reservation());
        let workload = Workload::phased(
            vec![
                Phase::idle(2.0),
                Phase::new(100.0, 2.0, None),
                Phase::idle(1.0),
            ],
            9,
        );
        let metrics = sim.run(&workload).unwrap();
        assert!(metrics.offered() > 100 && metrics.offered() < 320);
        assert!(metrics
            .completions()
            .iter()
            .all(|c| c.arrival_s() >= 2.0 && c.arrival_s() < 4.0));
        assert!((metrics.duration_s() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_request_type_is_an_error() {
        let sim = phone_sim(hotel_reservation());
        let err = sim
            .run(&Workload::steady(10.0, 1.0, Some("no-such-request"), 0))
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownRequestType(_)));
        assert!(err.to_string().contains("no-such-request"));
    }

    #[test]
    fn incomplete_placement_is_rejected() {
        let app = social_network();
        let nodes = ten_pixel_cloudlet();
        let partial = Placement::manual([("nginx-web-server", 0usize)], &nodes).unwrap();
        let err = Simulation::new(app, nodes, partial, NetworkModel::phone_wifi()).unwrap_err();
        assert_eq!(err, SimError::IncompletePlacement);
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let sim = phone_sim(hotel_reservation());
        let a = sim.run(&Workload::steady(400.0, 3.0, None, 77)).unwrap();
        let b = sim.run(&Workload::steady(400.0, 3.0, None, 77)).unwrap();
        assert_eq!(a.offered(), b.offered());
        assert_eq!(
            a.latency_stats().median_ms().unwrap(),
            b.latency_stats().median_ms().unwrap()
        );
    }
}
