//! The discrete-event simulation engine.
//!
//! Requests arrive as an open-loop Poisson process, traverse their request
//! type's stages, and contend for three kinds of resources:
//!
//! * **Node CPUs** — each node is a multi-server FIFO queue of
//!   `cores` workers; a call's service time is its reference-core cost
//!   divided by the node's per-core speed, plus a small per-RPC system
//!   overhead.
//! * **The shared wireless channel** — on the phone cloudlet every
//!   inter-node and client message serialises through one WiFi medium of
//!   limited goodput.
//! * **The colocated load generator** — on the single-instance EC2
//!   deployments the client runs on the same machine with a small worker
//!   pool, so request types with expensive client-side work (composing
//!   posts) are throttled by it, as in the paper's methodology.
//!
//! The engine processes stage events in global time order and assigns
//! resources greedily (earliest-available worker), which is an accurate
//! FIFO approximation at the sub-millisecond service times involved.
//!
//! Two interchangeable engines implement these semantics:
//! [`Simulation::run`] lowers the simulation into the index-resolved
//! [`crate::compiled::CompiledSim`] hot path, while
//! [`Simulation::run_reference`] keeps the original name-resolved event
//! loop as an executable specification. Both are bit-identical for a
//! given seed.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::app::Application;
use crate::compiled::CompiledSim;
use crate::metrics::{CompletedRequest, NodeQueueStats, NodeUtilization, RunMetrics};
use crate::network::NetworkModel;
use crate::node::NodeSpec;
use crate::placement::Placement;

/// Per-RPC system (network-stack) overhead, reference-core milliseconds.
pub(crate) const RPC_SYS_OVERHEAD_MS: f64 = 0.05;

/// Size of a client's request message to the frontend, bytes (shared by
/// both engines so their channel reservations stay bit-identical).
pub(crate) const CLIENT_REQUEST_BYTES: f64 = 500.0;

/// Number of entries in the RSS-style indirection table that spreads flow
/// hashes over a node's core-local queues under
/// [`QueueDiscipline::DistributedFcfs`].
pub const RSS_TABLE_ENTRIES: usize = 128;

/// How arriving calls queue for a node's application cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// One work-conserving FIFO queue per node: an arriving call is served
    /// by whichever core frees first. This is the engine's historical
    /// (implicit) discipline.
    #[default]
    CentralizedFcfs,
    /// Per-core FIFO queues fed by an RSS-style indirection table: each
    /// request's flow hash selects a queue pinned to one application core,
    /// so a slow call head-of-line-blocks its queue while other cores may
    /// sit idle — the classic dFCFS trade against work conservation.
    DistributedFcfs,
}

/// How a node's cores are divided between network processing and
/// application work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CoreLayout {
    /// Every core handles both the per-RPC system overhead and the
    /// application work in one combined reservation (the historical
    /// behaviour).
    #[default]
    Combined,
    /// `network_cores` cores are dedicated to per-RPC system processing;
    /// the rest run application work only. A call is first served by a
    /// network core (system time), then queues for an application core
    /// (user time). At least one application core is always kept: the
    /// network pool is capped at `cores - 1`, and a cap of zero degrades
    /// to [`CoreLayout::Combined`] semantics on that node.
    Dedicated {
        /// Cores reserved for network processing, per node.
        network_cores: u32,
    },
}

impl CoreLayout {
    /// Splits a node's `cores` into `(network, application)` pools.
    #[must_use]
    pub(crate) fn split(self, cores: u32) -> (usize, usize) {
        match self {
            CoreLayout::Combined => (0, cores as usize),
            CoreLayout::Dedicated { network_cores } => {
                let net = (network_cores as usize).min(cores as usize - 1);
                (net, cores as usize - net)
            }
        }
    }
}

/// The server model of a simulation: queue discipline, core layout and the
/// per-queue bound. The default — centralised FCFS, combined cores,
/// unbounded queues — reproduces the engine's historical behaviour
/// bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServerModel {
    #[serde(default)]
    discipline: QueueDiscipline,
    #[serde(default)]
    layout: CoreLayout,
    #[serde(default)]
    queue_size: Option<usize>,
}

impl ServerModel {
    /// The default model: centralised FCFS, combined cores, unbounded.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the queue discipline.
    #[must_use]
    pub fn with_discipline(mut self, discipline: QueueDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Sets the core layout.
    #[must_use]
    pub fn with_layout(mut self, layout: CoreLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Bounds every queue at `size` waiting calls; a call arriving at a
    /// full queue is dropped (and with it, its whole request). `None`
    /// restores the historical unbounded queues. A size of zero refuses
    /// any call that cannot start service immediately.
    #[must_use]
    pub fn with_queue_size(mut self, size: Option<usize>) -> Self {
        self.queue_size = size;
        self
    }

    /// The queue discipline.
    #[must_use]
    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// The core layout.
    #[must_use]
    pub fn layout(&self) -> CoreLayout {
        self.layout
    }

    /// The per-queue bound, if any.
    #[must_use]
    pub fn queue_size(&self) -> Option<usize> {
        self.queue_size
    }
}

/// An RSS-style indirection table: `RSS_TABLE_ENTRIES` entries mapping a
/// flow hash to one of a node's core-local queues, filled round-robin
/// (`entries[i] = i mod queues`) like a NIC's default RETA programming.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RssTable {
    entries: Vec<u32>,
}

impl RssTable {
    /// Builds the table for a node with `queues` core-local queues.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero.
    #[must_use]
    pub fn new(queues: usize) -> Self {
        assert!(queues > 0, "a node needs at least one queue");
        Self {
            entries: (0..RSS_TABLE_ENTRIES)
                .map(|i| u32::try_from(i % queues).expect("queue index fits u32"))
                .collect(),
        }
    }

    /// The queue a flow hash is steered to.
    #[must_use]
    pub fn queue_of(&self, flow_hash: u64) -> usize {
        self.entries[(flow_hash % self.entries.len() as u64) as usize] as usize
    }

    /// The raw indirection entries.
    #[must_use]
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }
}

/// Hashes a request's flow identifier (its global arrival index) with the
/// SplitMix64 finaliser, the value both engines feed to [`RssTable`]. The
/// mixing step stands in for the Toeplitz hash of a real NIC: consecutive
/// arrivals land on decorrelated queues.
#[must_use]
pub fn flow_hash(flow: u64) -> u64 {
    let mut z = flow.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One phase of offered load: constant-rate by default, or a linear ramp
/// between two rates ([`Phase::ramp`]) for diurnal and other time-varying
/// schedules.
///
/// Ramp arrivals are generated by thinning (Lewis–Shedler): candidates are
/// drawn at the phase's peak rate and accepted with probability
/// `rate(t) / peak`, which keeps the process an exact non-homogeneous
/// Poisson process. Constant phases skip the acceptance draw entirely, so
/// their RNG consumption — and therefore every pre-existing workload — is
/// bit-identical to the pre-ramp engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    qps: f64,
    qps_end: Option<f64>,
    duration_s: f64,
    request_type: Option<String>,
}

impl Phase {
    /// Creates a phase offering `qps` requests per second for
    /// `duration_s` seconds. `request_type` restricts the phase to a single
    /// request type; `None` uses the application's weighted mix.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative or the duration is not positive.
    #[must_use]
    pub fn new(qps: f64, duration_s: f64, request_type: Option<&str>) -> Self {
        assert!(qps >= 0.0, "offered load cannot be negative");
        assert!(duration_s > 0.0, "phase duration must be positive");
        Self {
            qps,
            qps_end: None,
            duration_s,
            request_type: request_type.map(str::to_owned),
        }
    }

    /// Creates a phase whose offered load ramps linearly from `qps_start`
    /// to `qps_end` over `duration_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if either rate is negative or the duration is not positive.
    #[must_use]
    pub fn ramp(qps_start: f64, qps_end: f64, duration_s: f64, request_type: Option<&str>) -> Self {
        assert!(qps_end >= 0.0, "offered load cannot be negative");
        let mut phase = Self::new(qps_start, duration_s, request_type);
        phase.qps_end = Some(qps_end);
        phase
    }

    /// An idle phase (no arrivals).
    #[must_use]
    pub fn idle(duration_s: f64) -> Self {
        Self::new(0.0, duration_s, None)
    }

    /// Offered load at the start of the phase, requests per second.
    #[must_use]
    pub fn qps(&self) -> f64 {
        self.qps
    }

    /// Offered load at the end of the phase — equal to [`Phase::qps`] for
    /// constant phases.
    #[must_use]
    pub fn end_qps(&self) -> f64 {
        self.qps_end.unwrap_or(self.qps)
    }

    /// `true` when the phase's rate actually varies over time (a ramp with
    /// equal endpoints behaves — and draws from the RNG — exactly like a
    /// constant phase).
    #[must_use]
    pub fn is_ramp(&self) -> bool {
        self.qps_end.is_some_and(|end| end != self.qps)
    }

    /// The highest instantaneous rate of the phase (the thinning envelope).
    #[must_use]
    pub fn peak_qps(&self) -> f64 {
        self.qps.max(self.end_qps())
    }

    /// The time-averaged rate of the phase.
    #[must_use]
    pub fn mean_qps(&self) -> f64 {
        (self.qps + self.end_qps()) / 2.0
    }

    /// The instantaneous rate `offset_s` seconds into the phase, clamped to
    /// the phase's endpoints outside `[0, duration_s]`.
    #[must_use]
    pub fn rate_at(&self, offset_s: f64) -> f64 {
        let end = self.end_qps();
        if end == self.qps {
            return self.qps;
        }
        let frac = (offset_s / self.duration_s).clamp(0.0, 1.0);
        self.qps + (end - self.qps) * frac
    }

    /// Phase duration in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.duration_s
    }

    /// Request type restriction, if any.
    #[must_use]
    pub fn request_type(&self) -> Option<&str> {
        self.request_type.as_deref()
    }
}

/// A workload: one or more phases of offered load plus the random seed for
/// arrival times and mix sampling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    phases: Vec<Phase>,
    seed: u64,
}

impl Workload {
    /// Creates a workload from explicit phases.
    ///
    /// # Panics
    ///
    /// Panics if there are no phases.
    #[must_use]
    pub fn phased(phases: Vec<Phase>, seed: u64) -> Self {
        assert!(!phases.is_empty(), "a workload needs at least one phase");
        Self { phases, seed }
    }

    /// A single steady phase.
    #[must_use]
    pub fn steady(qps: f64, duration_s: f64, request_type: Option<&str>, seed: u64) -> Self {
        Self::phased(vec![Phase::new(qps, duration_s, request_type)], seed)
    }

    /// The phases of the workload.
    #[must_use]
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total duration across phases, seconds.
    #[must_use]
    pub fn total_duration_s(&self) -> f64 {
        self.phases.iter().map(Phase::duration_s).sum()
    }

    /// The random seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Errors raised when assembling a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The placement does not cover every service of the application.
    IncompletePlacement,
    /// The cluster has no nodes.
    NoNodes,
    /// A phase requested a request type the application does not define.
    UnknownRequestType(String),
    /// A fan-out worker terminated without filling its result slot (only
    /// possible if the worker itself died; never observed on a healthy
    /// run, but typed so the fan-out drivers stay panic-free).
    WorkerLost,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::IncompletePlacement => f.write_str("placement does not cover every service"),
            SimError::NoNodes => f.write_str("the cluster has no nodes"),
            SimError::UnknownRequestType(name) => write!(f, "unknown request type {name}"),
            SimError::WorkerLost => f.write_str("a fan-out worker died before filling its slot"),
        }
    }
}

impl std::error::Error for SimError {}

/// A ready-to-run simulation of one application on one deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Simulation {
    app: Application,
    nodes: Vec<NodeSpec>,
    placement: Placement,
    network: NetworkModel,
    colocated_client: bool,
    #[serde(default)]
    server: ServerModel,
}

impl Simulation {
    /// Creates a simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the cluster is empty or the placement does
    /// not cover the application.
    pub fn new(
        app: Application,
        nodes: Vec<NodeSpec>,
        placement: Placement,
        network: NetworkModel,
    ) -> Result<Self, SimError> {
        if nodes.is_empty() {
            return Err(SimError::NoNodes);
        }
        if !placement.covers(&app) {
            return Err(SimError::IncompletePlacement);
        }
        Ok(Self {
            app,
            nodes,
            placement,
            network,
            colocated_client: false,
            server: ServerModel::default(),
        })
    }

    /// Runs the load generator on node 0 of the deployment (the paper's EC2
    /// methodology) instead of on an external machine.
    #[must_use]
    pub fn with_colocated_client(mut self, colocated: bool) -> Self {
        self.colocated_client = colocated;
        self
    }

    /// Sets the server model (queue discipline, core layout, queue bound).
    /// The default model reproduces the historical engine bit-identically.
    #[must_use]
    pub fn with_server_model(mut self, server: ServerModel) -> Self {
        self.server = server;
        self
    }

    /// The application being simulated.
    #[must_use]
    pub fn app(&self) -> &Application {
        &self.app
    }

    /// The cluster nodes.
    #[must_use]
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// The service placement.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The network model.
    #[must_use]
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// `true` when the load generator runs on node 0 of the deployment.
    #[must_use]
    pub fn colocated_client(&self) -> bool {
        self.colocated_client
    }

    /// The server model (queue discipline, core layout, queue bound).
    #[must_use]
    pub fn server_model(&self) -> ServerModel {
        self.server
    }

    /// Lowers the simulation into the index-resolved [`CompiledSim`] form.
    ///
    /// Compile once and reuse across workloads (and across threads — the
    /// compiled engine runs by shared reference) when driving many runs of
    /// the same deployment, as [`crate::sweep::SweepConfig`] does.
    #[must_use]
    pub fn compile(&self) -> CompiledSim {
        CompiledSim::compile(self)
    }

    /// Runs the workload and returns the collected metrics.
    ///
    /// Delegates to the compiled engine ([`CompiledSim`]), which is
    /// bit-identical to [`Simulation::run_reference`] for a given seed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownRequestType`] if a phase names a request
    /// type the application does not define.
    pub fn run(&self, workload: &Workload) -> Result<RunMetrics, SimError> {
        self.compile().run(workload)
    }

    /// Runs the workload through the original, uncompiled event loop.
    ///
    /// This is the engine's executable specification: it resolves the
    /// placement map per event and materialises the full arrival schedule
    /// up front. [`CompiledSim`] must produce bit-identical [`RunMetrics`];
    /// the equivalence suite (`tests/microsim_equivalence.rs`) and the
    /// `des_engine` benchmarks compare the two. Prefer [`Simulation::run`]
    /// everywhere else.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownRequestType`] if a phase names a request
    /// type the application does not define.
    pub fn run_reference(&self, workload: &Workload) -> Result<RunMetrics, SimError> {
        let type_index = |name: &str| -> Result<usize, SimError> {
            self.app
                .request_types()
                .iter()
                .position(|r| r.name() == name)
                .ok_or_else(|| SimError::UnknownRequestType(name.to_owned()))
        };

        // Generate arrivals phase by phase.
        let mut rng = StdRng::seed_from_u64(workload.seed());
        let weights: Vec<f64> = self
            .app
            .request_types()
            .iter()
            .map(|r| r.weight())
            .collect();
        let total_weight: f64 = weights.iter().sum();
        let mut arrivals: Vec<(f64, usize)> = Vec::new();
        let mut phase_start = 0.0;
        for phase in workload.phases() {
            let fixed_type = match phase.request_type() {
                Some(name) => Some(type_index(name)?),
                None => None,
            };
            if phase.peak_qps() > 0.0 {
                let peak = phase.peak_qps();
                let mut t = phase_start;
                loop {
                    let u: f64 = rng.random::<f64>().max(1e-12);
                    t += -u.ln() / peak;
                    if t >= phase_start + phase.duration_s() {
                        break;
                    }
                    if phase.is_ramp() {
                        // Thinning: accept the candidate with probability
                        // rate(t)/peak. Constant phases skip this draw, so
                        // their RNG stream is unchanged.
                        let accept: f64 = rng.random();
                        if accept * peak > phase.rate_at(t - phase_start) {
                            continue;
                        }
                    }
                    let type_idx = fixed_type.unwrap_or_else(|| {
                        let mut pick = rng.random::<f64>() * total_weight;
                        for (i, w) in weights.iter().enumerate() {
                            if pick < *w {
                                return i;
                            }
                            pick -= w;
                        }
                        weights.len() - 1
                    });
                    arrivals.push((t, type_idx));
                }
            }
            phase_start += phase.duration_s();
        }
        let total_duration = workload.total_duration_s();

        // Resource state, shaped by the server model: each node's cores are
        // split into a (possibly empty) network pool and an application
        // pool, and the discipline decides how many queues front the
        // application pool (one shared queue under cFCFS, one per core
        // under dFCFS, selected by the RSS indirection table).
        let dfcfs = self.server.discipline() == QueueDiscipline::DistributedFcfs;
        let queue_size = self.server.queue_size();
        let layouts: Vec<(usize, usize)> = self
            .nodes
            .iter()
            .map(|n| self.server.layout().split(n.cores()))
            .collect();
        let mut net_avail: Vec<Vec<f64>> = layouts.iter().map(|&(net, _)| vec![0.0; net]).collect();
        let mut app_avail: Vec<Vec<f64>> = layouts.iter().map(|&(_, app)| vec![0.0; app]).collect();
        let n_queues: Vec<usize> = layouts
            .iter()
            .map(|&(_, app)| if dfcfs { app } else { 1 })
            .collect();
        let rss: Vec<RssTable> = n_queues.iter().map(|&q| RssTable::new(q)).collect();
        // Start times of admitted-but-waiting calls, per queue. Starts are
        // pushed in nondecreasing order (pool free times and event times
        // are both monotone), so entries <= now can be pruned from the
        // front; what remains is the queue's current occupancy.
        let mut waiting: Vec<Vec<VecDeque<f64>>> =
            n_queues.iter().map(|&q| vec![VecDeque::new(); q]).collect();
        let mut queue_drops: Vec<Vec<u64>> = n_queues.iter().map(|&q| vec![0_u64; q]).collect();
        let mut calls_arrived: Vec<u64> = vec![0; self.nodes.len()];
        let mut calls_served: Vec<u64> = vec![0; self.nodes.len()];
        let mut dropped_arrivals: Vec<f64> = Vec::new();
        let buckets = total_duration.ceil() as usize + 2;
        let mut utilization: Vec<NodeUtilization> = self
            .nodes
            .iter()
            .map(|n| NodeUtilization::new(n.name(), n.cores(), buckets))
            .collect();
        let mut client_avail: Vec<f64> = vec![0.0; self.app.client_workers() as usize];
        let mut link_avail: f64 = 0.0;

        let frontend_node = self
            .placement
            .node_of(self.app.frontend())
            .expect("placement covers the frontend");

        // Event queue. Every resource reservation (client worker, shared
        // WiFi channel, node core) happens at event-pop time, so each
        // resource is served in true timestamp order.
        #[derive(Debug, Clone, Copy, PartialEq)]
        enum Step {
            /// Request arrives at the (possibly colocated) load generator.
            Arrive,
            /// The frontend fans out the calls of a stage.
            Dispatch { stage: usize },
            /// A call's request message has reached its service's node.
            CallArrived { stage: usize, call: usize },
            /// A call's network-stack processing on a dedicated network
            /// core has finished; queue for an application core.
            CallNetDone { stage: usize, call: usize },
            /// A call's CPU work has finished; send the reply.
            CallFinished { stage: usize, call: usize },
            /// All stages are done; return the response to the client.
            Complete,
        }

        #[derive(PartialEq)]
        struct Event {
            time: f64,
            seq: u64,
            request: usize,
            step: Step,
        }
        impl Eq for Event {}
        impl Ord for Event {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reverse order: the binary heap is a max-heap, we want the
                // earliest event first.
                other
                    .time
                    .total_cmp(&self.time)
                    .then_with(|| other.seq.cmp(&self.seq))
            }
        }
        impl PartialOrd for Event {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        struct RequestState {
            arrival: f64,
            type_idx: usize,
            outstanding_calls: usize,
            stage_end: f64,
            flow: u64,
            dropped: bool,
        }

        let mut events: BinaryHeap<Event> = BinaryHeap::with_capacity(arrivals.len() * 4);
        let mut seq = 0u64;
        let mut requests: Vec<RequestState> = Vec::with_capacity(arrivals.len());
        for (t, type_idx) in &arrivals {
            requests.push(RequestState {
                arrival: *t,
                type_idx: *type_idx,
                outstanding_calls: 0,
                stage_end: *t,
                flow: flow_hash(requests.len() as u64),
                dropped: false,
            });
            events.push(Event {
                time: *t,
                seq,
                request: requests.len() - 1,
                step: Step::Arrive,
            });
            seq += 1;
        }

        let mut completions: Vec<CompletedRequest> = Vec::with_capacity(arrivals.len());

        // Sends a message at `now` (the current event time). Cross-node and
        // client messages serialise through the shared channel, if any.
        let send = |link_avail: &mut f64,
                    now: f64,
                    same_node: bool,
                    bytes: f64,
                    client_hop: bool|
         -> f64 {
            let latency = if client_hop {
                self.network.client_latency_ms() / 1_000.0
            } else {
                self.network.hop_latency_secs(same_node)
            };
            if same_node && !client_hop {
                return now + latency;
            }
            let tx = self.network.transmission_secs(bytes);
            if tx > 0.0 {
                let start = now.max(*link_avail);
                *link_avail = start + tx;
                start + tx + latency
            } else {
                now + latency
            }
        };

        let mut processed = 0_u64;
        while let Some(event) = events.pop() {
            processed += 1;
            let now = event.time;
            let type_idx = requests[event.request].type_idx;
            let request_type = &self.app.request_types()[type_idx];
            let mut push = |time: f64, request: usize, step: Step, seq: &mut u64| {
                events.push(Event {
                    time,
                    seq: *seq,
                    request,
                    step,
                });
                *seq += 1;
            };

            match event.step {
                Step::Arrive => {
                    let ready = if self.colocated_client {
                        let cost = self.nodes[0].service_secs(request_type.client_cost_ms());
                        let (best, _) = client_avail
                            .iter()
                            .enumerate()
                            .min_by(|a, b| a.1.total_cmp(b.1))
                            .expect("client pool is non-empty");
                        let start = now.max(client_avail[best]);
                        client_avail[best] = start + cost;
                        start + cost + self.network.hop_latency_secs(true)
                    } else {
                        send(&mut link_avail, now, false, CLIENT_REQUEST_BYTES, true)
                    };
                    push(ready, event.request, Step::Dispatch { stage: 0 }, &mut seq);
                }
                Step::Dispatch { stage } => {
                    let calls = request_type.stages()[stage].calls();
                    requests[event.request].outstanding_calls = calls.len();
                    requests[event.request].stage_end = now;
                    for (call_idx, call) in calls.iter().enumerate() {
                        let target = self
                            .placement
                            .node_of(call.service())
                            .expect("placement covers every service");
                        let same_node = target == frontend_node;
                        let delivered =
                            send(&mut link_avail, now, same_node, call.request_bytes(), false);
                        push(
                            delivered,
                            event.request,
                            Step::CallArrived {
                                stage,
                                call: call_idx,
                            },
                            &mut seq,
                        );
                    }
                }
                Step::CallArrived { stage, call } => {
                    let call_spec = &request_type.stages()[stage].calls()[call];
                    let target = self
                        .placement
                        .node_of(call_spec.service())
                        .expect("placement covers every service");
                    let node = &self.nodes[target];
                    let user_secs = node.service_secs(call_spec.cpu_ms());
                    let sys_secs = node.service_secs(RPC_SYS_OVERHEAD_MS);
                    let (net, _) = layouts[target];
                    calls_arrived[target] += 1;
                    if net > 0 {
                        // Dedicated layout: network processing first, on
                        // the earliest-free network core (unbounded — the
                        // application queue downstream is what the bound
                        // protects).
                        let (best, _) = net_avail[target]
                            .iter()
                            .enumerate()
                            .min_by(|a, b| a.1.total_cmp(b.1))
                            .expect("dedicated layout has a network core");
                        let start = now.max(net_avail[target][best]);
                        net_avail[target][best] = start + sys_secs;
                        utilization[target].add_sys(start, sys_secs);
                        push(
                            start + sys_secs,
                            event.request,
                            Step::CallNetDone { stage, call },
                            &mut seq,
                        );
                        continue;
                    }
                    // Combined layout: admission against the discipline's
                    // application queue, then one reservation covering
                    // system and application work.
                    let queue = if dfcfs {
                        rss[target].queue_of(requests[event.request].flow)
                    } else {
                        0
                    };
                    let avail = if dfcfs {
                        app_avail[target][queue]
                    } else {
                        app_avail[target]
                            .iter()
                            .copied()
                            .fold(f64::INFINITY, f64::min)
                    };
                    let start = now.max(avail);
                    if let Some(cap) = queue_size {
                        if start > now {
                            // The call has to wait: count the queue's
                            // current occupancy and drop at the bound.
                            let q = &mut waiting[target][queue];
                            while q.front().is_some_and(|&s| s <= now) {
                                q.pop_front();
                            }
                            if q.len() >= cap {
                                queue_drops[target][queue] += 1;
                                let state = &mut requests[event.request];
                                state.dropped = true;
                                state.outstanding_calls -= 1;
                                if state.outstanding_calls == 0 {
                                    dropped_arrivals.push(state.arrival);
                                }
                                continue;
                            }
                            q.push_back(start);
                        }
                    }
                    let finish = start + user_secs + sys_secs;
                    if dfcfs {
                        app_avail[target][queue] = finish;
                    } else {
                        let (best, _) = app_avail[target]
                            .iter()
                            .enumerate()
                            .min_by(|a, b| a.1.total_cmp(b.1))
                            .expect("node has at least one core");
                        app_avail[target][best] = finish;
                    }
                    utilization[target].add_user(start, user_secs);
                    utilization[target].add_sys(start, sys_secs);
                    push(
                        finish,
                        event.request,
                        Step::CallFinished { stage, call },
                        &mut seq,
                    );
                }
                Step::CallNetDone { stage, call } => {
                    // Network processing done: queue for an application
                    // core. This is where the dedicated layout's bound
                    // applies — a drop here has already burnt network-core
                    // time on the doomed call.
                    let call_spec = &request_type.stages()[stage].calls()[call];
                    let target = self
                        .placement
                        .node_of(call_spec.service())
                        .expect("placement covers every service");
                    let user_secs = self.nodes[target].service_secs(call_spec.cpu_ms());
                    let queue = if dfcfs {
                        rss[target].queue_of(requests[event.request].flow)
                    } else {
                        0
                    };
                    let avail = if dfcfs {
                        app_avail[target][queue]
                    } else {
                        app_avail[target]
                            .iter()
                            .copied()
                            .fold(f64::INFINITY, f64::min)
                    };
                    let start = now.max(avail);
                    if let Some(cap) = queue_size {
                        if start > now {
                            let q = &mut waiting[target][queue];
                            while q.front().is_some_and(|&s| s <= now) {
                                q.pop_front();
                            }
                            if q.len() >= cap {
                                queue_drops[target][queue] += 1;
                                let state = &mut requests[event.request];
                                state.dropped = true;
                                state.outstanding_calls -= 1;
                                if state.outstanding_calls == 0 {
                                    dropped_arrivals.push(state.arrival);
                                }
                                continue;
                            }
                            q.push_back(start);
                        }
                    }
                    if dfcfs {
                        app_avail[target][queue] = start + user_secs;
                    } else {
                        let (best, _) = app_avail[target]
                            .iter()
                            .enumerate()
                            .min_by(|a, b| a.1.total_cmp(b.1))
                            .expect("node has at least one application core");
                        app_avail[target][best] = start + user_secs;
                    }
                    utilization[target].add_user(start, user_secs);
                    push(
                        start + user_secs,
                        event.request,
                        Step::CallFinished { stage, call },
                        &mut seq,
                    );
                }
                Step::CallFinished { stage, call } => {
                    let call_spec = &request_type.stages()[stage].calls()[call];
                    let target = self
                        .placement
                        .node_of(call_spec.service())
                        .expect("placement covers every service");
                    calls_served[target] += 1;
                    let same_node = target == frontend_node;
                    let replied = send(
                        &mut link_avail,
                        now,
                        same_node,
                        call_spec.response_bytes(),
                        false,
                    );
                    let state = &mut requests[event.request];
                    if replied > state.stage_end {
                        state.stage_end = replied;
                    }
                    state.outstanding_calls -= 1;
                    if state.outstanding_calls == 0 {
                        if state.dropped {
                            // A sibling call of this stage was dropped: the
                            // request terminates once its in-flight calls
                            // drain, without further stages or completion.
                            dropped_arrivals.push(state.arrival);
                        } else {
                            let next_time = state.stage_end;
                            let next_step = if stage + 1 < request_type.stages().len() {
                                Step::Dispatch { stage: stage + 1 }
                            } else {
                                Step::Complete
                            };
                            push(next_time, event.request, next_step, &mut seq);
                        }
                    }
                }
                Step::Complete => {
                    let done = if self.colocated_client {
                        now + self.network.hop_latency_secs(true)
                    } else {
                        send(
                            &mut link_avail,
                            now,
                            false,
                            request_type.response_to_client_bytes(),
                            true,
                        )
                    };
                    let arrival = requests[event.request].arrival;
                    completions.push(CompletedRequest::new(arrival, (done - arrival) * 1_000.0));
                }
            }
        }

        let queue_stats: Vec<NodeQueueStats> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                NodeQueueStats::new(
                    n.name(),
                    calls_arrived[i],
                    calls_served[i],
                    queue_drops[i].clone(),
                )
            })
            .collect();
        Ok(
            RunMetrics::new(total_duration, arrivals.len(), completions, utilization)
                .with_events(processed)
                .with_queue_stats(dropped_arrivals, queue_stats),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{hotel_reservation, social_network, SN_COMPOSE_POST, SN_READ_HOME_TIMELINE};
    use crate::node::{ten_pixel_cloudlet, NodeSpec};

    fn phone_sim(app: Application) -> Simulation {
        let nodes = ten_pixel_cloudlet();
        let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
        Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap()
    }

    fn c5_sim(app: Application, vcpus: u32, memory: f64) -> Simulation {
        let nodes = vec![NodeSpec::c5("c5", vcpus, memory)];
        let placement = Placement::single_node(&app);
        Simulation::new(app, nodes, placement, NetworkModel::single_node_loopback())
            .unwrap()
            .with_colocated_client(true)
    }

    #[test]
    fn light_load_completes_everything_with_low_latency() {
        let sim = phone_sim(hotel_reservation());
        let metrics = sim.run(&Workload::steady(200.0, 5.0, None, 1)).unwrap();
        assert_eq!(metrics.offered(), metrics.completions().len());
        let stats = metrics.latency_stats();
        assert!(
            stats.median_ms().unwrap() < 80.0,
            "median {:?}",
            stats.median_ms()
        );
        assert!(
            stats.tail_ms().unwrap() < 150.0,
            "tail {:?}",
            stats.tail_ms()
        );
    }

    #[test]
    fn latency_blows_up_past_saturation_relative_to_a_low_load_baseline() {
        // Relative saturation criterion: instead of asserting a blow-up at
        // a magic absolute QPS near the queueing knee (which depends on the
        // vendored RNG's exact arrival sequence), compare medians against a
        // low-load baseline. Far below the cloudlet's ~4.7k-ref-core
        // capacity the curve is flat; far above it (several times the
        // aggregate capacity) the median must blow up by a large factor,
        // whatever the arrival sequence looks like.
        let sim = phone_sim(hotel_reservation());
        let median_at = |qps: f64| {
            sim.run(&Workload::steady(qps, 4.0, None, 2))
                .unwrap()
                .latency_stats_between(1.0, 4.0)
                .median_ms()
                .unwrap()
        };
        let baseline = median_at(250.0);
        let light = median_at(500.0);
        let heavy = median_at(16_000.0);
        assert!(
            light < baseline * 2.0,
            "the low-load region must be flat: {baseline} vs {light}"
        );
        assert!(
            heavy > baseline * 5.0,
            "deep saturation must blow the median up: {baseline} vs {heavy}"
        );
    }

    #[test]
    fn single_node_has_lower_base_latency_than_the_cloudlet() {
        let app = social_network();
        let phones = phone_sim(app.clone());
        let c5 = c5_sim(app, 36, 72.0);
        let workload = Workload::steady(300.0, 4.0, Some(SN_READ_HOME_TIMELINE), 3);
        let phone_p50 = phones
            .run(&workload)
            .unwrap()
            .latency_stats()
            .median_ms()
            .unwrap();
        let c5_p50 = c5
            .run(&workload)
            .unwrap()
            .latency_stats()
            .median_ms()
            .unwrap();
        assert!(
            phone_p50 > c5_p50,
            "phones should pay WiFi latency: {phone_p50} vs {c5_p50}"
        );
    }

    #[test]
    fn colocated_client_throttles_writes_on_the_single_node() {
        let app = social_network();
        let c5 = c5_sim(app, 36, 72.0);
        // Well above the client-pool capacity of ~2,000 composed posts/s.
        let overloaded = c5
            .run(&Workload::steady(3_200.0, 4.0, Some(SN_COMPOSE_POST), 4))
            .unwrap();
        let tail = overloaded
            .latency_stats_between(2.0, 4.0)
            .tail_ms()
            .unwrap();
        assert!(
            tail > 200.0,
            "writes past the client cap should queue: {tail}"
        );
        // The same offered load of reads is fine.
        let reads = c5
            .run(&Workload::steady(
                3_200.0,
                4.0,
                Some(SN_READ_HOME_TIMELINE),
                4,
            ))
            .unwrap();
        let read_tail = reads.latency_stats_between(2.0, 4.0).tail_ms().unwrap();
        assert!(
            read_tail < 100.0,
            "reads should not hit the client cap: {read_tail}"
        );
    }

    #[test]
    fn utilization_is_recorded_on_busy_nodes() {
        let sim = phone_sim(social_network());
        let metrics = sim
            .run(&Workload::steady(1_000.0, 4.0, Some(SN_COMPOSE_POST), 5))
            .unwrap();
        let means: Vec<f64> = metrics
            .node_utilization()
            .iter()
            .map(|u| u.mean_percent_between(1, 4))
            .collect();
        let busiest = means.iter().copied().fold(0.0_f64, f64::max);
        let quietest = means.iter().copied().fold(100.0_f64, f64::min);
        assert!(
            busiest > 10.0,
            "some phone should be visibly busy, got {busiest:.1}%"
        );
        // Figure 8's observation: utilisation varies widely across phones.
        assert!(
            busiest > quietest * 2.0,
            "imbalance expected: busiest {busiest:.1}% quietest {quietest:.1}%"
        );
    }

    #[test]
    fn idle_phases_produce_no_arrivals() {
        let sim = phone_sim(hotel_reservation());
        let workload = Workload::phased(
            vec![
                Phase::idle(2.0),
                Phase::new(100.0, 2.0, None),
                Phase::idle(1.0),
            ],
            9,
        );
        let metrics = sim.run(&workload).unwrap();
        assert!(metrics.offered() > 100 && metrics.offered() < 320);
        assert!(metrics
            .completions()
            .iter()
            .all(|c| c.arrival_s() >= 2.0 && c.arrival_s() < 4.0));
        assert!((metrics.duration_s() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ramp_phase_accessors_are_consistent() {
        let up = Phase::ramp(100.0, 500.0, 10.0, None);
        assert!(up.is_ramp());
        assert_eq!(up.qps(), 100.0);
        assert_eq!(up.end_qps(), 500.0);
        assert_eq!(up.peak_qps(), 500.0);
        assert_eq!(up.mean_qps(), 300.0);
        assert_eq!(up.rate_at(0.0), 100.0);
        assert_eq!(up.rate_at(5.0), 300.0);
        assert_eq!(up.rate_at(10.0), 500.0);
        // Clamped outside the phase.
        assert_eq!(up.rate_at(-1.0), 100.0);
        assert_eq!(up.rate_at(20.0), 500.0);
        let down = Phase::ramp(500.0, 100.0, 10.0, Some("x"));
        assert_eq!(down.peak_qps(), 500.0);
        assert_eq!(down.request_type(), Some("x"));
        // Constant phases and flat ramps are not time-varying.
        assert!(!Phase::new(200.0, 1.0, None).is_ramp());
        assert!(!Phase::ramp(200.0, 200.0, 1.0, None).is_ramp());
        assert_eq!(Phase::new(200.0, 1.0, None).end_qps(), 200.0);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_ramp_target_panics() {
        let _ = Phase::ramp(100.0, -1.0, 1.0, None);
    }

    #[test]
    fn unknown_request_type_is_an_error() {
        let sim = phone_sim(hotel_reservation());
        let err = sim
            .run(&Workload::steady(10.0, 1.0, Some("no-such-request"), 0))
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownRequestType(_)));
        assert!(err.to_string().contains("no-such-request"));
    }

    #[test]
    fn incomplete_placement_is_rejected() {
        let app = social_network();
        let nodes = ten_pixel_cloudlet();
        let partial = Placement::manual([("nginx-web-server", 0usize)], &nodes).unwrap();
        let err = Simulation::new(app, nodes, partial, NetworkModel::phone_wifi()).unwrap_err();
        assert_eq!(err, SimError::IncompletePlacement);
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let sim = phone_sim(hotel_reservation());
        let a = sim.run(&Workload::steady(400.0, 3.0, None, 77)).unwrap();
        let b = sim.run(&Workload::steady(400.0, 3.0, None, 77)).unwrap();
        assert_eq!(a.offered(), b.offered());
        assert_eq!(
            a.latency_stats().median_ms().unwrap(),
            b.latency_stats().median_ms().unwrap()
        );
    }
}
