//! Manufacturing ("embodied") carbon accounting — the `C_M` term of CCI.
//!
//! Embodied carbon is a one-time cost paid when a device is manufactured
//! (Section 3.4). The paper's key accounting rule is that a *reused* device
//! has already paid this cost, so its `C_M` is zero — but anything newly
//! added to support the reuse (replacement batteries, server fans, smart
//! plugs) must still be counted (Sections 4.3 and 5.2, Eq. 10 and Eq. 12).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::{GramsCo2e, TimeSpan};

/// One line item contributing manufacturing carbon to a system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbodiedItem {
    label: String,
    per_unit: GramsCo2e,
    quantity: f64,
}

impl EmbodiedItem {
    /// Creates a line item of `quantity` units, each embodying `per_unit`.
    #[must_use]
    pub fn new(label: impl Into<String>, per_unit: GramsCo2e, quantity: f64) -> Self {
        Self {
            label: label.into(),
            per_unit,
            quantity,
        }
    }

    /// Human-readable description of the item.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Embodied carbon per unit.
    #[must_use]
    pub fn per_unit(&self) -> GramsCo2e {
        self.per_unit
    }

    /// Number of units.
    #[must_use]
    pub fn quantity(&self) -> f64 {
        self.quantity
    }

    /// Total embodied carbon of the line item.
    #[must_use]
    pub fn total(&self) -> GramsCo2e {
        self.per_unit * self.quantity
    }
}

impl fmt::Display for EmbodiedItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x{:.1}: {:.1} kgCO2e",
            self.label,
            self.quantity,
            self.total().kilograms()
        )
    }
}

/// An itemised manufacturing-carbon bill (`C_M`).
///
/// # Examples
///
/// ```
/// use junkyard_carbon::embodied::EmbodiedCarbon;
/// use junkyard_carbon::units::GramsCo2e;
///
/// // A reused phone cloudlet: phones are free, but fans and smart plugs are new.
/// let cm = EmbodiedCarbon::reused()
///     .with_item("server fan", GramsCo2e::from_kilograms(9.3), 1.0)
///     .with_item("smart plug", GramsCo2e::from_kilograms(3.0), 54.0);
/// assert!((cm.total().kilograms() - (9.3 + 3.0 * 54.0)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EmbodiedCarbon {
    items: Vec<EmbodiedItem>,
}

impl EmbodiedCarbon {
    /// An empty bill (no embodied carbon at all).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bill for a reused device: manufacturing is treated as already
    /// paid, so the bill starts empty (the paper's `C_M = 0` stipulation).
    #[must_use]
    pub fn reused() -> Self {
        Self::new()
    }

    /// The bill for a newly manufactured device with a single aggregate
    /// embodied-carbon figure (for example from a vendor LCA).
    #[must_use]
    pub fn manufactured(label: impl Into<String>, carbon: GramsCo2e) -> Self {
        Self::new().with_item(label, carbon, 1.0)
    }

    /// Adds a line item (builder style).
    #[must_use]
    pub fn with_item(
        mut self,
        label: impl Into<String>,
        per_unit: GramsCo2e,
        quantity: f64,
    ) -> Self {
        self.push_item(label, per_unit, quantity);
        self
    }

    /// Adds a line item in place.
    pub fn push_item(&mut self, label: impl Into<String>, per_unit: GramsCo2e, quantity: f64) {
        self.items
            .push(EmbodiedItem::new(label, per_unit, quantity));
    }

    /// Merges another bill into this one (builder style).
    #[must_use]
    pub fn with_bill(mut self, other: &EmbodiedCarbon) -> Self {
        self.items.extend(other.items.iter().cloned());
        self
    }

    /// Iterates over the line items.
    pub fn iter(&self) -> impl Iterator<Item = &EmbodiedItem> {
        self.items.iter()
    }

    /// Number of line items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the bill has no line items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total embodied carbon across all line items.
    #[must_use]
    pub fn total(&self) -> GramsCo2e {
        self.items.iter().map(EmbodiedItem::total).sum()
    }
}

impl fmt::Display for EmbodiedCarbon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C_M = {:.1} kgCO2e ({} items)",
            self.total().kilograms(),
            self.items.len()
        )
    }
}

/// Number of battery packs consumed over `lifetime` when each pack survives
/// `battery_lifetime` of use — the ceiling term of Eq. 10.
///
/// The first pack is the one already in the reused phone, so a lifetime
/// shorter than one battery lifetime still "consumes" one pack; callers that
/// treat the original pack as free should subtract one (see
/// [`battery_replacement_carbon`]).
///
/// # Panics
///
/// Panics if `battery_lifetime` is not strictly positive.
#[must_use]
pub fn battery_packs_needed(lifetime: TimeSpan, battery_lifetime: TimeSpan) -> u32 {
    assert!(
        battery_lifetime.seconds() > 0.0,
        "battery lifetime must be positive"
    );
    if lifetime.seconds() <= 0.0 {
        return 0;
    }
    crate::convert::ceil_count_u32(lifetime.seconds() / battery_lifetime.seconds())
}

/// Embodied carbon of the *replacement* batteries needed to keep a reused
/// device alive for `lifetime` (Eq. 10), assuming the pack already inside the
/// device is free.
///
/// # Panics
///
/// Panics if `battery_lifetime` is not strictly positive.
#[must_use]
pub fn battery_replacement_carbon(
    per_battery: GramsCo2e,
    lifetime: TimeSpan,
    battery_lifetime: TimeSpan,
) -> GramsCo2e {
    let packs = battery_packs_needed(lifetime, battery_lifetime);
    let replacements = packs.saturating_sub(1);
    per_battery * f64::from(replacements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reused_bill_is_zero() {
        assert_eq!(EmbodiedCarbon::reused().total(), GramsCo2e::ZERO);
        assert!(EmbodiedCarbon::reused().is_empty());
    }

    #[test]
    fn manufactured_bill_carries_total() {
        let bill =
            EmbodiedCarbon::manufactured("PowerEdge R740", GramsCo2e::from_kilograms(3330.0));
        assert!((bill.total().kilograms() - 3330.0).abs() < 1e-9);
        assert_eq!(bill.len(), 1);
    }

    #[test]
    fn items_accumulate() {
        let bill = EmbodiedCarbon::new()
            .with_item("fan", GramsCo2e::from_kilograms(9.3), 2.0)
            .with_item("plug", GramsCo2e::from_kilograms(3.0), 270.0);
        assert!((bill.total().kilograms() - (18.6 + 810.0)).abs() < 1e-9);
        assert_eq!(bill.iter().count(), 2);
    }

    #[test]
    fn bills_merge() {
        let a = EmbodiedCarbon::manufactured("a", GramsCo2e::new(10.0));
        let b = EmbodiedCarbon::manufactured("b", GramsCo2e::new(5.0));
        let merged = a.with_bill(&b);
        assert_eq!(merged.total().grams(), 15.0);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn pixel_battery_lifetime_example() {
        // Section 4.3: a Pixel 3A battery lasts about 2.3 years; over a
        // 5-year second life two replacement packs are needed.
        let packs = battery_packs_needed(TimeSpan::from_years(5.0), TimeSpan::from_years(2.3));
        assert_eq!(packs, 3);
        let carbon = battery_replacement_carbon(
            GramsCo2e::from_kilograms(2.0),
            TimeSpan::from_years(5.0),
            TimeSpan::from_years(2.3),
        );
        assert!((carbon.kilograms() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn short_lifetime_needs_no_replacement() {
        let carbon = battery_replacement_carbon(
            GramsCo2e::from_kilograms(2.0),
            TimeSpan::from_years(1.0),
            TimeSpan::from_years(2.3),
        );
        assert_eq!(carbon, GramsCo2e::ZERO);
        assert_eq!(
            battery_packs_needed(TimeSpan::ZERO, TimeSpan::from_years(1.0)),
            0
        );
    }

    #[test]
    #[should_panic(expected = "battery lifetime must be positive")]
    fn zero_battery_lifetime_panics() {
        let _ = battery_packs_needed(TimeSpan::from_years(1.0), TimeSpan::ZERO);
    }

    #[test]
    fn display_is_not_empty() {
        let bill = EmbodiedCarbon::manufactured("x", GramsCo2e::new(1.0));
        assert!(!format!("{bill}").is_empty());
        assert!(!format!("{}", bill.iter().next().unwrap()).is_empty());
    }
}
