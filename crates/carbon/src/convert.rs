//! Checked numeric conversions for accounting paths.
//!
//! The `unchecked-cast` lint ratchets bare `as` casts out of the
//! accounting crates because a silent truncation in a count or an index
//! is exactly the kind of bug the conservation suites cannot see. The
//! casts that the domain genuinely needs — counts widened to `f64`,
//! non-negative positions floored to indices, percentile ranks split
//! into order statistics — live here instead, audited once, with their
//! preconditions written down and debug-asserted.
//!
//! Every helper is total: out-of-domain inputs saturate instead of
//! wrapping, and debug builds assert the precondition so the saturation
//! never silently happens in anger.

/// Counts at or above `2^53` no longer round-trip through `f64`
/// exactly. No workspace collection approaches this (it would be nine
/// petabytes of samples), so the helpers treat it as a debug-assert
/// precondition and saturate in release builds.
const EXACT_F64: u64 = 1 << 53;

/// A collection count as an `f64` — exact for every count below `2^53`.
#[must_use]
pub fn count_f64(count: usize) -> f64 {
    wide_count_f64(index_u64(count))
}

/// A `u64` count as an `f64` — exact below `2^53`, saturating to
/// `2^53` above it (debug builds assert instead).
#[must_use]
pub fn wide_count_f64(count: u64) -> f64 {
    debug_assert!(count <= EXACT_F64, "count {count} does not fit f64 exactly");
    // lint:allow(unchecked-cast): audited — bounded by EXACT_F64, where
    // u64 -> f64 is value-preserving
    count.min(EXACT_F64) as f64
}

/// A `usize` index widened to `u64` (for seed decorrelation). Lossless
/// on every supported platform.
#[must_use]
pub fn index_u64(index: usize) -> u64 {
    // lint:allow(unchecked-cast): audited — usize is at most 64 bits on
    // every platform this workspace builds for, so the widening is exact
    index as u64
}

/// The ratio of two counts. The denominator must be positive (callers
/// guard the empty case); a zero denominator yields `0.0` in release
/// builds rather than `NaN` leaking into the accounting.
#[must_use]
pub fn counts_ratio(numerator: usize, denominator: usize) -> f64 {
    debug_assert!(denominator > 0, "counts_ratio denominator is zero");
    if denominator == 0 {
        return 0.0;
    }
    count_f64(numerator) / count_f64(denominator)
}

/// A non-negative position floored to an index: `floor(max(position,
/// 0))`. NaN maps to zero; callers clamp or wrap to their own length.
#[must_use]
pub fn floor_index(position: f64) -> usize {
    // lint:allow(unchecked-cast): audited — the value is non-negative,
    // finite after max(0.0), and floored, so the cast only truncates
    // what floor already removed
    position.max(0.0).floor().min(wide_count_f64(EXACT_F64)) as usize
}

/// A non-negative position rounded up to an index: `ceil(max(position,
/// 0))`. NaN maps to zero.
#[must_use]
pub fn ceil_index(position: f64) -> usize {
    // lint:allow(unchecked-cast): audited — non-negative, finite, and
    // already integral after ceil
    position.max(0.0).ceil().min(wide_count_f64(EXACT_F64)) as usize
}

/// A non-negative quantity rounded to the nearest count. NaN maps to
/// zero.
#[must_use]
pub fn round_count(value: f64) -> usize {
    // lint:allow(unchecked-cast): audited — non-negative, finite, and
    // already integral after round
    value.max(0.0).round().min(wide_count_f64(EXACT_F64)) as usize
}

/// A non-negative quantity rounded up to a `u32` count, saturating at
/// `u32::MAX` (debug builds assert the value fits).
#[must_use]
pub fn ceil_count_u32(value: f64) -> u32 {
    let ceiled = value.max(0.0).ceil();
    debug_assert!(
        ceiled <= f64::from(u32::MAX),
        "count {ceiled} does not fit u32"
    );
    // lint:allow(unchecked-cast): audited — clamped into u32's exact
    // range before the cast
    ceiled.min(f64::from(u32::MAX)) as u32
}

/// Splits the `p`-th percentile (0–100) of an ascending slice of `len`
/// order statistics into the two bracketing indices and the
/// interpolation weight of the upper one — the single percentile
/// definition (linear interpolation between order statistics) shared by
/// every accounting crate.
///
/// `len` must be at least 1; callers handle the empty slice themselves
/// (the right empty-case answer differs per call site).
#[must_use]
pub fn percentile_rank(p: f64, len: usize) -> (usize, usize, f64) {
    debug_assert!(len >= 1, "percentile of an empty slice");
    let rank = p / 100.0 * count_f64(len.saturating_sub(1));
    let lo = floor_index(rank);
    let hi = ceil_index(rank);
    (lo, hi, rank - count_f64(lo))
}

/// Maps a full-entropy `u64` draw to a uniform value in `[0, 1)` using
/// the top 53 bits (the f64 mantissa width) — the shared PRNG-to-unit
/// convention of the fault planner and the lifecycle failure model.
#[must_use]
pub fn unit_draw(draw: u64) -> f64 {
    wide_count_f64(draw >> 11) / wide_count_f64(1 << 53)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact() {
        assert_eq!(count_f64(0), 0.0);
        assert_eq!(count_f64(7), 7.0);
        assert_eq!(wide_count_f64((1 << 53) - 1), 9_007_199_254_740_991.0);
    }

    #[test]
    fn ratio_of_counts() {
        assert_eq!(counts_ratio(1, 4), 0.25);
        assert_eq!(counts_ratio(0, 3), 0.0);
    }

    #[test]
    fn indices_floor_ceil_round() {
        assert_eq!(floor_index(3.9), 3);
        assert_eq!(ceil_index(3.1), 4);
        assert_eq!(round_count(3.5), 4);
        assert_eq!(floor_index(-1.0), 0);
        assert_eq!(floor_index(f64::NAN), 0);
    }

    #[test]
    fn ceil_u32_saturates() {
        assert_eq!(ceil_count_u32(2.1), 3);
        assert_eq!(ceil_count_u32(-5.0), 0);
    }

    #[test]
    fn percentile_rank_brackets() {
        // Median of five points sits exactly on index 2.
        assert_eq!(percentile_rank(50.0, 5), (2, 2, 0.0));
        // p75 of four points: rank 2.25.
        let (lo, hi, frac) = percentile_rank(75.0, 4);
        assert_eq!((lo, hi), (2, 3));
        assert!((frac - 0.25).abs() < 1e-12);
        assert_eq!(percentile_rank(100.0, 4), (3, 3, 0.0));
    }

    #[test]
    fn unit_draw_is_half_open() {
        assert_eq!(unit_draw(0), 0.0);
        assert!(unit_draw(u64::MAX) < 1.0);
        // The draw convention matches the inline implementations it
        // replaces: top 53 bits over 2^53.
        let draw = 0x8000_0000_0000_0000u64;
        assert_eq!(unit_draw(draw), 0.5);
    }
}
