//! Reuse Factor — how much of a device's embodied carbon is actually put
//! back to work (Eq. 8 of the paper).
//!
//! A smartphone repurposed as a headless compute node reuses its SoC, RAM,
//! radios, battery and storage but not its display or sensors. The reuse
//! factor weighs each subcomponent by its share of the device's embodied
//! carbon and sums the shares of the components that are reused, yielding a
//! value in `[0, 1]` (0.85 for the paper's cloudlet compute-node scenario).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::GramsCo2e;

/// One subcomponent of a device together with whether the new role reuses it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentUse {
    name: String,
    embodied: GramsCo2e,
    reused: bool,
}

impl ComponentUse {
    /// Creates a component entry.
    #[must_use]
    pub fn new(name: impl Into<String>, embodied: GramsCo2e, reused: bool) -> Self {
        Self {
            name: name.into(),
            embodied,
            reused,
        }
    }

    /// Component name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Embodied carbon attributed to this component.
    #[must_use]
    pub fn embodied(&self) -> GramsCo2e {
        self.embodied
    }

    /// Whether the component is exercised in the device's second life.
    #[must_use]
    pub fn is_reused(&self) -> bool {
        self.reused
    }
}

/// The reuse factor of a repurposing scenario.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ReuseFactor {
    components: Vec<ComponentUse>,
}

impl ReuseFactor {
    /// Creates an empty scenario with no components.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component (builder style).
    #[must_use]
    pub fn with_component(
        mut self,
        name: impl Into<String>,
        embodied: GramsCo2e,
        reused: bool,
    ) -> Self {
        self.components
            .push(ComponentUse::new(name, embodied, reused));
        self
    }

    /// Builds a scenario from an iterator of components.
    #[must_use]
    pub fn from_components<I>(components: I) -> Self
    where
        I: IntoIterator<Item = ComponentUse>,
    {
        Self {
            components: components.into_iter().collect(),
        }
    }

    /// The components of the scenario.
    #[must_use]
    pub fn components(&self) -> &[ComponentUse] {
        &self.components
    }

    /// Total embodied carbon across all components.
    #[must_use]
    pub fn total_embodied(&self) -> GramsCo2e {
        self.components.iter().map(ComponentUse::embodied).sum()
    }

    /// Embodied carbon of the reused components only.
    #[must_use]
    pub fn reused_embodied(&self) -> GramsCo2e {
        self.components
            .iter()
            .filter(|c| c.is_reused())
            .map(ComponentUse::embodied)
            .sum()
    }

    /// The reuse factor in `[0, 1]`: reused embodied carbon divided by total
    /// embodied carbon (Eq. 8). Returns `None` when the total is zero.
    #[must_use]
    pub fn factor(&self) -> Option<f64> {
        let total = self.total_embodied().grams();
        if total > 0.0 {
            Some(self.reused_embodied().grams() / total)
        } else {
            None
        }
    }
}

impl FromIterator<ComponentUse> for ReuseFactor {
    fn from_iter<T: IntoIterator<Item = ComponentUse>>(iter: T) -> Self {
        Self::from_components(iter)
    }
}

impl Extend<ComponentUse> for ReuseFactor {
    fn extend<T: IntoIterator<Item = ComponentUse>>(&mut self, iter: T) {
        self.components.extend(iter);
    }
}

impl fmt::Display for ReuseFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.factor() {
            Some(rf) => write!(f, "RF = {rf:.2}"),
            None => f.write_str("RF undefined (no embodied carbon)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nexus4_as_compute_node() -> ReuseFactor {
        // Table 3 of the paper; compute node reuses everything except the
        // display and sensors.
        ReuseFactor::new()
            .with_component("compute", GramsCo2e::from_kilograms(12.5), true)
            .with_component("network", GramsCo2e::from_kilograms(7.5), true)
            .with_component("battery", GramsCo2e::from_kilograms(7.5), true)
            .with_component("display", GramsCo2e::from_kilograms(5.0), false)
            .with_component("storage", GramsCo2e::from_kilograms(4.0), true)
            .with_component("sensors", GramsCo2e::from_kilograms(3.0), false)
            .with_component("other", GramsCo2e::from_kilograms(10.0), true)
    }

    #[test]
    fn paper_compute_node_scenario_is_about_085() {
        let rf = nexus4_as_compute_node().factor().unwrap();
        // (49.5 - 8.0) / 49.5 = 0.838...; the paper rounds to 0.85.
        assert!(rf > 0.80 && rf < 0.90, "rf = {rf}");
    }

    #[test]
    fn reusing_everything_is_one() {
        let rf = ReuseFactor::new()
            .with_component("a", GramsCo2e::new(10.0), true)
            .with_component("b", GramsCo2e::new(5.0), true);
        assert!((rf.factor().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reusing_nothing_is_zero() {
        let rf = ReuseFactor::new().with_component("a", GramsCo2e::new(10.0), false);
        assert_eq!(rf.factor().unwrap(), 0.0);
    }

    #[test]
    fn empty_scenario_is_undefined() {
        assert!(ReuseFactor::new().factor().is_none());
        assert!(ReuseFactor::new().to_string().contains("undefined"));
    }

    #[test]
    fn collect_and_extend() {
        let mut rf: ReuseFactor = [ComponentUse::new("a", GramsCo2e::new(1.0), true)]
            .into_iter()
            .collect();
        rf.extend([ComponentUse::new("b", GramsCo2e::new(1.0), false)]);
        assert_eq!(rf.components().len(), 2);
        assert!((rf.factor().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn totals_are_consistent() {
        let rf = nexus4_as_compute_node();
        assert!((rf.total_embodied().kilograms() - 49.5).abs() < 1e-9);
        assert!((rf.reused_embodied().kilograms() - 41.5).abs() < 1e-9);
    }
}
