//! Operational carbon accounting — the `C_C` (compute) and `C_N`
//! (networking) terms of CCI.
//!
//! Both terms are "energy times grid carbon intensity" (Eqs. 3–5 and 11 of
//! the paper); they differ only in how the energy is derived: compute energy
//! comes from the device's average electrical power over the workload mix,
//! networking energy comes from a sustained data rate and a per-byte energy
//! intensity (5 µJ/byte WiFi, 11 µJ/byte LTE in Section 5.2).

use serde::{Deserialize, Serialize};

use crate::units::{CarbonIntensity, DataRate, EnergyPerByte, GramsCo2e, Joules, TimeSpan, Watts};

/// Carbon released by powering a device drawing `average_power` for
/// `lifetime` on a grid of the given carbon intensity (Eq. 11).
#[must_use]
pub fn compute_carbon(
    grid: CarbonIntensity,
    average_power: Watts,
    lifetime: TimeSpan,
) -> GramsCo2e {
    grid.emissions_for(average_power * lifetime)
}

/// Energy consumed moving data at `rate` for `lifetime` with the given
/// per-byte energy intensity.
#[must_use]
pub fn network_energy(
    rate: DataRate,
    energy_per_byte: EnergyPerByte,
    lifetime: TimeSpan,
) -> Joules {
    energy_per_byte.energy_for(rate.volume_over(lifetime))
}

/// Carbon released by the networking activity of a cluster (Eq. 5).
#[must_use]
pub fn network_carbon(
    grid: CarbonIntensity,
    rate: DataRate,
    energy_per_byte: EnergyPerByte,
    lifetime: TimeSpan,
) -> GramsCo2e {
    grid.emissions_for(network_energy(rate, energy_per_byte, lifetime))
}

/// A networking profile: how much data the system moves and what each byte
/// costs in energy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NetworkProfile {
    rate: DataRate,
    energy_per_byte: EnergyPerByte,
}

impl NetworkProfile {
    /// A system that does no accounted networking (`C_N = 0`), as in the
    /// paper's single-device analysis.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Creates a networking profile from a sustained rate and a per-byte
    /// energy intensity.
    #[must_use]
    pub fn new(rate: DataRate, energy_per_byte: EnergyPerByte) -> Self {
        Self {
            rate,
            energy_per_byte,
        }
    }

    /// WiFi networking at the paper's 5 µJ/byte.
    #[must_use]
    pub fn wifi(rate: DataRate) -> Self {
        Self::new(rate, EnergyPerByte::from_microjoules_per_byte(5.0))
    }

    /// LTE networking at the paper's 11 µJ/byte.
    #[must_use]
    pub fn lte(rate: DataRate) -> Self {
        Self::new(rate, EnergyPerByte::from_microjoules_per_byte(11.0))
    }

    /// The sustained data rate.
    #[must_use]
    pub fn rate(self) -> DataRate {
        self.rate
    }

    /// The per-byte energy intensity.
    #[must_use]
    pub fn energy_per_byte(self) -> EnergyPerByte {
        self.energy_per_byte
    }

    /// Average electrical power dedicated to networking under this profile.
    #[must_use]
    pub fn average_power(self) -> Watts {
        Watts::new(self.rate.bytes_per_sec() * self.energy_per_byte.joules_per_byte())
    }

    /// Carbon released over `lifetime` on a grid with intensity `grid`.
    #[must_use]
    pub fn carbon_over(self, grid: CarbonIntensity, lifetime: TimeSpan) -> GramsCo2e {
        network_carbon(grid, self.rate, self.energy_per_byte, lifetime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_carbon_matches_hand_calculation() {
        // 308.7 W for one year on the 257 gCO2e/kWh California mix:
        // 308.7 W * 8766 h = 2706.1 kWh -> 695.5 kgCO2e.
        let c = compute_carbon(
            CarbonIntensity::from_grams_per_kwh(257.0),
            Watts::new(308.7),
            TimeSpan::from_years(1.0),
        );
        assert!((c.kilograms() - 695.5).abs() < 1.0);
    }

    #[test]
    fn network_carbon_scales_linearly_with_rate() {
        let grid = CarbonIntensity::from_grams_per_kwh(257.0);
        let life = TimeSpan::from_years(1.0);
        let one = network_carbon(
            grid,
            DataRate::from_megabits_per_sec(100.0),
            EnergyPerByte::from_microjoules_per_byte(5.0),
            life,
        );
        let two = network_carbon(
            grid,
            DataRate::from_megabits_per_sec(200.0),
            EnergyPerByte::from_microjoules_per_byte(5.0),
            life,
        );
        assert!((two.grams() / one.grams() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn wifi_cheaper_than_lte_per_byte() {
        let rate = DataRate::from_megabits_per_sec(100.0);
        let grid = CarbonIntensity::from_grams_per_kwh(257.0);
        let life = TimeSpan::from_days(30.0);
        let wifi = NetworkProfile::wifi(rate).carbon_over(grid, life);
        let lte = NetworkProfile::lte(rate).carbon_over(grid, life);
        assert!(lte > wifi);
        assert!((lte.grams() / wifi.grams() - 11.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn none_profile_is_zero() {
        let grid = CarbonIntensity::from_grams_per_kwh(500.0);
        assert_eq!(
            NetworkProfile::none().carbon_over(grid, TimeSpan::from_years(3.0)),
            GramsCo2e::ZERO
        );
    }

    #[test]
    fn network_average_power() {
        // 0.1 Gbps at 5 uJ/byte = 12.5 MB/s * 5e-6 J/B = 62.5 W.
        let p = NetworkProfile::wifi(DataRate::from_gigabits_per_sec(0.1)).average_power();
        assert!((p.value() - 62.5).abs() < 1e-9);
    }

    #[test]
    fn zero_carbon_grid_has_no_operational_emissions() {
        let c = compute_carbon(
            CarbonIntensity::ZERO,
            Watts::new(500.0),
            TimeSpan::from_years(5.0),
        );
        assert_eq!(c, GramsCo2e::ZERO);
    }
}
