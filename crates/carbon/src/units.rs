//! Strongly-typed physical quantities used throughout the carbon models.
//!
//! Every quantity is a thin newtype over `f64` ([C-NEWTYPE]): carbon mass,
//! energy, power, time, data volume and the intensity quantities that link
//! them (grid carbon intensity, network energy intensity). Arithmetic that is
//! physically meaningful is provided as operator impls (for example
//! [`Watts`] `*` [`TimeSpan`] `=` [`Joules`]), which keeps unit errors out of
//! the higher-level CCI formulas.
//!
//! # Examples
//!
//! ```
//! use junkyard_carbon::units::{Watts, TimeSpan, CarbonIntensity};
//!
//! let energy = Watts::new(1.54) * TimeSpan::from_hours(24.0);
//! let grid = CarbonIntensity::from_grams_per_kwh(257.0);
//! let emitted = grid * energy;
//! assert!((emitted.kilograms() - 0.0095).abs() < 1e-3);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of joules in one kilowatt-hour.
pub const JOULES_PER_KWH: f64 = 3.6e6;
/// Number of milliseconds in one second.
pub const MILLIS_PER_SEC: f64 = 1_000.0;
/// Number of seconds in one hour.
pub const SECONDS_PER_HOUR: f64 = 3_600.0;
/// Number of seconds in one average day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;
/// Number of seconds in one average (Julian) year.
pub const SECONDS_PER_YEAR: f64 = 365.25 * SECONDS_PER_DAY;
/// Number of seconds in one average month (1/12 of a Julian year).
pub const SECONDS_PER_MONTH: f64 = SECONDS_PER_YEAR / 12.0;

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity from its canonical-unit value.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the underlying value in the canonical unit.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (neither NaN nor infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps this quantity into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, Add::add)
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                iter.copied().sum()
            }
        }
    };
}

quantity!(
    /// A mass of CO2-equivalent emissions, stored in grams.
    GramsCo2e,
    "gCO2e"
);

quantity!(
    /// An amount of energy, stored in joules.
    Joules,
    "J"
);

quantity!(
    /// Electrical power, stored in watts.
    Watts,
    "W"
);

quantity!(
    /// A span of time, stored in seconds.
    TimeSpan,
    "s"
);

quantity!(
    /// A volume of data, stored in bytes.
    Bytes,
    "B"
);

quantity!(
    /// A request latency, stored in milliseconds.
    Millis,
    "ms"
);

quantity!(
    /// A request rate (offered or served load), stored in requests per
    /// second.
    Qps,
    "req/s"
);

impl GramsCo2e {
    /// Creates a carbon mass from kilograms of CO2-equivalent.
    ///
    /// # Examples
    ///
    /// ```
    /// use junkyard_carbon::units::GramsCo2e;
    /// assert_eq!(GramsCo2e::from_kilograms(2.0).value(), 2_000.0);
    /// ```
    #[must_use]
    pub fn from_kilograms(kg: f64) -> Self {
        Self::new(kg * 1_000.0)
    }

    /// Creates a carbon mass from milligrams of CO2-equivalent.
    #[must_use]
    pub fn from_milligrams(mg: f64) -> Self {
        Self::new(mg / 1_000.0)
    }

    /// Returns the mass in grams.
    #[must_use]
    pub fn grams(self) -> f64 {
        self.value()
    }

    /// Returns the mass in kilograms.
    #[must_use]
    pub fn kilograms(self) -> f64 {
        self.value() / 1_000.0
    }

    /// Returns the mass in milligrams.
    #[must_use]
    pub fn milligrams(self) -> f64 {
        self.value() * 1_000.0
    }
}

impl Joules {
    /// Creates an energy amount from kilowatt-hours.
    #[must_use]
    pub fn from_kwh(kwh: f64) -> Self {
        Self::new(kwh * JOULES_PER_KWH)
    }

    /// Creates an energy amount from kilojoules.
    #[must_use]
    pub fn from_kilojoules(kj: f64) -> Self {
        Self::new(kj * 1_000.0)
    }

    /// Creates an energy amount from watt-hours.
    #[must_use]
    pub fn from_watt_hours(wh: f64) -> Self {
        Self::new(wh * SECONDS_PER_HOUR)
    }

    /// Returns the energy in kilowatt-hours.
    #[must_use]
    pub fn kwh(self) -> f64 {
        self.value() / JOULES_PER_KWH
    }

    /// Returns the energy in kilojoules.
    #[must_use]
    pub fn kilojoules(self) -> f64 {
        self.value() / 1_000.0
    }

    /// Average power if this energy is spread over `span`.
    #[must_use]
    pub fn average_power(self, span: TimeSpan) -> Watts {
        Watts::new(self.value() / span.seconds())
    }
}

impl Watts {
    /// Creates a power value from kilowatts.
    #[must_use]
    pub fn from_kilowatts(kw: f64) -> Self {
        Self::new(kw * 1_000.0)
    }

    /// Returns the power in kilowatts.
    #[must_use]
    pub fn kilowatts(self) -> f64 {
        self.value() / 1_000.0
    }
}

impl TimeSpan {
    /// Creates a time span from seconds.
    #[must_use]
    pub fn from_secs(seconds: f64) -> Self {
        Self::new(seconds)
    }

    /// Creates a time span from minutes.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        Self::new(minutes * 60.0)
    }

    /// Creates a time span from hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Self::new(hours * SECONDS_PER_HOUR)
    }

    /// Creates a time span from days.
    #[must_use]
    pub fn from_days(days: f64) -> Self {
        Self::new(days * SECONDS_PER_DAY)
    }

    /// Creates a time span from average months (1/12 of a Julian year).
    #[must_use]
    pub fn from_months(months: f64) -> Self {
        Self::new(months * SECONDS_PER_MONTH)
    }

    /// Creates a time span from Julian years.
    #[must_use]
    pub fn from_years(years: f64) -> Self {
        Self::new(years * SECONDS_PER_YEAR)
    }

    /// Returns the span in seconds.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.value()
    }

    /// Returns the span in minutes.
    #[must_use]
    pub fn minutes(self) -> f64 {
        self.value() / 60.0
    }

    /// Returns the span in hours.
    #[must_use]
    pub fn hours(self) -> f64 {
        self.value() / SECONDS_PER_HOUR
    }

    /// Returns the span in days.
    #[must_use]
    pub fn days(self) -> f64 {
        self.value() / SECONDS_PER_DAY
    }

    /// Returns the span in average months.
    #[must_use]
    pub fn months(self) -> f64 {
        self.value() / SECONDS_PER_MONTH
    }

    /// Returns the span in Julian years.
    #[must_use]
    pub fn years(self) -> f64 {
        self.value() / SECONDS_PER_YEAR
    }
}

impl Bytes {
    /// Creates a data volume from gigabytes (10^9 bytes).
    #[must_use]
    pub fn from_gigabytes(gb: f64) -> Self {
        Self::new(gb * 1e9)
    }

    /// Returns the volume in gigabytes (10^9 bytes).
    #[must_use]
    pub fn gigabytes(self) -> f64 {
        self.value() / 1e9
    }
}

impl Millis {
    /// Creates a latency from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: f64) -> Self {
        Self::new(ms)
    }

    /// Creates a latency from seconds.
    #[must_use]
    pub fn from_seconds(secs: f64) -> Self {
        Self::new(secs * MILLIS_PER_SEC)
    }

    /// Returns the latency in milliseconds.
    #[must_use]
    pub const fn millis(self) -> f64 {
        self.value()
    }

    /// Returns the latency in seconds.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.value() / MILLIS_PER_SEC
    }
}

impl Qps {
    /// Creates a rate from requests per second.
    #[must_use]
    pub const fn from_per_second(qps: f64) -> Self {
        Self::new(qps)
    }

    /// Returns the rate in requests per second.
    #[must_use]
    pub const fn per_second(self) -> f64 {
        self.value()
    }

    /// Total requests arriving at this rate over `span`.
    #[must_use]
    pub fn requests_over(self, span: TimeSpan) -> f64 {
        self.value() * span.seconds()
    }
}

impl Mul<TimeSpan> for Watts {
    type Output = Joules;
    /// Power sustained for a time span yields energy.
    fn mul(self, rhs: TimeSpan) -> Joules {
        Joules::new(self.value() * rhs.seconds())
    }
}

impl Mul<Watts> for TimeSpan {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

/// Carbon intensity of an energy source or grid, in grams of CO2-equivalent
/// per kilowatt-hour.
///
/// The paper quotes grid intensities in gCO2e/kWh (for example 257 for the
/// California mix, 48 for solar, 602 for gas — Section 5.1); this type keeps
/// that unit as canonical and converts to per-joule where needed.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct CarbonIntensity(f64);

impl CarbonIntensity {
    /// A perfectly carbon-free (theoretical) energy source.
    pub const ZERO: Self = Self(0.0);

    /// Creates a carbon intensity from grams of CO2e per kilowatt-hour.
    #[must_use]
    pub const fn from_grams_per_kwh(grams_per_kwh: f64) -> Self {
        Self(grams_per_kwh)
    }

    /// Returns the intensity in grams of CO2e per kilowatt-hour.
    #[must_use]
    pub const fn grams_per_kwh(self) -> f64 {
        self.0
    }

    /// Returns the intensity in grams of CO2e per joule.
    #[must_use]
    pub fn grams_per_joule(self) -> f64 {
        self.0 / JOULES_PER_KWH
    }

    /// Carbon emitted by consuming `energy` at this intensity.
    #[must_use]
    pub fn emissions_for(self, energy: Joules) -> GramsCo2e {
        GramsCo2e::new(self.grams_per_joule() * energy.value())
    }
}

impl fmt::Display for CarbonIntensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*} gCO2e/kWh", precision, self.0)
        } else {
            write!(f, "{} gCO2e/kWh", self.0)
        }
    }
}

impl Mul<Joules> for CarbonIntensity {
    type Output = GramsCo2e;
    fn mul(self, rhs: Joules) -> GramsCo2e {
        self.emissions_for(rhs)
    }
}

impl Mul<CarbonIntensity> for Joules {
    type Output = GramsCo2e;
    fn mul(self, rhs: CarbonIntensity) -> GramsCo2e {
        rhs.emissions_for(self)
    }
}

impl Mul<f64> for CarbonIntensity {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Add for CarbonIntensity {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

/// Energy cost of moving data, in joules per byte.
///
/// Section 5.2 uses 5 µJ/byte for WiFi and 11 µJ/byte for LTE.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct EnergyPerByte(f64);

impl EnergyPerByte {
    /// Creates an energy intensity from joules per byte.
    #[must_use]
    pub const fn from_joules_per_byte(joules_per_byte: f64) -> Self {
        Self(joules_per_byte)
    }

    /// Creates an energy intensity from microjoules per byte.
    #[must_use]
    pub fn from_microjoules_per_byte(uj_per_byte: f64) -> Self {
        Self(uj_per_byte * 1e-6)
    }

    /// Returns the intensity in joules per byte.
    #[must_use]
    pub const fn joules_per_byte(self) -> f64 {
        self.0
    }

    /// Energy required to move `data` at this intensity.
    #[must_use]
    pub fn energy_for(self, data: Bytes) -> Joules {
        Joules::new(self.0 * data.value())
    }
}

impl Mul<Bytes> for EnergyPerByte {
    type Output = Joules;
    fn mul(self, rhs: Bytes) -> Joules {
        self.energy_for(rhs)
    }
}

/// A sustained data rate in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct DataRate(f64);

impl DataRate {
    /// No traffic.
    pub const ZERO: Self = Self(0.0);

    /// Creates a data rate from bytes per second.
    #[must_use]
    pub const fn from_bytes_per_sec(bytes_per_sec: f64) -> Self {
        Self(bytes_per_sec)
    }

    /// Creates a data rate from megabits per second.
    #[must_use]
    pub fn from_megabits_per_sec(mbps: f64) -> Self {
        Self(mbps * 1e6 / 8.0)
    }

    /// Creates a data rate from gigabits per second.
    #[must_use]
    pub fn from_gigabits_per_sec(gbps: f64) -> Self {
        Self(gbps * 1e9 / 8.0)
    }

    /// Returns the rate in bytes per second.
    #[must_use]
    pub const fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Returns the rate in megabits per second.
    #[must_use]
    pub fn megabits_per_sec(self) -> f64 {
        self.0 * 8.0 / 1e6
    }

    /// Returns the rate in gigabits per second.
    #[must_use]
    pub fn gigabits_per_sec(self) -> f64 {
        self.0 * 8.0 / 1e9
    }

    /// Data moved when sustaining this rate for `span`.
    #[must_use]
    pub fn volume_over(self, span: TimeSpan) -> Bytes {
        Bytes::new(self.0 * span.seconds())
    }
}

impl Mul<TimeSpan> for DataRate {
    type Output = Bytes;
    fn mul(self, rhs: TimeSpan) -> Bytes {
        self.volume_over(rhs)
    }
}

impl Div<f64> for DataRate {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Mul<f64> for DataRate {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} Mbit/s", self.megabits_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grams_kilogram_roundtrip() {
        let g = GramsCo2e::from_kilograms(12.5);
        assert!((g.grams() - 12_500.0).abs() < 1e-9);
        assert!((g.kilograms() - 12.5).abs() < 1e-9);
        assert!((g.milligrams() - 12_500_000.0).abs() < 1e-6);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(100.0) * TimeSpan::from_hours(1.0);
        assert!((e.kwh() - 0.1).abs() < 1e-12);
        let e2 = TimeSpan::from_hours(1.0) * Watts::new(100.0);
        assert_eq!(e, e2);
    }

    #[test]
    fn carbon_intensity_emissions() {
        // 1 kWh at California's 257 gCO2e/kWh releases 257 g.
        let ci = CarbonIntensity::from_grams_per_kwh(257.0);
        let emitted = ci * Joules::from_kwh(1.0);
        assert!((emitted.grams() - 257.0).abs() < 1e-9);
    }

    #[test]
    fn energy_per_byte_wifi() {
        // 5 uJ/byte over 1 GB is 5 kJ.
        let ei = EnergyPerByte::from_microjoules_per_byte(5.0);
        let e = ei * Bytes::from_gigabytes(1.0);
        assert!((e.kilojoules() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn data_rate_conversions() {
        let r = DataRate::from_gigabits_per_sec(1.0);
        assert!((r.megabits_per_sec() - 1_000.0).abs() < 1e-9);
        let vol = r * TimeSpan::from_secs(8.0);
        assert!((vol.gigabytes() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn timespan_constructors_consistent() {
        assert!((TimeSpan::from_years(1.0).months() - 12.0).abs() < 1e-9);
        assert!((TimeSpan::from_months(6.0).years() - 0.5).abs() < 1e-9);
        assert!((TimeSpan::from_days(1.0).hours() - 24.0).abs() < 1e-9);
        assert!((TimeSpan::from_minutes(90.0).hours() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn quantity_arithmetic() {
        let a = GramsCo2e::new(10.0);
        let b = GramsCo2e::new(4.0);
        assert_eq!((a + b).grams(), 14.0);
        assert_eq!((a - b).grams(), 6.0);
        assert_eq!((a * 2.0).grams(), 20.0);
        assert_eq!((2.0 * a).grams(), 20.0);
        assert_eq!((a / 2.0).grams(), 5.0);
        assert!((a / b - 2.5).abs() < 1e-12);
        let total: GramsCo2e = [a, b, GramsCo2e::new(1.0)].iter().sum();
        assert_eq!(total.grams(), 15.0);
    }

    #[test]
    fn quantity_min_max_clamp() {
        let a = Watts::new(3.0);
        let b = Watts::new(5.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Watts::new(9.0).clamp(a, b), b);
        assert_eq!(Watts::new(1.0).clamp(a, b), a);
    }

    #[test]
    fn display_includes_units() {
        assert_eq!(format!("{:.2}", GramsCo2e::new(1.234)), "1.23 gCO2e");
        assert_eq!(
            format!("{:.0}", CarbonIntensity::from_grams_per_kwh(257.0)),
            "257 gCO2e/kWh"
        );
        assert!(format!("{}", Watts::new(2.5)).contains('W'));
    }

    #[test]
    fn average_power_from_energy() {
        let e = Joules::from_kwh(1.0);
        let p = e.average_power(TimeSpan::from_hours(2.0));
        assert!((p.value() - 500.0).abs() < 1e-9);
    }
}
