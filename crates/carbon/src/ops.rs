//! Units of computational work.
//!
//! CCI divides lifetime carbon by lifetime *useful work*, and the unit of
//! work depends on the benchmark: SGEMM counts floating-point operations,
//! PDF rendering counts pixels, Dijkstra counts traversed edges, memory copy
//! counts bytes, and end-to-end microservice benchmarks count requests
//! (Section 3.4 of the paper). [`OpUnit`] names the unit and [`Throughput`] /
//! [`OpCount`] carry values tagged with it so that work from different
//! benchmarks cannot be silently mixed.

use std::fmt;
use std::ops::{Add, Mul};

use serde::{Deserialize, Serialize};

use crate::units::TimeSpan;

/// The kind of work a benchmark measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OpUnit {
    /// Billions of floating point operations (SGEMM).
    Gflop,
    /// Millions of rendered pixels (PDF rendering).
    Mpixel,
    /// Millions of traversed edges (Dijkstra).
    MillionEdges,
    /// Gigabytes copied (memory copy).
    Gigabyte,
    /// End-to-end application requests (DeathStarBench).
    Request,
}

impl OpUnit {
    /// Short unit label used in table headers (for example `"gflop"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OpUnit::Gflop => "gflop",
            OpUnit::Mpixel => "Mpixel",
            OpUnit::MillionEdges => "MTE",
            OpUnit::Gigabyte => "GB",
            OpUnit::Request => "request",
        }
    }
}

impl fmt::Display for OpUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An amount of completed work, tagged with the unit it is measured in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCount {
    amount: f64,
    unit: OpUnit,
}

impl OpCount {
    /// Creates a work amount.
    #[must_use]
    pub const fn new(amount: f64, unit: OpUnit) -> Self {
        Self { amount, unit }
    }

    /// Zero work in the given unit.
    #[must_use]
    pub const fn zero(unit: OpUnit) -> Self {
        Self::new(0.0, unit)
    }

    /// The amount of work, in [`Self::unit`] units.
    #[must_use]
    pub const fn amount(self) -> f64 {
        self.amount
    }

    /// The unit the work is measured in.
    #[must_use]
    pub const fn unit(self) -> OpUnit {
        self.unit
    }

    /// Adds two work amounts.
    ///
    /// # Errors
    ///
    /// Returns [`UnitMismatch`] if the two amounts use different units.
    pub fn checked_add(self, other: Self) -> Result<Self, UnitMismatch> {
        if self.unit == other.unit {
            Ok(Self::new(self.amount + other.amount, self.unit))
        } else {
            Err(UnitMismatch {
                left: self.unit,
                right: other.unit,
            })
        }
    }
}

impl fmt::Display for OpCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} {}", self.amount, self.unit)
    }
}

impl Add for OpCount {
    type Output = Self;

    /// Adds two work amounts.
    ///
    /// # Panics
    ///
    /// Panics if the units differ; use [`OpCount::checked_add`] to handle the
    /// mismatch as an error instead.
    fn add(self, rhs: Self) -> Self {
        self.checked_add(rhs)
            // lint:allow(panic-in-library): documented panic — `Add` is
            // the panicking convenience; `checked_add` is the fallible API
            .expect("cannot add OpCount values with different units")
    }
}

/// Error returned when combining work measured in different units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitMismatch {
    /// Unit of the left operand.
    pub left: OpUnit,
    /// Unit of the right operand.
    pub right: OpUnit,
}

impl fmt::Display for UnitMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "operation unit mismatch: {} vs {}",
            self.left, self.right
        )
    }
}

impl std::error::Error for UnitMismatch {}

/// A sustained rate of work, in `unit` per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    per_second: f64,
    unit: OpUnit,
}

impl Throughput {
    /// Creates a throughput of `per_second` units of work each second.
    #[must_use]
    pub const fn per_second(per_second: f64, unit: OpUnit) -> Self {
        Self { per_second, unit }
    }

    /// The rate in work units per second.
    #[must_use]
    pub const fn rate(self) -> f64 {
        self.per_second
    }

    /// The unit of work.
    #[must_use]
    pub const fn unit(self) -> OpUnit {
        self.unit
    }

    /// Scales the throughput by a dimensionless factor (for example a CPU
    /// utilisation fraction, as in Eq. 6 of the paper).
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        Self::per_second(self.per_second * factor, self.unit)
    }

    /// Total work completed when sustaining this throughput for `span`.
    #[must_use]
    pub fn work_over(self, span: TimeSpan) -> OpCount {
        OpCount::new(self.per_second * span.seconds(), self.unit)
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} {}/s", self.per_second, self.unit)
    }
}

impl Mul<TimeSpan> for Throughput {
    type Output = OpCount;
    fn mul(self, rhs: TimeSpan) -> OpCount {
        self.work_over(rhs)
    }
}

impl Mul<f64> for Throughput {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        self.scaled(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_accumulates_work() {
        let t = Throughput::per_second(39.0, OpUnit::Gflop);
        let work = t * TimeSpan::from_hours(1.0);
        assert!((work.amount() - 39.0 * 3600.0).abs() < 1e-6);
        assert_eq!(work.unit(), OpUnit::Gflop);
    }

    #[test]
    fn throughput_scaling() {
        let t = Throughput::per_second(100.0, OpUnit::Request).scaled(0.5);
        assert!((t.rate() - 50.0).abs() < 1e-12);
        let t2 = t * 2.0;
        assert!((t2.rate() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn op_count_add_same_unit() {
        let a = OpCount::new(1.0, OpUnit::Mpixel);
        let b = OpCount::new(2.0, OpUnit::Mpixel);
        assert_eq!((a + b).amount(), 3.0);
    }

    #[test]
    fn op_count_add_mismatch_errors() {
        let a = OpCount::new(1.0, OpUnit::Mpixel);
        let b = OpCount::new(2.0, OpUnit::Gflop);
        let err = a.checked_add(b).unwrap_err();
        assert_eq!(err.left, OpUnit::Mpixel);
        assert_eq!(err.right, OpUnit::Gflop);
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(OpUnit::Gflop.label(), "gflop");
        assert_eq!(OpUnit::MillionEdges.label(), "MTE");
        assert_eq!(OpUnit::Request.to_string(), "request");
    }
}
