//! Computational Carbon Intensity (CCI) — the carbon-accounting core of the
//! Junkyard Computing reproduction.
//!
//! This crate provides the paper's central metric and everything needed to
//! evaluate it:
//!
//! * [`units`] — strongly-typed physical quantities (gCO2e, joules, watts,
//!   time spans, data rates, grid carbon intensity, network energy
//!   intensity).
//! * [`ops`] — units of useful computational work (gflops, Mpixels, edges,
//!   requests) and throughput.
//! * [`embodied`] — manufacturing carbon bills (`C_M`), including battery
//!   replacement schedules and added peripherals.
//! * [`operational`] — compute (`C_C`) and networking (`C_N`) carbon.
//! * [`cci`] — the [`CciCalculator`](cci::CciCalculator) that combines all
//!   three terms and amortises them over lifetime work (Eqs. 1–7).
//! * [`reuse`] — the component-level Reuse Factor (Eq. 8).
//! * [`scale`] — facility PUE and datacenter-scale CCI (Eqs. 14–15).
//!
//! # Quick example
//!
//! ```
//! use junkyard_carbon::prelude::*;
//!
//! # fn main() -> Result<(), junkyard_carbon::cci::CciError> {
//! // A reused Pixel 3A running a light-medium duty cycle on the California
//! // grid, measured by SGEMM throughput.
//! let pixel = CciCalculator::new(OpUnit::Gflop)
//!     .embodied(EmbodiedCarbon::reused())
//!     .average_power(Watts::new(1.54))
//!     .grid(CarbonIntensity::from_grams_per_kwh(257.0))
//!     .throughput(Throughput::per_second(17.2, OpUnit::Gflop));
//!
//! let cci = pixel.cci_at(TimeSpan::from_months(36.0))?;
//! println!("Pixel 3A after 3 years: {cci}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cci;
pub mod convert;
pub mod embodied;
pub mod operational;
pub mod ops;
pub mod reuse;
pub mod scale;
pub mod units;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::cci::{CarbonBreakdown, Cci, CciCalculator, CciError, CciPoint, CciSeries};
    pub use crate::embodied::EmbodiedCarbon;
    pub use crate::operational::NetworkProfile;
    pub use crate::ops::{OpCount, OpUnit, Throughput};
    pub use crate::reuse::ReuseFactor;
    pub use crate::scale::{FacilityModel, Pue};
    pub use crate::units::{
        Bytes, CarbonIntensity, DataRate, EnergyPerByte, GramsCo2e, Joules, Millis, Qps, TimeSpan,
        Watts,
    };
}

pub use crate::cci::{CarbonBreakdown, Cci, CciCalculator, CciError, CciSeries};
pub use crate::embodied::EmbodiedCarbon;
pub use crate::operational::NetworkProfile;
pub use crate::ops::{OpCount, OpUnit, Throughput};
pub use crate::reuse::ReuseFactor;
pub use crate::scale::{FacilityModel, Pue};
pub use crate::units::{CarbonIntensity, GramsCo2e, Joules, Millis, Qps, TimeSpan, Watts};
