//! Facility-scale metrics: PUE and the datacenter-scale CCI form.
//!
//! Section 5.3 of the paper evaluates a hypothetical 50 MW datacenter built
//! from either PowerEdge servers or Pixel 3A clusters. Power Usage
//! Effectiveness (Eq. 14) captures the facility overhead (cooling, lighting)
//! relative to IT power; the datacenter CCI (Eq. 15) multiplies the
//! operational terms by PUE before amortising over work.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::Watts;

/// Power Usage Effectiveness of a facility (Eq. 14).
///
/// `PUE = (P_IT + P_cooling + P_lighting) / P_IT`, with 1.0 as the ideal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pue {
    it: Watts,
    cooling: Watts,
    lighting: Watts,
}

impl Pue {
    /// Creates a PUE computation from the facility's power components.
    ///
    /// # Panics
    ///
    /// Panics if the IT power is not strictly positive or any component is
    /// negative.
    #[must_use]
    pub fn new(it: Watts, cooling: Watts, lighting: Watts) -> Self {
        assert!(it.value() > 0.0, "IT power must be positive");
        assert!(
            cooling.value() >= 0.0 && lighting.value() >= 0.0,
            "facility power components cannot be negative"
        );
        Self {
            it,
            cooling,
            lighting,
        }
    }

    /// IT equipment power.
    #[must_use]
    pub fn it_power(self) -> Watts {
        self.it
    }

    /// Cooling power.
    #[must_use]
    pub fn cooling_power(self) -> Watts {
        self.cooling
    }

    /// Lighting power.
    #[must_use]
    pub fn lighting_power(self) -> Watts {
        self.lighting
    }

    /// Total facility power.
    #[must_use]
    pub fn total_power(self) -> Watts {
        self.it + self.cooling + self.lighting
    }

    /// The PUE value (≥ 1.0).
    #[must_use]
    pub fn value(self) -> f64 {
        self.total_power() / self.it
    }
}

impl fmt::Display for Pue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PUE {:.2}", self.value())
    }
}

/// Simple facility-overhead model used to estimate cooling and lighting from
/// the IT load and the floor space it occupies, following the methodology
/// the paper cites for its 50 MW comparison.
///
/// * Cooling power scales with IT power by `cooling_per_watt`.
/// * Lighting power scales with floor space by `lighting_per_rack_unit`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FacilityModel {
    cooling_per_watt: f64,
    lighting_watts_per_rack_unit: f64,
}

impl FacilityModel {
    /// Creates a facility model.
    ///
    /// # Panics
    ///
    /// Panics if either coefficient is negative.
    #[must_use]
    pub fn new(cooling_per_watt: f64, lighting_watts_per_rack_unit: f64) -> Self {
        assert!(
            cooling_per_watt >= 0.0 && lighting_watts_per_rack_unit >= 0.0,
            "facility coefficients cannot be negative"
        );
        Self {
            cooling_per_watt,
            lighting_watts_per_rack_unit,
        }
    }

    /// A default air-cooled datacenter model: cooling draws ~30 % of IT power
    /// and lighting roughly 1 W per occupied rack unit. These coefficients
    /// reproduce the paper's PUE of about 1.31 for the server design and a
    /// slightly higher 1.32 for the roomier phone design.
    #[must_use]
    pub fn air_cooled_default() -> Self {
        Self::new(0.30, 1.0)
    }

    /// Estimates the facility PUE for `units` deployed units, each drawing
    /// `unit_power` and occupying `rack_units_per_unit` of space.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero or `unit_power` is not positive.
    #[must_use]
    pub fn pue_for(self, units: u64, unit_power: Watts, rack_units_per_unit: f64) -> Pue {
        assert!(units > 0, "a facility needs at least one unit");
        let it = unit_power * crate::convert::wide_count_f64(units);
        let cooling = it * self.cooling_per_watt;
        let lighting = Watts::new(
            self.lighting_watts_per_rack_unit
                * rack_units_per_unit
                * crate::convert::wide_count_f64(units),
        );
        Pue::new(it, cooling, lighting)
    }
}

impl Default for FacilityModel {
    fn default() -> Self {
        Self::air_cooled_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_facility_has_pue_one() {
        let pue = Pue::new(Watts::from_kilowatts(100.0), Watts::ZERO, Watts::ZERO);
        assert!((pue.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pue_formula() {
        let pue = Pue::new(Watts::new(100.0), Watts::new(25.0), Watts::new(5.0));
        assert!((pue.value() - 1.3).abs() < 1e-12);
        assert!((pue.total_power().value() - 130.0).abs() < 1e-12);
        assert!(pue.to_string().contains("1.30"));
    }

    #[test]
    #[should_panic(expected = "IT power must be positive")]
    fn zero_it_power_panics() {
        let _ = Pue::new(Watts::ZERO, Watts::new(1.0), Watts::ZERO);
    }

    #[test]
    fn facility_model_space_penalty() {
        // The phone design draws less per unit but occupies the same 2U of
        // space, so its lighting overhead weighs relatively more and its PUE
        // ends up slightly above the server design's — the paper's 1.32 vs
        // 1.31 observation.
        let model = FacilityModel::air_cooled_default();
        let server = model.pue_for(170_000, Watts::new(308.0), 2.0);
        let phones = model.pue_for(170_000, Watts::new(84.0), 2.0);
        assert!(phones.value() > server.value());
        assert!(
            server.value() > 1.25 && server.value() < 1.35,
            "server {}",
            server.value()
        );
        assert!(
            phones.value() > 1.28 && phones.value() < 1.40,
            "phones {}",
            phones.value()
        );
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn facility_with_no_units_panics() {
        let _ = FacilityModel::default().pue_for(0, Watts::new(100.0), 2.0);
    }
}
