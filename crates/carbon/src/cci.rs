//! Computational Carbon Intensity — the paper's central metric.
//!
//! CCI is the lifetime CO2-equivalent emitted by a system divided by the
//! lifetime useful work it performs (Eqs. 1–2):
//!
//! ```text
//! CCI = (C_M + C_C + C_N) / Σ ops
//! ```
//!
//! [`CciCalculator`] assembles the three carbon terms from an embodied bill,
//! an average electrical power, a grid carbon intensity, an optional
//! networking profile, an optional battery-replacement schedule and an
//! optional facility PUE multiplier, and evaluates CCI at any lifetime. The
//! alternate "second life" formulation of Eq. 7 is provided by
//! [`SecondLifeCci`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::embodied::{battery_replacement_carbon, EmbodiedCarbon};
use crate::operational::{compute_carbon, NetworkProfile};
use crate::ops::{OpCount, OpUnit, Throughput};
use crate::units::{CarbonIntensity, GramsCo2e, TimeSpan, Watts};

/// The carbon numerator of CCI, split into the paper's three terms.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CarbonBreakdown {
    manufacturing: GramsCo2e,
    compute: GramsCo2e,
    network: GramsCo2e,
}

impl CarbonBreakdown {
    /// Creates a breakdown from its three terms.
    #[must_use]
    pub fn new(manufacturing: GramsCo2e, compute: GramsCo2e, network: GramsCo2e) -> Self {
        Self {
            manufacturing,
            compute,
            network,
        }
    }

    /// The manufacturing (embodied) term `C_M`.
    #[must_use]
    pub fn manufacturing(self) -> GramsCo2e {
        self.manufacturing
    }

    /// The compute term `C_C`.
    #[must_use]
    pub fn compute(self) -> GramsCo2e {
        self.compute
    }

    /// The networking term `C_N`.
    #[must_use]
    pub fn network(self) -> GramsCo2e {
        self.network
    }

    /// Total carbon across the three terms.
    #[must_use]
    pub fn total(self) -> GramsCo2e {
        self.manufacturing + self.compute + self.network
    }

    /// Fraction of the total contributed by manufacturing, in `[0, 1]`.
    /// Returns `None` when the total is zero.
    #[must_use]
    pub fn manufacturing_fraction(self) -> Option<f64> {
        let total = self.total().grams();
        if total > 0.0 {
            Some(self.manufacturing.grams() / total)
        } else {
            None
        }
    }
}

impl fmt::Display for CarbonBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C_M {:.2} + C_C {:.2} + C_N {:.2} = {:.2} kgCO2e",
            self.manufacturing.kilograms(),
            self.compute.kilograms(),
            self.network.kilograms(),
            self.total().kilograms()
        )
    }
}

/// A CCI value: grams of CO2-equivalent per unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cci {
    grams_per_op: f64,
    unit: OpUnit,
}

impl Cci {
    /// Computes CCI from total carbon and total work.
    ///
    /// # Errors
    ///
    /// Returns [`CciError::NoWork`] when `work` is zero or negative, since
    /// the metric is undefined without useful output.
    pub fn new(total: GramsCo2e, work: OpCount) -> Result<Self, CciError> {
        if work.amount() <= 0.0 {
            return Err(CciError::NoWork);
        }
        Ok(Self {
            grams_per_op: total.grams() / work.amount(),
            unit: work.unit(),
        })
    }

    /// Grams of CO2e per unit of work.
    #[must_use]
    pub fn grams_per_op(self) -> f64 {
        self.grams_per_op
    }

    /// Milligrams of CO2e per unit of work (the unit used in the paper's
    /// figures).
    #[must_use]
    pub fn milligrams_per_op(self) -> f64 {
        self.grams_per_op * 1_000.0
    }

    /// The unit of work the denominator is measured in.
    #[must_use]
    pub fn unit(self) -> OpUnit {
        self.unit
    }

    /// Ratio of this CCI to `other` (how many times more carbon-intense this
    /// system is). Both must use the same work unit.
    ///
    /// # Panics
    ///
    /// Panics if the units differ.
    #[must_use]
    pub fn ratio_to(self, other: Cci) -> f64 {
        assert_eq!(
            self.unit, other.unit,
            "cannot compare CCI across work units"
        );
        self.grams_per_op / other.grams_per_op
    }
}

impl fmt::Display for Cci {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} mgCO2e/{}", self.milligrams_per_op(), self.unit)
    }
}

/// Errors produced by CCI computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CciError {
    /// The system performed no work, so carbon per unit of work is undefined.
    NoWork,
    /// The calculator was asked for CCI but no throughput was configured.
    MissingThroughput,
    /// The two lives measured their work in different units, so the
    /// totals cannot be combined.
    MismatchedWork(crate::ops::UnitMismatch),
}

impl fmt::Display for CciError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CciError::NoWork => f.write_str("no useful work performed; CCI is undefined"),
            CciError::MissingThroughput => {
                f.write_str("no throughput configured; cannot amortise carbon over work")
            }
            CciError::MismatchedWork(mismatch) => mismatch.fmt(f),
        }
    }
}

impl std::error::Error for CciError {}

/// One point of a lifetime-CCI curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CciPoint {
    months: f64,
    cci: Cci,
}

impl CciPoint {
    /// Creates a point at `months` of service lifetime.
    #[must_use]
    pub fn new(months: f64, cci: Cci) -> Self {
        Self { months, cci }
    }

    /// Service lifetime in months.
    #[must_use]
    pub fn months(self) -> f64 {
        self.months
    }

    /// CCI at that lifetime.
    #[must_use]
    pub fn cci(self) -> Cci {
        self.cci
    }
}

/// A CCI-versus-lifetime series, as plotted in Figures 2, 5, 6 and 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CciSeries {
    label: String,
    points: Vec<CciPoint>,
}

impl CciSeries {
    /// Creates a labelled series from points.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<CciPoint>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }

    /// The series label (device or configuration name).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The points of the series, ordered as supplied.
    #[must_use]
    pub fn points(&self) -> &[CciPoint] {
        &self.points
    }

    /// The final (longest-lifetime) point, if any.
    #[must_use]
    pub fn last(&self) -> Option<CciPoint> {
        self.points.last().copied()
    }
}

/// Builder/evaluator for lifetime CCI of one system configuration.
///
/// # Examples
///
/// ```
/// use junkyard_carbon::cci::CciCalculator;
/// use junkyard_carbon::embodied::EmbodiedCarbon;
/// use junkyard_carbon::ops::{OpUnit, Throughput};
/// use junkyard_carbon::units::{CarbonIntensity, GramsCo2e, TimeSpan, Watts};
///
/// # fn main() -> Result<(), junkyard_carbon::cci::CciError> {
/// let reused_phone = CciCalculator::new(OpUnit::Gflop)
///     .embodied(EmbodiedCarbon::reused())
///     .average_power(Watts::new(1.54))
///     .grid(CarbonIntensity::from_grams_per_kwh(257.0))
///     .throughput(Throughput::per_second(10.0, OpUnit::Gflop));
/// let cci = reused_phone.cci_at(TimeSpan::from_months(36.0))?;
/// assert!(cci.grams_per_op() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CciCalculator {
    unit: OpUnit,
    embodied: EmbodiedCarbon,
    average_power: Watts,
    grid: CarbonIntensity,
    network: NetworkProfile,
    throughput: Option<Throughput>,
    battery: Option<BatterySchedule>,
    pue: f64,
    operational_scale: f64,
}

/// Battery replacement schedule: embodied carbon per pack and how long a
/// pack lasts under the configured duty cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct BatterySchedule {
    per_battery: GramsCo2e,
    battery_lifetime: TimeSpan,
}

impl CciCalculator {
    /// Creates a calculator for work measured in `unit`.
    #[must_use]
    pub fn new(unit: OpUnit) -> Self {
        Self {
            unit,
            embodied: EmbodiedCarbon::new(),
            average_power: Watts::ZERO,
            grid: CarbonIntensity::ZERO,
            network: NetworkProfile::none(),
            throughput: None,
            battery: None,
            pue: 1.0,
            operational_scale: 1.0,
        }
    }

    /// Sets the embodied-carbon bill (`C_M`), excluding batteries handled by
    /// [`Self::battery_replacement`].
    #[must_use]
    pub fn embodied(mut self, embodied: EmbodiedCarbon) -> Self {
        self.embodied = embodied;
        self
    }

    /// Sets the average electrical power of the system under its workload.
    #[must_use]
    pub fn average_power(mut self, power: Watts) -> Self {
        self.average_power = power;
        self
    }

    /// Sets the grid carbon intensity powering the system.
    #[must_use]
    pub fn grid(mut self, grid: CarbonIntensity) -> Self {
        self.grid = grid;
        self
    }

    /// Sets the networking profile (`C_N`).
    #[must_use]
    pub fn network(mut self, network: NetworkProfile) -> Self {
        self.network = network;
        self
    }

    /// Sets the useful-work throughput of the system (work-unit per second,
    /// already averaged over the duty cycle as in Eq. 6).
    ///
    /// # Panics
    ///
    /// Panics if the throughput unit differs from the calculator's unit.
    #[must_use]
    pub fn throughput(mut self, throughput: Throughput) -> Self {
        assert_eq!(
            throughput.unit(),
            self.unit,
            "throughput unit must match the calculator's work unit"
        );
        self.throughput = Some(throughput);
        self
    }

    /// Schedules periodic battery replacements (Eq. 10): each pack embodies
    /// `per_battery` and survives `battery_lifetime` of service.
    #[must_use]
    pub fn battery_replacement(
        mut self,
        per_battery: GramsCo2e,
        battery_lifetime: TimeSpan,
    ) -> Self {
        self.battery = Some(BatterySchedule {
            per_battery,
            battery_lifetime,
        });
        self
    }

    /// Applies a facility power-usage-effectiveness multiplier to the
    /// operational terms, as in the datacenter-scale formulation (Eq. 15).
    ///
    /// # Panics
    ///
    /// Panics if `pue < 1.0`.
    #[must_use]
    pub fn pue(mut self, pue: f64) -> Self {
        assert!(pue >= 1.0, "PUE cannot be below 1.0");
        self.pue = pue;
        self
    }

    /// Scales the *operational* carbon terms by a dimensionless factor, used
    /// to model smart-charging savings (for example `1.0 - 0.07` for the 7 %
    /// Pixel 3A saving of Section 4.3).
    ///
    /// # Panics
    ///
    /// Panics if the factor is negative.
    #[must_use]
    pub fn operational_scale(mut self, factor: f64) -> Self {
        assert!(factor >= 0.0, "operational scale cannot be negative");
        self.operational_scale = factor;
        self
    }

    /// The work unit of this calculator.
    #[must_use]
    pub fn unit(&self) -> OpUnit {
        self.unit
    }

    /// The configured throughput, if any.
    #[must_use]
    pub fn configured_throughput(&self) -> Option<Throughput> {
        self.throughput
    }

    /// The carbon breakdown after `lifetime` of service.
    #[must_use]
    pub fn breakdown_at(&self, lifetime: TimeSpan) -> CarbonBreakdown {
        let mut manufacturing = self.embodied.total();
        if let Some(battery) = self.battery {
            manufacturing +=
                battery_replacement_carbon(battery.per_battery, lifetime, battery.battery_lifetime);
        }
        let compute = compute_carbon(self.grid, self.average_power, lifetime)
            * self.operational_scale
            * self.pue;
        let network =
            self.network.carbon_over(self.grid, lifetime) * self.operational_scale * self.pue;
        CarbonBreakdown::new(manufacturing, compute, network)
    }

    /// Total work completed after `lifetime` of service.
    ///
    /// # Errors
    ///
    /// Returns [`CciError::MissingThroughput`] when no throughput was set.
    pub fn work_at(&self, lifetime: TimeSpan) -> Result<OpCount, CciError> {
        let throughput = self.throughput.ok_or(CciError::MissingThroughput)?;
        Ok(throughput.work_over(lifetime))
    }

    /// CCI after `lifetime` of service.
    ///
    /// # Errors
    ///
    /// Returns [`CciError::MissingThroughput`] when no throughput was set and
    /// [`CciError::NoWork`] when the lifetime is zero.
    pub fn cci_at(&self, lifetime: TimeSpan) -> Result<Cci, CciError> {
        let work = self.work_at(lifetime)?;
        Cci::new(self.breakdown_at(lifetime).total(), work)
    }

    /// Evaluates the CCI curve at each lifetime in `months`.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Self::cci_at`].
    pub fn series(
        &self,
        label: impl Into<String>,
        months: impl IntoIterator<Item = f64>,
    ) -> Result<CciSeries, CciError> {
        let mut points = Vec::new();
        for m in months {
            let cci = self.cci_at(TimeSpan::from_months(m))?;
            points.push(CciPoint::new(m, cci));
        }
        Ok(CciSeries::new(label, points))
    }
}

/// Finds the service lifetime (in months) at which configuration `a` stops
/// being more carbon-efficient than configuration `b`, scanning
/// `1..=max_months` at one-month resolution.
///
/// Returns `None` if `a` is better (or equal) for the entire scanned range,
/// or worse from the very first month.
///
/// # Errors
///
/// Propagates configuration errors from either calculator.
pub fn crossover_months(
    a: &CciCalculator,
    b: &CciCalculator,
    max_months: u32,
) -> Result<Option<u32>, CciError> {
    let mut a_was_better = false;
    for m in 1..=max_months {
        let life = TimeSpan::from_months(f64::from(m));
        let cci_a = a.cci_at(life)?;
        let cci_b = b.cci_at(life)?;
        if cci_a.grams_per_op() <= cci_b.grams_per_op() {
            a_was_better = true;
        } else if a_was_better {
            return Ok(Some(m));
        } else {
            return Ok(None);
        }
    }
    Ok(None)
}

/// The alternate, two-life CCI formulation of Eq. 7: the device's original
/// manufacturing carbon is amortised over the work of both its first life
/// (as a consumer phone) and its second life (as a junkyard compute node).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecondLifeCci {
    manufacturing: GramsCo2e,
    first_life_carbon: GramsCo2e,
    first_life_work: OpCount,
    second_life: CciCalculator,
}

impl SecondLifeCci {
    /// Creates the two-life formulation.
    ///
    /// `manufacturing` is the original embodied carbon, `first_life_carbon`
    /// and `first_life_work` describe the operational carbon and useful work
    /// of the device's first life, and `second_life` describes its junkyard
    /// deployment.
    ///
    /// # Panics
    ///
    /// Panics if the first-life work unit differs from the second-life
    /// calculator's unit.
    #[must_use]
    pub fn new(
        manufacturing: GramsCo2e,
        first_life_carbon: GramsCo2e,
        first_life_work: OpCount,
        second_life: CciCalculator,
    ) -> Self {
        assert_eq!(
            first_life_work.unit(),
            second_life.unit(),
            "first and second life must use the same work unit"
        );
        Self {
            manufacturing,
            first_life_carbon,
            first_life_work,
            second_life,
        }
    }

    /// CCI after `second_lifetime` of junkyard service (Eq. 7).
    ///
    /// # Errors
    ///
    /// Propagates errors from the second-life calculator and returns
    /// [`CciError::NoWork`] if both lives performed zero work.
    pub fn cci_at(&self, second_lifetime: TimeSpan) -> Result<Cci, CciError> {
        let second_breakdown = self.second_life.breakdown_at(second_lifetime);
        let second_work = self.second_life.work_at(second_lifetime)?;
        let total_carbon = self.manufacturing
            + self.first_life_carbon
            + second_breakdown.compute()
            + second_breakdown.network()
            + second_breakdown.manufacturing();
        let total_work = self
            .first_life_work
            .checked_add(second_work)
            .map_err(CciError::MismatchedWork)?;
        Cci::new(total_carbon, total_work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::DataRate;

    fn phone() -> CciCalculator {
        CciCalculator::new(OpUnit::Gflop)
            .embodied(EmbodiedCarbon::reused())
            .average_power(Watts::new(1.54))
            .grid(CarbonIntensity::from_grams_per_kwh(257.0))
            .throughput(Throughput::per_second(17.2, OpUnit::Gflop))
    }

    fn server() -> CciCalculator {
        CciCalculator::new(OpUnit::Gflop)
            .embodied(EmbodiedCarbon::manufactured(
                "PowerEdge R740",
                GramsCo2e::from_kilograms(3330.0),
            ))
            .average_power(Watts::new(308.7))
            .grid(CarbonIntensity::from_grams_per_kwh(257.0))
            .throughput(Throughput::per_second(910.8, OpUnit::Gflop))
    }

    #[test]
    fn reused_device_cci_is_flat_over_lifetime() {
        // With no embodied carbon the metric is purely operational, so it is
        // independent of lifetime.
        let phone = phone();
        let a = phone.cci_at(TimeSpan::from_months(6.0)).unwrap();
        let b = phone.cci_at(TimeSpan::from_months(60.0)).unwrap();
        assert!((a.grams_per_op() - b.grams_per_op()).abs() < 1e-12);
    }

    #[test]
    fn new_server_cci_decreases_with_lifetime() {
        let server = server();
        let short = server.cci_at(TimeSpan::from_months(6.0)).unwrap();
        let long = server.cci_at(TimeSpan::from_months(60.0)).unwrap();
        assert!(long.grams_per_op() < short.grams_per_op());
    }

    #[test]
    fn breakdown_terms_sum_to_total() {
        let calc = server().network(NetworkProfile::wifi(DataRate::from_gigabits_per_sec(0.1)));
        let b = calc.breakdown_at(TimeSpan::from_years(3.0));
        let total = b.manufacturing() + b.compute() + b.network();
        assert!((total.grams() - b.total().grams()).abs() < 1e-9);
        assert!(b.manufacturing_fraction().unwrap() > 0.0);
    }

    #[test]
    fn pue_scales_only_operational_terms() {
        let base = server().breakdown_at(TimeSpan::from_years(3.0));
        let with_pue = server().pue(1.5).breakdown_at(TimeSpan::from_years(3.0));
        assert_eq!(base.manufacturing(), with_pue.manufacturing());
        assert!((with_pue.compute().grams() / base.compute().grams() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn operational_scale_models_smart_charging() {
        let base = phone().cci_at(TimeSpan::from_years(3.0)).unwrap();
        let saved = phone()
            .operational_scale(0.93)
            .cci_at(TimeSpan::from_years(3.0))
            .unwrap();
        assert!((saved.grams_per_op() / base.grams_per_op() - 0.93).abs() < 1e-9);
    }

    #[test]
    fn battery_replacement_adds_steps() {
        let calc =
            phone().battery_replacement(GramsCo2e::from_kilograms(2.0), TimeSpan::from_years(2.3));
        let before = calc.breakdown_at(TimeSpan::from_years(2.0)).manufacturing();
        let after = calc.breakdown_at(TimeSpan::from_years(2.5)).manufacturing();
        assert_eq!(before, GramsCo2e::ZERO);
        assert!((after.kilograms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn missing_throughput_is_an_error() {
        let calc = CciCalculator::new(OpUnit::Request);
        assert_eq!(
            calc.cci_at(TimeSpan::from_years(1.0)).unwrap_err(),
            CciError::MissingThroughput
        );
    }

    #[test]
    fn zero_lifetime_is_no_work() {
        assert_eq!(
            phone().cci_at(TimeSpan::ZERO).unwrap_err(),
            CciError::NoWork
        );
    }

    #[test]
    fn series_matches_pointwise_evaluation() {
        let calc = server();
        let series = calc.series("server", [6.0, 12.0, 24.0]).unwrap();
        assert_eq!(series.points().len(), 3);
        assert_eq!(series.label(), "server");
        let direct = calc.cci_at(TimeSpan::from_months(12.0)).unwrap();
        assert!((series.points()[1].cci().grams_per_op() - direct.grams_per_op()).abs() < 1e-12);
        assert_eq!(series.last().unwrap().months(), 24.0);
    }

    #[test]
    fn phone_beats_server_for_short_lifetimes() {
        // The reused phone wins early because the new server must amortise
        // 3.3 tCO2e of manufacturing; this is the paper's central claim.
        let phone = phone().cci_at(TimeSpan::from_months(12.0)).unwrap();
        let server = server().cci_at(TimeSpan::from_months(12.0)).unwrap();
        assert!(phone.grams_per_op() < server.grams_per_op());
        assert!(server.ratio_to(phone) > 1.0);
    }

    #[test]
    fn crossover_detects_when_reuse_stops_winning() {
        // A deliberately power-hungry reused device against an efficient new
        // one: reuse wins early, loses eventually.
        let reused = CciCalculator::new(OpUnit::Gflop)
            .embodied(EmbodiedCarbon::reused())
            .average_power(Watts::new(456.0))
            .grid(CarbonIntensity::from_grams_per_kwh(257.0))
            .throughput(Throughput::per_second(100.0, OpUnit::Gflop));
        let fresh = CciCalculator::new(OpUnit::Gflop)
            .embodied(EmbodiedCarbon::manufactured(
                "new",
                GramsCo2e::from_kilograms(900.0),
            ))
            .average_power(Watts::new(309.0))
            .grid(CarbonIntensity::from_grams_per_kwh(257.0))
            .throughput(Throughput::per_second(100.0, OpUnit::Gflop));
        let crossover = crossover_months(&reused, &fresh, 120).unwrap();
        assert!(crossover.is_some());
        assert!(crossover.unwrap() > 12);
    }

    #[test]
    fn second_life_amortises_original_manufacturing() {
        let second = phone();
        let two_life = SecondLifeCci::new(
            GramsCo2e::from_kilograms(50.0),
            GramsCo2e::from_kilograms(10.0),
            OpCount::new(1.0e9, OpUnit::Gflop),
            second.clone(),
        );
        let with_history = two_life.cci_at(TimeSpan::from_years(3.0)).unwrap();
        let without = second.cci_at(TimeSpan::from_years(3.0)).unwrap();
        // Eq. 7 charges the original manufacturing but also credits the
        // first-life work, so the result differs from the simple form.
        assert!(with_history.grams_per_op() != without.grams_per_op());
        assert!(with_history.grams_per_op() > 0.0);
    }

    #[test]
    fn display_formats() {
        let cci = phone().cci_at(TimeSpan::from_years(1.0)).unwrap();
        assert!(cci.to_string().contains("mgCO2e/gflop"));
        let b = phone().breakdown_at(TimeSpan::from_years(1.0));
        assert!(b.to_string().contains("C_M"));
    }
}
