//! Thermal substrate for the Junkyard Computing reproduction.
//!
//! Reproduces the paper's Section 4.1 thermal study without the physical
//! Styrofoam box: a lumped-parameter model of phones exchanging heat with
//! the enclosed air, firmware throttling and shutdown governors, the Eq. 9
//! thermal-power estimate, and cooling (fan) sizing for larger cloudlets.
//!
//! * [`model`] — phone thermal models and the enclosure.
//! * [`sim`] — the stress-test simulation behind Figure 3.
//! * [`cooling`] — COTS fan sizing for cloudlet-scale clusters.
//!
//! # Example
//!
//! ```
//! use junkyard_thermal::sim::StressTest;
//! use junkyard_devices::power::LoadProfile;
//!
//! let timeline = StressTest::paper_setup(LoadProfile::full_load()).run();
//! // Under sustained full load the Nexus 4s eventually protect themselves.
//! assert!(timeline.shutdown_count() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cooling;
pub mod model;
pub mod sim;

pub use cooling::{CoolingPlan, ServerFan};
pub use model::{Enclosure, PhoneThermalModel};
pub use sim::{PhoneTimeline, StressTest, TestPhone, ThermalTimeline};
