//! Cloudlet cooling sizing: how many COTS server fans a phone cluster needs.
//!
//! Section 4.1 of the paper: 256 Nexus 4s at full load dissipate about
//! 666 W of heat, within the capability of two commodity 500 W-rated server
//! fans, each adding 4 W of electrical draw and ~9.3 kgCO2e of embodied
//! carbon.

use serde::{Deserialize, Serialize};

use junkyard_carbon::units::{GramsCo2e, Watts};

/// A commodity server fan used to cool a phone cloudlet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerFan {
    rated_cooling: Watts,
    electrical_power: Watts,
    embodied: GramsCo2e,
}

impl ServerFan {
    /// Creates a fan specification.
    ///
    /// # Panics
    ///
    /// Panics if the rated cooling capacity is not strictly positive.
    #[must_use]
    pub fn new(rated_cooling: Watts, electrical_power: Watts, embodied: GramsCo2e) -> Self {
        assert!(
            rated_cooling.value() > 0.0,
            "cooling capacity must be positive"
        );
        Self {
            rated_cooling,
            electrical_power,
            embodied,
        }
    }

    /// The paper's commodity fan: rated for 500 W of heat, drawing 4 W,
    /// embodying about 9.3 kgCO2e.
    #[must_use]
    pub fn paper_cots_fan() -> Self {
        Self::new(
            Watts::new(500.0),
            Watts::new(4.0),
            GramsCo2e::from_kilograms(9.3),
        )
    }

    /// Heat the fan is rated to remove.
    #[must_use]
    pub fn rated_cooling(self) -> Watts {
        self.rated_cooling
    }

    /// Electrical power the fan draws.
    #[must_use]
    pub fn electrical_power(self) -> Watts {
        self.electrical_power
    }

    /// Embodied carbon of one fan.
    #[must_use]
    pub fn embodied(self) -> GramsCo2e {
        self.embodied
    }
}

impl Default for ServerFan {
    fn default() -> Self {
        Self::paper_cots_fan()
    }
}

/// A cooling plan: how many fans a cluster needs and what they cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingPlan {
    fan: ServerFan,
    fans_needed: u32,
    heat_load: Watts,
}

impl CoolingPlan {
    /// Sizes cooling for a cluster of `device_count` devices, each
    /// dissipating `per_device_heat`.
    ///
    /// # Panics
    ///
    /// Panics if `per_device_heat` is negative.
    #[must_use]
    pub fn for_cluster(fan: ServerFan, device_count: u32, per_device_heat: Watts) -> Self {
        assert!(
            per_device_heat.value() >= 0.0,
            "heat load cannot be negative"
        );
        let heat_load = per_device_heat * f64::from(device_count);
        let fans_needed = if heat_load.value() <= 0.0 {
            0
        } else {
            (heat_load.value() / fan.rated_cooling().value()).ceil() as u32
        };
        Self {
            fan,
            fans_needed,
            heat_load,
        }
    }

    /// Total heat load being removed.
    #[must_use]
    pub fn heat_load(self) -> Watts {
        self.heat_load
    }

    /// Number of fans required.
    #[must_use]
    pub fn fans_needed(self) -> u32 {
        self.fans_needed
    }

    /// Total electrical power of the fans.
    #[must_use]
    pub fn electrical_power(self) -> Watts {
        self.fan.electrical_power() * f64::from(self.fans_needed)
    }

    /// Total embodied carbon of the fans.
    #[must_use]
    pub fn embodied(self) -> GramsCo2e {
        self.fan.embodied() * f64::from(self.fans_needed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_256_nexus4_cluster_needs_two_fans() {
        // 256 phones at ~2.6 W of thermal power each ≈ 666 W of heat.
        let plan = CoolingPlan::for_cluster(ServerFan::paper_cots_fan(), 256, Watts::new(2.6));
        assert!((plan.heat_load().value() - 665.6).abs() < 0.1);
        assert_eq!(plan.fans_needed(), 2);
        assert!((plan.electrical_power().value() - 8.0).abs() < 1e-9);
        assert!((plan.embodied().kilograms() - 18.6).abs() < 1e-9);
    }

    #[test]
    fn small_cloudlet_needs_one_fan() {
        // The ten-phone cloudlet of Section 6.3 at 1.7 W per phone.
        let plan = CoolingPlan::for_cluster(ServerFan::paper_cots_fan(), 10, Watts::new(1.7));
        assert_eq!(plan.fans_needed(), 1);
    }

    #[test]
    fn zero_heat_needs_no_fans() {
        let plan = CoolingPlan::for_cluster(ServerFan::paper_cots_fan(), 100, Watts::ZERO);
        assert_eq!(plan.fans_needed(), 0);
        assert_eq!(plan.embodied(), GramsCo2e::ZERO);
    }

    #[test]
    fn fans_scale_with_heat() {
        let small = CoolingPlan::for_cluster(ServerFan::paper_cots_fan(), 54, Watts::new(2.0));
        let large = CoolingPlan::for_cluster(ServerFan::paper_cots_fan(), 540, Watts::new(2.0));
        assert!(large.fans_needed() > small.fans_needed());
        assert_eq!(small.fans_needed(), 1);
        assert_eq!(large.fans_needed(), 3);
    }

    #[test]
    #[should_panic(expected = "cooling capacity must be positive")]
    fn zero_capacity_fan_panics() {
        let _ = ServerFan::new(Watts::ZERO, Watts::new(4.0), GramsCo2e::ZERO);
    }
}
