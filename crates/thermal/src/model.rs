//! Lumped-parameter thermal models of phones and their enclosure.
//!
//! Section 4.1 of the paper stress-tests four Nexus 4s and one Nexus 5 in a
//! sealed Styrofoam box and observes: phones throttle as they warm, the
//! Nexus 4s shut themselves off at 75–80 °C internal temperature (when the
//! box air reaches about 40 °C), and the per-device thermal power stays well
//! below the 5 W thermal design point. The models here follow the paper's
//! own simplification (footnote 3): each phone is a block of silicon-like
//! material exchanging heat with a uniform body of enclosed air.

use serde::{Deserialize, Serialize};

use junkyard_carbon::units::Watts;

/// Specific heat capacity of air at constant pressure, J/(kg·K).
pub const AIR_SPECIFIC_HEAT: f64 = 1_005.0;
/// Density of air at room temperature, kg/m³.
pub const AIR_DENSITY: f64 = 1.20;
/// Specific heat capacity of silicon, J/(kg·K), used by the paper's Eq. 9.
pub const SILICON_SPECIFIC_HEAT: f64 = 705.0;

/// Thermal behaviour of one phone: heat capacity, coupling to the
/// surrounding air, and the throttle / shutdown set points of its firmware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhoneThermalModel {
    /// Effective thermal mass of the handset, J/K.
    heat_capacity: f64,
    /// Thermal conductance from the handset to the surrounding air, W/K.
    conductance_to_air: f64,
    /// Internal temperature at which throttling begins, °C.
    throttle_start: f64,
    /// Internal temperature at which throttling reaches its floor, °C.
    throttle_full: f64,
    /// Lowest fraction of full performance the governor will allow.
    min_performance: f64,
    /// Internal temperature at which the phone powers itself off, °C.
    shutdown_temp: f64,
    /// Thermal design power of the SoC, W.
    tdp: Watts,
    /// Equivalent silicon mass used in the paper's Eq. 9 estimate, kg.
    silicon_mass_kg: f64,
}

impl PhoneThermalModel {
    /// Creates a thermal model.
    ///
    /// # Panics
    ///
    /// Panics if any capacity/conductance/mass is not strictly positive, the
    /// throttle window is inverted, or `min_performance` is outside `(0, 1]`.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        heat_capacity: f64,
        conductance_to_air: f64,
        throttle_start: f64,
        throttle_full: f64,
        min_performance: f64,
        shutdown_temp: f64,
        tdp: Watts,
        silicon_mass_kg: f64,
    ) -> Self {
        assert!(heat_capacity > 0.0, "heat capacity must be positive");
        assert!(conductance_to_air > 0.0, "conductance must be positive");
        assert!(
            throttle_full > throttle_start,
            "throttle window must be increasing"
        );
        assert!(
            shutdown_temp > throttle_start,
            "shutdown must be above throttle start"
        );
        assert!(
            min_performance > 0.0 && min_performance <= 1.0,
            "minimum performance must be in (0, 1]"
        );
        assert!(silicon_mass_kg > 0.0, "silicon mass must be positive");
        Self {
            heat_capacity,
            conductance_to_air,
            throttle_start,
            throttle_full,
            min_performance,
            shutdown_temp,
            tdp,
            silicon_mass_kg,
        }
    }

    /// The Nexus 4 model: throttles from 45 °C, shuts down at ~77 °C
    /// internal (which the experiment reaches once the box air is ~40 °C).
    #[must_use]
    pub fn nexus_4() -> Self {
        Self::new(98.0, 0.060, 45.0, 70.0, 0.60, 77.0, Watts::new(5.0), 0.139)
    }

    /// The Nexus 5 model: slightly better heat spreading and a higher
    /// shutdown set point — it survived both of the paper's scenarios.
    #[must_use]
    pub fn nexus_5() -> Self {
        Self::new(92.0, 0.115, 45.0, 70.0, 0.40, 90.0, Watts::new(5.0), 0.130)
    }

    /// A Pixel 3A model (used for cloudlet cooling projections).
    #[must_use]
    pub fn pixel_3a() -> Self {
        Self::new(105.0, 0.120, 47.0, 72.0, 0.45, 85.0, Watts::new(6.0), 0.150)
    }

    /// Effective thermal mass, J/K.
    #[must_use]
    pub fn heat_capacity(&self) -> f64 {
        self.heat_capacity
    }

    /// Conductance from handset to air, W/K.
    #[must_use]
    pub fn conductance_to_air(&self) -> f64 {
        self.conductance_to_air
    }

    /// Internal temperature where throttling begins, °C.
    #[must_use]
    pub fn throttle_start(&self) -> f64 {
        self.throttle_start
    }

    /// Internal shutdown temperature, °C.
    #[must_use]
    pub fn shutdown_temp(&self) -> f64 {
        self.shutdown_temp
    }

    /// SoC thermal design power.
    #[must_use]
    pub fn tdp(&self) -> Watts {
        self.tdp
    }

    /// Equivalent silicon mass for Eq. 9, kg.
    #[must_use]
    pub fn silicon_mass_kg(&self) -> f64 {
        self.silicon_mass_kg
    }

    /// Performance fraction the thermal governor allows at the given
    /// internal temperature: 1.0 below the throttle-start temperature,
    /// dropping linearly to the floor at the throttle-full temperature.
    #[must_use]
    pub fn performance_at(&self, internal_temp: f64) -> f64 {
        if internal_temp <= self.throttle_start {
            1.0
        } else if internal_temp >= self.throttle_full {
            self.min_performance
        } else {
            let span = self.throttle_full - self.throttle_start;
            let frac = (internal_temp - self.throttle_start) / span;
            1.0 - frac * (1.0 - self.min_performance)
        }
    }

    /// `true` once the internal temperature has reached the shutdown point.
    #[must_use]
    pub fn should_shut_down(&self, internal_temp: f64) -> bool {
        internal_temp >= self.shutdown_temp
    }
}

/// The sealed enclosure the phones sit in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Enclosure {
    /// Interior volume, m³.
    volume_m3: f64,
    /// Extra thermal mass of the walls and fittings, J/K.
    wall_heat_capacity: f64,
    /// Conductance from the enclosed air to the ambient, W/K.
    conductance_to_ambient: f64,
    /// Ambient temperature outside the box, °C.
    ambient_temp: f64,
}

impl Enclosure {
    /// Creates an enclosure.
    ///
    /// # Panics
    ///
    /// Panics if the volume or conductance is not strictly positive or the
    /// wall heat capacity is negative.
    #[must_use]
    pub fn new(
        volume_m3: f64,
        wall_heat_capacity: f64,
        conductance_to_ambient: f64,
        ambient_temp: f64,
    ) -> Self {
        assert!(volume_m3 > 0.0, "enclosure volume must be positive");
        assert!(
            wall_heat_capacity >= 0.0,
            "wall heat capacity cannot be negative"
        );
        assert!(conductance_to_ambient > 0.0, "conductance must be positive");
        Self {
            volume_m3,
            wall_heat_capacity,
            conductance_to_ambient,
            ambient_temp,
        }
    }

    /// The paper's sealed 5 × 15 × 10.5 inch Styrofoam box at a 25 °C
    /// ambient.
    #[must_use]
    pub fn paper_styrofoam_box() -> Self {
        // 5 in × 15 in × 10.5 in = 787.5 in³ ≈ 0.0129 m³.
        Self::new(0.0129, 300.0, 0.16, 25.0)
    }

    /// Interior volume, m³.
    #[must_use]
    pub fn volume_m3(&self) -> f64 {
        self.volume_m3
    }

    /// Mass of the enclosed air, kg.
    #[must_use]
    pub fn air_mass_kg(&self) -> f64 {
        self.volume_m3 * AIR_DENSITY
    }

    /// Total effective heat capacity of the enclosed air plus walls, J/K.
    #[must_use]
    pub fn heat_capacity(&self) -> f64 {
        self.air_mass_kg() * AIR_SPECIFIC_HEAT + self.wall_heat_capacity
    }

    /// Conductance from the enclosed air to ambient, W/K.
    #[must_use]
    pub fn conductance_to_ambient(&self) -> f64 {
        self.conductance_to_ambient
    }

    /// Ambient temperature, °C.
    #[must_use]
    pub fn ambient_temp(&self) -> f64 {
        self.ambient_temp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governor_is_full_speed_when_cool() {
        let m = PhoneThermalModel::nexus_4();
        assert_eq!(m.performance_at(30.0), 1.0);
        assert_eq!(m.performance_at(45.0), 1.0);
    }

    #[test]
    fn governor_degrades_linearly_then_floors() {
        let m = PhoneThermalModel::nexus_4();
        let mid = m.performance_at(57.5);
        assert!(mid < 1.0 && mid > 0.60);
        assert_eq!(m.performance_at(80.0), 0.60);
        // Monotone non-increasing.
        let mut prev = 1.0;
        for t in 30..90 {
            let p = m.performance_at(f64::from(t));
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn shutdown_thresholds_match_paper_observations() {
        let n4 = PhoneThermalModel::nexus_4();
        assert!(n4.should_shut_down(78.0));
        assert!(!n4.should_shut_down(70.0));
        // The Nexus 5 tolerates more.
        assert!(PhoneThermalModel::nexus_5().shutdown_temp() > n4.shutdown_temp());
    }

    #[test]
    fn paper_box_dimensions() {
        let b = Enclosure::paper_styrofoam_box();
        assert!((b.volume_m3() - 0.0129).abs() < 1e-4);
        assert!(b.air_mass_kg() < 0.02);
        assert!(b.heat_capacity() > b.air_mass_kg() * AIR_SPECIFIC_HEAT);
        assert_eq!(b.ambient_temp(), 25.0);
    }

    #[test]
    fn tdp_is_5w_for_the_nexus_4() {
        assert!((PhoneThermalModel::nexus_4().tdp().value() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "throttle window")]
    fn inverted_throttle_window_panics() {
        let _ = PhoneThermalModel::new(100.0, 0.1, 60.0, 50.0, 0.5, 80.0, Watts::new(5.0), 0.03);
    }

    #[test]
    #[should_panic(expected = "volume must be positive")]
    fn zero_volume_panics() {
        let _ = Enclosure::new(0.0, 100.0, 0.1, 25.0);
    }
}
