//! Time-stepping thermal stress-test simulation (Figure 3) and the Eq. 9
//! thermal-power estimate.

use serde::{Deserialize, Serialize};

use junkyard_carbon::units::{TimeSpan, Watts};
use junkyard_devices::power::{LoadProfile, PowerCurve};

use crate::model::{Enclosure, PhoneThermalModel, SILICON_SPECIFIC_HEAT};

/// One phone placed in the enclosure for a stress test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestPhone {
    label: String,
    thermal: PhoneThermalModel,
    power: PowerCurve,
}

impl TestPhone {
    /// Creates a test phone from its thermal model and power curve.
    #[must_use]
    pub fn new(label: impl Into<String>, thermal: PhoneThermalModel, power: PowerCurve) -> Self {
        Self {
            label: label.into(),
            thermal,
            power,
        }
    }

    /// Display label of the phone.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The phone's thermal model.
    #[must_use]
    pub fn thermal(&self) -> &PhoneThermalModel {
        &self.thermal
    }
}

/// Temperature and performance trajectory of one phone during a test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhoneTimeline {
    label: String,
    temperatures: Vec<f64>,
    job_latencies: Vec<Option<f64>>,
    shutdown_at: Option<TimeSpan>,
}

impl PhoneTimeline {
    /// Display label of the phone.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Internal temperature at each sample, °C.
    #[must_use]
    pub fn temperatures(&self) -> &[f64] {
        &self.temperatures
    }

    /// Test-job latency at each sample in seconds; `None` once the phone has
    /// shut itself off.
    #[must_use]
    pub fn job_latencies(&self) -> &[Option<f64>] {
        &self.job_latencies
    }

    /// When the phone shut itself off, if it did.
    #[must_use]
    pub fn shutdown_at(&self) -> Option<TimeSpan> {
        self.shutdown_at
    }

    /// Peak internal temperature reached, °C.
    #[must_use]
    pub fn peak_temperature(&self) -> f64 {
        self.temperatures
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Full result of a thermal stress test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalTimeline {
    step: TimeSpan,
    air_temperatures: Vec<f64>,
    phones: Vec<PhoneTimeline>,
}

impl ThermalTimeline {
    /// Sampling step of the timelines.
    #[must_use]
    pub fn step(&self) -> TimeSpan {
        self.step
    }

    /// Enclosed-air temperature at each sample, °C.
    #[must_use]
    pub fn air_temperatures(&self) -> &[f64] {
        &self.air_temperatures
    }

    /// Per-phone trajectories, in the order the phones were supplied.
    #[must_use]
    pub fn phones(&self) -> &[PhoneTimeline] {
        &self.phones
    }

    /// Peak air temperature, °C.
    #[must_use]
    pub fn peak_air_temperature(&self) -> f64 {
        self.air_temperatures
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Number of phones that shut themselves off during the test.
    #[must_use]
    pub fn shutdown_count(&self) -> usize {
        self.phones
            .iter()
            .filter(|p| p.shutdown_at().is_some())
            .count()
    }

    /// The paper's Eq. 9 estimate of total thermal power, computed from the
    /// warming rates of the air and the phones over the window ending just
    /// before the first shutdown (or the whole test if nothing shut down).
    ///
    /// Returns the total across all devices; divide by the phone count for
    /// the per-device figure the paper quotes (≈2.6 W at full load,
    /// ≈1.2 W light-medium for Nexus-class phones).
    #[must_use]
    pub fn thermal_power(&self, enclosure: &Enclosure, models: &[PhoneThermalModel]) -> Watts {
        let first_shutdown_index = self
            .phones
            .iter()
            .filter_map(|p| p.shutdown_at())
            .map(|t| (t.seconds() / self.step.seconds()).floor() as usize)
            .min()
            .unwrap_or(self.air_temperatures.len().saturating_sub(1))
            .max(1);
        let window = TimeSpan::from_secs(self.step.seconds() * first_shutdown_index as f64);

        let air_delta = self.air_temperatures[first_shutdown_index] - self.air_temperatures[0];
        let air_term = enclosure.air_mass_kg() * crate::model::AIR_SPECIFIC_HEAT * air_delta
            / window.seconds();

        let phone_term: f64 = self
            .phones
            .iter()
            .zip(models)
            .map(|(timeline, model)| {
                let delta = timeline.temperatures()
                    [first_shutdown_index.min(timeline.temperatures().len() - 1)]
                    - timeline.temperatures()[0];
                SILICON_SPECIFIC_HEAT * model.silicon_mass_kg() * delta / window.seconds()
            })
            .sum();

        Watts::new(air_term + phone_term)
    }
}

/// A thermal stress test: a set of phones in an enclosure running a duty
/// cycle for a fixed duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StressTest {
    enclosure: Enclosure,
    phones: Vec<TestPhone>,
    workload: LoadProfile,
    duration: TimeSpan,
    step: TimeSpan,
    base_job_latency: f64,
}

impl StressTest {
    /// Creates a stress test.
    ///
    /// # Panics
    ///
    /// Panics if no phones are supplied or the duration/step are not
    /// strictly positive.
    #[must_use]
    pub fn new(
        enclosure: Enclosure,
        phones: Vec<TestPhone>,
        workload: LoadProfile,
        duration: TimeSpan,
    ) -> Self {
        assert!(!phones.is_empty(), "a stress test needs at least one phone");
        assert!(duration.seconds() > 0.0, "duration must be positive");
        Self {
            enclosure,
            phones,
            workload,
            duration,
            step: TimeSpan::from_secs(5.0),
            base_job_latency: 5.0,
        }
    }

    /// The paper's experimental setup: four Nexus 4s and one Nexus 5 in the
    /// sealed Styrofoam box, running for 45 minutes.
    #[must_use]
    pub fn paper_setup(workload: LoadProfile) -> Self {
        let nexus4_curve = PowerCurve::from_measurements(
            Watts::new(0.7),
            Watts::new(1.0),
            Watts::new(2.7),
            Watts::new(3.6),
        );
        let nexus5_curve = PowerCurve::from_measurements(
            Watts::new(0.7),
            Watts::new(1.1),
            Watts::new(2.4),
            Watts::new(3.3),
        );
        let mut phones: Vec<TestPhone> = (0..4)
            .map(|i| {
                TestPhone::new(
                    format!("Nexus 4 #{}", i + 1),
                    PhoneThermalModel::nexus_4(),
                    nexus4_curve,
                )
            })
            .collect();
        phones.push(TestPhone::new(
            "Nexus 5",
            PhoneThermalModel::nexus_5(),
            nexus5_curve,
        ));
        Self::new(
            Enclosure::paper_styrofoam_box(),
            phones,
            workload,
            TimeSpan::from_minutes(45.0),
        )
    }

    /// Overrides the integration step.
    ///
    /// # Panics
    ///
    /// Panics if the step is not strictly positive.
    #[must_use]
    pub fn step(mut self, step: TimeSpan) -> Self {
        assert!(step.seconds() > 0.0, "step must be positive");
        self.step = step;
        self
    }

    /// The phones under test.
    #[must_use]
    pub fn phones(&self) -> &[TestPhone] {
        &self.phones
    }

    /// The enclosure used.
    #[must_use]
    pub fn enclosure(&self) -> &Enclosure {
        &self.enclosure
    }

    /// Thermal models of the phones, in order (convenience for
    /// [`ThermalTimeline::thermal_power`]).
    #[must_use]
    pub fn models(&self) -> Vec<PhoneThermalModel> {
        self.phones.iter().map(|p| *p.thermal()).collect()
    }

    /// Runs the simulation.
    #[must_use]
    pub fn run(&self) -> ThermalTimeline {
        let steps = (self.duration.seconds() / self.step.seconds()).ceil() as usize;
        let dt = self.step.seconds();
        let target_load = self.workload.average_load();
        let ambient = self.enclosure.ambient_temp();

        let mut air_temp = ambient;
        let mut phone_temps: Vec<f64> = vec![ambient; self.phones.len()];
        let mut alive: Vec<bool> = vec![true; self.phones.len()];
        let mut shutdowns: Vec<Option<TimeSpan>> = vec![None; self.phones.len()];

        let mut air_series = Vec::with_capacity(steps + 1);
        let mut temp_series: Vec<Vec<f64>> = vec![Vec::with_capacity(steps + 1); self.phones.len()];
        let mut latency_series: Vec<Vec<Option<f64>>> =
            vec![Vec::with_capacity(steps + 1); self.phones.len()];

        for step_index in 0..=steps {
            air_series.push(air_temp);
            let mut heat_into_air = 0.0;
            for (i, phone) in self.phones.iter().enumerate() {
                temp_series[i].push(phone_temps[i]);
                if !alive[i] {
                    latency_series[i].push(None);
                    // A dead phone still exchanges heat passively.
                    let flow = phone.thermal.conductance_to_air() * (phone_temps[i] - air_temp);
                    phone_temps[i] -= flow * dt / phone.thermal.heat_capacity();
                    heat_into_air += flow;
                    continue;
                }
                let performance = phone.thermal.performance_at(phone_temps[i]);
                let effective_load = (target_load * performance).clamp(0.0, 1.0);
                let electrical = phone.power.power_at(effective_load).value();
                latency_series[i].push(Some(self.base_job_latency / performance));

                let flow_to_air = phone.thermal.conductance_to_air() * (phone_temps[i] - air_temp);
                phone_temps[i] += (electrical - flow_to_air) * dt / phone.thermal.heat_capacity();
                heat_into_air += flow_to_air;

                if phone.thermal.should_shut_down(phone_temps[i]) {
                    alive[i] = false;
                    shutdowns[i] = Some(TimeSpan::from_secs(dt * step_index as f64));
                }
            }
            let loss = self.enclosure.conductance_to_ambient() * (air_temp - ambient);
            air_temp += (heat_into_air - loss) * dt / self.enclosure.heat_capacity();
        }

        let phones = self
            .phones
            .iter()
            .enumerate()
            .map(|(i, phone)| PhoneTimeline {
                label: phone.label.clone(),
                temperatures: std::mem::take(&mut temp_series[i]),
                job_latencies: std::mem::take(&mut latency_series[i]),
                shutdown_at: shutdowns[i],
            })
            .collect();

        ThermalTimeline {
            step: self.step,
            air_temperatures: air_series,
            phones,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_full_load() -> (StressTest, ThermalTimeline) {
        let test = StressTest::paper_setup(LoadProfile::full_load());
        let timeline = test.run();
        (test, timeline)
    }

    fn run_light_medium() -> (StressTest, ThermalTimeline) {
        let test = StressTest::paper_setup(LoadProfile::light_medium());
        let timeline = test.run();
        (test, timeline)
    }

    #[test]
    fn full_load_shuts_down_nexus_4s_but_not_nexus_5() {
        let (_, timeline) = run_full_load();
        let nexus4_shutdowns = timeline
            .phones()
            .iter()
            .filter(|p| p.label().starts_with("Nexus 4") && p.shutdown_at().is_some())
            .count();
        assert!(
            nexus4_shutdowns >= 1,
            "expected at least one Nexus 4 shutdown"
        );
        let nexus5 = timeline
            .phones()
            .iter()
            .find(|p| p.label() == "Nexus 5")
            .unwrap();
        assert!(nexus5.shutdown_at().is_none(), "Nexus 5 should survive");
    }

    #[test]
    fn shutdown_happens_near_the_observed_temperatures() {
        let (_, timeline) = run_full_load();
        for phone in timeline.phones() {
            if let Some(at) = phone.shutdown_at() {
                let index = (at.seconds() / timeline.step().seconds()) as usize;
                let internal = phone.temperatures()[index.min(phone.temperatures().len() - 1)];
                assert!(
                    (74.0..=82.0).contains(&internal),
                    "shutdown at {internal} °C"
                );
                let air =
                    timeline.air_temperatures()[index.min(timeline.air_temperatures().len() - 1)];
                assert!((32.0..=55.0).contains(&air), "air at shutdown {air} °C");
            }
        }
    }

    #[test]
    fn light_medium_stays_cooler_than_full_load() {
        let (_, full) = run_full_load();
        let (_, light) = run_light_medium();
        assert!(light.peak_air_temperature() < full.peak_air_temperature());
        // The paper's light-medium run also eventually trips the Nexus 4
        // protection, but later than the sustained stress test does.
        let first = |t: &ThermalTimeline| {
            t.phones()
                .iter()
                .filter_map(|p| p.shutdown_at())
                .map(|s| s.seconds())
                .fold(f64::INFINITY, f64::min)
        };
        assert!(first(&light) > first(&full));
    }

    #[test]
    fn latency_rises_as_phones_heat_up() {
        let (_, timeline) = run_full_load();
        let phone = &timeline.phones()[0];
        let first = phone.job_latencies()[0].unwrap();
        let last_alive = phone.job_latencies().iter().rev().find_map(|l| *l).unwrap();
        assert!(last_alive > first, "latency should grow with temperature");
        assert!((first - 5.0).abs() < 1e-9);
        assert!(last_alive < 20.0);
    }

    #[test]
    fn thermal_power_is_in_the_paper_band() {
        let (test, full) = run_full_load();
        let per_device_full = full.thermal_power(test.enclosure(), &test.models()).value() / 5.0;
        assert!(
            per_device_full > 1.2 && per_device_full < 4.5,
            "full-load thermal power {per_device_full} W/device"
        );
        let (test, light) = run_light_medium();
        let per_device_light = light
            .thermal_power(test.enclosure(), &test.models())
            .value()
            / 5.0;
        assert!(
            per_device_light < per_device_full,
            "light-medium ({per_device_light} W) should be below full load ({per_device_full} W)"
        );
        // Both stay well below the 5 W TDP, the paper's observation (d).
        assert!(per_device_full < 5.0);
    }

    #[test]
    fn air_temperature_is_monotone_until_first_shutdown() {
        let (_, timeline) = run_full_load();
        let first_shutdown = timeline
            .phones()
            .iter()
            .filter_map(|p| p.shutdown_at())
            .map(|t| (t.seconds() / timeline.step().seconds()) as usize)
            .min()
            .unwrap_or(timeline.air_temperatures().len() - 1);
        let air = timeline.air_temperatures();
        for i in 1..=first_shutdown {
            assert!(
                air[i] >= air[i - 1] - 1e-9,
                "air cooled before any shutdown at step {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one phone")]
    fn empty_test_panics() {
        let _ = StressTest::new(
            Enclosure::paper_styrofoam_box(),
            vec![],
            LoadProfile::full_load(),
            TimeSpan::from_minutes(10.0),
        );
    }
}
