//! Golden test over the committed fixture tree: every rule fires where
//! expected, every suppression suppresses, stale and malformed markers
//! are reported, and the ratchet rejects any count increase.

use std::path::Path;

use junkyard_lint::baseline::Baseline;
use junkyard_lint::engine::{analyze, Analysis, Config};
use junkyard_lint::rules::RuleId;

const LIB: &str = "crates/x/src/lib.rs";

fn fixture_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/demo"))
}

fn fixture_config() -> Config {
    let mut config = Config::junkyard();
    config.cast_prefixes = vec!["crates/x/src/".to_string()];
    config
}

fn run(baseline_json: &str) -> Analysis {
    let baseline = Baseline::parse(baseline_json).expect("fixture baseline parses");
    analyze(fixture_root(), &fixture_config(), &baseline).expect("fixture tree analyzes")
}

/// The exact fixture baseline: the counts the fixture is committed at.
const EXACT: &str =
    r#"{"schema":1,"ratchets":{"panic-in-library":1,"unchecked-cast":2,"untyped-quantity":6}}"#;

/// The (line, suppressed) signature of every finding of one rule in the
/// fixture library file.
fn lines_of(analysis: &Analysis, rule: RuleId) -> Vec<(u32, bool)> {
    analysis
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.path == LIB)
        .map(|f| (f.line, f.suppressed.is_some()))
        .collect()
}

#[test]
fn every_rule_fires_and_every_suppression_suppresses() {
    let analysis = run(EXACT);

    // Rule 1: the iteration call site fires everywhere (line 11), but
    // declarations only fire on the fan-out path: `votes` (line 10) and
    // `cache` (line 15) are off-path and silent, `seen` (line 23) is in
    // the spawn closure and fires, and the allow over `lookup` (line
    // 26) suppresses its in-scope declaration.
    assert_eq!(
        lines_of(&analysis, RuleId::NondeterministicIteration),
        vec![(11, false), (23, false), (26, true)]
    );

    // Rule 2: every wall-clock read fires — inside `clocked` (35) and
    // `stamped` (42) and in serial code (57); the one-liner under the
    // allow is suppressed (two mentions on one line dedup to one).
    assert_eq!(
        lines_of(&analysis, RuleId::WallClockInSim),
        vec![(35, false), (42, false), (57, false), (62, true)]
    );

    // Rule 3: entropy-seeded RNG fires; test code stays quiet.
    assert_eq!(lines_of(&analysis, RuleId::AmbientRng), vec![(65, false)]);

    // Rule 4 (call graph): all three helpers are reachable from the
    // spawn closure and impure; findings land on the `fn` lines. The
    // allow over `stamped` suppresses it, `clocked` stays active, and
    // `merge_trace` (line 105) trips the zero-tolerance
    // recorder-in-fanout facet twice over (mint + shard merge). The
    // equally impure `wall_elapsed` (line 56) is off-path and NOT
    // flagged here.
    let fanout = lines_of(&analysis, RuleId::FanoutPurity);
    assert_eq!(fanout, vec![(34, false), (41, true), (105, false)]);
    assert!(analysis.findings.iter().any(|f| {
        f.rule == RuleId::FanoutPurity
            && f.message.contains("fn `clocked`")
            && f.message.contains("wall clock")
    }));
    assert!(analysis.findings.iter().any(|f| {
        f.rule == RuleId::FanoutPurity
            && f.message.contains("fn `merge_trace`")
            && f.message.contains("TraceRecorder")
            && f.message.contains(".absorb(")
    }));

    // Rule 5 (dimension algebra): adding ms to secs fires on the `+`
    // line; the suffix-conflicting rebinding under the allow is
    // suppressed.
    assert_eq!(
        lines_of(&analysis, RuleId::UnitSuffixConsistency),
        vec![(47, false), (52, true)]
    );

    // Rule 6: `.unwrap()` fires; the allowed `.expect(` is suppressed.
    assert_eq!(
        lines_of(&analysis, RuleId::PanicInLibrary),
        vec![(70, false), (74, true)]
    );

    // Rule 7: both bare casts fire (the reasonless marker on line 84
    // suppresses nothing); the trailing allow on line 81 works.
    assert_eq!(
        lines_of(&analysis, RuleId::UncheckedCast),
        vec![(77, false), (81, true), (86, false)]
    );

    // Rule 8: bare-f64 pub params and fields (same-line params dedup).
    assert_eq!(
        lines_of(&analysis, RuleId::UntypedQuantity),
        vec![
            (46, false),
            (50, false),
            (76, false),
            (85, false),
            (99, false),
            (100, false)
        ]
    );

    // Rule 9: `pinned_total` is referenced by the fixture's tests/, so
    // only `forgotten_total` escapes.
    let conservation = lines_of(&analysis, RuleId::ConservationAudit);
    assert_eq!(conservation, vec![(100, false)]);
    assert!(analysis
        .findings
        .iter()
        .any(|f| f.rule == RuleId::ConservationAudit && f.message.contains("forgotten_total")));

    // Meta-rule: the reasonless marker and the unknown rule name are
    // both findings; the stale-but-valid allow is only a note.
    assert_eq!(
        lines_of(&analysis, RuleId::MalformedSuppression),
        vec![(84, false), (89, false)]
    );
    assert_eq!(analysis.unused_suppressions.len(), 1);
    assert_eq!(analysis.unused_suppressions[0].path, LIB);
    assert_eq!(analysis.unused_suppressions[0].line, 92);
    assert_eq!(analysis.unused_suppressions[0].rule, "ambient-rng");

    // Test code fired nothing: every finding sits outside the
    // `#[cfg(test)]` module (first line 111).
    assert!(analysis.findings.iter().all(|f| f.line < 111));
}

#[test]
fn ratchet_accepts_exact_counts_and_rejects_increases() {
    // At the committed counts, all three ratchets hold (the fixture
    // still fails overall on its zero-tolerance actives — that is the
    // point of the fixture, not of the ratchet).
    let at_baseline = run(EXACT);
    assert!(!at_baseline.stats_for(RuleId::PanicInLibrary).failed());
    assert!(!at_baseline.stats_for(RuleId::UncheckedCast).failed());
    assert!(!at_baseline.stats_for(RuleId::UntypedQuantity).failed());
    assert!(!at_baseline.passed());

    // One fewer allowed panic: the same tree now exceeds the ratchet.
    let tightened = run(
        r#"{"schema":1,"ratchets":{"panic-in-library":0,"unchecked-cast":2,"untyped-quantity":6}}"#,
    );
    assert!(tightened.stats_for(RuleId::PanicInLibrary).failed());
    assert!(!tightened.stats_for(RuleId::UncheckedCast).failed());

    // A missing ratchet entry means zero tolerance for that rule.
    let missing = run(r#"{"schema":1,"ratchets":{"panic-in-library":1,"untyped-quantity":6}}"#);
    assert!(missing.stats_for(RuleId::UncheckedCast).failed());

    // A generous allowance passes the ratchet and reports headroom.
    let slack = run(
        r#"{"schema":1,"ratchets":{"panic-in-library":9,"unchecked-cast":9,"untyped-quantity":9}}"#,
    );
    assert!(!slack.stats_for(RuleId::PanicInLibrary).failed());
    assert_eq!(slack.stats_for(RuleId::PanicInLibrary).baseline, Some(9));
}
