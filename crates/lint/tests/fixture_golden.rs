//! Golden test over the committed fixture tree: every rule fires where
//! expected, every suppression suppresses, stale and malformed markers
//! are reported, and the ratchet rejects any count increase.

use std::path::Path;

use junkyard_lint::baseline::Baseline;
use junkyard_lint::engine::{analyze, Analysis, Config};
use junkyard_lint::rules::RuleId;

const LIB: &str = "crates/x/src/lib.rs";

fn fixture_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/demo"))
}

fn fixture_config() -> Config {
    let mut config = Config::junkyard();
    config.cast_prefixes = vec!["crates/x/src/".to_string()];
    config
}

fn run(baseline_json: &str) -> Analysis {
    let baseline = Baseline::parse(baseline_json).expect("fixture baseline parses");
    analyze(fixture_root(), &fixture_config(), &baseline).expect("fixture tree analyzes")
}

/// The exact fixture baseline: the counts the fixture is committed at.
const EXACT: &str = r#"{"schema":1,"ratchets":{"panic-in-library":1,"unchecked-cast":2}}"#;

/// The (line, suppressed) signature of every finding of one rule in the
/// fixture library file.
fn lines_of(analysis: &Analysis, rule: RuleId) -> Vec<(u32, bool)> {
    analysis
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.path == LIB)
        .map(|f| (f.line, f.suppressed.is_some()))
        .collect()
}

#[test]
fn every_rule_fires_and_every_suppression_suppresses() {
    let analysis = run(EXACT);

    // Rule 1: declaration sites and the iteration call site fire; the
    // reasoned allow over `probe` suppresses its declaration.
    assert_eq!(
        lines_of(&analysis, RuleId::NondeterministicIteration),
        vec![(8, false), (9, false), (13, true)]
    );

    // Rule 2: the bare `Instant::now` fires; the one-liner under the
    // allow is suppressed (two mentions on one line dedup to one).
    assert_eq!(
        lines_of(&analysis, RuleId::WallClockInSim),
        vec![(18, false), (23, true)]
    );

    // Rule 3: entropy-seeded RNG fires; test code stays quiet.
    assert_eq!(lines_of(&analysis, RuleId::AmbientRng), vec![(26, false)]);

    // Rule 4: `.unwrap()` fires; the allowed `.expect(` is suppressed.
    assert_eq!(
        lines_of(&analysis, RuleId::PanicInLibrary),
        vec![(31, false), (35, true)]
    );

    // Rule 5: both bare casts fire (the reasonless marker on line 45
    // suppresses nothing); the trailing allow on line 42 works.
    assert_eq!(
        lines_of(&analysis, RuleId::UncheckedCast),
        vec![(38, false), (42, true), (47, false)]
    );

    // Rule 6: `pinned_total` is referenced by the fixture's tests/, so
    // only `forgotten_total` escapes.
    let conservation = lines_of(&analysis, RuleId::ConservationAudit);
    assert_eq!(conservation, vec![(61, false)]);
    assert!(analysis
        .findings
        .iter()
        .any(|f| f.rule == RuleId::ConservationAudit && f.message.contains("forgotten_total")));

    // Meta-rule: the reasonless marker and the unknown rule name are
    // both findings; the stale-but-valid allow is only a note.
    assert_eq!(
        lines_of(&analysis, RuleId::MalformedSuppression),
        vec![(45, false), (50, false)]
    );
    assert_eq!(analysis.unused_suppressions.len(), 1);
    assert_eq!(analysis.unused_suppressions[0].path, LIB);
    assert_eq!(analysis.unused_suppressions[0].line, 53);
    assert_eq!(analysis.unused_suppressions[0].rule, "ambient-rng");

    // Test code fired nothing: every finding sits outside the
    // `#[cfg(test)]` module (first line 64).
    assert!(analysis.findings.iter().all(|f| f.line < 64));
}

#[test]
fn ratchet_accepts_exact_counts_and_rejects_increases() {
    // At the committed counts, both ratchets hold (the fixture still
    // fails overall on its zero-tolerance actives — that is the point
    // of the fixture, not of the ratchet).
    let at_baseline = run(EXACT);
    assert!(!at_baseline.stats_for(RuleId::PanicInLibrary).failed());
    assert!(!at_baseline.stats_for(RuleId::UncheckedCast).failed());
    assert!(!at_baseline.passed());

    // One fewer allowed panic: the same tree now exceeds the ratchet.
    let tightened = run(r#"{"schema":1,"ratchets":{"panic-in-library":0,"unchecked-cast":2}}"#);
    assert!(tightened.stats_for(RuleId::PanicInLibrary).failed());
    assert!(!tightened.stats_for(RuleId::UncheckedCast).failed());

    // A missing ratchet entry means zero tolerance for that rule.
    let missing = run(r#"{"schema":1,"ratchets":{"panic-in-library":1}}"#);
    assert!(missing.stats_for(RuleId::UncheckedCast).failed());

    // A generous allowance passes the ratchet and reports headroom.
    let slack = run(r#"{"schema":1,"ratchets":{"panic-in-library":9,"unchecked-cast":9}}"#);
    assert!(!slack.stats_for(RuleId::PanicInLibrary).failed());
    assert_eq!(slack.stats_for(RuleId::PanicInLibrary).baseline, Some(9));
}
