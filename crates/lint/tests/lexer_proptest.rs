//! Property tests on the lexer: for ANY input — valid Rust, truncated
//! Rust, or byte noise — lexing never panics and the token stream tiles
//! the input byte-for-byte (lossless reassembly). The vendored proptest
//! only supplies numeric strategies, so inputs are derived from sampled
//! seeds through a small deterministic generator.

use junkyard_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// A tiny deterministic PRNG (splitmix64) so each sampled seed expands
/// into one reproducible input string.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[(self.next() % options.len() as u64) as usize]
    }
}

/// Fragments chosen to hit every lexer mode and its edge cases: string
/// and raw-string fences, char-vs-lifetime ambiguity, nested block
/// comments, markers hidden inside literals, and unterminated openers.
const FRAGMENTS: &[&str] = &[
    "fn main() { let x = 1; }",
    "\"a string with // no comment\"",
    "\"escaped \\\" quote\"",
    "r#\"raw \"quoted\" text\"#",
    "r##\"##outer fence\"##",
    "b\"bytes\"",
    "br#\"raw bytes\"#",
    "c\"c string\"",
    "'c'",
    "'\\n'",
    "'\\''",
    "'static",
    "&'a str",
    "<'a>",
    "// line comment\n",
    "/// doc lint:allow(panic-in-library): not real\n",
    "/* block */",
    "/* nested /* inner */ outer */",
    "/* unterminated",
    "\"unterminated",
    "r#\"unterminated raw",
    "::",
    ":",
    "x as u32",
    "1_000.5e-3",
    "0xdead_beef",
    "#[cfg(test)]",
    "macro_rules! m { () => {} }",
    "let map: HashMap<u64, u64> = HashMap::new();",
    "\u{1F980} unicode \u{00e9}",
    "\n\t  \r\n",
    "'",
    "\"",
    "\\",
    "r#",
];

/// Arbitrary byte noise, lossily decoded so it is a valid &str with
/// plenty of replacement characters and truncated sequences.
fn noise(gen: &mut Gen, len: usize) -> String {
    let bytes: Vec<u8> = (0..len).map(|_| (gen.next() & 0xff) as u8).collect();
    String::from_utf8_lossy(&bytes).into_owned()
}

/// The reassembly property plus stream sanity: tokens are contiguous,
/// non-empty, and line numbers never decrease.
fn assert_lossless(src: &str) {
    let tokens = lex(src);
    let mut cursor = 0usize;
    let mut line = 1u32;
    let mut rebuilt = String::with_capacity(src.len());
    for token in &tokens {
        assert_eq!(token.start, cursor, "tokens tile without gaps");
        assert!(token.end > token.start, "no empty tokens");
        assert!(token.line >= line, "line numbers are monotone");
        line = token.line;
        rebuilt.push_str(token.text(src));
        cursor = token.end;
    }
    assert_eq!(cursor, src.len(), "tokens cover the whole input");
    assert_eq!(rebuilt, src, "reassembly is byte-identical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Random compositions of edge-case fragments lex losslessly.
    #[test]
    fn fragment_compositions_reassemble(seed in 0u64..1_000_000, parts in 1usize..24) {
        let mut gen = Gen(seed);
        let mut src = String::new();
        for _ in 0..parts {
            src.push_str(gen.pick(FRAGMENTS));
            src.push_str(gen.pick(&[" ", "", "\n"]));
        }
        assert_lossless(&src);
    }

    /// Pure byte noise (lossily decoded) never panics and reassembles.
    #[test]
    fn byte_noise_reassembles(seed in 0u64..1_000_000, len in 0usize..300) {
        let mut gen = Gen(seed);
        assert_lossless(&noise(&mut gen, len));
    }

    /// Every prefix of a composed input lexes too: truncation mid-token
    /// (unterminated strings, half surrogates, dangling `r#`) is safe.
    #[test]
    fn truncations_are_safe(seed in 0u64..1_000_000) {
        let mut gen = Gen(seed);
        let mut src = String::new();
        for _ in 0..6 {
            src.push_str(gen.pick(FRAGMENTS));
        }
        let mut cut = (gen.next() % (src.len() as u64 + 1)) as usize;
        while !src.is_char_boundary(cut) {
            cut -= 1;
        }
        assert_lossless(&src[..cut]);
    }
}

/// Comment markers hidden inside literals never become trivia: anything
/// the suppression parser sees as a comment really is one.
#[test]
fn literals_never_leak_comment_markers() {
    let src = "let a = \"// not a comment /* nor this */\"; let b = r#\"// raw\"#;";
    for token in lex(src) {
        assert!(
            !matches!(token.kind, TokenKind::LineComment | TokenKind::BlockComment),
            "literal content misread as a comment: {:?}",
            token.text(src)
        );
    }
}
