//! Fixture test corpus: pins `Totals.pinned_total` (and only it) so the
//! conservation audit flags `forgotten_total` alone.

#[test]
fn pins_one_conserved_field() {
    let pinned_total = 1.0_f64;
    assert!(pinned_total > 0.0);
}
