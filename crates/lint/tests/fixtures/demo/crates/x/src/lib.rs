//! Golden fixture: every junkyard_lint rule fires here at least once,
//! every suppressible rule is also suppressed once, and test code shows
//! the rules staying quiet. This file is never compiled — the fixture
//! test points the engine at this tree and asserts the exact findings.

use std::collections::HashMap;

// Iterating a hash map leaks hash order into results everywhere, even
// off fan-out paths; declaring one is only flagged on fan-out paths.
pub fn tally(votes: &HashMap<String, u64>) -> u64 {
    votes.values().sum()
}

// A lookup-only map off every fan-out path needs no allow at all.
pub fn probe(cache: &HashMap<u64, u64>, key: u64) -> Option<u64> {
    cache.get(&key).copied()
}

pub fn fan_out(jobs: &[u64]) -> u64 {
    let mut total = 0;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut seen: HashMap<u64, u64> = HashMap::new();
            seen.insert(jobs[0], 1);
            // lint:allow(nondeterministic-iteration): lookup-only scratch map
            let lookup: HashMap<u64, u64> = HashMap::new();
            let _ = lookup.get(&0);
            total = clocked(jobs) + stamped(jobs) + merge_trace(jobs);
        });
    });
    total
}

fn clocked(jobs: &[u64]) -> u64 {
    let t = std::time::Instant::now();
    let _ = t.elapsed();
    jobs.first().copied().unwrap_or(0)
}

// lint:allow(fanout-purity): fixture demonstrates suppression
fn stamped(jobs: &[u64]) -> u64 {
    let _t = std::time::SystemTime::now();
    jobs.last().copied().unwrap_or(0)
}

pub fn mix(window_ms: f64, budget_secs: f64) -> f64 {
    window_ms + budget_secs
}

pub fn relabel(span_ms: f64) -> f64 {
    // lint:allow(unit-suffix-consistency): fixture demonstrates suppression
    let span_hours = span_ms;
    span_hours
}

pub fn wall_elapsed() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_secs()
}

// lint:allow(wall-clock-in-sim): fixture demonstrates suppression
pub fn stamp() -> std::time::Instant { std::time::Instant::now() }

pub fn seed_from_air() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

pub fn must(v: Option<u64>) -> u64 {
    v.unwrap()
}

// lint:allow(panic-in-library): fixture documents the invariant
pub fn must_too(v: Option<u64>) -> u64 { v.expect("fixture") }

pub fn shrink(x: f64) -> u32 {
    x as u32
}

pub fn idx(x: u64) -> usize {
    x as usize // lint:allow(unchecked-cast): fixture index is in range
}

// lint:allow(unchecked-cast)
pub fn truncate(x: f64) -> u32 {
    x as u32
}

// lint:allow(made-up-rule): this rule does not exist
pub fn unknown_rule_marker() {}

// lint:allow(ambient-rng): stale — the next line draws no entropy
pub fn stale_allow() {}

/// Fixture accounting totals.
///
/// lint: conserved
pub struct Totals {
    pub pinned_total: f64,
    pub forgotten_total: f64,
}

// Serial-side recorder dragged into the fan-out: the recorder-in-fanout
// facet flags the `TraceRecorder` mint and the `.absorb(` shard merge.
fn merge_trace(jobs: &[u64]) -> u64 {
    let mut recorder = TraceRecorder::new();
    recorder.absorb(jobs.len());
    0
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn test_code_is_exempt() {
        let mut s = HashSet::new();
        s.insert(1u8);
        for x in s {
            let _ = x;
        }
        let _ = Option::<u8>::None.unwrap_or(0);
        let _ = 1.5_f64 as u32;
    }
}
