//! Golden fixture: every junkyard_lint rule fires here at least once,
//! every suppressible rule is also suppressed once, and test code shows
//! the rules staying quiet. This file is never compiled — the fixture
//! test points the engine at this tree and asserts the exact findings.

use std::collections::HashMap;

pub fn tally(votes: &HashMap<String, u64>) -> u64 {
    votes.values().sum()
}

// lint:allow(nondeterministic-iteration): lookup-only fixture map
pub fn probe(cache: &HashMap<u64, u64>, key: u64) -> Option<u64> {
    cache.get(&key).copied()
}

pub fn wall_elapsed() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_secs()
}

// lint:allow(wall-clock-in-sim): fixture demonstrates suppression
pub fn stamp() -> std::time::Instant { std::time::Instant::now() }

pub fn seed_from_air() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

pub fn must(v: Option<u64>) -> u64 {
    v.unwrap()
}

// lint:allow(panic-in-library): fixture documents the invariant
pub fn must_too(v: Option<u64>) -> u64 { v.expect("fixture") }

pub fn shrink(x: f64) -> u32 {
    x as u32
}

pub fn idx(x: u64) -> usize {
    x as usize // lint:allow(unchecked-cast): fixture index is in range
}

// lint:allow(unchecked-cast)
pub fn truncate(x: f64) -> u32 {
    x as u32
}

// lint:allow(made-up-rule): this rule does not exist
pub fn unknown_rule_marker() {}

// lint:allow(ambient-rng): stale — the next line draws no entropy
pub fn stale_allow() {}

/// Fixture accounting totals.
///
/// lint: conserved
pub struct Totals {
    pub pinned_total: f64,
    pub forgotten_total: f64,
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn test_code_is_exempt() {
        let mut s = HashSet::new();
        s.insert(1u8);
        for x in s {
            let _ = x;
        }
        let _ = Option::<u8>::None.unwrap_or(0);
        let _ = 1.5_f64 as u32;
    }
}
