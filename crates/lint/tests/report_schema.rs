//! Schema-stability test for `LINT_report.json`: downstream tooling
//! (CI annotations, the ratchet-drift diff, dashboards) parses the
//! report by field name, so the schema version, the top-level shape,
//! the per-object keys, and the rule list itself are all pinned here.
//! Renaming a rule or a field must show up as a deliberate diff in this
//! test, not as a silent breakage downstream.

use std::path::Path;

use junkyard_lint::baseline::Baseline;
use junkyard_lint::engine::{analyze, Config};
use junkyard_lint::report;

/// Every rule the gate enforces, in report order. Appending is fine
/// (bump nothing); renaming or reordering is a schema break.
const RULES: [&str; 10] = [
    "nondeterministic-iteration",
    "wall-clock-in-sim",
    "ambient-rng",
    "unit-suffix-consistency",
    "fanout-purity",
    "panic-in-library",
    "unchecked-cast",
    "untyped-quantity",
    "conservation-audit",
    "malformed-suppression",
];

fn fixture_report() -> String {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/demo"));
    let mut config = Config::junkyard();
    config.cast_prefixes = vec!["crates/x/src/".to_string()];
    let baseline = Baseline::parse(r#"{"schema":1,"ratchets":{}}"#).expect("baseline parses");
    let analysis = analyze(root, &config, &baseline).expect("fixture tree analyzes");
    report::json(&analysis)
}

/// The keys of the first JSON object found after `marker`, in order.
/// Good enough for the hand-rolled single-line objects the report
/// emits; a real parser would be a dependency the crate refuses.
fn object_keys(json: &str, marker: &str) -> Vec<String> {
    let start = json.find(marker).expect("marker present") + marker.len();
    let obj_start = json[start..].find('{').expect("object opens") + start + 1;
    let obj_end = json[obj_start..].find('}').expect("object closes") + obj_start;
    let mut keys = Vec::new();
    let mut rest = &json[obj_start..obj_end];
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let close = after.find('"').expect("key closes");
        keys.push(after[..close].to_string());
        let colon_and_value = &after[close + 1..];
        // Skip this key's value: advance past the value's string (if
        // any) so its contents are not mistaken for the next key.
        let next = colon_and_value
            .find(", \"")
            .unwrap_or(colon_and_value.len());
        rest = &colon_and_value[next..];
    }
    keys
}

#[test]
fn report_schema_is_stable() {
    let json = fixture_report();

    // Schema version and top-level shape, in order.
    assert!(json.starts_with("{\n  \"schema\": 2,\n"));
    let top_level = [
        "\"schema\":",
        "\"files_scanned\":",
        "\"passed\":",
        "\"rules\":",
        "\"findings\":",
        "\"unused_suppressions\":",
    ];
    let mut at = 0;
    for key in top_level {
        let pos = json[at..].find(key).unwrap_or_else(|| {
            panic!("top-level key {key} missing or out of order");
        });
        at += pos + key.len();
    }

    // Per-object shapes.
    assert_eq!(
        object_keys(&json, "\"rules\": [\n"),
        [
            "rule",
            "contract",
            "active",
            "suppressed",
            "ratcheted",
            "baseline",
            "failed"
        ]
    );
    assert_eq!(
        object_keys(&json, "\"findings\": [\n"),
        ["rule", "path", "line", "message", "suppressed"]
    );
    assert_eq!(
        object_keys(&json, "\"unused_suppressions\": [\n"),
        ["rule", "path", "line"]
    );
}

#[test]
fn rule_list_is_pinned() {
    let json = fixture_report();
    let rules_start = json.find("\"rules\": [").expect("rules array");
    let rules_end = json[rules_start..].find(']').expect("rules close") + rules_start;
    let section = &json[rules_start..rules_end];
    let listed: Vec<&str> = section
        .match_indices("{\"rule\": \"")
        .map(|(i, m)| {
            let name_start = i + m.len();
            let name_end = section[name_start..].find('"').expect("name closes") + name_start;
            &section[name_start..name_end]
        })
        .collect();
    assert_eq!(listed, RULES);

    // Every rule states its contract — the report is the gate's
    // user-facing promise, not just a count dump.
    for rule in RULES {
        let entry = format!("{{\"rule\": \"{rule}\", \"contract\": \"");
        assert!(json.contains(&entry), "rule {rule} has no contract line");
    }
}
